#!/usr/bin/env python3
"""Parameter tuning: the credit-timer trade-off (paper §6.5 / Fig. 17).

Sweeps Floodgate's credit aggregation timer T and prints the
three-way trade-off the paper discusses:

* small T  -> tight control (small aggregation-point buffers, low FCT)
              but more credit packets on the wire;
* large T  -> cheap credits but larger windows, so more buffering at
              the aggregation points and slower incast reaction.

Run:  python examples/parameter_tuning.py
"""

from repro.experiments import ScenarioConfig, run_scenario
from repro.floodgate import FloodgateConfig
from repro.units import us


def main() -> None:
    print(f"{'T (us)':>7s} {'credit %':>9s} {'tor-up MB':>10s} "
          f"{'core MB':>8s} {'tor-down MB':>12s} {'avg FCT us':>11s}")
    print("-" * 64)
    for t_us in (1, 2, 4, 8, 16):
        cfg = ScenarioConfig(
            workload="webserver",
            flow_control="floodgate",
            floodgate=FloodgateConfig(credit_timer=us(t_us)),
            duration=600_000,
            n_tors=4,
            hosts_per_tor=4,
            track_bandwidth=True,
        )
        r = run_scenario(cfg)
        total = sum(r.stats.tx_bytes_by_category.values()) or 1
        credit_pct = 100.0 * r.stats.tx_bytes_by_category["credit"] / total
        print(
            f"{t_us:7d} {credit_pct:9.3f} "
            f"{r.max_port_buffer_mb('tor-up'):10.3f} "
            f"{r.max_port_buffer_mb('core'):8.3f} "
            f"{r.max_port_buffer_mb('tor-down'):12.3f} "
            f"{r.poisson_fct.avg_us:11.1f}"
        )
    print()
    print("The paper picks T = 10 us at 400 Gbps; scaled to this fabric"
          " the equivalent knee sits around 2-4 us.")


if __name__ == "__main__":
    main()
