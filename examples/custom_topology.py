#!/usr/bin/env python3
"""Library-level API: build a custom network by hand.

Skips the experiment harness entirely and uses the core classes
directly — the way you would embed the simulator in your own study:

* a hand-built asymmetric topology (two small racks, one big one),
* DCQCN hosts,
* Floodgate installed only on the switches you choose,
* hand-scheduled flows and direct access to every component's state.

Run:  python examples/custom_topology.py
"""

from repro.cc import Dcqcn
from repro.floodgate import FloodgateConfig, FloodgateExtension
from repro.net import Host, Switch, Topology
from repro.net.topology import PortRole
from repro.sim import Simulator
from repro.stats import StatsHub
from repro.units import gbps, kb, mb, ms, us


def main() -> None:
    sim = Simulator()
    stats = StatsHub()
    flow_table = {}
    cc = Dcqcn(line_rate=gbps(10), swnd_bytes=kb(35))

    topo = Topology(sim)
    topo.flow_table = flow_table

    # --- switches: one spine, three ToRs of different sizes ------------
    spine = Switch(sim, 1_000_000, "spine", mb(1), kind="core", stats=stats)
    spine.level = 1
    tors = []
    for t in range(3):
        tor = Switch(sim, 1_000_001 + t, f"tor{t}", mb(1), kind="tor", stats=stats)
        tor.level = 0
        tors.append(tor)
    topo.switches.extend([spine, *tors])

    # --- hosts: rack sizes 2, 2, and 6 ---------------------------------
    rack_sizes = [2, 2, 6]
    host_id = 0
    for tor, size in zip(tors, rack_sizes, strict=True):
        for _ in range(size):
            host = Host(sim, host_id, f"h{host_id}", cc, flow_table, stats=stats)
            topo.hosts.append(host)
            topo.connect(
                tor, host, gbps(10), 3_000,
                role_a=PortRole.TOR_DOWN, role_b=PortRole.HOST_UP,
            )
            host_id += 1
        topo.connect(
            tor, spine, gbps(25), 500,
            role_a=PortRole.TOR_UP, role_b=PortRole.CORE,
        )
    topo.finalize()

    # --- Floodgate on every switch --------------------------------------
    config = FloodgateConfig(credit_timer=us(2)).with_base_bdp(
        kb(20), credit_multiple=2
    )
    extensions = []
    for sw in topo.switches:
        ext = FloodgateExtension(sim, config)
        sw.install_extension(ext)
        extensions.append(ext)

    # --- traffic: the big rack's hosts gang up on host 0 ----------------
    fid = 0
    for src in range(4, 10):
        flow = topo.make_flow(fid, src, 0, 35_000, start_time=0)
        topo.start_flow(flow)
        stats.register_incast_flow(fid)
        fid += 1
    # one innocent cross-rack flow sharing the spine
    victim = topo.make_flow(fid, 2, 1, 60_000, start_time=0)
    topo.start_flow(victim)

    sim.run(until=ms(10))

    print("flow completion:")
    for flow in flow_table.values():
        kind = "incast" if stats.is_incast_flow(flow.flow_id) else "victim"
        print(
            f"  flow {flow.flow_id} ({kind:6s}) {flow.src}->{flow.dst}"
            f"  {flow.size:6d} B  fct={flow.finish_time / 1000:8.1f} us"
        )
    print()
    print("floodgate state after the storm:")
    for sw, ext in zip(topo.switches, extensions, strict=True):
        print(
            f"  {sw.name:6s} max VOQs used={ext.pool.max_in_use}"
            f"  credits sent={ext.credits.credits_sent}"
            f"  max buffer={sw.buffer.max_used / 1000:.1f} KB"
        )


if __name__ == "__main__":
    main()
