#!/usr/bin/env python3
"""Follow one victim flow through an incast, hop by hop.

Attaches the packet tracer to a scenario, picks one victim-of-incast
flow, and prints where each of its packets queued — making the HOL
blocking the paper describes directly visible, then showing it vanish
under Floodgate.

Run:  python examples/trace_a_flow.py
"""


from repro.experiments import Scenario, ScenarioConfig, run_scenario
from repro.net.trace import PacketTracer
from repro.stats.collector import FlowClass


def trace_variant(label: str, flow_control: str) -> None:
    cfg = ScenarioConfig(
        workload="webserver",
        flow_control=flow_control,
        n_tors=4,
        hosts_per_tor=4,
        duration=400_000,
        incast_load=0.8,
        incast_fan_in=16,
    )
    scenario = Scenario(cfg)
    # pick a victim-of-incast flow that lands mid-run (when incast
    # rounds are in full swing) and is big enough to feel queueing
    victims = [
        spec
        for spec in scenario.flows
        if scenario.mix.classes.get(spec.flow_id) is FlowClass.VICTIM_INCAST
    ]
    candidates = [
        s for s in victims if s.size >= 10_000 and s.start_time >= 100_000
    ] or victims
    victim_id = candidates[0].flow_id
    tracer = PacketTracer(flow_ids=[victim_id], kinds=["DATA"])
    tracer.attach(scenario.topology)
    run_scenario(cfg, scenario=scenario)

    flow = scenario.topology.flow_table[victim_id]
    print(f"=== {label}: victim flow {victim_id} "
          f"({flow.src} -> {flow.dst}, {flow.size} B) ===")
    print(f"  fct: {flow.finish_time - flow.start_time:,} ns")
    print(f"  path of packet 0: {' -> '.join(tracer.hops_of(victim_id, 0))}")
    total_queueing = 0
    for seq in range(min(flow.n_packets, 8)):
        delays = []
        for _, node, _ in tracer.path_of(victim_id, seq):
            d = tracer.queueing_delay(victim_id, seq, node)
            if d is not None:
                delays.append((node, d))
        worst = max(delays, key=lambda x: x[1], default=("-", 0))
        total_queueing += sum(d for _, d in delays)
        print(
            f"  pkt {seq}: worst queueing {worst[1]:>9,} ns at {worst[0]}"
        )
    print(f"  total queueing over first packets: {total_queueing:,} ns\n")


def main() -> None:
    trace_variant("DCQCN", "none")
    trace_variant("DCQCN + Floodgate", "floodgate")


if __name__ == "__main__":
    main()
