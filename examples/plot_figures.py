#!/usr/bin/env python3
"""Render paper figures as terminal charts.

Runs two of the visual experiments (Fig. 2's realtime throughput and
Fig. 9's FCT CDFs) and draws them with the built-in ASCII plotter —
the closest thing to the paper's plots this offline environment can
produce.

Run:  python examples/plot_figures.py
"""

from repro.experiments.figures import fig02_throughput, fig09_victims
from repro.stats.asciiplot import bar_chart, cdf_chart, line_chart


def main() -> None:
    print("Running Fig. 2 (realtime throughput)...")
    fig2 = fig02_throughput.run(quick=True)
    for variant, series in fig2["series"].items():
        print(f"\nFig. 2 — {variant}: victim-of-incast throughput")
        print(
            line_chart(
                {"victim of incast": series["victim_incast"]},
                x_label="time (ms)",
                y_label="Gbps",
                height=10,
            )
        )

    print("\nRunning Fig. 9 (FCT CDFs by class)...")
    fig9 = fig09_victims.run(quick=True)
    cdfs = {
        variant: fig9["cdf"][variant]["victim_incast"]
        for variant in ("baseline", "floodgate")
    }
    print("\nFig. 9 — victim-of-incast FCT CDF")
    print(cdf_chart(cdfs, height=12))

    print("\nMax buffer comparison (from the same runs):")
    buffers = {
        f"{variant} p99 victim fct (us)": fig9["summary"][variant][
            "victim_incast"
        ]["p99_us"]
        for variant in fig9["summary"]
    }
    print(bar_chart(buffers, unit=" us"))


if __name__ == "__main__":
    main()
