#!/usr/bin/env python3
"""Run one experiment at the paper's full parameters.

160 hosts, 100/400 Gbps, 20 MB buffers — the configuration of §6.
A pure-Python simulator needs minutes-to-hours per run at this scale,
so this script is NOT part of the test/benchmark suites; it exists to
show that nothing in the library is bound to the scaled-down presets.

Run:  python examples/paper_scale.py [--duration-us 50]

The default simulates only 50 us of traffic (a few incast bursts'
worth of packets) and prints progress as it goes; raise the duration
on real reproduction hardware.
"""

import argparse
import time

from repro.experiments import Scenario, ScenarioConfig, run_scenario
from repro.experiments.scenario import Scale
from repro.units import us


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--duration-us", type=float, default=50.0)
    parser.add_argument(
        "--flow-control", choices=("none", "floodgate"), default="floodgate"
    )
    args = parser.parse_args()

    cfg = ScenarioConfig(
        scale=Scale.PAPER,
        workload="websearch",
        flow_control=args.flow_control,
        duration=us(args.duration_us),
        max_runtime_factor=4.0,
    )
    print(
        f"Building the paper-scale fabric (160 hosts, 4 spines,"
        f" 10 ToRs) with flow_control={args.flow_control!r}..."
    )
    start = time.monotonic()
    scenario = Scenario(cfg)
    n_flows = len(scenario.flows)
    print(
        f"built in {time.monotonic() - start:.1f}s;"
        f" {n_flows} flows scheduled over {args.duration_us} us"
    )
    result = run_scenario(cfg, scenario=scenario)
    print(
        f"simulated {result.sim_time / 1000:.1f} us"
        f" ({result.events:,} events) in {result.wall_seconds:.1f}s wall"
    )
    print(
        f"flows completed {result.completed_flows}/{result.total_flows};"
        f" max switch buffer {result.max_switch_buffer_mb:.2f} MB;"
        f" PFC events {result.stats.pfc_pause_events}"
    )
    p = result.poisson_fct
    if p.count:
        print(f"Poisson FCT so far: avg {p.avg_us:.1f} us, p99 {p.p99_us:.1f} us")


if __name__ == "__main__":
    main()
