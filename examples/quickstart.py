#!/usr/bin/env python3
"""Quickstart: run one incastmix experiment with and without Floodgate.

This is the 30-second tour: build the paper's default scenario (a
leaf-spine fabric, DCQCN hosts, Poisson background traffic plus
periodic incast), run it twice — once on plain DCQCN and once with
Floodgate installed on every switch — and compare what the paper's
headline metrics look like.

Run:  python examples/quickstart.py
"""

from dataclasses import replace

from repro.experiments import ScenarioConfig, run_scenario


def main() -> None:
    base = ScenarioConfig(
        workload="webserver",   # Fig. 7's Web Server flow sizes
        duration=600_000,       # 600 us of traffic generation
        n_tors=4,
        hosts_per_tor=4,
        incast_load=0.8,        # dense incast rounds, as in Fig. 2
        incast_fan_in=16,
    )

    print("Running DCQCN (baseline)...")
    baseline = run_scenario(replace(base, flow_control="none"))
    print("Running DCQCN + Floodgate...")
    floodgate = run_scenario(replace(base, flow_control="floodgate"))

    print()
    print(f"{'metric':35s} {'DCQCN':>12s} {'+Floodgate':>12s}")
    print("-" * 62)
    rows = [
        (
            "avg FCT of non-incast flows (us)",
            f"{baseline.poisson_fct.avg_us:.1f}",
            f"{floodgate.poisson_fct.avg_us:.1f}",
        ),
        (
            "p99 FCT of non-incast flows (us)",
            f"{baseline.poisson_fct.p99_us:.1f}",
            f"{floodgate.poisson_fct.p99_us:.1f}",
        ),
        (
            "max switch buffer (MB)",
            f"{baseline.max_switch_buffer_mb:.3f}",
            f"{floodgate.max_switch_buffer_mb:.3f}",
        ),
        (
            "max ToR-Down port buffer (MB)",
            f"{baseline.max_port_buffer_mb('tor-down'):.3f}",
            f"{floodgate.max_port_buffer_mb('tor-down'):.3f}",
        ),
        (
            "PFC pause events",
            str(baseline.stats.pfc_pause_events),
            str(floodgate.stats.pfc_pause_events),
        ),
        (
            "VOQs used (max simultaneous)",
            "-",
            str(floodgate.max_voqs_used),
        ),
    ]
    for name, a, b in rows:
        print(f"{name:35s} {a:>12s} {b:>12s}")
    print()
    print(
        "Floodgate tames the incast at the source ToRs, so the last hop"
        " never fills and PFC never fires."
    )


if __name__ == "__main__":
    main()
