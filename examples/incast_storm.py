#!/usr/bin/env python3
"""The motivating scenario (paper §1/§2): an incast storm, blow by blow.

Recreates Fig. 2's experiment: periodic incast mixed with Poisson
traffic, realtime throughput sampled per flow class.  Without
Floodgate, flows destined to the incast rack stall behind the incast
(HOL blocking) and PFC pause storms hit everyone else; with Floodgate
both victim classes flow freely.

Run:  python examples/incast_storm.py
"""


from repro.experiments import ScenarioConfig, Scenario, run_scenario
from repro.stats.collector import FlowClass
from repro.stats.timeseries import ThroughputMonitor
from repro.units import us


def run_variant(label: str, flow_control: str) -> None:
    cfg = ScenarioConfig(
        workload="webserver",
        flow_control=flow_control,
        duration=600_000,
        n_tors=4,
        hosts_per_tor=4,
        incast_load=0.8,
        incast_fan_in=16,
    )
    scenario = Scenario(cfg)
    stats = scenario.stats
    monitor = ThroughputMonitor(
        scenario.sim,
        {
            "incast": lambda: stats.rx_bytes_of_class(FlowClass.INCAST),
            "victim of incast": lambda: stats.rx_bytes_of_class(
                FlowClass.VICTIM_INCAST
            ),
            "victim of PFC": lambda: stats.rx_bytes_of_class(
                FlowClass.VICTIM_PFC
            ),
        },
        interval=us(25),
    )
    monitor.start()
    result = run_scenario(cfg, scenario=scenario)
    monitor.stop()

    print(f"=== {label} ===")
    print(f"  PFC pause events: {result.stats.pfc_pause_events}")
    for name in monitor.sources:
        series = monitor.series(name)
        mean = monitor.mean_after(name)
        peak = monitor.peak(name)
        first = monitor.first_nonzero_time(name)
        print(
            f"  {name:18s} mean {mean:6.2f} Gbps  peak {peak:6.2f} Gbps"
            f"  first byte at {first:.3f} ms"
        )
    # a tiny ASCII sparkline of the victim-of-incast series
    series = monitor.series("victim of incast")
    if series:
        peak = max(v for _, v in series) or 1.0
        blocks = " .:-=+*#%@"
        line = "".join(
            blocks[min(int(v / peak * (len(blocks) - 1)), len(blocks) - 1)]
            for _, v in series[:72]
        )
        print(f"  victim-of-incast throughput over time: |{line}|")
    print()


def main() -> None:
    run_variant("DCQCN", "none")
    run_variant("DCQCN + Floodgate", "floodgate")


if __name__ == "__main__":
    main()
