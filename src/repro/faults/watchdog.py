"""Deadlock/livelock detection for failure-aware experiments.

A :class:`StallWatchdog` samples delivery progress on a fixed period.
If an entire window passes with flows outstanding but not a single
newly delivered byte or completed flow, the run is declared stalled
and the episode is reported through :class:`~repro.stats.collector.
StatsHub` (one record per episode, re-armed when progress resumes).

This catches both true deadlock (the event queue spins on timers while
no data moves — e.g. every credit was lost and windows sit at zero)
and livelock (retransmissions burn events without advancing any
receiver).  The complementary failure shape — the event queue drains
with flows unfinished — is caught by the runner and reported through
the same channel via :meth:`StallWatchdog.note_drained`.

The watchdog only exists when a fault plan asks for it
(``stall_window > 0``); fault-free runs schedule no watchdog events
and stay bit-identical to builds without this module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Topology
    from repro.stats.collector import StatsHub


class StallWatchdog:
    """Periodic no-progress detector, reporting through the stats hub."""

    def __init__(
        self,
        sim: Simulator,
        topology: "Topology",
        stats: "StatsHub",
        window: int,
    ) -> None:
        if window <= 0:
            raise ValueError(f"stall window must be > 0 ns, got {window}")
        self.sim = sim
        self.topology = topology
        self.stats = stats
        self.window = window
        self._task = PeriodicTask(sim, window, self._check, observer=True)
        self._last_progress: Optional[Tuple[int, int]] = None
        #: True while inside a stall episode (suppresses re-reporting)
        self.stalled = False
        self.checks = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    # -- detection ---------------------------------------------------------------

    def _progress_marker(self) -> Tuple[int, int]:
        """(completed flows, delivered bytes) — any growth is progress."""
        topo = self.topology
        delivered = sum(h.rx_data_bytes for h in topo.hosts)
        return (topo.completed_flows, delivered)

    def _flows_remaining(self) -> bool:
        topo = self.topology
        total = len(topo.flow_table)
        return total > 0 and topo.completed_flows < total

    def _check(self) -> None:
        self.checks += 1
        marker = self._progress_marker()
        if not self._flows_remaining():
            # done (or no flows yet): nothing to watch, all quiet
            self._last_progress = marker
            self.stalled = False
            self._task.stop()
            return
        if marker == self._last_progress:
            if not self.stalled:
                self.stalled = True
                self.stats.record_stall(self.sim.now, marker[0])
        else:
            self.stalled = False
        self._last_progress = marker

    def note_drained(self) -> None:
        """The event queue drained with flows unfinished: that's a stall.

        Called by the runner, which is the only place that can observe
        a drained queue (the watchdog's own pending tick keeps the
        queue technically non-empty).
        """
        if self._flows_remaining() and not self.stalled:
            self.stalled = True
            self.stats.record_stall(self.sim.now, self.topology.completed_flows)
