"""Deterministic fault injection: plans, the injector, the watchdog.

Quick tour::

    from repro.faults import BurstLoss, FaultPlan, LinkDown, RandomLoss

    plan = FaultPlan(
        faults=(
            RandomLoss(start=0, link="switch-switch", data_rate=0.05),
            LinkDown(at=200_000, duration=100_000, link="tor0<->spine0"),
        ),
        stall_window=100_000,
    )
    config = ScenarioConfig(..., fault_plan=plan)
    result = run_scenario(config)   # or any parallel sweep

Embedding the plan in the :class:`ScenarioConfig` is all it takes:
the scenario builder installs a :class:`FaultInjector` on the built
topology, the plan hashes into the sweep runner's cache key, and the
same ``(seed, plan)`` replays byte-identically everywhere.
"""

from repro.faults.injector import FaultInjector, LinkFaultState, match_links
from repro.faults.plan import (
    CLASS_CTRL,
    CLASS_DATA,
    MODE_DRAIN,
    MODE_DROP,
    BurstLoss,
    Corruption,
    FaultPlan,
    FaultSpec,
    LinkDown,
    PortDegrade,
    RandomLoss,
    plan_of,
)
from repro.faults.watchdog import StallWatchdog

__all__ = [
    "BurstLoss",
    "CLASS_CTRL",
    "CLASS_DATA",
    "Corruption",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "LinkDown",
    "LinkFaultState",
    "MODE_DRAIN",
    "MODE_DROP",
    "PortDegrade",
    "RandomLoss",
    "StallWatchdog",
    "match_links",
    "plan_of",
]
