"""Declarative fault schedules.

A :class:`FaultPlan` is a serializable list of fault specs plus the
stall-watchdog window.  Plans are pure data: they name *what* goes
wrong, *where* (a link selector), and *when* (absolute sim time in
ns); the :mod:`repro.faults.injector` turns a plan into scheduled
events on a built topology.

Determinism contract
--------------------
* A plan carries no randomness of its own — every stochastic fault
  (Bernoulli loss, corruption) draws from a dedicated child stream of
  the experiment's :class:`~repro.sim.rng.RngRegistry`, one stream per
  faulted link, so the same ``(seed, plan)`` pair replays the exact
  same loss pattern in serial, pooled, and cache-served runs.
* Plans are frozen dataclasses that round-trip through
  :meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict` and hash
  into :func:`FaultPlan.fingerprint`; embedding a plan in a
  :class:`~repro.experiments.scenario.ScenarioConfig` therefore keys
  the parallel runner's disk cache correctly.

Link selectors
--------------
Faults name their target links with a selector string:

* ``"*"`` — every link;
* ``"switch-switch"`` — links whose both endpoints are switches;
* ``"host-switch"`` — host NIC links;
* ``"name:*"`` — every link touching the node called ``name``;
* ``"a<->b"`` — the link between nodes ``a`` and ``b`` (either order);
* ``"#3"`` — the topology's link index 3 (build order).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Tuple, Type, Union

#: packet classes a loss fault can target independently
CLASS_DATA = "data"
CLASS_CTRL = "ctrl"

#: link-down semantics for packets already on the wire
MODE_DRAIN = "drain"  # in-flight packets are delivered
MODE_DROP = "drop"    # in-flight packets die with the link


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(msg)


def _check_rate(name: str, rate: float) -> None:
    _require(0.0 <= rate <= 1.0, f"{name} must be in [0, 1], got {rate}")


@dataclass(frozen=True)
class LinkDown:
    """Take a link down at ``at``; back up after ``duration`` (0 = forever).

    ``mode`` picks what happens to packets in flight when the link
    dies: ``"drain"`` delivers them (fiber cut after the last bit
    left), ``"drop"`` discards them at their would-be arrival time
    (both deterministic — no RNG draw is involved).
    """

    kind: str = field(default="link-down", init=False)
    at: int = 0
    link: str = "*"
    duration: int = 0
    mode: str = MODE_DRAIN

    def __post_init__(self) -> None:
        _require(self.at >= 0, f"at must be >= 0, got {self.at}")
        _require(self.duration >= 0, f"duration must be >= 0, got {self.duration}")
        _require(
            self.mode in (MODE_DRAIN, MODE_DROP),
            f"mode must be 'drain' or 'drop', got {self.mode!r}",
        )


@dataclass(frozen=True)
class RandomLoss:
    """Bernoulli loss over ``[start, start+duration)`` (0 = until the end).

    Data packets and control frames (credits, PAUSE/RESUME, ACKs, ...)
    are independent classes: ``ctrl_rate`` can starve Floodgate credits
    or PFC frames while payload flows untouched, and vice versa.
    """

    kind: str = field(default="random-loss", init=False)
    start: int = 0
    link: str = "switch-switch"
    duration: int = 0
    data_rate: float = 0.0
    ctrl_rate: float = 0.0

    def __post_init__(self) -> None:
        _require(self.start >= 0, f"start must be >= 0, got {self.start}")
        _require(self.duration >= 0, f"duration must be >= 0, got {self.duration}")
        _check_rate("data_rate", self.data_rate)
        _check_rate("ctrl_rate", self.ctrl_rate)


@dataclass(frozen=True)
class BurstLoss:
    """A loss burst: everything (per class) dies inside the window.

    Semantically ``RandomLoss`` with rate 1.0, kept as its own kind so
    serialized plans read as what they model (a microburst of loss,
    e.g. an optical glitch), and so sweeps can vary burst placement
    without touching rates.
    """

    kind: str = field(default="burst-loss", init=False)
    at: int = 0
    link: str = "switch-switch"
    duration: int = 10_000
    data_rate: float = 1.0
    ctrl_rate: float = 0.0

    def __post_init__(self) -> None:
        _require(self.at >= 0, f"at must be >= 0, got {self.at}")
        _require(self.duration > 0, f"duration must be > 0, got {self.duration}")
        _check_rate("data_rate", self.data_rate)
        _check_rate("ctrl_rate", self.ctrl_rate)


@dataclass(frozen=True)
class Corruption:
    """Deliver data packets but flip their integrity bit.

    A corrupted packet reaches the receiver and is NACKed (go-back-N)
    or treated like a trimmed header (NDP) — the delivered-but-useless
    failure mode, distinct from silent loss.  Control frames are never
    corrupted (real NICs drop bad control frames, which ``RandomLoss``
    with ``ctrl_rate`` already models).
    """

    kind: str = field(default="corruption", init=False)
    start: int = 0
    link: str = "switch-switch"
    duration: int = 0
    rate: float = 0.01

    def __post_init__(self) -> None:
        _require(self.start >= 0, f"start must be >= 0, got {self.start}")
        _require(self.duration >= 0, f"duration must be >= 0, got {self.duration}")
        _check_rate("rate", self.rate)


@dataclass(frozen=True)
class PortDegrade:
    """Degrade a link: scale its egress rate and/or add latency.

    ``rate_factor`` multiplies the egress bandwidth of both endpoint
    ports (0.25 = the link runs at a quarter speed); ``extra_delay``
    adds propagation latency in ns.  Overlapping degradations compose
    (factors multiply, delays add) and restore cleanly when they end.
    """

    kind: str = field(default="port-degrade", init=False)
    at: int = 0
    link: str = "*"
    duration: int = 0
    rate_factor: float = 1.0
    extra_delay: int = 0

    def __post_init__(self) -> None:
        _require(self.at >= 0, f"at must be >= 0, got {self.at}")
        _require(self.duration >= 0, f"duration must be >= 0, got {self.duration}")
        _require(
            0.0 < self.rate_factor <= 1.0,
            f"rate_factor must be in (0, 1], got {self.rate_factor}",
        )
        _require(
            self.extra_delay >= 0,
            f"extra_delay must be >= 0, got {self.extra_delay}",
        )


FaultSpec = Union[LinkDown, RandomLoss, BurstLoss, Corruption, PortDegrade]

#: kind string -> spec class (kinds are dataclass field defaults)
FAULT_KINDS: Dict[str, Type] = {
    cls.kind: cls  # type: ignore[attr-defined]
    for cls in (LinkDown, RandomLoss, BurstLoss, Corruption, PortDegrade)
}


@dataclass(frozen=True)
class FaultPlan:
    """A schedule of faults plus the stall-watchdog window.

    ``stall_window`` > 0 arms the
    :class:`~repro.faults.watchdog.StallWatchdog`: the run is declared
    stalled if no delivery progress happens for that many ns while
    flows remain.  0 leaves the watchdog off (and a ``FaultPlan()``
    with no faults installs nothing at all — runs are bit-identical to
    a plan-free run).
    """

    faults: Tuple[FaultSpec, ...] = ()
    stall_window: int = 0

    def __post_init__(self) -> None:
        _require(
            self.stall_window >= 0,
            f"stall_window must be >= 0, got {self.stall_window}",
        )
        # tolerate a list literal at construction time
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            _require(
                type(spec) in FAULT_KINDS.values(),
                f"not a fault spec: {spec!r}",
            )

    def __bool__(self) -> bool:
        """True when installing the plan changes anything."""
        return bool(self.faults) or self.stall_window > 0

    def with_fault(self, spec: FaultSpec) -> "FaultPlan":
        return FaultPlan(self.faults + (spec,), self.stall_window)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "faults": [asdict(spec) for spec in self.faults],
            "stall_window": self.stall_window,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        faults = []
        for entry in data.get("faults", ()):
            entry = dict(entry)
            kind = entry.pop("kind")
            spec_cls = FAULT_KINDS.get(kind)
            if spec_cls is None:
                raise ValueError(f"unknown fault kind {kind!r}")
            faults.append(spec_cls(**entry))
        return cls(tuple(faults), data.get("stall_window", 0))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Stable hex digest; feeds the sweep runner's cache key."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()


def plan_of(*specs: FaultSpec, stall_window: int = 0) -> FaultPlan:
    """Convenience constructor: ``plan_of(LinkDown(...), RandomLoss(...))``."""
    return FaultPlan(tuple(specs), stall_window)
