"""Turn a :class:`~repro.faults.plan.FaultPlan` into scheduled events.

The injector resolves each fault's link selector against a built
topology, installs one :class:`LinkFaultState` per faulted link, and
schedules (de)activation through the normal event engine — fault
timing obeys the same integer-ns clock and tie-breaking as everything
else, so runs with a plan are exactly as deterministic as runs
without one.

Zero cost when off: an unfaulted link's ``deliver`` pays a single
``is None`` check (the same discipline as ``PacketTracer``); only
links a plan actually names carry fault state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.faults.plan import (
    MODE_DROP,
    BurstLoss,
    Corruption,
    FaultPlan,
    LinkDown,
    PortDegrade,
    RandomLoss,
)
from repro.net.packet import PacketKind
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.node import Node
    from repro.net.packet import Packet
    from repro.net.port import EgressPort
    from repro.net.topology import Topology
    from repro.stats.collector import StatsHub


def match_links(selector: str, topology: "Topology") -> List["Link"]:
    """Resolve a plan's link selector (see :mod:`repro.faults.plan`)."""
    links = topology.links
    if selector == "*":
        return list(links)
    if selector == "switch-switch":
        from repro.net.switch import Switch

        return [
            l
            for l in links
            if isinstance(l.node_a, Switch) and isinstance(l.node_b, Switch)
        ]
    if selector == "host-switch":
        from repro.net.host import Host

        return [
            l
            for l in links
            if isinstance(l.node_a, Host) or isinstance(l.node_b, Host)
        ]
    if selector.startswith("#"):
        idx = int(selector[1:])
        if not 0 <= idx < len(links):
            raise ValueError(
                f"link index {idx} out of range (topology has {len(links)})"
            )
        return [links[idx]]
    if selector.endswith(":*"):
        name = selector[:-2]
        found = [
            l for l in links if name in (l.node_a.name, l.node_b.name)
        ]
        if not found:
            raise ValueError(f"no links touch a node called {name!r}")
        return found
    if "<->" in selector:
        a, b = selector.split("<->", 1)
        pair = {a, b}
        found = [l for l in links if {l.node_a.name, l.node_b.name} == pair]
        if not found:
            raise ValueError(f"no link between {a!r} and {b!r}")
        return found
    raise ValueError(f"unrecognized link selector {selector!r}")


class LinkFaultState:
    """Live fault state for one link (installed as ``link.fault``).

    Holds the link's current effective loss/corruption rates (the
    composition of every active window), down/flap state, and added
    latency.  ``transmit`` replaces the tail of ``Link.deliver`` while
    installed.
    """

    __slots__ = (
        "sim",
        "link",
        "rng",
        "stats",
        "down",
        "guard_arrivals",
        "_data_loss_rates",
        "_ctrl_loss_rates",
        "_corrupt_rates",
        "_extra_delays",
        "data_loss",
        "ctrl_loss",
        "corrupt_rate",
        "extra_delay",
        "injected_drops_data",
        "injected_drops_ctrl",
        "injected_drops_credit",
        "injected_corruptions",
    )

    def __init__(
        self,
        sim: Simulator,
        link: "Link",
        rng,
        stats: Optional["StatsHub"] = None,
    ) -> None:
        self.sim = sim
        self.link = link
        self.rng = rng
        self.stats = stats
        self.down = False
        #: route arrivals through a guard so a drop-mode LinkDown can
        #: kill packets already in flight (set once at install time so
        #: the event pattern never depends on fault timing)
        self.guard_arrivals = False
        self._data_loss_rates: List[float] = []
        self._ctrl_loss_rates: List[float] = []
        self._corrupt_rates: List[float] = []
        self._extra_delays: List[int] = []
        self.data_loss = 0.0
        self.ctrl_loss = 0.0
        self.corrupt_rate = 0.0
        self.extra_delay = 0
        self.injected_drops_data = 0
        self.injected_drops_ctrl = 0
        #: subset of the ctrl drops that were Floodgate CREDIT frames
        #: (the sanitizer's credit ledger needs them split out)
        self.injected_drops_credit = 0
        self.injected_corruptions = 0

    # -- effective-rate composition -------------------------------------------

    @staticmethod
    def _combine(rates: List[float]) -> float:
        """Independent Bernoulli windows compose as 1 - prod(1 - r)."""
        survive = 1.0
        for r in rates:
            survive *= 1.0 - r
        return 1.0 - survive

    def add_loss(self, data_rate: float, ctrl_rate: float) -> None:
        self._data_loss_rates.append(data_rate)
        self._ctrl_loss_rates.append(ctrl_rate)
        self.data_loss = self._combine(self._data_loss_rates)
        self.ctrl_loss = self._combine(self._ctrl_loss_rates)

    def remove_loss(self, data_rate: float, ctrl_rate: float) -> None:
        self._data_loss_rates.remove(data_rate)
        self._ctrl_loss_rates.remove(ctrl_rate)
        self.data_loss = self._combine(self._data_loss_rates)
        self.ctrl_loss = self._combine(self._ctrl_loss_rates)

    def add_corruption(self, rate: float) -> None:
        self._corrupt_rates.append(rate)
        self.corrupt_rate = self._combine(self._corrupt_rates)

    def remove_corruption(self, rate: float) -> None:
        self._corrupt_rates.remove(rate)
        self.corrupt_rate = self._combine(self._corrupt_rates)

    def add_delay(self, extra: int) -> None:
        self._extra_delays.append(extra)
        self.extra_delay = sum(self._extra_delays)

    def remove_delay(self, extra: int) -> None:
        self._extra_delays.remove(extra)
        self.extra_delay = sum(self._extra_delays)

    def set_down(self, drop_in_flight: bool) -> None:
        self.down = True
        # drop-mode arrivals are filtered by _arrive; guard_arrivals
        # was already latched at install time
        assert not drop_in_flight or self.guard_arrivals

    def set_up(self) -> None:
        self.down = False

    # -- the per-delivery hot path --------------------------------------------

    def transmit(self, pkt: "Packet", peer: "Node", peer_port: int) -> None:
        """Apply active faults to one delivery (called by Link.deliver)."""
        is_data = pkt.kind == PacketKind.DATA
        if self.down:
            self._count_drop(pkt.kind)
            return
        if is_data:
            if self.data_loss > 0.0 and self.rng.random() < self.data_loss:
                self._count_drop(PacketKind.DATA)
                return
            if self.corrupt_rate > 0.0 and self.rng.random() < self.corrupt_rate:
                pkt.corrupted = True
                self.injected_corruptions += 1
                if self.stats is not None:
                    self.stats.record_fault_corruption()
        elif self.ctrl_loss > 0.0 and self.rng.random() < self.ctrl_loss:
            self._count_drop(pkt.kind)
            return
        delay = self.link.delay + self.extra_delay
        if self.guard_arrivals:
            self.sim.schedule_call(delay, self._arrive, pkt, peer, peer_port)
        else:
            # fault state replaces the tail of Link.deliver, and only
            # intra-domain links may carry faults (the sharded runner
            # rejects boundary-crossing plans), so peer shares this sim
            self.sim.schedule_call(delay, peer.receive, pkt, peer_port)  # simcheck: ignore[SIM007] -- intra-domain by validation; boundary fault plans are rejected

    def _arrive(self, pkt: "Packet", peer: "Node", peer_port: int) -> None:
        """Arrival guard: a drop-mode outage kills packets in flight."""
        if self.down:
            self._count_drop(pkt.kind)
            return
        peer.receive(pkt, peer_port)

    def _count_drop(self, kind: PacketKind) -> None:
        if kind == PacketKind.DATA:
            self.injected_drops_data += 1
        else:
            self.injected_drops_ctrl += 1
            if kind == PacketKind.CREDIT:
                self.injected_drops_credit += 1
        if self.stats is not None:
            self.stats.record_fault_drop(kind == PacketKind.DATA)


class FaultInjector:
    """Installs a plan on a topology and schedules its fault events."""

    def __init__(
        self,
        sim: Simulator,
        topology: "Topology",
        plan: FaultPlan,
        rng: RngRegistry,
        stats: Optional["StatsHub"] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.plan = plan
        self.rng = rng
        self.stats = stats
        #: link -> its fault state (shared by all faults naming it)
        self.states: Dict[int, LinkFaultState] = {}
        #: port -> [baseline_bandwidth, active rate factors]
        self._port_rates: Dict["EgressPort", List] = {}
        self.installed = False
        self.flaps_scheduled = 0

    # -- installation ----------------------------------------------------------

    def _state_for(self, link: "Link") -> LinkFaultState:
        idx = self.topology.links.index(link)
        state = self.states.get(idx)
        if state is None:
            # domain-local application: the state lives on the link's
            # owning simulator and reports into the hub of the link's
            # domain (node_a and node_b share a domain — the sharded
            # runner rejects boundary-crossing plans; serially both
            # expressions resolve to the scenario-wide sim and hub)
            state = LinkFaultState(
                link.sim,
                link,
                self.rng.stream(f"faults:link:{idx}"),
                stats=getattr(link.node_a, "stats", None) or self.stats,
            )
            self.states[idx] = state
            link.fault = state
        return state

    def _at_for(self, link: "Link"):
        """Absolute scheduling on the link's owning domain simulator."""
        return link.sim.schedule_call_at

    def install(self) -> None:
        """Resolve selectors, attach link states, schedule transitions.

        Call once, before the simulation starts (fault times are
        absolute).  A plan with no faults installs nothing.  Every
        transition is scheduled on the faulted link's own simulator, so
        under the sharded engine each domain replays exactly the serial
        subsequence of fault events it owns.
        """
        if self.installed:
            raise RuntimeError("fault plan already installed")
        self.installed = True
        for spec in self.plan.faults:
            links = match_links(spec.link, self.topology)
            if isinstance(spec, LinkDown):
                drop = spec.mode == MODE_DROP
                for link in links:
                    at = self._at_for(link)
                    state = self._state_for(link)
                    if drop:
                        state.guard_arrivals = True
                    at(spec.at, state.set_down, drop)
                    if spec.duration > 0:
                        at(spec.at + spec.duration, state.set_up)
                    self.flaps_scheduled += 1
            elif isinstance(spec, (RandomLoss, BurstLoss)):
                start = spec.at if isinstance(spec, BurstLoss) else spec.start
                for link in links:
                    at = self._at_for(link)
                    state = self._state_for(link)
                    at(start, state.add_loss, spec.data_rate, spec.ctrl_rate)
                    if spec.duration > 0:
                        at(
                            start + spec.duration,
                            state.remove_loss,
                            spec.data_rate,
                            spec.ctrl_rate,
                        )
            elif isinstance(spec, Corruption):
                for link in links:
                    at = self._at_for(link)
                    state = self._state_for(link)
                    at(spec.start, state.add_corruption, spec.rate)
                    if spec.duration > 0:
                        at(
                            spec.start + spec.duration,
                            state.remove_corruption,
                            spec.rate,
                        )
            elif isinstance(spec, PortDegrade):
                for link in links:
                    at = self._at_for(link)
                    if spec.extra_delay:
                        state = self._state_for(link)
                        at(spec.at, state.add_delay, spec.extra_delay)
                        if spec.duration > 0:
                            at(
                                spec.at + spec.duration,
                                state.remove_delay,
                                spec.extra_delay,
                            )
                    if spec.rate_factor < 1.0:
                        for port in self._ports_of(link):
                            at(spec.at, self._scale_port, port, spec.rate_factor)
                            if spec.duration > 0:
                                at(
                                    spec.at + spec.duration,
                                    self._unscale_port,
                                    port,
                                    spec.rate_factor,
                                )
            else:  # pragma: no cover - plan validation rejects these
                raise TypeError(f"unhandled fault spec {spec!r}")

    def _ports_of(self, link: "Link") -> List["EgressPort"]:
        return [
            link.node_a.ports[link.port_a],
            link.node_b.ports[link.port_b],
        ]

    # -- port-rate transitions ---------------------------------------------------

    def _scale_port(self, port: "EgressPort", factor: float) -> None:
        cell = self._port_rates.get(port)
        if cell is None:
            cell = [port.bandwidth, []]
            self._port_rates[port] = cell
        cell[1].append(factor)
        self._apply_rate(port, cell)

    def _unscale_port(self, port: "EgressPort", factor: float) -> None:
        cell = self._port_rates[port]
        cell[1].remove(factor)
        self._apply_rate(port, cell)
        # a restored port may have packets waiting behind the slow rate
        port.kick()

    @staticmethod
    def _apply_rate(port: "EgressPort", cell: List) -> None:
        baseline, factors = cell
        rate = baseline
        for f in factors:
            rate *= f
        # set_bandwidth invalidates the port's memoized serialization
        # delays — without that, a degraded port would keep serializing
        # at the rate its delay table was built for
        port.set_bandwidth(rate)

    # -- reporting ----------------------------------------------------------------

    @property
    def injected_drops(self) -> int:
        return sum(
            s.injected_drops_data + s.injected_drops_ctrl
            for s in self.states.values()
        )

    def summary(self) -> Dict[str, int]:
        """Aggregate injection counters (picklable, for experiments)."""
        return {
            "faulted_links": len(self.states),
            "flaps_scheduled": self.flaps_scheduled,
            "injected_drops_data": sum(
                s.injected_drops_data for s in self.states.values()
            ),
            "injected_drops_ctrl": sum(
                s.injected_drops_ctrl for s in self.states.values()
            ),
            "injected_corruptions": sum(
                s.injected_corruptions for s in self.states.values()
            ),
        }
