"""Hybrid fidelity: packet-level hot racks over a fluid background."""

from repro.hybrid.model import HybridSimulation, select_hot_racks

__all__ = ["HybridSimulation", "select_hot_racks"]
