"""Hybrid fidelity: packet-level hot racks riding on a fluid background.

``HybridSimulation`` partitions one built topology into **hot** racks —
named in ``ScenarioConfig.hot_racks`` or auto-selected from the
workload's per-destination expected arrival rates — and everything
else.  Hot racks (their ToR, hosts, and every switch a hot-to-hot path
crosses) run the real packet engine: switch buffers, ECN, PFC,
Floodgate credit tables, the packet pool.  All other traffic runs on
the inherited :class:`~repro.flowsim.model.FluidSimulation` max-min
rate model.  Both tiers share one int-ns :class:`Simulator`, so event
ordering, telemetry samplers, and simcheck digests work unchanged.

The boundary sits on each hot ToR's uplinks, using the same
``Link.channel`` hook the sharded engine uses for cross-domain
delivery:

* **cold -> hot** (fluid entering a hot domain): the flow stays fluid
  over its *full* path (so the allocator sees the hot-rack bottleneck),
  but is marked ``fluid_src`` and materialized as paced packet
  injections at the hot ToR's uplink ingress port — rate = the flow's
  current max-min allocation, re-paced whenever ``_reallocate`` changes
  it, gated on the ToR's PFC ingress-pause state, and lagged by the
  path's cold-segment latency plus an M/M/1 queueing estimate.  The
  receiver host suppresses end-to-end control toward the fluid sender
  (``Flow.fluid_src``); delivery, FCT, and completion are all real.
* **hot -> cold** (packets leaving a hot domain): DATA packets for cold
  destinations are absorbed at the boundary after their real egress
  serialization.  Each absorbed flow drives a *ghost* fluid flow over
  the cold path tail whose ceiling tracks the measured offered rate
  (short EWMA window); absorbed packets transit a virtual server at the
  ghost's allocated rate plus the tail's store-and-forward latency and
  are delivered to the real destination host, whose ACKs ride the real
  reverse path (preserving the sender's ACK clocking).  The credit the
  absorbed downstream switch would have returned is synthesized so the
  hot ToR's Floodgate window keeps cycling (PSN-absolute reconcile,
  so synthesized and real credits can never over-fill a window).
* **hot <-> hot across racks** stays packet end-to-end; the bytes it
  carries over boundary uplinks are measured per direction and
  presented to the fluid allocator as reduced link capacity
  (headroom), and booked as packet-side cross traffic for the
  queueing-delay correction — so the two tiers agree on shared
  bottlenecks without double-counting either tier's load.
"""

from __future__ import annotations

from heapq import heappush
from typing import Dict, List, Optional, Tuple

from repro.flowsim.model import FluidFlow, FluidSimulation
from repro.net.packet import PacketKind
from repro.net.switch import Switch
from repro.sim.engine import Event
from repro.sim.process import PeriodicTask
from repro.units import CTRL_PKT_SIZE, MTU, SEC, serialization_delay, us

_DATA = PacketKind.DATA

#: utilization clamp shared with the fluid queueing correction
_RHO_CAP = 0.95

#: floor for tunnel/pacing rates so a starved allocation cannot stall
#: the virtual clock forever (1 Mbps)
_MIN_RATE = 1e6

#: EWMA smoothing for boundary offered-rate / passthrough measurements
_EWMA_ALPHA = 0.3

#: auto-selection: a destination is hot when its expected arrival
#: rate — with each source's contribution capped at line rate, since
#: one NIC cannot deliver faster than that no matter how large the
#: flow — exceeds this multiple of the destination's drain rate.
#: Above 1.0 requires *concurrent fan-in*: the incast-victim
#: signature, as opposed to one elephant that merely keeps the link
#: busy and never builds a standing queue of competing senders
_HOT_OVERSUB = 1.5

#: drift budget between fluid admission and packet injection before the
#: boundary sweep flags a conservation error, bits
_DRIFT_SLACK_BITS = 16 * MTU * 8

#: DCQCN achieved-rate fraction on a saturated cold link.  Max-min is
#: the converged fair share; a DCQCN sender under Poisson arrivals
#: spends much of its life *re-converging* — every new flow starts at
#: line rate, spikes the bottleneck queue, and knocks incumbents into
#: a multiplicative cut followed by a slow timer-driven recovery.  The
#: fluid validator pins the resulting p99 residual at ~22 % on
#: fattree-a2a; this factor folds the same deficit into inbound pacing
#: when (and only when) the flow's binding bottleneck is a cold link,
#: so a packet-level hot rack — where the real control loop runs — is
#: never double-penalised.  The factor is deeper than the ~0.8
#: end-to-end deficit the fluid validator measures because it only
#: applies *while* the bottleneck is saturated, whereas the real
#: sender keeps under-shooting through its recovery timers after the
#: queue drains.  Calibrated against the packet engine
#: (validate-hybrid holds it to 10 %)
_DCQCN_COLD_UTILIZATION = 0.75

#: a link counts as a candidate max-min bottleneck above this
#: utilization of its (headroom-adjusted) capacity
_SATURATED = 0.98


def select_hot_racks(scenario) -> Tuple[int, ...]:
    """Racks hot by expected per-destination oversubscription.

    A rack is hot when one of its hosts carries the incast-victim
    signature: aggregate expected arrivals — each source's
    contribution capped at what its NIC can land within the scheduled
    window — of at least ``_HOT_OVERSUB`` times the destination's
    drain rate.  When nothing qualifies (a uniform load has no
    victims) the single busiest destination's rack is chosen, so a
    hybrid run always has a packet-level domain.
    """
    cfg = scenario.config
    rack_of = scenario.rack_of()
    duration = max(cfg.duration, 1)
    # the *built* NIC rate, not cfg.host_bandwidth: topology presets
    # (fat-tree among them) leave the config field 0 and resolve the
    # real rate at build time
    line_rate = scenario.topology.hosts[0].links[0].bandwidth
    src_cap_bits = line_rate * duration / SEC
    per_src: Dict[int, Dict[int, float]] = {}
    for spec in scenario.flows:
        srcs = per_src.setdefault(spec.dst, {})
        srcs[spec.src] = srcs.get(spec.src, 0.0) + spec.size * 8.0
    if not per_src:
        return ()
    arrival_bits: Dict[int, float] = {
        dst: sum(min(bits, src_cap_bits) for bits in srcs.values())
        for dst, srcs in per_src.items()
    }
    threshold_bits = _HOT_OVERSUB * src_cap_bits
    hot: Dict[int, None] = {}
    for dst, bits in arrival_bits.items():
        if bits >= threshold_bits:
            hot[rack_of[dst]] = None
    if not hot:
        busiest, busiest_bits = -1, -1.0
        for dst, bits in arrival_bits.items():
            if bits > busiest_bits:
                busiest, busiest_bits = dst, bits
        hot[rack_of[busiest]] = None
    return tuple(sorted(hot))


class _BoundaryChannel:
    """Per-uplink interceptor installed on ``Link.channel``.

    ``Link.deliver`` hands it the fully ordered event tuple; everything
    except hot-to-cold DATA is pushed onto the shared heap verbatim (the
    serial delivery path), so pass-through traffic keeps byte-identical
    event ordering.
    """

    __slots__ = (
        "hybrid",
        "link",
        "tor",
        "tor_port",
        "peer",
        "outward_r",
        "inward_r",
        "tick_bits",
        "ewma",
    )

    def __init__(self, hybrid, link, tor, tor_port, peer) -> None:
        self.hybrid = hybrid
        self.link = link
        self.tor = tor
        self.tor_port = tor_port
        self.peer = peer
        self.outward_r = hybrid._directed_resource(link, tor)
        self.inward_r = hybrid._directed_resource(link, peer)
        #: passthrough DATA bits since the last headroom tick, [out, in]
        self.tick_bits = [0.0, 0.0]
        #: EWMA passthrough rate per direction, bits/s, [out, in]
        self.ewma = [0.0, 0.0]

    def send(self, peer, ev) -> None:
        pkt = ev[5][0]
        hybrid = self.hybrid
        if peer is self.peer:
            # outward: hot ToR -> fabric
            if pkt.kind == _DATA:
                if pkt.dst not in hybrid._hot_hosts:
                    hybrid._absorb(self, pkt, ev[0])
                    return
                hybrid._note_passthrough(self, 0, pkt.size)
        elif pkt.kind == _DATA:
            # inward: fabric -> hot ToR (hot-to-hot cross traffic)
            hybrid._note_passthrough(self, 1, pkt.size)
        heappush(hybrid.sim._heap, ev)


class _InboundState:
    """Paced packet injection for one cold-src -> hot-dst fluid flow."""

    __slots__ = (
        "ff",
        "flow",
        "tor",
        "port",
        "lead",
        "rate",
        "extra",
        "next_time",
        "seq",
        "seq_high",
        "event",
        "watchdog",
        "pause_retry",
        "wire_bytes",
    )

    def __init__(self, ff: FluidFlow, tor, port: int, lead: int, pause_retry: int) -> None:
        self.ff = ff
        self.flow = ff.flow
        self.tor = tor
        self.port = port
        #: cold-segment latency: offset between fluid departure at the
        #: source and packet arrival at the hot ToR
        self.lead = lead
        self.rate = 0.0
        #: current cold-queueing extra delay folded into the pacing
        self.extra = 0
        self.next_time = ff.flow.start_time + lead
        self.seq = 0
        #: highest seq ever injected (unique-progress cursor; ``seq``
        #: rewinds on go-back-N redelivery, this does not)
        self.seq_high = 0
        self.event: Optional[Event] = None
        self.watchdog: Optional[Event] = None
        self.pause_retry = pause_retry
        #: cumulative on-wire bytes injected (retransmissions included)
        self.wire_bytes = 0

    def unique_bytes(self) -> int:
        """Distinct payload bytes injected at least once."""
        flow = self.flow
        if self.seq_high >= flow.n_packets:
            return flow.size
        return self.seq_high * flow.mtu


class _OutboundState:
    """Absorption + fluid tunnel for one hot-src -> cold-dst flow."""

    __slots__ = (
        "flow",
        "ghost",
        "clock",
        "residual",
        "ewma_rate",
        "last_arrival",
        "last_delivery",
        "tick_bytes",
        "absorbed_packets",
        "absorbed_bytes",
        "delivered_packets",
        "delivered_bytes",
    )

    def __init__(self, flow, ghost: FluidFlow, residual: int, line_rate: float) -> None:
        self.flow = flow
        self.ghost: Optional[FluidFlow] = ghost
        #: virtual-server clock: when the cold tail finished serving the
        #: last absorbed packet at the ghost's allocated rate
        self.clock = 0
        #: unloaded store-and-forward latency of the cold tail, ns
        self.residual = residual
        #: measured offered rate (EWMA over arrival gaps), bits/s
        self.ewma_rate = line_rate
        self.last_arrival = -1
        #: latest scheduled delivery, ns (keeps per-flow delivery
        #: monotone under a time-varying queueing estimate)
        self.last_delivery = 0
        #: absorbed bytes since the last headroom tick (idle detection)
        self.tick_bytes = 0
        self.absorbed_packets = 0
        self.absorbed_bytes = 0
        self.delivered_packets = 0
        self.delivered_bytes = 0


class HybridSimulation(FluidSimulation):
    """Packet-level hot racks over the inherited fluid background."""

    def __init__(self, scenario) -> None:
        super().__init__(scenario)
        cfg = scenario.config
        tors = [s for s in self.topology.switches if s.level == 0]
        racks = cfg.hot_racks or select_hot_racks(scenario)
        for rack in racks:
            if rack >= len(tors):
                raise ValueError(
                    f"hot rack {rack} out of range: topology has "
                    f"{len(tors)} racks"
                )
        self.hot_racks: Tuple[int, ...] = tuple(sorted(dict.fromkeys(racks)))
        #: hot host ids (deterministic set: insertion-ordered dict)
        self._hot_hosts: Dict[int, None] = {}
        self._hot_tors: List[Switch] = []
        for rack in self.hot_racks:
            tor = tors[rack]
            self._hot_tors.append(tor)
            for host_id in tor.connected_hosts:
                self._hot_hosts[host_id] = None
        #: boundary interceptors, one per hot-ToR uplink
        self._channels: List[_BoundaryChannel] = []
        for tor in self._hot_tors:
            for port, link in enumerate(tor.links):
                peer = link.peer_of(tor)
                if isinstance(peer, Switch):
                    chan = _BoundaryChannel(self, link, tor, port, peer)
                    link.channel = chan
                    self._channels.append(chan)
        #: per-resource allocated fluid load, maintained incrementally
        #: by ``_apply_rates``/``_unlink`` for the O(1) cold-queueing
        #: estimate the injector folds into its pacing
        self._res_load: Dict[int, float] = {}
        #: pace cold-bottlenecked inbound flows below their max-min
        #: allocation when the packet twin runs DCQCN (see
        #: ``_DCQCN_COLD_UTILIZATION``)
        self._dcqcn_cold = cfg.cc == "dcqcn"
        self._in_states: Dict[FluidFlow, _InboundState] = {}
        self._out_states: Dict[int, _OutboundState] = {}
        self._ghost_flows: Dict[FluidFlow, None] = {}
        # -- boundary counters (sanitizer + telemetry) ---------------------
        self.injected_packets = 0
        self.injected_bytes = 0
        self.absorbed_packets = 0
        self.absorbed_bytes = 0
        self.tunnel_delivered_packets = 0
        self.tunnel_delivered_bytes = 0
        self.synthesized_credit_frames = 0
        base_rtt = max(scenario.base_rtt, 1)
        self._redeliver_timeout = 4 * base_rtt + us(50)
        self._headroom_interval = max(base_rtt, us(10))
        self._headroom_task = PeriodicTask(
            self.sim, self._headroom_interval, self._headroom_tick
        )
        # the sanitizer's boundary sweep and the telemetry harvest find
        # the hybrid tier here (``scenario.fluid`` is set by the base)
        scenario.hybrid = self

    def stop(self) -> None:
        """Stop the headroom sampler (runner teardown)."""
        self._headroom_task.stop()

    # -- scheduling --------------------------------------------------------

    def schedule(self, specs=None) -> None:
        """Classify every flow into a tier and arm both engines."""
        topo = self.topology
        flows = [
            topo.make_flow(s.flow_id, s.src, s.dst, s.size, s.start_time)
            for s in (specs if specs is not None else self.scenario.flows)
        ]
        flows.sort(key=lambda f: (f.start_time, f.flow_id))
        hot = self._hot_hosts
        packet_flows = []
        now = self.sim.now
        for flow in flows:
            if flow.src in hot:
                # hot source: real packet flow end to end; absorbed at
                # the boundary only if the destination is cold
                packet_flows.append(flow)
                continue
            path, hops = self._path_of(flow)
            ff = FluidFlow(
                flow, path, self._flow_ceiling, self._tail_latency(flow.size, hops)
            )
            self._arrivals.append(ff)
            if flow.dst in hot:
                # cold source, hot destination: fluid over the full
                # path, materialized by a paced injector at the ToR
                flow.fluid_src = True
                self._in_states[ff] = self._make_inbound(ff, hops)
        times = sorted({max(ff.flow.start_time, now) for ff in self._arrivals})
        self.sim.schedule_many((t, self._process, ()) for t in times)
        topo.start_flows(packet_flows)
        self._headroom_task.start()

    def _make_inbound(self, ff: FluidFlow, hops) -> _InboundState:
        """Locate the boundary entry port and build the injector state."""
        link_resources = [r for r in ff.path if r < self._n_link_resources]
        if len(link_resources) < 2:  # pragma: no cover - defensive
            raise RuntimeError(
                f"inbound flow {ff.flow.flow_id} has no boundary hop"
            )
        entry_r = link_resources[-2]
        link = self.topology.links[entry_r // 2]
        if entry_r % 2 == 0:
            tor, port = link.node_b, link.port_b
        else:
            tor, port = link.node_a, link.port_a
        lead = 0
        for bandwidth, delay in hops[:-1]:
            lead += delay + serialization_delay(MTU, bandwidth)
        pause_retry = 2 * serialization_delay(MTU, link.bandwidth)
        return _InboundState(ff, tor, port, lead, max(pause_retry, 100))

    # -- rate installation hooks -------------------------------------------

    def _apply_rates(self, now: int, flows, rates) -> None:
        res_load = self._res_load
        for ff, rate in zip(flows, rates, strict=True):
            delta = rate - ff.rate
            if delta:
                for r in ff.path:
                    res_load[r] = res_load.get(r, 0.0) + delta
        super()._apply_rates(now, flows, rates)
        in_states = self._in_states
        for ff in flows:
            st = in_states.get(ff)
            if st is not None:
                self._repace(st, now)

    def _unlink(self, ff: FluidFlow) -> None:
        if ff.rate:
            res_load = self._res_load
            for r in ff.path:
                res_load[r] = res_load.get(r, 0.0) - ff.rate
        super()._unlink(ff)

    def _retire_flow(self, ff: FluidFlow, now: int) -> None:
        if ff in self._in_states or ff in self._ghost_flows:
            # boundary flows: FCT, delivery, and completion come from
            # real packet arrival at the destination host; the injector
            # drains its residual at the last allocation
            return
        super()._retire_flow(ff, now)

    # -- cold -> hot: paced injection --------------------------------------

    def _mm1_wait(self, resources, own: float) -> int:
        """Instantaneous M/M/1 queueing estimate over cold links, ns.

        For each link resource, the allocated fluid load minus the
        flow's ``own`` rate is the cross traffic its packets compete
        against; each contributes ``rho / (1 - rho)`` MTU service
        times.  An unloaded path returns 0, preserving exact
        closed-form FCTs.
        """
        load = self._res_load
        caps = self.capacities
        n_link = self._n_link_resources
        wait = 0.0
        for r in resources:
            if r >= n_link:
                continue
            cap = caps[r]
            cross = load.get(r, 0.0) - own
            if cross <= 0.0:
                continue
            rho = cross / cap
            if rho > _RHO_CAP:
                rho = _RHO_CAP
            wait += rho / (1.0 - rho) * serialization_delay(MTU, cap)
        return int(wait)

    def _cold_wait_ns(self, ff: FluidFlow) -> int:
        """Cold-segment queueing for an inbound flow.

        The last path hop (ToR -> host) queues for real at the hot ToR,
        so only the upstream link resources contribute.
        """
        return self._mm1_wait(ff.path[:-1], ff.rate)

    def _cold_bottlenecked(self, ff: FluidFlow) -> bool:
        """True when the flow's binding max-min bottleneck is cold.

        Max-min only holds a flow below its ceiling where some link on
        its path is saturated.  If the *final* hop — the hot ToR ->
        host link, simulated at packet level — is saturated, the real
        congestion-control loop governs the flow and the fluid
        allocation is just its feed; the DCQCN deficit must not be
        applied on top.  Only when the last hop has slack and an
        upstream (cold) link is saturated is the allocation itself the
        optimistic bound that DCQCN undershoots.
        """
        load = self._res_load
        caps = self.capacities
        n_link = self._n_link_resources
        links = [r for r in ff.path if r < n_link]
        if len(links) < 2:
            return False
        hot_r = links[-1]
        if load.get(hot_r, 0.0) >= _SATURATED * caps[hot_r]:
            return False
        for r in links[:-1]:
            if load.get(r, 0.0) >= _SATURATED * caps[r]:
                return True
        return False

    def _repace(self, st: _InboundState, now: int) -> None:
        """Re-arm the injector after a reallocation changed its rate."""
        flow = st.flow
        if st.seq >= flow.n_packets or flow.receiver_done:
            return
        ff = st.ff
        rate = ff.rate
        if rate > 0.0 and self._dcqcn_cold and self._cold_bottlenecked(ff):
            rate *= _DCQCN_COLD_UTILIZATION
        st.rate = rate
        if rate <= 0.0:
            # starved: hold injection until the allocator unblocks it
            if st.event is not None:
                st.event.cancel()
                st.event = None
            return
        extra = self._cold_wait_ns(ff)
        if extra > st.extra:
            st.next_time += extra - st.extra
        st.extra = extra
        # keep injection within one packet of the fluid admission: the
        # boundary conservation sweep holds the two tiers to this
        moved = flow.size * 8.0 - ff.remaining_bits
        ahead = st.unique_bytes() * 8.0 - moved
        if ahead > flow.mtu * 8.0:
            defer = now + int(ahead * SEC / rate)
            if defer > st.next_time:
                st.next_time = defer
        when = max(now, st.next_time)
        ev = st.event
        if ev is not None and not ev.cancelled and ev.time == when:
            return
        if ev is not None:
            ev.cancel()
        st.event = self.sim.schedule_at(when, self._inject_step, st)

    def _inject_step(self, st: _InboundState) -> None:
        st.event = None
        flow = st.flow
        if flow.receiver_done:
            return
        if st.seq >= flow.n_packets:
            self._arm_watchdog(st)
            return
        now = self.sim.now
        tor = st.tor
        if tor.buffer.ingress_paused[st.port]:
            # the fabric ingress is PFC-paused: a real upstream switch
            # would hold the packet too
            st.next_time = now + st.pause_retry
            st.event = self.sim.schedule_at(st.next_time, self._inject_step, st)
            return
        seq = st.seq
        size = flow.packet_size(seq)
        pkt = self.scenario.pool.acquire(
            _DATA, flow.src, flow.dst, size, flow.flow_id, seq
        )
        pkt.sent_time = now
        st.seq = seq + 1
        if st.seq > st.seq_high:
            st.seq_high = st.seq
        st.wire_bytes += size
        self.injected_packets += 1
        self.injected_bytes += size
        # the cold source host "sent" this packet: its counters keep the
        # sanitizer's data-conservation ledger balanced
        src_host = self.topology.hosts[flow.src]
        src_host.tx_data_packets += 1
        src_host.tx_data_bytes += size
        tor.receive(pkt, st.port)
        if st.seq >= flow.n_packets:
            self._arm_watchdog(st)
            return
        rate = st.rate
        if rate <= 0.0:
            return  # starved mid-flow; _repace re-arms on recovery
        st.next_time = max(now, st.next_time) + int(size * 8 * SEC / rate)
        st.event = self.sim.schedule_at(st.next_time, self._inject_step, st)

    def _arm_watchdog(self, st: _InboundState) -> None:
        if st.flow.receiver_done or st.watchdog is not None:
            return
        st.watchdog = self.sim.schedule_at(
            self.sim.now + self._redeliver_timeout, self._watchdog_fire, st
        )

    def _watchdog_fire(self, st: _InboundState) -> None:
        """Go-back-N recovery for injected packets dropped at the ToR.

        The receiver suppresses NACKs toward fluid sources, so the
        injector supervises delivery itself: if the flow has not
        completed a redelivery timeout after its last injection, rewind
        to the receiver's cursor and re-inject.
        """
        st.watchdog = None
        flow = st.flow
        if flow.receiver_done:
            return
        if st.seq >= flow.n_packets and flow.expected_seq < st.seq:
            flow.retransmitted_packets += st.seq - flow.expected_seq
            st.seq = flow.expected_seq
            st.next_time = self.sim.now
            if st.event is None:
                st.event = self.sim.schedule_at(
                    self.sim.now, self._inject_step, st
                )
        else:
            self._arm_watchdog(st)

    # -- hot -> cold: absorption + fluid tunnel ----------------------------

    def _note_passthrough(self, chan: _BoundaryChannel, direction: int, size: int) -> None:
        """Book hot-to-hot DATA crossing a boundary uplink.

        Feeds both halves of the shared-bottleneck contract: the
        headroom sampler (capacity seen by the allocator) and the
        packet-side cross-traffic column of the queueing correction.
        """
        bits = size * 8
        chan.tick_bits[direction] += bits
        r = chan.outward_r if direction == 0 else chan.inward_r
        self.note_packet_bits(r, float(bits))

    def _absorb(self, chan: _BoundaryChannel, pkt, arrival: int) -> None:
        """Swallow one hot->cold DATA packet into the fluid tunnel."""
        self.absorbed_packets += 1
        self.absorbed_bytes += pkt.size
        st = self._out_states.get(pkt.flow_id)
        if st is None:
            st = self._make_outbound(chan, pkt)
            self._out_states[pkt.flow_id] = st
        bits = pkt.size * 8
        if st.last_arrival >= 0:
            dt = arrival - st.last_arrival
            if dt > 0:
                inst = bits * SEC / dt
                st.ewma_rate += _EWMA_ALPHA * (inst - st.ewma_rate)
        st.last_arrival = arrival
        st.tick_bytes += pkt.size
        st.absorbed_packets += 1
        st.absorbed_bytes += pkt.size
        ghost = st.ghost
        rate = ghost.rate if ghost is not None else 0.0
        if rate < _MIN_RATE:
            rate = _MIN_RATE
        st.clock = max(st.clock, arrival) + int(bits * SEC / rate)
        # delivery = virtual-server finish + unloaded tail latency + the
        # queueing its packets see behind cold cross traffic; clamped
        # monotone so a dropping load estimate cannot reorder a flow
        when = st.clock + st.residual + self._mm1_wait(
            ghost.path if ghost is not None else (), rate
        )
        if when < st.last_delivery:
            when = st.last_delivery
        st.last_delivery = when
        self.sim.schedule_at(when, self._tunnel_deliver, st, pkt)
        # return the credit the absorbed fabric would have generated so
        # the hot ToR's Floodgate window keeps cycling toward cold dsts
        ext = self._floodgate_ext.get(chan.tor.node_id)
        if ext is not None:
            credit = self.scenario.pool.acquire_control(
                PacketKind.CREDIT, chan.peer.node_id, chan.tor.node_id
            )
            credit.credits = [(pkt.dst, 1)]
            credit.last_psn = pkt.psn
            back = chan.link.delay + serialization_delay(
                CTRL_PKT_SIZE, chan.link.bandwidth
            )
            self.sim.schedule_at(
                self.sim.now + back, chan.tor.receive, credit, chan.tor_port
            )
            self.synthesized_credit_frames += 1

    def _make_outbound(self, chan: _BoundaryChannel, pkt) -> _OutboundState:
        flow = self.topology.flow_table[pkt.flow_id]
        tail_res, tail_hops = self._tail_from(chan.peer, flow.dst, flow.flow_id)
        ghost = FluidFlow(flow, tail_res, self._flow_ceiling, 0)
        # a standing flow: it never completes through the fluid clock —
        # it is dropped when the real receiver reports the flow done
        ghost.remaining_bits = float(1 << 80)
        residual = 0
        for bandwidth, delay in tail_hops:
            residual += delay + serialization_delay(MTU, bandwidth)
        self._ghost_flows[ghost] = None
        self._injected.append(ghost)
        self._process()
        # seed the offered-rate EWMA from the sender's actual NIC rate:
        # config.host_bandwidth is 0.0 for topology presets that resolve
        # bandwidths at build time (e.g. fat-tree)
        line_rate = self.topology.hosts[flow.src].links[0].bandwidth
        return _OutboundState(flow, ghost, residual, line_rate)

    def _tunnel_deliver(self, st: _OutboundState, pkt) -> None:
        st.delivered_packets += 1
        st.delivered_bytes += pkt.size
        self.tunnel_delivered_packets += 1
        self.tunnel_delivered_bytes += pkt.size
        self.topology.hosts[pkt.dst].receive(pkt, 0)
        if st.flow.receiver_done and st.ghost is not None:
            ghost = st.ghost
            st.ghost = None
            self._drop_ghost(ghost)

    def _drop_ghost(self, ghost: FluidFlow) -> None:
        now = self.sim.now
        self._advance(now)
        self._active = [ff for ff in self._active if ff is not ghost]
        self._unlink(ghost)
        del self._ghost_flows[ghost]
        self._reallocate(now, list(ghost.path))
        self._schedule_next_completion()

    # -- shared-bottleneck headroom ----------------------------------------

    def _headroom_tick(self) -> None:
        """Fold measured packet-tier load into the fluid capacities."""
        now = self.sim.now
        interval = self._headroom_interval
        caps = self.capacities
        dirty: List[int] = []
        for chan in self._channels:
            base = chan.link.bandwidth
            for direction, r in ((0, chan.outward_r), (1, chan.inward_r)):
                rate = chan.tick_bits[direction] * SEC / interval
                chan.tick_bits[direction] = 0.0
                ewma = chan.ewma[direction]
                ewma += _EWMA_ALPHA * (rate - ewma)
                chan.ewma[direction] = ewma
                newcap = base - ewma
                floor = 0.01 * base
                if newcap < floor:
                    newcap = floor
                if abs(newcap - caps[r]) > 1e-3 * base:
                    caps[r] = newcap
                    dirty.append(r)
        for st in self._out_states.values():
            ghost = st.ghost
            if ghost is None:
                continue
            if st.tick_bytes == 0:
                # idle window: decay toward quiescence so a stalled
                # sender stops claiming fluid bandwidth
                st.ewma_rate *= 0.5
            st.tick_bytes = 0
            target = max(st.ewma_rate, _MIN_RATE)
            if abs(target - ghost.ceiling) > 0.02 * max(ghost.ceiling, _MIN_RATE):
                ghost.ceiling = target
                dirty.append(ghost.path[0])
        if dirty:
            self._advance(now)
            self._reallocate(now, dirty)
            self._schedule_next_completion()

    # -- invariants (consumed by repro.simcheck.sanitizer) -----------------

    def boundary_errors(self, final: bool = False) -> List[str]:
        """Per-direction byte-conservation checks at the boundary.

        Inbound (cold -> hot): delivered bytes at the host can never
        exceed the unique bytes injected, and injection can never run
        more than the drift budget ahead of the fluid admission.
        Outbound (hot -> cold): tunnel deliveries can never exceed
        absorbed bytes, and on ``final`` a completed flow must have had
        every delivered byte absorbed first.
        """
        errors: List[str] = []
        now = self.sim.now
        # fluid progress accrues lazily at fluid steps; project each
        # flow's position forward to ``now`` before comparing tiers
        lag = (now - self._last_advance) / SEC
        for ff, st in self._in_states.items():
            flow = st.flow
            unique = st.unique_bytes()
            if flow.delivered_bytes > unique:
                errors.append(
                    f"hybrid boundary (in) flow {flow.flow_id}: host "
                    f"delivered {flow.delivered_bytes} B > injected "
                    f"{unique} B"
                )
            if unique > flow.size:
                errors.append(
                    f"hybrid boundary (in) flow {flow.flow_id}: injected "
                    f"{unique} B > flow size {flow.size} B"
                )
            moved = flow.size * 8.0 - ff.remaining_bits
            if ff.rate > 0.0 and lag > 0.0:
                moved = min(moved + ff.rate * lag, flow.size * 8.0)
            if unique * 8.0 > moved + _DRIFT_SLACK_BITS:
                errors.append(
                    f"hybrid boundary (in) flow {flow.flow_id}: injected "
                    f"{unique * 8.0:.0f} bits ahead of fluid admission "
                    f"{moved:.0f} bits beyond the drift budget"
                )
        for flow_id, st in self._out_states.items():
            if st.delivered_bytes > st.absorbed_bytes:
                errors.append(
                    f"hybrid boundary (out) flow {flow_id}: tunnel "
                    f"delivered {st.delivered_bytes} B > absorbed "
                    f"{st.absorbed_bytes} B"
                )
            if (
                final
                and st.flow.receiver_done
                and st.flow.delivered_bytes > st.absorbed_bytes
            ):
                errors.append(
                    f"hybrid boundary (out) flow {flow_id}: completed "
                    f"with {st.flow.delivered_bytes} B delivered but "
                    f"only {st.absorbed_bytes} B absorbed"
                )
        if self.tunnel_delivered_bytes > self.absorbed_bytes:
            errors.append(
                f"hybrid boundary (out): aggregate tunnel delivery "
                f"{self.tunnel_delivered_bytes} B > absorbed "
                f"{self.absorbed_bytes} B"
            )
        return errors

    def telemetry_counters(self) -> Dict[str, int]:
        """End-of-run counter values for :mod:`repro.telemetry`."""
        return {
            "hybrid.hot_racks": len(self.hot_racks),
            "hybrid.injected_packets": self.injected_packets,
            "hybrid.injected_bytes": self.injected_bytes,
            "hybrid.absorbed_packets": self.absorbed_packets,
            "hybrid.absorbed_bytes": self.absorbed_bytes,
            "hybrid.tunnel_delivered_packets": self.tunnel_delivered_packets,
            "hybrid.synthesized_credit_frames": self.synthesized_credit_frames,
            "hybrid.reallocations": self.reallocations,
        }
