"""Cross-validation: hybrid tier vs the packet engine, same scenarios.

``validate_hybrid`` runs incast256 and fattree-a2a at both fidelities
and compares FCT percentiles over the **hot-rack** flow population —
flows whose source or destination host sits in a rack the hybrid run
simulated at packet level, matched by flow id across both runs.  That
is the population the hybrid tier promises packet-level fidelity for;
cold-to-cold flows ride the fluid model and carry its (separately
validated, looser) tolerance instead.

The scenario configs reuse :func:`repro.flowsim.validate.validation_configs`
verbatim — the same drop-free incast variant, the same fat-tree Poisson
load — with only the fidelity flipped, so the two validation CLIs
bracket one scenario set from both sides.

Thresholds: hot-rack p50/p99 divergence within ``tolerance`` (default
10 %, tighter than the fluid tier's 15/25 % because the hot domain runs
the real engine), and aggregate wall-clock speedup across every config
of at least ``min_speedup`` (default 5x).

``quick`` can be requested explicitly but is *outside the hybrid
tier's operating envelope*: a uniformly loaded 0.8-utilization fabric
has no incast victim, so auto-selection falls back to the busiest
destination and nearly half the traffic crosses the fluid boundary —
the regime where the tier's approximations stack instead of cancel
(measured ~35 % p50 there).  A workload without a hot spot belongs on
the fluid or packet tier; the hybrid tier's promise is confined to
the hot-rack population of incast-shaped workloads, which is exactly
what the default scenario set asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.flowsim.validate import validation_configs
from repro.stats.fct import summarize_fct

#: hot-rack p50/p99 divergence budget (fraction of the packet value)
DEFAULT_TOLERANCE = 0.10

#: asserted aggregate wall-clock speedup across all validated configs
DEFAULT_MIN_SPEEDUP = 5.0

#: the scenarios validate-hybrid runs and asserts by default
DEFAULT_SCENARIOS = ("incast256", "fattree-a2a")


@dataclass(frozen=True)
class HybridComparison:
    """Both-fidelity results for one config of one scenario."""

    scenario: str
    config_index: int
    hot_racks: Tuple[int, ...]
    matched_hot_flows: int
    packet_only_flows: int
    hybrid_only_flows: int
    packet_wall: float
    hybrid_wall: float
    p50_packet_ns: int
    p50_hybrid_ns: int
    p99_packet_ns: int
    p99_hybrid_ns: int

    @property
    def p50_divergence(self) -> float:
        if self.p50_packet_ns <= 0:
            return 0.0
        return abs(self.p50_hybrid_ns - self.p50_packet_ns) / self.p50_packet_ns

    @property
    def p99_divergence(self) -> float:
        if self.p99_packet_ns <= 0:
            return 0.0
        return abs(self.p99_hybrid_ns - self.p99_packet_ns) / self.p99_packet_ns

    @property
    def speedup(self) -> float:
        if self.hybrid_wall <= 0.0:
            return float("inf")
        return self.packet_wall / self.hybrid_wall

    def as_dict(self) -> Dict:
        return {
            "scenario": self.scenario,
            "config_index": self.config_index,
            "hot_racks": list(self.hot_racks),
            "matched_hot_flows": self.matched_hot_flows,
            "packet_only_flows": self.packet_only_flows,
            "hybrid_only_flows": self.hybrid_only_flows,
            "packet_wall_seconds": round(self.packet_wall, 4),
            "hybrid_wall_seconds": round(self.hybrid_wall, 4),
            "speedup": round(self.speedup, 2),
            "p50_packet_ns": self.p50_packet_ns,
            "p50_hybrid_ns": self.p50_hybrid_ns,
            "p50_divergence": round(self.p50_divergence, 4),
            "p99_packet_ns": self.p99_packet_ns,
            "p99_hybrid_ns": self.p99_hybrid_ns,
            "p99_divergence": round(self.p99_divergence, 4),
        }


def hybrid_validation_configs(
    scenario: str, paranoid: bool = False
) -> Tuple[ScenarioConfig, ...]:
    """The fluid validation variant of ``scenario``, fidelity-flipped."""
    return tuple(
        replace(cfg, fidelity="hybrid", paranoid_maxmin=paranoid)
        for cfg in validation_configs(scenario)
    )


def compare_config(
    scenario: str, index: int, config: ScenarioConfig
) -> HybridComparison:
    """Run ``config`` at both fidelities; compare hot-rack FCTs.

    The hot-rack set comes from the hybrid run itself (explicit
    ``hot_racks`` or its auto-selection), so the comparison always
    covers exactly the domain that ran at packet level.
    """
    hybrid = run_scenario(replace(config, fidelity="hybrid"))
    packet = run_scenario(
        replace(config, fidelity="packet", hot_racks=(), paranoid_maxmin=False)
    )
    hot_racks = hybrid.scenario.hybrid.hot_racks
    rack_of = hybrid.scenario.rack_of()
    hot_ids: Dict[int, None] = {}
    for spec in hybrid.scenario.flows:
        if rack_of[spec.src] in hot_racks or rack_of[spec.dst] in hot_racks:
            hot_ids[spec.flow_id] = None
    by_id_packet = {
        r.flow_id: r for r in packet.stats.fct_records if r.flow_id in hot_ids
    }
    by_id_hybrid = {
        r.flow_id: r for r in hybrid.stats.fct_records if r.flow_id in hot_ids
    }
    matched = sorted(set(by_id_packet) & set(by_id_hybrid))
    sp = summarize_fct([by_id_packet[f] for f in matched])
    sh = summarize_fct([by_id_hybrid[f] for f in matched])
    return HybridComparison(
        scenario=scenario,
        config_index=index,
        hot_racks=hot_racks,
        matched_hot_flows=len(matched),
        packet_only_flows=len(by_id_packet) - len(matched),
        hybrid_only_flows=len(by_id_hybrid) - len(matched),
        packet_wall=packet.wall_seconds,
        hybrid_wall=hybrid.wall_seconds,
        p50_packet_ns=sp.p50_ns,
        p50_hybrid_ns=sh.p50_ns,
        p99_packet_ns=sp.p99_ns,
        p99_hybrid_ns=sh.p99_ns,
    )


def validate_hybrid(
    scenarios: Optional[Sequence[str]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
    paranoid: bool = False,
) -> Tuple[bool, List[HybridComparison], List[str]]:
    """Validate the hybrid tier against the packet engine.

    Returns ``(ok, comparisons, messages)``.  ``ok`` is False when any
    config's hot-rack p50/p99 divergence exceeds ``tolerance`` (on
    configs with matched hot flows) or the aggregate wall-clock speedup
    across all configs falls below ``min_speedup``.  ``paranoid``
    cross-checks every incremental max-min reallocation in the hybrid
    runs against a full recompute (slow; its wall time is excluded from
    nothing — expect the speedup to shrink).
    """
    names = list(scenarios) if scenarios else list(DEFAULT_SCENARIOS)
    ok = True
    comparisons: List[HybridComparison] = []
    messages: List[str] = []
    packet_total = hybrid_total = 0.0
    for name in names:
        for index, cfg in enumerate(hybrid_validation_configs(name, paranoid)):
            cmp = compare_config(name, index, cfg)
            comparisons.append(cmp)
            packet_total += cmp.packet_wall
            hybrid_total += cmp.hybrid_wall
            if cmp.matched_hot_flows == 0:
                ok = False
                messages.append(
                    f"FAIL {name}[{index}]: no matched hot-rack flows "
                    f"(packet-only={cmp.packet_only_flows}, "
                    f"hybrid-only={cmp.hybrid_only_flows})"
                )
                continue
            line = (
                f"{name}[{index}]: hot={list(cmp.hot_racks)} "
                f"n={cmp.matched_hot_flows} "
                f"p50 {cmp.p50_packet_ns}ns vs {cmp.p50_hybrid_ns}ns "
                f"({cmp.p50_divergence:.1%}), "
                f"p99 {cmp.p99_packet_ns}ns vs {cmp.p99_hybrid_ns}ns "
                f"({cmp.p99_divergence:.1%}), speedup {cmp.speedup:.1f}x"
            )
            if (
                cmp.p50_divergence > tolerance
                or cmp.p99_divergence > tolerance
            ):
                ok = False
                messages.append(
                    f"FAIL {line} — divergence above {tolerance:.0%}"
                )
            else:
                messages.append(f"ok   {line}")
    if min_speedup > 0:
        speedup = (
            packet_total / hybrid_total if hybrid_total > 0 else float("inf")
        )
        if speedup < min_speedup:
            ok = False
            messages.append(
                f"FAIL aggregate: speedup {speedup:.1f}x below required "
                f"{min_speedup:.0f}x"
            )
        else:
            messages.append(
                f"ok   aggregate: speedup {speedup:.1f}x >= "
                f"{min_speedup:.0f}x"
            )
    return ok, comparisons, messages
