"""Central measurement hub.

One :class:`StatsHub` instance is shared by every device in an
experiment.  Devices push raw events (packet dequeued, PFC pause
started, flow finished); the hub keeps exactly the aggregates the
paper's figures need, so hot-path cost stays O(1) per event.

Flow classification follows §6.1: *incast* flows, *victims of incast*
(Poisson flows whose destination shares the incast destination's ToR),
and *victims of PFC* (all other Poisson flows).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Set, Tuple, Union

from repro.stats.fct import FctRecord
from repro.stats.rpc import RpcRecord


class FlowClass(str, Enum):
    """The paper's three traffic classes (§6.1, Fig. 9) plus OTHER.

    ``OTHER`` is the explicit home for flows nothing classified
    (pure-Poisson runs, hand-built test traffic).  It used to be
    spelled ``None``, which collided with the *other* ``None`` — the
    "all non-incast flows" aggregate query — and let figure code
    silently conflate the two.  Use :data:`NON_INCAST` for the
    aggregate; ``None`` is rejected everywhere a class is expected.
    """

    INCAST = "incast"
    VICTIM_INCAST = "victim_incast"
    VICTIM_PFC = "victim_pfc"
    OTHER = "other"


class FlowSelector(str, Enum):
    """Aggregate selectors for queries spanning several flow classes."""

    #: every flow that is not incast (victims + unclassified): the
    #: population the paper's Fig. 8 "Poisson flows" metric covers
    NON_INCAST = "non_incast"


#: convenience alias: ``stats.fct_of_class(NON_INCAST)``
NON_INCAST = FlowSelector.NON_INCAST

_NONE_IS_AMBIGUOUS = (
    "cls=None is ambiguous: pass NON_INCAST for the all-non-incast "
    "aggregate or FlowClass.OTHER for unclassified flows"
)


#: Bandwidth-overhead categories for Fig. 18.
BW_DATA = "data"
BW_CTRL = "ctrl"      # host ACK / NACK / CNP / pulls
BW_CREDIT = "credit"  # Floodgate credits + switchSYN


class StatsHub:
    """Aggregated run statistics.

    Attributes are plain dictionaries/lists so result formatting code
    can consume them directly; convenience accessors cover the common
    queries.
    """

    def __init__(self) -> None:
        # --- flow completion -------------------------------------------------
        self.fct_records: List[FctRecord] = []
        self.flow_class: Dict[int, FlowClass] = {}
        # --- request completion (repro.rpc closed-loop workloads) -----------
        self.rpc_records: List[RpcRecord] = []
        # --- buffers ----------------------------------------------------------
        #: per-switch max total occupancy: name -> bytes
        self.switch_max_buffer: Dict[str, int] = {}
        #: per (switch, port-role) max single-port occupancy
        self.port_max_buffer: Dict[Tuple[str, str], int] = {}
        #: network-wide max over per-switch totals
        self.max_switch_buffer: int = 0
        # --- queuing time (role -> [sum_ns, count]), split by incast ---------
        self.queuing_incast: Dict[str, List[int]] = {}
        self.queuing_normal: Dict[str, List[int]] = {}
        # --- PFC ------------------------------------------------------------------
        #: node-kind ("host"/"tor"/"core"/...) -> total paused ns
        self.pfc_paused_time: Dict[str, int] = {}
        self.pfc_pause_events: int = 0
        # --- drops ------------------------------------------------------------------
        self.packets_dropped: int = 0
        # --- fault injection (repro.faults) -----------------------------------
        #: injected drops by packet class ("data" / "ctrl")
        self.fault_drops: Dict[str, int] = {"data": 0, "ctrl": 0}
        #: packets delivered with a failed integrity check (injected)
        self.fault_corruptions: int = 0
        #: corrupt arrivals observed by receivers (NACKed, not delivered)
        self.corrupt_rx: int = 0
        #: control frames discarded because no extension claimed them
        self.unclaimed_control_frames: int = 0
        #: stall episodes: (sim time, flows completed at detection)
        self.stalls: List[Tuple[int, int]] = []
        # --- bandwidth breakdown (Fig. 18) ------------------------------------
        self.track_bandwidth: bool = False
        self.tx_bytes_by_category: Dict[str, int] = {
            BW_DATA: 0,
            BW_CTRL: 0,
            BW_CREDIT: 0,
        }
        # --- per-class receive bytes (realtime throughput, Fig. 2/12) -------
        #: unclassified flows land under FlowClass.OTHER, never None
        self.rx_bytes_by_class: Dict[FlowClass, int] = {}
        # incast flow ids, registered by the workload generator
        self._incast_flows: Set[int] = set()
        # --- telemetry hooks (repro.telemetry) --------------------------------
        #: streaming histograms fed behind is-None checks; installed by
        #: TelemetryRecorder, absent cost is one check per event
        self.fct_histogram = None
        self.queuing_histogram = None
        self.rpc_histogram = None
        # --- sharded execution (repro.sim.sharded) ---------------------------
        #: per-domain child hubs; runtime flow registrations fan out so
        #: every domain classifies packets the way a serial run would
        self._shard_children: List["StatsHub"] = []

    # -- flow classes ---------------------------------------------------------------

    def bind_shards(self, hubs: List["StatsHub"]) -> None:
        """Attach per-domain child hubs (the SIM008 merge path).

        A sharded run records into one hub per domain, but runtime flow
        classification (the RPC driver registering incast responses as
        they are issued) arrives at the parent hub.  Binding the
        children makes ``register_incast_flow`` / ``register_flow_class``
        propagate, so a switch in any domain classifies queueing samples
        exactly as the serial hub would.  Merge stays correct because
        propagation only writes identical values into every child.
        """
        self._shard_children = list(hubs)

    def register_incast_flow(self, flow_id: int) -> None:
        """Mark ``flow_id`` as belonging to incast traffic."""
        self._incast_flows.add(flow_id)
        self.flow_class[flow_id] = FlowClass.INCAST
        for child in self._shard_children:
            child.register_incast_flow(flow_id)

    def register_flow_class(self, flow_id: int, cls: FlowClass) -> None:
        self.flow_class[flow_id] = cls
        if cls is FlowClass.INCAST:
            self._incast_flows.add(flow_id)
        for child in self._shard_children:
            child.register_flow_class(flow_id, cls)

    def is_incast_flow(self, flow_id: int) -> bool:
        return flow_id in self._incast_flows

    # -- event sinks (hot path) --------------------------------------------------------

    def record_fct(self, record: FctRecord) -> None:
        self.fct_records.append(record)
        if self.fct_histogram is not None:
            self.fct_histogram.observe(record.fct)

    def record_rpc(self, record: RpcRecord) -> None:
        self.rpc_records.append(record)
        if self.rpc_histogram is not None:
            self.rpc_histogram.observe(record.latency)

    def record_queuing(self, role: str, flow_id: int, delay: int) -> None:
        if self.queuing_histogram is not None:
            self.queuing_histogram.observe(delay)
        table = (
            self.queuing_incast
            if flow_id in self._incast_flows
            else self.queuing_normal
        )
        cell = table.get(role)
        if cell is None:
            table[role] = [delay, 1]
        else:
            cell[0] += delay
            cell[1] += 1

    def record_switch_buffer(self, name: str, used: int) -> None:
        if used > self.switch_max_buffer.get(name, 0):
            self.switch_max_buffer[name] = used
            if used > self.max_switch_buffer:
                self.max_switch_buffer = used

    def record_port_buffer(self, switch: str, role: str, used: int) -> None:
        key = (switch, role)
        if used > self.port_max_buffer.get(key, 0):
            self.port_max_buffer[key] = used

    def record_pfc_pause(self, node_kind: str, duration: int) -> None:
        self.pfc_paused_time[node_kind] = (
            self.pfc_paused_time.get(node_kind, 0) + duration
        )

    def record_pfc_event(self) -> None:
        self.pfc_pause_events += 1

    def record_drop(self, count: int = 1) -> None:
        self.packets_dropped += count

    def record_fault_drop(self, data: bool) -> None:
        self.fault_drops["data" if data else "ctrl"] += 1

    def record_fault_corruption(self) -> None:
        self.fault_corruptions += 1

    def record_corrupt_rx(self) -> None:
        self.corrupt_rx += 1

    def record_unclaimed_control(self) -> None:
        self.unclaimed_control_frames += 1

    def record_stall(self, now: int, completed_flows: int) -> None:
        self.stalls.append((now, completed_flows))

    def record_tx(self, category: str, size: int) -> None:
        if self.track_bandwidth:
            self.tx_bytes_by_category[category] += size

    def record_rx(self, flow_id: int, size: int) -> None:
        cls = self.flow_class.get(flow_id, FlowClass.OTHER)
        self.rx_bytes_by_class[cls] = self.rx_bytes_by_class.get(cls, 0) + size

    def rx_bytes_of_class(self, cls: FlowClass) -> int:
        """Monotone rx-byte counter for one class (throughput source)."""
        if cls is None:
            raise ValueError(_NONE_IS_AMBIGUOUS)
        return self.rx_bytes_by_class.get(cls, 0)

    # -- queries --------------------------------------------------------------------

    def fct_of_class(
        self, cls: Union[FlowClass, FlowSelector]
    ) -> List[FctRecord]:
        """Finished flows of one class, or of a :class:`FlowSelector`.

        Pass :data:`NON_INCAST` for the "every flow that is not
        incast" aggregate (Fig. 8's Poisson-flow population) and
        ``FlowClass.OTHER`` for flows nothing ever classified.
        """
        if cls is None:
            raise ValueError(_NONE_IS_AMBIGUOUS)
        if cls is FlowSelector.NON_INCAST:
            return [
                r
                for r in self.fct_records
                if self.flow_class.get(r.flow_id) is not FlowClass.INCAST
            ]
        return [
            r
            for r in self.fct_records
            if self.flow_class.get(r.flow_id, FlowClass.OTHER) is cls
        ]

    def max_port_buffer_by_role(self, role: str) -> int:
        """Largest single-port occupancy seen on ports with ``role``."""
        return max(
            (v for (_, r), v in self.port_max_buffer.items() if r == role),
            default=0,
        )

    def avg_queuing_by_role(self, role: str, incast: bool = False) -> float:
        """Mean per-packet queueing delay (ns) at ports with ``role``."""
        table = self.queuing_incast if incast else self.queuing_normal
        cell = table.get(role)
        if not cell or cell[1] == 0:
            return 0.0
        return cell[0] / cell[1]

    def total_pfc_paused_us(self, node_kind: str) -> float:
        """Total PFC paused time for a node class, in microseconds."""
        return self.pfc_paused_time.get(node_kind, 0) / 1_000.0

    # -- canonicalization / merging (repro.sim.sharded) -----------------------------

    def canonicalize(self) -> None:
        """Rewrite every container into a content-determined layout.

        Append order of the record lists and insertion order of the
        dicts/sets reflect *execution* order, which differs between a
        serial run and a sharded run (domains interleave differently)
        even when the contents are identical.  Re-sorting everything by
        content makes the pickled hub — and therefore
        ``ResultSummary.canonical_bytes()`` — a function of *what* was
        measured, not the order it was measured in.  Idempotent;
        applied to every run's hub by the runner so serial and sharded
        summaries compare byte-for-byte.
        """
        self.fct_records.sort(key=lambda r: (r.finish_time, r.flow_id))
        self.rpc_records.sort(key=lambda r: (r.finish_time, r.request_id))
        self.stalls.sort()
        self.flow_class = dict(sorted(self.flow_class.items()))
        self.switch_max_buffer = dict(sorted(self.switch_max_buffer.items()))
        self.port_max_buffer = dict(sorted(self.port_max_buffer.items()))
        self.queuing_incast = dict(sorted(self.queuing_incast.items()))
        self.queuing_normal = dict(sorted(self.queuing_normal.items()))
        self.pfc_paused_time = dict(sorted(self.pfc_paused_time.items()))
        self.rx_bytes_by_class = dict(
            sorted(self.rx_bytes_by_class.items(), key=lambda kv: kv[0].value)
        )
        # rebuilding from sorted insertion gives the set a
        # content-determined hash-table layout, hence a stable pickle
        self._incast_flows = set(sorted(self._incast_flows))
        # shard children are runtime plumbing: dropping them keeps the
        # pickled hub identical to a serial run's (which never had any)
        self._shard_children = []
        # bin-dict insertion order reflects observation order (and, on
        # merged hubs, domain merge order); sort it away like the rest
        for hist in (
            self.fct_histogram,
            self.queuing_histogram,
            self.rpc_histogram,
        ):
            if hist is not None:
                hist.counts = dict(sorted(hist.counts.items()))

    def shard_clone(self) -> "StatsHub":
        """A fresh hub carrying only build-time registrations.

        The sharded executors give every domain its own hub so the hot
        recording path never touches state another domain also writes;
        the clone copies what was registered at *build* time — flow
        classes (a flow's packets can terminate in any domain) and
        config-derived flags — and none of the measurements.
        """
        clone = StatsHub()
        clone.flow_class = dict(self.flow_class)
        clone._incast_flows = set(self._incast_flows)
        clone.track_bandwidth = self.track_bandwidth
        return clone

    def merge_from(self, other: "StatsHub") -> None:
        """Fold another hub's measurements into this one.

        Used by the sharded executors to combine per-domain hubs: the
        domains observe disjoint devices, so per-switch/per-port maxima
        never collide, record lists concatenate, and counters add.
        Call :meth:`canonicalize` afterwards to restore a canonical
        layout.  Telemetry histograms merge when the other hub carries
        them (per-domain recorders install independent instances;
        power-of-two bins make the merge exact): absent here, the
        other's is adopted, present in both, bin counts add.
        """
        for attr in ("fct_histogram", "queuing_histogram", "rpc_histogram"):
            theirs = getattr(other, attr)
            if theirs is None:
                continue
            mine = getattr(self, attr)
            if mine is None:
                setattr(self, attr, theirs)
            else:
                mine.merge_from(theirs)
        self.fct_records.extend(other.fct_records)
        self.rpc_records.extend(other.rpc_records)
        self.flow_class.update(other.flow_class)
        for name, used in other.switch_max_buffer.items():
            if used > self.switch_max_buffer.get(name, 0):
                self.switch_max_buffer[name] = used
        for key, used in other.port_max_buffer.items():
            if used > self.port_max_buffer.get(key, 0):
                self.port_max_buffer[key] = used
        self.max_switch_buffer = max(
            self.max_switch_buffer, other.max_switch_buffer
        )
        for table, theirs in (
            (self.queuing_incast, other.queuing_incast),
            (self.queuing_normal, other.queuing_normal),
        ):
            for role, (total, count) in theirs.items():
                cell = table.get(role)
                if cell is None:
                    table[role] = [total, count]
                else:
                    cell[0] += total
                    cell[1] += count
        for kind, paused in other.pfc_paused_time.items():
            self.pfc_paused_time[kind] = (
                self.pfc_paused_time.get(kind, 0) + paused
            )
        self.pfc_pause_events += other.pfc_pause_events
        self.packets_dropped += other.packets_dropped
        for key, count in other.fault_drops.items():
            self.fault_drops[key] = self.fault_drops.get(key, 0) + count
        self.fault_corruptions += other.fault_corruptions
        self.corrupt_rx += other.corrupt_rx
        self.unclaimed_control_frames += other.unclaimed_control_frames
        self.stalls.extend(other.stalls)
        self.track_bandwidth = self.track_bandwidth or other.track_bandwidth
        for cat, size in other.tx_bytes_by_category.items():
            self.tx_bytes_by_category[cat] = (
                self.tx_bytes_by_category.get(cat, 0) + size
            )
        for cls, size in other.rx_bytes_by_class.items():
            self.rx_bytes_by_class[cls] = (
                self.rx_bytes_by_class.get(cls, 0) + size
            )
        self._incast_flows |= other._incast_flows

    @property
    def fault_drops_total(self) -> int:
        """All injected drops, both packet classes."""
        return self.fault_drops["data"] + self.fault_drops["ctrl"]

    @property
    def stall_events(self) -> int:
        """Stall episodes detected by the watchdog (and drain reports)."""
        return len(self.stalls)
