"""Measurement infrastructure: FCT, buffers, PFC, queueing, bandwidth."""

from repro.stats.collector import FlowClass, StatsHub
from repro.stats.fct import FctRecord, FctSummary, summarize_fct
from repro.stats.timeseries import ThroughputMonitor, BufferSampler

__all__ = [
    "FlowClass",
    "StatsHub",
    "FctRecord",
    "FctSummary",
    "summarize_fct",
    "ThroughputMonitor",
    "BufferSampler",
]
