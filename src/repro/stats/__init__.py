"""Measurement infrastructure: FCT, buffers, PFC, queueing, bandwidth."""

from repro.stats.collector import NON_INCAST, FlowClass, FlowSelector, StatsHub
from repro.stats.fct import FctRecord, FctSummary, summarize_fct
from repro.stats.rpc import RpcRecord, RpcSummary, requests_per_sec, summarize_rpc
from repro.stats.timeseries import ThroughputMonitor, BufferSampler

__all__ = [
    "FlowClass",
    "FlowSelector",
    "NON_INCAST",
    "StatsHub",
    "FctRecord",
    "FctSummary",
    "summarize_fct",
    "RpcRecord",
    "RpcSummary",
    "summarize_rpc",
    "requests_per_sec",
    "ThroughputMonitor",
    "BufferSampler",
]
