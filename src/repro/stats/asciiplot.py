"""Terminal plotting for time series and CDFs.

The environment this reproduction targets has no plotting stack, so
the figure modules return raw series and this module renders them as
ASCII charts — enough to eyeball the shapes the paper plots (realtime
throughput, FCT CDFs, buffer-vs-flows curves).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

#: glyphs assigned to successive series in a multi-line chart
GLYPHS = "*o+x#@%&"


def line_chart(
    series: Dict[str, Series],
    width: int = 72,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more (x, y) series on a shared-axis ASCII grid."""
    points = [(x, y) for s in series.values() for x, y in s]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, data) in zip(GLYPHS, series.items(), strict=False):
        for x, y in data:
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = glyph
    lines: List[str] = []
    lines.append(f"{y_max:10.2f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_min:10.2f} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{x_min:<12.3f}" + x_label.center(width - 24) + f"{x_max:>12.3f}"
    )
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(GLYPHS, series, strict=False)
    )
    lines.append(" " * 12 + legend)
    if y_label:
        lines.insert(0, f"[{y_label}]")
    return "\n".join(lines)


def cdf_chart(
    cdfs: Dict[str, Series],
    width: int = 72,
    height: int = 14,
    x_label: str = "FCT (ms)",
) -> str:
    """Render FCT CDFs (y is always the 0..1 fraction)."""
    clamped = {
        name: [(x, min(max(y, 0.0), 1.0)) for x, y in data]
        for name, data in cdfs.items()
    }
    return line_chart(
        clamped, width=width, height=height, x_label=x_label, y_label="CDF"
    )


def bar_chart(
    values: Dict[str, float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bars for categorical comparisons (e.g. max buffer)."""
    if not values:
        return "(no data)"
    peak = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        bar = "#" * max(1, int(value / peak * width)) if value > 0 else ""
        lines.append(f"{name:<{label_w}s} |{bar:<{width}s}| {value:.3f}{unit}")
    return "\n".join(lines)
