"""Time-series monitors: realtime throughput and buffer occupancy.

Used by the figures that plot quantities against time (Fig. 2 realtime
throughput, Fig. 12 loss robustness, Fig. 16 realtime buffer) rather
than end-of-run aggregates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTask
from repro.units import SEC


class ThroughputMonitor:
    """Samples byte counters periodically and reports Gbps per series.

    ``sources`` maps a series name to a zero-argument callable that
    returns a monotonically increasing byte count (e.g. the sum of
    ``rx_data_bytes`` over a set of hosts); the monitor differentiates
    it into a rate.
    """

    def __init__(
        self,
        sim: Simulator,
        sources: Dict[str, Callable[[], int]],
        interval: int,
    ) -> None:
        self.sim = sim
        self.sources = sources
        self.interval = interval
        self.samples: Dict[str, List[Tuple[int, float]]] = {
            name: [] for name in sources
        }
        self._last: Dict[str, int] = {name: 0 for name in sources}
        self._task = PeriodicTask(sim, interval, self._sample)

    def start(self) -> None:
        for name, fn in self.sources.items():
            self._last[name] = fn()
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    def _sample(self) -> None:
        for name, fn in self.sources.items():
            current = fn()
            delta = current - self._last[name]
            self._last[name] = current
            gbps_now = delta * 8 / self.interval  # bytes/ns*8 == Gbps
            self.samples[name].append((self.sim.now, gbps_now))

    def series(self, name: str) -> List[Tuple[float, float]]:
        """Samples for one series as ``(time_ms, gbps)`` pairs."""
        return [(t / 1_000_000.0, v) for t, v in self.samples[name]]

    def peak(self, name: str) -> float:
        """Largest sampled rate (Gbps) for one series."""
        return max((v for _, v in self.samples[name]), default=0.0)

    def mean_after(self, name: str, t_start: int = 0) -> float:
        """Mean rate (Gbps) over samples at or after ``t_start`` ns."""
        vals = [v for t, v in self.samples[name] if t >= t_start]
        return sum(vals) / len(vals) if vals else 0.0

    def first_nonzero_time(self, name: str) -> float:
        """Time (ms) of the first sample with nonzero rate, or -1."""
        for t, v in self.samples[name]:
            if v > 0:
                return t / 1_000_000.0
        return -1.0


class BufferSampler:
    """Samples arbitrary gauges (e.g. switch buffer bytes) over time."""

    def __init__(
        self,
        sim: Simulator,
        gauges: Dict[str, Callable[[], int]],
        interval: int,
    ) -> None:
        self.sim = sim
        self.gauges = gauges
        self.interval = interval
        self.samples: Dict[str, List[Tuple[int, int]]] = {
            name: [] for name in gauges
        }
        self._task = PeriodicTask(sim, interval, self._sample)

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    def _sample(self) -> None:
        for name, fn in self.gauges.items():
            self.samples[name].append((self.sim.now, fn()))

    def max_value(self, name: str) -> int:
        return max((v for _, v in self.samples[name]), default=0)

    def value_at(self, name: str, time: int) -> int:
        """Last sampled value at or before ``time`` (0 if none)."""
        best = 0
        for t, v in self.samples[name]:
            if t > time:
                break
            best = v
        return best


def utilization(bytes_moved: int, bandwidth: float, duration: int) -> float:
    """Fraction of ``bandwidth`` used moving ``bytes_moved`` in ``duration`` ns."""
    if duration <= 0:
        return 0.0
    return (bytes_moved * 8 * SEC) / (bandwidth * duration)
