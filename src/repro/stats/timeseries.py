"""Time-series monitors: realtime throughput and buffer occupancy.

Used by the figures that plot quantities against time (Fig. 2 realtime
throughput, Fig. 12 loss robustness, Fig. 16 realtime buffer) rather
than end-of-run aggregates.

Both monitors are thin Gbps/bytes presentation layers over the generic
periodic samplers in :mod:`repro.telemetry.samplers`; the sampling
mechanics (tick scheduling, actual-elapsed-window rate math, storage)
live there so ad-hoc figure monitors and registry-driven run telemetry
share one implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.engine import Simulator
from repro.telemetry.samplers import GaugeSampler, RateSampler
from repro.units import SEC


class ThroughputMonitor(RateSampler):
    """Samples byte counters periodically and reports Gbps per series.

    ``sources`` maps a series name to a zero-argument callable that
    returns a monotonically increasing byte count (e.g. the sum of
    ``rx_data_bytes`` over a set of hosts); the monitor differentiates
    it into a rate over the *actual* elapsed window — a monitor
    started at ``sim.now > 0``, mid-interval, or restarted after
    ``stop()`` never divides by time the counter didn't cover.
    """

    def __init__(
        self,
        sim: Simulator,
        sources: Dict[str, Callable[[], int]],
        interval: int,
    ) -> None:
        # bytes/ns * 8 == Gbps
        super().__init__(sim, sources, interval, scale=8.0, unit="gbps")

    def series(self, name: str) -> List[Tuple[float, float]]:
        """Samples for one series as ``(time_ms, gbps)`` pairs."""
        return [(t / 1_000_000.0, v) for t, v in self.samples[name]]

    def peak(self, name: str) -> float:
        """Largest sampled rate (Gbps) for one series."""
        return max((v for _, v in self.samples[name]), default=0.0)

    def mean_after(self, name: str, t_start: int = 0) -> float:
        """Mean rate (Gbps) over samples at or after ``t_start`` ns."""
        vals = [v for t, v in self.samples[name] if t >= t_start]
        return sum(vals) / len(vals) if vals else 0.0

    def first_nonzero_time(self, name: str) -> float:
        """Time (ms) of the first sample with nonzero rate, or -1."""
        for t, v in self.samples[name]:
            if v > 0:
                return t / 1_000_000.0
        return -1.0


class BufferSampler(GaugeSampler):
    """Samples arbitrary gauges (e.g. switch buffer bytes) over time."""

    def __init__(
        self,
        sim: Simulator,
        gauges: Dict[str, Callable[[], int]],
        interval: int,
    ) -> None:
        super().__init__(sim, gauges, interval, unit="bytes")
        #: alias kept for callers that name their sources "gauges"
        self.gauges = gauges


def utilization(bytes_moved: int, bandwidth: float, duration: int) -> float:
    """Fraction of ``bandwidth`` used moving ``bytes_moved`` in ``duration`` ns."""
    if duration <= 0:
        return 0.0
    return (bytes_moved * 8 * SEC) / (bandwidth * duration)
