"""Flow-completion-time records and summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class FctRecord:
    """One finished flow.

    ``fct`` is receiver-side completion: time from the flow's start
    until the last byte arrived at the destination host.
    """

    flow_id: int
    src: int
    dst: int
    size: int
    start_time: int
    finish_time: int

    @property
    def fct(self) -> int:
        return self.finish_time - self.start_time

    @property
    def fct_ms(self) -> float:
        return self.fct / 1_000_000.0

    @property
    def fct_us(self) -> float:
        return self.fct / 1_000.0


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile on an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class FctSummary:
    """Average / tail statistics over a set of flows."""

    count: int
    avg_ns: float
    p50_ns: float
    p99_ns: float
    max_ns: float

    @property
    def avg_ms(self) -> float:
        return self.avg_ns / 1_000_000.0

    @property
    def p99_ms(self) -> float:
        return self.p99_ns / 1_000_000.0

    @property
    def avg_us(self) -> float:
        return self.avg_ns / 1_000.0

    @property
    def p99_us(self) -> float:
        return self.p99_ns / 1_000.0


def summarize_fct(records: Iterable[FctRecord]) -> FctSummary:
    """Avg / median / p99 / max FCT over ``records``."""
    values: List[float] = sorted(r.fct for r in records)
    if not values:
        return FctSummary(0, 0.0, 0.0, 0.0, 0.0)
    return FctSummary(
        count=len(values),
        avg_ns=sum(values) / len(values),
        p50_ns=percentile(values, 50.0),
        p99_ns=percentile(values, 99.0),
        max_ns=values[-1],
    )


def fct_cdf(records: Iterable[FctRecord]) -> List[tuple[float, float]]:
    """Empirical CDF of FCTs as ``(fct_ms, fraction)`` points."""
    values = sorted(r.fct_ms for r in records)
    n = len(values)
    return [(v, (i + 1) / n) for i, v in enumerate(values)]
