"""Request-level latency records and SLO summaries.

A *request* is one closed-loop RPC: a client sprays ``fan_out`` shard
queries and the request completes when the **last** response's final
byte arrives back at the client (fan-in completion).  Request latency
is therefore a max over the shard round-trips — the user-facing number
the paper's incast scenarios degrade — and is summarized at the SLO
percentiles (p50/p99/p999) rather than the flow percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.stats.fct import percentile


@dataclass(frozen=True)
class RpcRecord:
    """One completed closed-loop request (all fan-in responses landed)."""

    request_id: int
    client: int
    fan_out: int
    start_time: int
    finish_time: int

    @property
    def latency(self) -> int:
        return self.finish_time - self.start_time

    @property
    def latency_us(self) -> float:
        return self.latency / 1_000.0

    @property
    def latency_ms(self) -> float:
        return self.latency / 1_000_000.0


@dataclass(frozen=True)
class RpcSummary:
    """SLO-percentile statistics over a set of completed requests."""

    count: int
    avg_ns: float
    p50_ns: float
    p99_ns: float
    p999_ns: float
    max_ns: float

    @property
    def avg_us(self) -> float:
        return self.avg_ns / 1_000.0

    @property
    def p50_us(self) -> float:
        return self.p50_ns / 1_000.0

    @property
    def p99_us(self) -> float:
        return self.p99_ns / 1_000.0

    @property
    def p999_us(self) -> float:
        return self.p999_ns / 1_000.0

    @property
    def max_us(self) -> float:
        return self.max_ns / 1_000.0


def summarize_rpc(records: Iterable[RpcRecord]) -> RpcSummary:
    """Avg / p50 / p99 / p999 / max request latency over ``records``."""
    values: List[float] = sorted(r.latency for r in records)
    if not values:
        return RpcSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return RpcSummary(
        count=len(values),
        avg_ns=sum(values) / len(values),
        p50_ns=percentile(values, 50.0),
        p99_ns=percentile(values, 99.0),
        p999_ns=percentile(values, 99.9),
        max_ns=values[-1],
    )


def requests_per_sec(count: int, sim_time_ns: int) -> float:
    """Achieved request throughput over a simulated window."""
    if sim_time_ns <= 0:
        return 0.0
    return count / (sim_time_ns / 1_000_000_000.0)
