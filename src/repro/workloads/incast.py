"""Incast traffic patterns.

Three shapes from the evaluation:

* :func:`periodic_incast` — the §6 default: bursts of ``fan_in``
  synchronized flows (30-40 MTU each) to one fixed destination,
  repeating at an interval that realizes a target load on the
  destination host (0.5 by default);
* :func:`all_to_one_incast` — every host sends one flow to a single
  destination simultaneously (Fig. 14 ToR scale-up);
* :func:`successive_incast` — repeated all-to-one rounds, each round
  targeting a *different* destination (Fig. 15).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.units import MTU
from repro.workloads.poisson import FlowSpec


@dataclass(frozen=True)
class IncastSpec:
    """One generated incast pattern: the flows plus its metadata."""

    flows: List[FlowSpec]
    destinations: List[int]
    next_flow_id: int


def _incast_size(rng: random.Random, mtu: int = MTU) -> int:
    """Paper §6: incast flow sizes uniform between 30 and 40 MTU."""
    return rng.randint(30, 40) * mtu


def periodic_incast(
    senders: Sequence[int],
    dst: int,
    host_bandwidth: float,
    duration: int,
    rng: random.Random,
    load: float = 0.5,
    first_flow_id: int = 0,
    start: int = 0,
    mtu: int = MTU,
) -> IncastSpec:
    """Synchronized bursts to ``dst`` at an average destination load.

    Each burst has every sender transmit one 30-40 MTU flow at the
    same instant; the burst interval is sized so the destination
    host's average offered load equals ``load``.
    """
    if dst in senders:
        raise ValueError("the incast destination cannot also be a sender")
    if not 0.0 < load <= 1.0:
        raise ValueError(f"incast load must be in (0, 1], got {load}")
    mean_burst_bytes = len(senders) * 35 * mtu
    interval = int(mean_burst_bytes * 8 / (load * host_bandwidth) * 1e9)
    flows: List[FlowSpec] = []
    fid = first_flow_id
    t = start
    end = start + duration
    while t < end:
        for src in senders:
            flows.append(FlowSpec(fid, src, dst, _incast_size(rng, mtu), t))
            fid += 1
        t += interval
    return IncastSpec(flows, [dst], fid)


def all_to_one_incast(
    senders: Sequence[int],
    dst: int,
    rng: random.Random,
    first_flow_id: int = 0,
    start: int = 0,
    mtu: int = MTU,
) -> IncastSpec:
    """One synchronized burst: every sender -> ``dst`` (Fig. 14)."""
    if dst in senders:
        raise ValueError("the incast destination cannot also be a sender")
    flows = []
    fid = first_flow_id
    for src in senders:
        flows.append(FlowSpec(fid, src, dst, _incast_size(rng, mtu), start))
        fid += 1
    return IncastSpec(flows, [dst], fid)


def successive_incast(
    hosts: Sequence[int],
    destinations: Sequence[int],
    interval: int,
    rng: random.Random,
    first_flow_id: int = 0,
    start: int = 0,
    mtu: int = MTU,
) -> IncastSpec:
    """Back-to-back all-to-one rounds to different destinations (Fig. 15).

    Round ``i`` starts at ``start + i * interval``; every host except
    the round's destination sends one 30-40 MTU flow to it.
    """
    flows: List[FlowSpec] = []
    fid = first_flow_id
    for i, dst in enumerate(destinations):
        t = start + i * interval
        for src in hosts:
            if src == dst:
                continue
            flows.append(FlowSpec(fid, src, dst, _incast_size(rng, mtu), t))
            fid += 1
    return IncastSpec(flows, list(destinations), fid)
