"""Poisson-arrival background traffic.

Flows arrive network-wide as a Poisson process whose rate realizes a
target *load* (fraction of aggregate host bandwidth), with sizes drawn
from a workload distribution and uniformly random (src, dst) pairs —
the paper's non-incast traffic model (§6, "a load of 0.8").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.workloads.distributions import FlowSizeDistribution


@dataclass(frozen=True)
class FlowSpec:
    """A flow to be injected: everything but its runtime state."""

    flow_id: int
    src: int
    dst: int
    size: int
    start_time: int


class PoissonGenerator:
    """Pre-generates a Poisson flow schedule.

    ``hosts`` are candidate sources; ``dst_hosts`` candidate
    destinations (defaults to ``hosts``).  Load is defined against the
    sources' aggregate NIC bandwidth, matching the conventional
    definition used by the paper and the HPCC artifact.
    """

    def __init__(
        self,
        distribution: FlowSizeDistribution,
        hosts: Sequence[int],
        host_bandwidth: float,
        load: float,
        rng: random.Random,
        dst_hosts: Optional[Sequence[int]] = None,
        first_flow_id: int = 0,
    ) -> None:
        if not 0.0 < load < 1.5:
            raise ValueError(f"load should be in (0, 1.5), got {load}")
        if len(hosts) < 2:
            raise ValueError("need at least two hosts for traffic")
        self.distribution = distribution
        self.hosts = list(hosts)
        self.dst_hosts = list(dst_hosts) if dst_hosts is not None else list(hosts)
        self.load = load
        self.rng = rng
        self.next_flow_id = first_flow_id
        # lambda (flows/ns): load * aggregate_bw / (8 * mean_size)
        mean_size = distribution.mean()
        aggregate_bps = host_bandwidth * len(self.hosts)
        self.arrival_rate = load * aggregate_bps / (8.0 * mean_size * 1e9)

    def generate(self, duration: int, start: int = 0) -> List[FlowSpec]:
        """All flows arriving in ``[start, start + duration)``."""
        flows: List[FlowSpec] = []
        t = float(start)
        end = start + duration
        rng = self.rng
        while True:
            t += rng.expovariate(self.arrival_rate)
            if t >= end:
                break
            src = rng.choice(self.hosts)
            dst = rng.choice(self.dst_hosts)
            while dst == src:
                dst = rng.choice(self.dst_hosts)
            flows.append(
                FlowSpec(
                    self.next_flow_id,
                    src,
                    dst,
                    self.distribution.sample(rng),
                    int(t),
                )
            )
            self.next_flow_id += 1
        return flows
