"""The *incastmix* scenario composer (§6.1).

Combines periodic incast with Poisson background traffic and labels
every flow with the class the paper's analysis uses:

* incast flows themselves;
* *victims of incast* — Poisson flows whose destination shares a ToR
  with the incast destination (they queue behind incast at the last
  aggregation point);
* *victims of PFC* — all other Poisson flows (hurt only when PFC
  pause storms spread congestion).

Poisson destinations exclude the incast destination host itself,
matching "non-incast Poisson arrival flows are transmitted among
hosts except for the destination host of incast" (§5.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.stats.collector import FlowClass, StatsHub
from repro.workloads.distributions import FlowSizeDistribution
from repro.workloads.incast import IncastSpec, periodic_incast
from repro.workloads.poisson import FlowSpec, PoissonGenerator


@dataclass
class IncastMix:
    """Generated incastmix traffic: flows plus class labels."""

    flows: List[FlowSpec] = field(default_factory=list)
    classes: Dict[int, FlowClass] = field(default_factory=dict)
    incast_dst: int = -1

    def register(self, stats: StatsHub) -> None:
        """Install the class labels into a stats hub."""
        for flow_id, cls in self.classes.items():
            stats.register_flow_class(flow_id, cls)

    @property
    def poisson_flow_ids(self) -> List[int]:
        return [
            fid
            for fid, cls in self.classes.items()
            if cls is not FlowClass.INCAST
        ]


def classify_flows(
    poisson_flows: Sequence[FlowSpec],
    incast: IncastSpec,
    incast_rack_hosts: Sequence[int],
) -> IncastMix:
    """Label flows per the paper's three classes."""
    mix = IncastMix()
    mix.incast_dst = incast.destinations[0]
    rack = set(incast_rack_hosts)
    for spec in incast.flows:
        mix.flows.append(spec)
        mix.classes[spec.flow_id] = FlowClass.INCAST
    for spec in poisson_flows:
        mix.flows.append(spec)
        if spec.dst in rack:
            mix.classes[spec.flow_id] = FlowClass.VICTIM_INCAST
        else:
            mix.classes[spec.flow_id] = FlowClass.VICTIM_PFC
    mix.flows.sort(key=lambda s: s.start_time)
    return mix


def build_incastmix(
    distribution: FlowSizeDistribution,
    hosts: Sequence[int],
    rack_of: Dict[int, int],
    incast_dst: int,
    incast_senders: Sequence[int],
    host_bandwidth: float,
    duration: int,
    rng: random.Random,
    poisson_load: float = 0.8,
    incast_load: float = 0.5,
) -> IncastMix:
    """The full §6.1 scenario.

    ``rack_of`` maps host id -> rack index (used both to exclude the
    incast destination from Poisson traffic and to find its rack mates
    for victim classification).
    """
    poisson_eligible = [h for h in hosts if h != incast_dst]
    poisson = PoissonGenerator(
        distribution,
        hosts=poisson_eligible,
        host_bandwidth=host_bandwidth,
        load=poisson_load,
        rng=rng,
        dst_hosts=poisson_eligible,
        first_flow_id=0,
    )
    poisson_flows = poisson.generate(duration)
    incast = periodic_incast(
        senders=incast_senders,
        dst=incast_dst,
        host_bandwidth=host_bandwidth,
        duration=duration,
        rng=rng,
        load=incast_load,
        first_flow_id=poisson.next_flow_id,
    )
    incast_rack = [
        h for h in hosts if rack_of[h] == rack_of[incast_dst] and h != incast_dst
    ]
    return classify_flows(poisson_flows, incast, incast_rack)
