"""Empirical flow-size distributions (paper Fig. 7).

The four workloads the paper draws Poisson traffic from:

* **Memcached** [Homa]      — almost entirely sub-KB key-value flows;
* **Web Server** [Facebook] — small request/response flows with a thin
  tail into the hundreds of KB;
* **Hadoop** [Facebook]     — small control flows mixed with shuffle
  transfers up to several MB;
* **Web Search** [DCTCP]    — the classic heavy-tailed search workload
  where a small fraction of multi-MB flows dominates bytes.

The paper references the distributions by citation rather than
printing the tables, so the CDFs here are the widely-used published
shapes from those sources (the same ones the HPCC/Homa artifacts
ship).  Sampling is inverse-transform with log-linear interpolation
between CDF knots, which reproduces both the small-flow mass and the
heavy tails.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Dict, List, Sequence, Tuple


class FlowSizeDistribution:
    """Inverse-transform sampler over an empirical CDF.

    ``points`` are ``(size_bytes, cumulative_probability)`` knots in
    increasing order, ending at probability 1.0.
    """

    def __init__(self, name: str, points: Sequence[Tuple[int, float]]) -> None:
        if not points:
            raise ValueError("distribution needs at least one CDF point")
        probs = [p for _, p in points]
        sizes = [s for s, _ in points]
        if any(b < a for a, b in zip(probs, probs[1:], strict=False)):
            raise ValueError(f"{name}: CDF must be non-decreasing")
        if any(b < a for a, b in zip(sizes, sizes[1:], strict=False)):
            raise ValueError(f"{name}: sizes must be non-decreasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError(f"{name}: CDF must end at 1.0, got {probs[-1]}")
        self.name = name
        self.points = [(int(s), float(p)) for s, p in points]
        self._probs = probs

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes (>= 1)."""
        u = rng.random()
        idx = bisect.bisect_left(self._probs, u)
        if idx == 0:
            return max(1, self.points[0][0])
        s0, p0 = self.points[idx - 1]
        s1, p1 = self.points[idx]
        if p1 <= p0 or s1 <= s0:
            return max(1, s1)
        # log-linear interpolation keeps heavy tails heavy
        frac = (u - p0) / (p1 - p0)
        log_size = math.log(max(s0, 1)) + frac * (
            math.log(s1) - math.log(max(s0, 1))
        )
        return max(1, int(round(math.exp(log_size))))

    def mean(self) -> float:
        """Analytic mean of the interpolated distribution (approx).

        Uses the midpoint of each CDF segment, which is accurate enough
        for computing Poisson arrival rates at a target load.
        """
        total = 0.0
        prev_s, prev_p = self.points[0]
        total += prev_s * prev_p
        for s, p in self.points[1:]:
            seg_mean = math.sqrt(max(prev_s, 1) * s)  # geometric midpoint
            total += seg_mean * (p - prev_p)
            prev_s, prev_p = s, p
        return total

    def cdf(self) -> List[Tuple[int, float]]:
        """The raw CDF knots (for plotting Fig. 7)."""
        return list(self.points)

    def cdf_at(self, size: int) -> float:
        """P(flow size <= size) under the interpolated CDF."""
        if size <= self.points[0][0]:
            return self.points[0][1] if size >= self.points[0][0] else 0.0
        for (s0, p0), (s1, p1) in zip(self.points, self.points[1:], strict=False):
            if size <= s1:
                if s1 == s0:
                    return p1
                frac = (math.log(size) - math.log(max(s0, 1))) / (
                    math.log(s1) - math.log(max(s0, 1))
                )
                return p0 + frac * (p1 - p0)
        return 1.0


#: Homa-style memcached: "most of the flows are smaller than 1 KB".
MEMCACHED = FlowSizeDistribution(
    "Memcached",
    [
        (64, 0.30),
        (128, 0.50),
        (256, 0.70),
        (512, 0.85),
        (1_000, 0.95),
        (2_000, 0.98),
        (10_000, 1.00),
    ],
)

#: Facebook front-end web server traffic [Roy et al., SIGCOMM '15].
WEB_SERVER = FlowSizeDistribution(
    "Web Server",
    [
        (100, 0.12),
        (300, 0.30),
        (1_000, 0.55),
        (2_000, 0.70),
        (10_000, 0.85),
        (50_000, 0.93),
        (200_000, 0.97),
        (1_000_000, 0.99),
        (5_000_000, 1.00),
    ],
)

#: Facebook Hadoop cluster traffic [Roy et al., SIGCOMM '15].
HADOOP = FlowSizeDistribution(
    "Hadoop",
    [
        (130, 0.20),
        (250, 0.40),
        (1_000, 0.63),
        (10_000, 0.80),
        (100_000, 0.90),
        (1_000_000, 0.96),
        (10_000_000, 1.00),
    ],
)

#: DCTCP web search [Alizadeh et al., SIGCOMM '10].
WEB_SEARCH = FlowSizeDistribution(
    "Web Search",
    [
        (6_000, 0.15),
        (13_000, 0.28),
        (19_000, 0.39),
        (33_000, 0.54),
        (53_000, 0.63),
        (133_000, 0.71),
        (667_000, 0.80),
        (1_333_000, 0.86),
        (3_333_000, 0.93),
        (6_667_000, 0.97),
        (20_000_000, 0.99),
        (30_000_000, 1.00),
    ],
)

#: All four evaluation workloads, keyed as the figures label them.
WORKLOADS: Dict[str, FlowSizeDistribution] = {
    "memcached": MEMCACHED,
    "webserver": WEB_SERVER,
    "hadoop": HADOOP,
    "websearch": WEB_SEARCH,
}
