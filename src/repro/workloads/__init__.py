"""Traffic generation: the paper's four workloads and traffic patterns.

Flow-size distributions (Fig. 7) for Memcached, Web Server, Hadoop,
and Web Search; Poisson arrival background traffic; periodic,
successive, and scale-up incast patterns; and the *incastmix* composer
used by most of the evaluation (§6.1).
"""

from repro.workloads.distributions import (
    FlowSizeDistribution,
    HADOOP,
    MEMCACHED,
    WEB_SEARCH,
    WEB_SERVER,
    WORKLOADS,
)
from repro.workloads.poisson import PoissonGenerator, FlowSpec
from repro.workloads.incast import (
    IncastSpec,
    periodic_incast,
    successive_incast,
    all_to_one_incast,
)
from repro.workloads.mix import IncastMix, build_incastmix, classify_flows

__all__ = [
    "FlowSizeDistribution",
    "MEMCACHED",
    "WEB_SERVER",
    "HADOOP",
    "WEB_SEARCH",
    "WORKLOADS",
    "PoissonGenerator",
    "FlowSpec",
    "IncastSpec",
    "periodic_incast",
    "successive_incast",
    "all_to_one_incast",
    "IncastMix",
    "build_incastmix",
    "classify_flows",
]
