"""Fault sweep: scheme robustness under injected failures.

Crosses the four schemes the paper compares (Floodgate, plain PFC,
BFC, NDP) with a grid of fault types x loss rates from
:mod:`repro.faults`:

* ``random-loss`` — Bernoulli loss at rate *r* on every
  switch-to-switch link, data and control frames independently (the
  Fig. 12 hazard, but hitting every scheme's control plane: credits,
  PFC PAUSE frames, NDP pulls);
* ``burst-loss`` — a total blackout window on one core link whose
  length scales with *r*;
* ``link-flap`` — one core link goes down mid-run (in-flight packets
  dropped) and comes back after a window scaling with *r*;
* ``corruption`` — packets delivered but failing their integrity
  check at rate *r* (NACKed by the receiver, never counted as
  delivered).

Per cell the sweep reports FCT inflation against the same scheme's
fault-free baseline, retransmissions, completion rate, injected-drop
counters, and recovery time (extra drain time past the baseline's
finish).  A :class:`~repro.faults.StallWatchdog` rides every faulted
run; ``undetected_stalls`` counts runs that failed to complete
*without* the watchdog noticing — the acceptance criterion is zero.

Runs fan out through :func:`repro.experiments.parallel.run_sweep`, so
the grid is pooled across cores and cache-served on re-runs (the
fault plan is part of the config fingerprint).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.experiments.parallel import (
    ResultSummary,
    SweepTask,
    run_scenario,
    run_sweep,
    summarize,
)
from repro.experiments.scenario import ScenarioConfig
from repro.faults import (
    BurstLoss,
    Corruption,
    FaultPlan,
    LinkDown,
    RandomLoss,
)
from repro.units import us

#: flow-control settings, keyed by the label the paper uses
SCHEMES: Dict[str, str] = {
    "floodgate": "floodgate",
    "pfc": "none",  # today's lossless fabric: PFC only
    "bfc": "bfc",
    "ndp": "ndp",
}

FAULT_KINDS: Tuple[str, ...] = (
    "random-loss",
    "burst-loss",
    "link-flap",
    "corruption",
)

#: the core link the localized faults hit
FAULTED_LINK = "tor0<->spine0"


def plan_for(kind: str, rate: float, duration: int) -> FaultPlan:
    """Build the fault plan for one grid cell.

    ``rate`` is the Bernoulli loss/corruption probability for the
    distributed faults and scales the outage window for the localized
    ones, so one axis sweeps the *severity* of every fault type.
    """
    window = max(us(20), int(duration * rate * 4))
    if kind == "random-loss":
        fault = RandomLoss(
            start=0, link="switch-switch", data_rate=rate, ctrl_rate=rate
        )
    elif kind == "burst-loss":
        fault = BurstLoss(
            at=duration // 4,
            link=FAULTED_LINK,
            duration=window,
            data_rate=1.0,
            ctrl_rate=1.0,
        )
    elif kind == "link-flap":
        fault = LinkDown(
            at=duration // 4, link=FAULTED_LINK, duration=window, mode="drop"
        )
    elif kind == "corruption":
        fault = Corruption(start=0, link="switch-switch", rate=rate)
    else:
        raise ValueError(f"unknown fault kind {kind!r}")
    # watchdog window: long enough that ordinary scheduling gaps are
    # never flagged, short enough to fire well before the hard stop
    return FaultPlan((fault,), stall_window=duration // 2)


def _run_one(config: ScenarioConfig) -> ResultSummary:
    """Worker entry point (module-level, so tasks pickle by reference)."""
    return summarize(run_scenario(config))


def _config(
    scheme: str, duration: int, plan: Optional[FaultPlan]
) -> ScenarioConfig:
    return ScenarioConfig(
        flow_control=SCHEMES[scheme],
        workload="websearch",
        duration=duration,
        seed=1,
        fault_plan=plan,
        max_runtime_factor=12.0,
    )


def run(
    quick: bool = True,
    loss_rates: Optional[Iterable[float]] = None,
    schemes: Optional[Iterable[str]] = None,
    cache=None,
) -> Dict:
    duration = 300_000 if quick else 1_500_000
    rates = tuple(loss_rates) if loss_rates else ((0.02,) if quick else (0.01, 0.05, 0.10))
    names = tuple(schemes) if schemes else tuple(SCHEMES)

    tasks = [
        SweepTask(
            key=(scheme, "baseline", 0.0),
            config=_config(scheme, duration, None),
            fn=_run_one,
        )
        for scheme in names
    ]
    for scheme in names:
        for kind in FAULT_KINDS:
            for rate in rates:
                tasks.append(
                    SweepTask(
                        key=(scheme, kind, rate),
                        config=_config(
                            scheme, duration, plan_for(kind, rate, duration)
                        ),
                        fn=_run_one,
                    )
                )
    results = run_sweep(tasks, cache=cache)

    out: Dict = {"summary": {}, "undetected_stalls": 0}
    for scheme in names:
        base = results[(scheme, "baseline", 0.0)]
        base_avg = base.poisson_fct.avg_ns or 1
        cells: Dict[str, Dict] = {
            "baseline": {
                "avg_fct_us": base.poisson_fct.avg_ns / 1_000.0,
                "completion_rate": base.completion_rate,
                "retransmitted": base.retransmitted_packets,
            }
        }
        for kind in FAULT_KINDS:
            for rate in rates:
                r = results[(scheme, kind, rate)]
                undetected = r.completion_rate < 1.0 and r.stall_events == 0
                cells[f"{kind}@{rate:g}"] = {
                    "fct_inflation": r.poisson_fct.avg_ns / base_avg,
                    "completion_rate": r.completion_rate,
                    "retransmitted": r.retransmitted_packets,
                    "injected_drops": r.fault_drops_total,
                    "corruptions": r.stats.fault_corruptions,
                    "stall_events": r.stall_events,
                    "recovery_us": max(0, r.sim_time - base.sim_time) / 1_000.0,
                }
                if undetected:
                    out["undetected_stalls"] += 1
        out["summary"][scheme] = cells
    return out
