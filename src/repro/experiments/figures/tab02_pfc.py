"""Table 2: total PFC pause time by node level under DCQCN.

The paper's table shows PFC triggered at the core under every
workload, and additionally at ToRs and hosts (a pause-frame storm)
under Web Server.  With Floodgate, PFC never triggers.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable

from repro.experiments.figures.common import incastmix_base
from repro.experiments.runner import run_scenario


def run(
    quick: bool = True,
    workloads: Iterable[str] = ("memcached", "webserver"),
) -> Dict:
    """Returns {workload: {level: paused_us}} for DCQCN and +Floodgate."""
    out: Dict = {"dcqcn": {}, "dcqcn+floodgate": {}}
    for workload in workloads:
        base = incastmix_base(quick, workload)
        for label, fc in (("dcqcn", "none"), ("dcqcn+floodgate", "floodgate")):
            r = run_scenario(replace(base, flow_control=fc))
            out[label][workload] = {
                "host_us": r.pfc_paused_us("host"),
                "tor_us": r.pfc_paused_us("tor"),
                "core_us": r.pfc_paused_us("core"),
                "events": r.stats.pfc_pause_events,
            }
    return out
