"""Fig. 24 (Appendix B): comparison with "PFC w/ tag".

PFC w/ tag reacts to last-hop queue depth; Floodgate proactively
tracks in-flight packets.  Paper: comparable on a non-blocking fabric
(though PFC w/ tag burns an order of magnitude more VOQs), and
Floodgate clearly wins once the fabric is oversubscribed — the
reactive scheme's control loop starts at the last hop, too late when
the first-hop ToR is the congestion point.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.units import gbps


def run(quick: bool = True, workload: str = "webserver") -> Dict:
    duration = 300_000 if quick else 1_000_000
    variants = (
        ("dcqcn", "none"),
        ("dcqcn+floodgate", "floodgate"),
        ("dcqcn+pfc w/ tag", "pfc-tag"),
    )
    topologies = {
        # non-blocking: 4 hosts x 10G  vs 1 x 40G uplink per ToR
        "non-blocking": dict(n_spines=1, fabric_bandwidth=gbps(40)),
        # 4:1 oversubscription: uplink capacity quartered
        "oversubscribed-4:1": dict(n_spines=1, fabric_bandwidth=gbps(10)),
    }
    out: Dict = {}
    for topo_label, topo_kw in topologies.items():
        out[topo_label] = {}
        for label, fc in variants:
            cfg = ScenarioConfig(
                flow_control=fc,
                workload=workload,
                duration=duration,
                n_tors=3,
                hosts_per_tor=4,
                poisson_load=0.4 if topo_label.startswith("oversub") else 0.8,
                **topo_kw,
            )
            r = run_scenario(cfg)
            s = r.poisson_fct
            voqs = max(
                (
                    ext.pool.max_in_use
                    for ext in r.scenario.extensions
                    if hasattr(ext, "pool")
                ),
                default=0,
            )
            out[topo_label][label] = {
                "avg_us": s.avg_us,
                "p99_us": s.p99_us,
                "max_voqs": voqs,
            }
    return out
