"""Fig. 13: the 3-tier fat-tree robustness experiment (§6.2).

Paper: on an 8-ary fat tree, Floodgate still reduces FCT and buffer
occupancy, though less dramatically than on the 2-tier fabric
(fewer hosts per rack means fewer victims of incast).  Per-hop
buffers show the same reallocation pattern across the five hop roles.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.figures.common import FAT_TREE_ROLES, run_variants
from repro.experiments.scenario import ScenarioConfig


def run(
    quick: bool = True,
    workloads: Iterable[str] = ("memcached",),
) -> Dict:
    duration = 300_000 if quick else 1_000_000
    k = 4 if quick else 8
    out: Dict = {"fct": {}, "buffers_mb": {}}
    for workload in workloads:
        base = ScenarioConfig(
            topology="fat-tree",
            fat_tree_k=k,
            hosts_per_edge=2 if quick else 4,
            workload=workload,
            duration=duration,
            # keep the burst-to-buffer pressure of the 2-tier runs
            # (fewer hosts per edge means fewer natural senders)
            incast_load=0.8,
            incast_fan_in=16 if quick else 0,
            buffer_bytes=300_000 if quick else 0,
        )
        results = run_variants(base)
        out["fct"][workload] = {
            label: {
                "avg_us": r.poisson_fct.avg_us,
                "p99_us": r.poisson_fct.p99_us,
            }
            for label, r in results.items()
        }
        out["buffers_mb"][workload] = {
            label: {
                role: r.stats.max_port_buffer_by_role(role) / 1e6
                for role in FAT_TREE_ROLES
            }
            for label, r in results.items()
        }
    return out
