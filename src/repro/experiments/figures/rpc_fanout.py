"""Closed-loop rpc: p999 request latency vs fan-out.

The request-level view of the incast problem: each client's request
fans out to N shard servers, the N responses collide at the client's
last hop, and the request completes only when the *slowest* response
lands — so request tail latency amplifies whatever the fabric does to
the straggler.  Under plain DCQCN the incast overruns the shared
buffer (drops + RTO-scale stalls); PFC keeps it lossless but spreads
HOL pressure; Floodgate meters the fan-in at the source so the p999
stays flat as the fan-out grows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable

from repro.experiments.parallel import SweepTask, run_sweep
from repro.experiments.registry import get
from repro.units import MTU, ms

#: flow-control variants compared (cc stays dcqcn throughout, so the
#: "dcqcn" column is the congestion-control-only baseline)
SCHEMES = {
    "dcqcn": "none",
    "pfc-tag": "pfc-tag",
    "floodgate": "floodgate",
}


def run(
    quick: bool = True,
    fan_outs: Iterable[int] = (4, 8, 12, 15),
) -> Dict:
    """Sweep fan-out x scheme; report p999 request latency + req/s.

    The responses are sized up from the bench scenario (60-80 MTU vs
    30-40) so a full fan-in burst overruns the 500 KB shared buffer —
    the regime where the schemes actually separate.  The 3 ms window
    completes 30-90 requests per cell at quick scale.
    """
    base = get("rpc-fanout").configs[0]
    base = replace(
        base,
        duration=ms(12) if not quick else ms(3),
        rpc=replace(
            base.rpc,
            response_size_min=60 * MTU,
            response_size_max=80 * MTU,
        ),
    )
    tasks = [
        SweepTask(
            key=(label, fan_out),
            config=replace(
                base,
                flow_control=fc,
                rpc=replace(base.rpc, fan_out=fan_out),
            ),
        )
        for label, fc in SCHEMES.items()
        for fan_out in fan_outs
    ]
    results = run_sweep(tasks)

    out: Dict = {"fan_outs": list(fan_outs)}
    for label in SCHEMES:
        out[label] = {
            fan_out: {
                "p999_us": round(results[(label, fan_out)].rpc_summary.p999_us, 1),
                "p99_us": round(results[(label, fan_out)].rpc_summary.p99_us, 1),
                "requests": results[(label, fan_out)].completed_requests,
                "requests_per_sec": round(
                    results[(label, fan_out)].requests_per_sec
                ),
            }
            for fan_out in fan_outs
        }
    top = max(fan_outs)
    fg = out["floodgate"][top]["p999_us"]
    out["floodgate_wins_p999_at_max_fanout"] = all(
        fg < out[label][top]["p999_us"]
        for label in SCHEMES
        if label != "floodgate"
    )
    return out
