"""Fig. 20 / §8: comparison against BFC under incastmix.

Variants per the paper: HPCC, HPCC+Floodgate, BFC-32Q, BFC-128Q, and
BFC-ideal (infinite per-flow queues, no hash collisions).  Expected
shape: BFC with limited queues suffers HOL blocking when incast and
non-incast flows share a queue, so Floodgate beats BFC-32/128Q;
BFC-ideal is competitive (it wins on Memcached, where HPCC's INT
overhead costs Floodgate; Floodgate wins on Web Server).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.figures.common import incastmix_base
from repro.experiments.runner import run_scenario
from repro.stats.collector import NON_INCAST
from repro.stats.fct import fct_cdf


def run(
    quick: bool = True,
    workloads: Iterable[str] = ("memcached",),
) -> Dict:
    # Queue counts scale with the incast degree: the paper's 32/128
    # queues face 144-flow incasts (ratio ~0.2/0.9); the quick scale's
    # 16-flow incasts need 4/16 queues to hit the same
    # collision-probability regimes.
    low_q, high_q = (4, 16) if quick else (32, 128)
    variants = (
        ("hpcc", "hpcc", "none", 32),
        ("hpcc+floodgate", "hpcc", "floodgate", 32),
        ("bfc-lowq", "static", "bfc", low_q),
        ("bfc-highq", "static", "bfc", high_q),
        ("bfc-ideal", "static", "bfc", 0),
    )
    out: Dict = {}
    for workload in workloads:
        out[workload] = {}
        for label, cc, fc, queues in variants:
            cfg = incastmix_base(
                quick, workload, cc=cc, flow_control=fc, bfc_queues=queues
            )
            r = run_scenario(cfg)
            records = r.stats.fct_of_class(NON_INCAST)
            s = r.poisson_fct
            out[workload][label] = {
                "avg_us": s.avg_us,
                "p99_us": s.p99_us,
                "cdf": fct_cdf(records),
            }
    return out
