"""Fig. 14: buffer occupancy as the number of ToRs scales up (§6.2).

Pure incast: every host (except the destination) sends one 30-40 MTU
flow to one destination host, all at once.  For DCQCN the destination
ToR's buffer grows proportionally to the number of flows; Floodgate
stays stable (the delayCredit mechanism keeps even the core's share
bounded as more ToRs contribute).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.parallel import SweepTask, run_sweep
from repro.experiments.runner import ScenarioResult, run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.workloads.incast import all_to_one_incast


def _run_scaleup(cfg: ScenarioConfig) -> ScenarioResult:
    """Worker task: build the all-to-one burst around ``cfg`` and run."""
    sc = Scenario(cfg)
    rng = sc.rng.stream("scaleup")
    hosts = [h.node_id for h in sc.topology.hosts]
    spec = all_to_one_incast(hosts[4:], dst=0, rng=rng)
    for f in spec.flows:
        sc.stats.register_incast_flow(f.flow_id)
    sc.flows = spec.flows
    return run_scenario(cfg, scenario=sc)


def run(
    quick: bool = True,
    tor_counts: Iterable[int] = (),
) -> Dict:
    tor_counts = tuple(tor_counts) or ((3, 6) if quick else (4, 8, 12, 16))
    variants = (("dcqcn", "none"), ("dcqcn+floodgate", "floodgate"))
    tasks = [
        SweepTask(
            key=(label, n_tors),
            config=ScenarioConfig(
                pattern="none",
                flow_control=fc,
                n_tors=n_tors,
                hosts_per_tor=4,
                duration=200_000,
                max_runtime_factor=40.0,
            ),
            fn=_run_scaleup,
        )
        for label, fc in variants
        for n_tors in tor_counts
    ]
    results = run_sweep(tasks)
    out: Dict = {}
    for (label, n_tors), r in results.items():
        out.setdefault(label, {})[n_tors] = {
            "tor-up_mb": r.max_port_buffer_mb("tor-up"),
            "core_mb": r.max_port_buffer_mb("core"),
            "tor-down_mb": r.max_port_buffer_mb("tor-down"),
            "n_flows": r.total_flows,
            "pfc_events": r.stats.pfc_pause_events,
            "completion": r.completion_rate,
        }
    return out
