"""Fig. 8: avg/p99 FCT of Poisson flows under incastmix.

The paper's headline grid: {DCQCN, TIMELY, HPCC} x {alone, +ideal,
+Floodgate} x four workloads.  Floodgate reduces average FCTs by
10.1-98.1 % and p99 by 1.1-207x; the effect is strongest on
Memcached/Web Server (small flows hurt most by queueing) and milder on
Hadoop/Web Search (large flows dominate the mean).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable

from repro.experiments.figures.common import VARIANTS, incastmix_base
from repro.experiments.parallel import SweepTask, run_sweep


def run(
    quick: bool = True,
    ccs: Iterable[str] = ("dcqcn",),
    workloads: Iterable[str] = ("memcached", "webserver"),
) -> Dict:
    """Returns {cc: {workload: {variant: {avg_us, p99_us}}}}.

    The whole {cc} x {workload} x {variant} grid fans out through the
    parallel sweep runner in one shot.
    """
    tasks = []
    for cc in ccs:
        for workload in workloads:
            base = incastmix_base(quick, workload, cc=cc)
            for label, fc in VARIANTS.items():
                tasks.append(
                    SweepTask(
                        key=(cc, workload, label),
                        config=replace(base, flow_control=fc),
                    )
                )
    results = run_sweep(tasks)
    out: Dict = {}
    for (cc, workload, label), r in results.items():
        out.setdefault(cc, {}).setdefault(workload, {})[label] = {
            "avg_us": r.poisson_fct.avg_us,
            "p99_us": r.poisson_fct.p99_us,
            "pfc_events": r.stats.pfc_pause_events,
        }
    return out
