"""Fig. 8: avg/p99 FCT of Poisson flows under incastmix.

The paper's headline grid: {DCQCN, TIMELY, HPCC} x {alone, +ideal,
+Floodgate} x four workloads.  Floodgate reduces average FCTs by
10.1-98.1 % and p99 by 1.1-207x; the effect is strongest on
Memcached/Web Server (small flows hurt most by queueing) and milder on
Hadoop/Web Search (large flows dominate the mean).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.figures.common import incastmix_base, run_variants


def run(
    quick: bool = True,
    ccs: Iterable[str] = ("dcqcn",),
    workloads: Iterable[str] = ("memcached", "webserver"),
) -> Dict:
    """Returns {cc: {workload: {variant: {avg_us, p99_us}}}}."""
    out: Dict = {}
    for cc in ccs:
        out[cc] = {}
        for workload in workloads:
            base = incastmix_base(quick, workload, cc=cc)
            results = run_variants(base)
            out[cc][workload] = {
                label: {
                    "avg_us": r.poisson_fct.avg_us,
                    "p99_us": r.poisson_fct.p99_us,
                    "pfc_events": r.stats.pfc_pause_events,
                }
                for label, r in results.items()
            }
    return out
