"""Fig. 17: parameter selection — credit timer T and delayCredit (§6.5).

(a) larger T -> less credit bandwidth;
(b) larger T -> larger initial windows -> less ToR-Up buffering but
    more at the aggregation points;
(c) larger T -> longer FCT (incast controlled less tightly);
(d) the delayCredit threshold has a wide robust range.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.parallel import SweepTask, run_sweep
from repro.experiments.scenario import ScenarioConfig
from repro.floodgate.config import FloodgateConfig
from repro.units import us


def _credit_timer_config(quick: bool, t: float) -> ScenarioConfig:
    return ScenarioConfig(
        workload="webserver",
        flow_control="floodgate",
        floodgate=FloodgateConfig(credit_timer=us(t)),
        duration=300_000 if quick else 1_000_000,
        n_tors=3 if quick else 0,
        hosts_per_tor=4 if quick else 0,
        track_bandwidth=True,
    )


def _delay_credit_config(quick: bool, m: float) -> ScenarioConfig:
    return ScenarioConfig(
        workload="webserver",
        flow_control="floodgate",
        delay_credit_bdp=m,
        duration=300_000 if quick else 1_000_000,
        n_tors=3 if quick else 0,
        hosts_per_tor=4 if quick else 0,
    )


def run_credit_timer(
    quick: bool = True,
    timers_us: Iterable[float] = (),
) -> Dict:
    timers_us = tuple(timers_us) or ((1, 2, 8) if quick else (1, 2, 5, 10, 20))
    results = run_sweep(
        SweepTask(key=t, config=_credit_timer_config(quick, t))
        for t in timers_us
    )
    out: Dict = {}
    for t, r in results.items():
        total_tx = sum(r.stats.tx_bytes_by_category.values()) or 1
        s = r.poisson_fct
        out[t] = {
            "credit_share_pct": 100.0
            * r.stats.tx_bytes_by_category["credit"]
            / total_tx,
            "tor-up_mb": r.max_port_buffer_mb("tor-up"),
            "core_mb": r.max_port_buffer_mb("core"),
            "tor-down_mb": r.max_port_buffer_mb("tor-down"),
            "avg_fct_us": s.avg_us,
            "p99_fct_us": s.p99_us,
        }
    return out


def run_delay_credit(
    quick: bool = True,
    multiples: Iterable[float] = (),
) -> Dict:
    multiples = tuple(multiples) or ((1, 2, 10) if quick else (1, 2, 5, 10, 25, 50))
    results = run_sweep(
        SweepTask(key=m, config=_delay_credit_config(quick, m))
        for m in multiples
    )
    return {
        m: {
            "tor-up_mb": r.max_port_buffer_mb("tor-up"),
            "core_mb": r.max_port_buffer_mb("core"),
            "tor-down_mb": r.max_port_buffer_mb("tor-down"),
        }
        for m, r in results.items()
    }


def run(quick: bool = True) -> Dict:
    return {
        "credit_timer": run_credit_timer(quick),
        "delay_credit": run_delay_credit(quick),
    }
