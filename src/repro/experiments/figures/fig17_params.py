"""Fig. 17: parameter selection — credit timer T and delayCredit (§6.5).

(a) larger T -> less credit bandwidth;
(b) larger T -> larger initial windows -> less ToR-Up buffering but
    more at the aggregation points;
(c) larger T -> longer FCT (incast controlled less tightly);
(d) the delayCredit threshold has a wide robust range.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.floodgate.config import FloodgateConfig
from repro.units import us


def run_credit_timer(
    quick: bool = True,
    timers_us: Iterable[float] = (),
) -> Dict:
    timers_us = tuple(timers_us) or ((1, 2, 8) if quick else (1, 2, 5, 10, 20))
    duration = 300_000 if quick else 1_000_000
    out: Dict = {}
    for t in timers_us:
        cfg = ScenarioConfig(
            workload="webserver",
            flow_control="floodgate",
            floodgate=FloodgateConfig(credit_timer=us(t)),
            duration=duration,
            n_tors=3 if quick else 0,
            hosts_per_tor=4 if quick else 0,
            track_bandwidth=True,
        )
        r = run_scenario(cfg)
        total_tx = sum(r.stats.tx_bytes_by_category.values()) or 1
        s = r.poisson_fct
        out[t] = {
            "credit_share_pct": 100.0
            * r.stats.tx_bytes_by_category["credit"]
            / total_tx,
            "tor-up_mb": r.max_port_buffer_mb("tor-up"),
            "core_mb": r.max_port_buffer_mb("core"),
            "tor-down_mb": r.max_port_buffer_mb("tor-down"),
            "avg_fct_us": s.avg_us,
            "p99_fct_us": s.p99_us,
        }
    return out


def run_delay_credit(
    quick: bool = True,
    multiples: Iterable[float] = (),
) -> Dict:
    multiples = tuple(multiples) or ((1, 2, 10) if quick else (1, 2, 5, 10, 25, 50))
    duration = 300_000 if quick else 1_000_000
    out: Dict = {}
    for m in multiples:
        cfg = ScenarioConfig(
            workload="webserver",
            flow_control="floodgate",
            delay_credit_bdp=m,
            duration=duration,
            n_tors=3 if quick else 0,
            hosts_per_tor=4 if quick else 0,
        )
        r = run_scenario(cfg)
        out[m] = {
            "tor-up_mb": r.max_port_buffer_mb("tor-up"),
            "core_mb": r.max_port_buffer_mb("core"),
            "tor-down_mb": r.max_port_buffer_mb("tor-down"),
        }
    return out


def run(quick: bool = True) -> Dict:
    return {
        "credit_timer": run_credit_timer(quick),
        "delay_credit": run_delay_credit(quick),
    }
