"""Fig. 16: convergence under different ECN-marking thresholds (§6.4).

Flows to one receiver arrive periodically, spaced far enough apart for
congestion control to converge between arrivals.  Two observations
the paper draws:

* DCQCN's destination-ToR buffer cannot converge — every flow keeps
  at least one packet in flight, so occupancy grows with the flow
  count past the ``Kmax`` inflection;
* Floodgate's buffer converges to a level set by its initial window
  and topology, insensitive to the ECN thresholds.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.experiments.parallel import ResultSummary, SweepTask, run_sweep, summarize
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.stats.timeseries import BufferSampler
from repro.units import us
from repro.workloads.poisson import FlowSpec


def _run_convergence(
    cfg: ScenarioConfig, n_flows: int, interval: int
) -> ResultSummary:
    """Worker task: periodic arrivals plus a destination-port sampler.

    The sampled buffer series rides back in ``ResultSummary.extras``
    (the sampler itself stays in the worker process).
    """
    sc = Scenario(cfg)
    hosts = [h.node_id for h in sc.topology.hosts]
    dst = hosts[0]
    flows = []
    for i in range(n_flows):
        src = hosts[1 + (i % (len(hosts) - 1))]
        # long-lived flows: keep transmitting past the horizon
        flows.append(FlowSpec(i, src, dst, size=400_000, start_time=i * interval))
    sc.flows = flows
    tor0 = sc.topology.switches_of_kind("tor")[0]
    dst_port = tor0.connected_hosts[dst]
    sampler = BufferSampler(
        sc.sim,
        {"tor-down": lambda t=tor0, p=dst_port: t.port_occupancy(p)},
        interval=us(10),
    )
    sampler.start()
    result = run_scenario(cfg, scenario=sc)
    sampler.stop()
    # buffer level observed just before each flow arrival
    series = [
        (i, sampler.value_at("tor-down", (i + 1) * interval))
        for i in range(n_flows)
    ]
    return summarize(result, extras={"series": series})


def run(
    quick: bool = True,
    n_flows: int = 0,
    ecn_settings: Iterable[Tuple[int, int]] = (),
) -> Dict:
    n_flows = n_flows or (24 if quick else 80)
    ecn_settings = tuple(ecn_settings) or ((20_000, 80_000), (20_000, 20_000))
    interval = 40_000  # ns between flow arrivals: room to converge
    variants = (
        ("dcqcn", "none"),
        ("dcqcn+ideal", "floodgate-ideal"),
        ("dcqcn+floodgate", "floodgate"),
    )
    tasks = [
        SweepTask(
            key=(kmin, kmax, label),
            config=ScenarioConfig(
                pattern="none",
                flow_control=fc,
                ecn_kmin=kmin,
                ecn_kmax=kmax,
                n_tors=3,
                hosts_per_tor=4,
                duration=n_flows * interval,
                max_runtime_factor=30.0,
            ),
            fn=_run_convergence,
            args=(n_flows, interval),
        )
        for kmin, kmax in ecn_settings
        for label, fc in variants
    ]
    results = run_sweep(tasks)
    out: Dict = {}
    for (kmin, kmax, label), r in results.items():
        key = f"kmin={kmin//1000}KB,kmax={kmax//1000}KB"
        series = r.extras["series"]
        out.setdefault(key, {})[label] = {
            "buffer_vs_flows": series,
            "final_kb": series[-1][1] / 1000 if series else 0,
            "mid_kb": series[n_flows // 2][1] / 1000 if series else 0,
        }
    return out
