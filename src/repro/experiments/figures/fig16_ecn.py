"""Fig. 16: convergence under different ECN-marking thresholds (§6.4).

Flows to one receiver arrive periodically, spaced far enough apart for
congestion control to converge between arrivals.  Two observations
the paper draws:

* DCQCN's destination-ToR buffer cannot converge — every flow keeps
  at least one packet in flight, so occupancy grows with the flow
  count past the ``Kmax`` inflection;
* Floodgate's buffer converges to a level set by its initial window
  and topology, insensitive to the ECN thresholds.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.stats.timeseries import BufferSampler
from repro.units import us
from repro.workloads.poisson import FlowSpec


def run(
    quick: bool = True,
    n_flows: int = 0,
    ecn_settings: Iterable[Tuple[int, int]] = (),
) -> Dict:
    n_flows = n_flows or (24 if quick else 80)
    ecn_settings = tuple(ecn_settings) or ((20_000, 80_000), (20_000, 20_000))
    interval = 40_000  # ns between flow arrivals: room to converge
    out: Dict = {}
    for kmin, kmax in ecn_settings:
        key = f"kmin={kmin//1000}KB,kmax={kmax//1000}KB"
        out[key] = {}
        for label, fc in (
            ("dcqcn", "none"),
            ("dcqcn+ideal", "floodgate-ideal"),
            ("dcqcn+floodgate", "floodgate"),
        ):
            cfg = ScenarioConfig(
                pattern="none",
                flow_control=fc,
                ecn_kmin=kmin,
                ecn_kmax=kmax,
                n_tors=3,
                hosts_per_tor=4,
                duration=n_flows * interval,
                max_runtime_factor=30.0,
            )
            sc = Scenario(cfg)
            hosts = [h.node_id for h in sc.topology.hosts]
            dst = hosts[0]
            rng = sc.rng.stream("fig16")
            flows = []
            for i in range(n_flows):
                src = hosts[1 + (i % (len(hosts) - 1))]
                # long-lived flows: keep transmitting past the horizon
                flows.append(
                    FlowSpec(i, src, dst, size=400_000, start_time=i * interval)
                )
            sc.flows = flows
            tor0 = sc.topology.switches_of_kind("tor")[0]
            dst_port = tor0.connected_hosts[dst]
            sampler = BufferSampler(
                sc.sim,
                {"tor-down": lambda t=tor0, p=dst_port: t.port_occupancy(p)},
                interval=us(10),
            )
            sampler.start()
            run_scenario(cfg, scenario=sc)
            sampler.stop()
            # buffer level observed just before each flow arrival
            series = [
                (i, sampler.value_at("tor-down", (i + 1) * interval))
                for i in range(n_flows)
            ]
            out[key][label] = {
                "buffer_vs_flows": series,
                "final_kb": series[-1][1] / 1000 if series else 0,
                "mid_kb": series[n_flows // 2][1] / 1000 if series else 0,
            }
    return out
