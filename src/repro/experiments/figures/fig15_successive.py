"""Fig. 15: successive incasts and the per-dst PAUSE trade-off (§6.3).

Incast bursts are generated back to back, each targeting a *different*
destination.  DCQCN fills the destination ToR and core buffers and
eventually storms PFC; Floodgate's source-ToR (ToR-Up) occupancy grows
with the number of rounds (it is the gate-keeper); Floodgate with
per-dst PAUSE pushes the backlog all the way into the source hosts,
keeping all switch buffers tiny.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.parallel import SweepTask, run_sweep
from repro.experiments.runner import ScenarioResult, run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.workloads.incast import successive_incast


def _run_successive(cfg: ScenarioConfig, rounds: int) -> ScenarioResult:
    """Worker task: back-to-back bursts at rotating destinations."""
    sc = Scenario(cfg)
    rng = sc.rng.stream("successive")
    hosts = [h.node_id for h in sc.topology.hosts]
    # destinations rotate across racks; bursts arrive back to back
    # (every 20 us) so backlogs stack
    dsts = [hosts[i % len(hosts)] for i in range(rounds)]
    spec = successive_incast(hosts, dsts, interval=20_000, rng=rng)
    for f in spec.flows:
        sc.stats.register_incast_flow(f.flow_id)
    sc.flows = spec.flows
    return run_scenario(cfg, scenario=sc)


def run(
    quick: bool = True,
    round_counts: Iterable[int] = (),
) -> Dict:
    round_counts = tuple(round_counts) or ((2, 4) if quick else (4, 8, 16))
    variants = (
        ("dcqcn", "none", False),
        ("dcqcn+floodgate", "floodgate", False),
        ("dcqcn+floodgate(per-dst pause)", "floodgate", True),
    )
    tasks = [
        SweepTask(
            key=(label, rounds),
            config=ScenarioConfig(
                pattern="none",
                flow_control=fc,
                per_dst_pause=pause,
                n_tors=3 if quick else 4,
                hosts_per_tor=4,
                duration=200_000,
                max_runtime_factor=60.0,
                # short host links: the dstPause control loop is one
                # hop and must be fast relative to a burst (as at the
                # paper's 100 Gbps scale); swnd_bdp=4 keeps incast
                # flows whole-window "blasts" despite the smaller BDP
                host_link_delay=1_000,
                swnd_bdp=4.0,
            ),
            fn=_run_successive,
            args=(rounds,),
        )
        for label, fc, pause in variants
        for rounds in round_counts
    ]
    results = run_sweep(tasks)
    out: Dict = {}
    for (label, rounds), r in results.items():
        out.setdefault(label, {})[rounds] = {
            "tor-up_mb": r.max_port_buffer_mb("tor-up"),
            "core_mb": r.max_port_buffer_mb("core"),
            "tor-down_mb": r.max_port_buffer_mb("tor-down"),
            "pfc_events": r.stats.pfc_pause_events,
            "completion": r.completion_rate,
        }
    return out
