"""Fig. 22 (Appendix A.2): pure Poisson scenarios — Floodgate is free.

With no incast, no flow is ever misclassified: DCQCN+Floodgate should
match plain DCQCN almost exactly (and use essentially no VOQs), while
the ideal design pays a small per-packet-credit overhead.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.figures.common import run_variants
from repro.experiments.scenario import ScenarioConfig


def run(
    quick: bool = True,
    workloads: Iterable[str] = ("memcached", "hadoop"),
) -> Dict:
    duration = 300_000 if quick else 1_500_000
    out: Dict = {}
    for workload in workloads:
        base = ScenarioConfig(
            workload=workload,
            pattern="poisson",
            duration=duration,
            n_tors=3 if quick else 0,
            hosts_per_tor=4 if quick else 0,
        )
        results = run_variants(base)
        out[workload] = {
            label: {
                "avg_us": r.poisson_fct.avg_us,
                "p99_us": r.poisson_fct.p99_us,
                "max_voqs": r.max_voqs_used,
            }
            for label, r in results.items()
        }
    return out
