"""Fig. 12: robustness to manufactured packet loss (§6.2).

Bernoulli loss is injected on every switch-to-switch link (data AND
credit packets are equally at risk — exactly the window-vanishing
hazard §4.3's PSN/switchSYN recovery addresses).  The paper reports
no visible throughput effect at 5 % loss and only small fluctuations
at 10 %.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.net.switch import Switch
from repro.stats.timeseries import ThroughputMonitor
from repro.units import us


def run(
    quick: bool = True,
    loss_rates: Iterable[float] = (0.0, 0.05, 0.10),
) -> Dict:
    duration = 400_000 if quick else 1_500_000
    out: Dict = {"series": {}, "summary": {}}
    for rate in loss_rates:
        cfg = ScenarioConfig(
            workload="webserver",
            pattern="incast",
            flow_control="floodgate",
            duration=duration,
            n_tors=3 if quick else 0,
            hosts_per_tor=4 if quick else 0,
            max_runtime_factor=20.0,
        )
        sc = Scenario(cfg)
        if rate > 0:
            rng = sc.rng.stream("link-loss")
            for link in sc.topology.links:
                if isinstance(link.node_a, Switch) and isinstance(
                    link.node_b, Switch
                ):
                    link.set_loss(rate, rng)
        hosts = sc.topology.hosts
        monitor = ThroughputMonitor(
            sc.sim,
            {"total": lambda hs=hosts: sum(h.rx_data_bytes for h in hs)},
            interval=us(20),
        )
        monitor.start()
        result = run_scenario(cfg, scenario=sc)
        monitor.stop()
        key = f"{rate:.0%}"
        out["series"][key] = monitor.series("total")
        syn_sent = sum(getattr(ext, "syn_sent", 0) for ext in sc.extensions)
        out["summary"][key] = {
            "completion_rate": result.completion_rate,
            "mean_gbps": monitor.mean_after("total"),
            "link_drops": sum(l.dropped_packets for l in sc.topology.links),
            "switch_syn_sent": syn_sent,
        }
    return out
