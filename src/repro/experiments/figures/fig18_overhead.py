"""Fig. 18 / §7.4: bandwidth breakdown — data vs control vs credit.

Paper: control (ACK/CNP) traffic is ~4.5 % of bandwidth under DCQCN
either way; Floodgate's aggregated credits add only 0.175 % while the
ideal per-packet-credit design costs ~3 %.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig


def run(quick: bool = True, workload: str = "webserver") -> Dict:
    duration = 300_000 if quick else 1_000_000
    out: Dict = {}
    for label, fc in (
        ("dcqcn", "none"),
        ("ideal", "floodgate-ideal"),
        ("floodgate", "floodgate"),
    ):
        cfg = ScenarioConfig(
            workload=workload,
            flow_control=fc,
            duration=duration,
            n_tors=3 if quick else 0,
            hosts_per_tor=4 if quick else 0,
            track_bandwidth=True,
        )
        r = run_scenario(cfg)
        cat = r.stats.tx_bytes_by_category
        total = sum(cat.values()) or 1
        out[label] = {
            "data_pct": 100.0 * cat["data"] / total,
            "ctrl_pct": 100.0 * cat["ctrl"] / total,
            "credit_pct": 100.0 * cat["credit"] / total,
        }
    return out
