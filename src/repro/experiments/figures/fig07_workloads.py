"""Fig. 7: flow-size CDFs of the four evaluation workloads.

Checks the qualitative properties the paper highlights: Memcached is
dominated by sub-KB flows, and in the other three a small fraction of
large flows carries most of the bytes.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.workloads.distributions import WORKLOADS


def run(samples: int = 20_000, seed: int = 7) -> Dict:
    out: Dict = {"cdf": {}, "properties": {}}
    for name, dist in WORKLOADS.items():
        rng = random.Random(seed)
        draws = sorted(dist.sample(rng) for _ in range(samples))
        n = len(draws)
        frac_below_1kb = sum(1 for v in draws if v <= 1_000) / n
        mean = sum(draws) / n
        # bytes carried by the largest 10% of flows
        top10_bytes = sum(draws[int(0.9 * n):])
        out["cdf"][name] = dist.cdf()
        out["properties"][name] = {
            "frac_below_1kb": frac_below_1kb,
            "mean_bytes": mean,
            "median_bytes": draws[n // 2],
            "top10pct_byte_share": top10_bytes / sum(draws),
        }
    return out
