"""Fig. 7: flow-size CDFs of the four evaluation workloads.

Checks the qualitative properties the paper highlights: Memcached is
dominated by sub-KB flows, and in the other three a small fraction of
large flows carries most of the bytes.

Sampling draws from a named :class:`~repro.sim.rng.RngRegistry` stream
per workload (``fig07:<name>``) rather than an ad-hoc
``random.Random(seed)``: stream seeding is derived from
``sha256(f"{seed}:{name}")``, so the figure is reproducible across
platforms and immune to hash-seed changes, and the asserted properties
(sub-KB fraction, top-10% byte share) are distributional, not tied to
one sample sequence.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.rng import RngRegistry
from repro.workloads.distributions import WORKLOADS


def run(samples: int = 20_000, seed: int = 7) -> Dict:
    out: Dict = {"cdf": {}, "properties": {}}
    streams = RngRegistry(seed)
    for name, dist in WORKLOADS.items():
        rng = streams.stream(f"fig07:{name}")
        draws = sorted(dist.sample(rng) for _ in range(samples))
        n = len(draws)
        frac_below_1kb = sum(1 for v in draws if v <= 1_000) / n
        mean = sum(draws) / n
        # bytes carried by the largest 10% of flows
        top10_bytes = sum(draws[int(0.9 * n):])
        out["cdf"][name] = dist.cdf()
        out["properties"][name] = {
            "frac_below_1kb": frac_below_1kb,
            "mean_bytes": mean,
            "median_bytes": draws[n // 2],
            "top10pct_byte_share": top10_bytes / sum(draws),
        }
    return out
