"""§7.4: Floodgate's switch resource overhead.

The paper argues the runtime state is modest: sending-window entries
scale with *active* destinations (not all hosts), VOQ usage stays in
the dozens, and credit bandwidth is negligible.  This experiment
measures all three on a live incastmix run.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig


def run(quick: bool = True, workload: str = "webserver") -> Dict:
    cfg = ScenarioConfig(
        workload=workload,
        flow_control="floodgate",
        duration=400_000 if quick else 1_500_000,
        n_tors=4,
        hosts_per_tor=4,
        incast_load=0.8,
        incast_fan_in=16,
        track_bandwidth=True,
    )
    sc = Scenario(cfg)
    result = run_scenario(cfg, scenario=sc)
    n_hosts = len(sc.topology.hosts)
    per_switch = []
    for sw, ext in zip(sc.topology.switches, sc.extensions, strict=True):
        per_switch.append(
            {
                "switch": sw.name,
                "window_entries": len(ext.windows.window),
                "active_windows": ext.windows.active_destinations(),
                "max_voqs": ext.pool.max_in_use,
                "hash_fallbacks": ext.pool.hash_fallbacks,
                "credits_sent": ext.credits.credits_sent,
            }
        )
    total_tx = sum(result.stats.tx_bytes_by_category.values()) or 1
    worst = max(per_switch, key=lambda r: r["window_entries"])
    return {
        "n_hosts": n_hosts,
        "per_switch": per_switch,
        "worst_case_window_entries": worst["window_entries"],
        "window_entries_vs_hosts": worst["window_entries"] / n_hosts,
        "max_voqs_any_switch": max(r["max_voqs"] for r in per_switch),
        "credit_bandwidth_pct": 100.0
        * result.stats.tx_bytes_by_category["credit"]
        / total_tx,
    }
