"""Fig. 6: the testbed experiment (§5.2).

One core, three ToRs, two hosts each (10G host / 20G core links).
Four cross-rack senders incast one destination host while Poisson
flows run among the other hosts.  Hosts use the static per-flow
sending window (the testbed's stand-in for DCQCN's first RTT).

Paper numbers: Floodgate cuts non-incast avg FCT 30.6 % and p99 by
1.6x; max buffer on ToR-Down / Core drops 17.2x / 1.8x.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.figures.common import LEAF_SPINE_ROLES, run_variants
from repro.experiments.scenario import ScenarioConfig
from repro.units import gbps


def run(quick: bool = True) -> Dict:
    duration = 400_000 if quick else 2_000_000
    base = ScenarioConfig(
        topology="testbed",
        cc="static",
        workload="webserver",
        pattern="incastmix",
        host_bandwidth=gbps(10),
        fabric_bandwidth=gbps(20),
        host_link_delay=6_000,
        link_delay=500,
        buffer_bytes=100_000,
        duration=duration,
        # two bursts of the testbed's 4 senders per incast round keeps
        # the burst-to-buffer ratio of the paper's 45 KB-BDP testbed
        incast_fan_in=8,
        incast_load=0.8,
        incast_dst=0,
    )
    results = run_variants(
        base, variants={"w/o floodgate": "none", "w/ floodgate": "floodgate"}
    )
    out: Dict = {"fct": {}, "buffers": {}}
    for label, r in results.items():
        s = r.poisson_fct
        out["fct"][label] = {"avg_us": s.avg_us, "p99_us": s.p99_us}
        out["buffers"][label] = {
            role: r.stats.max_port_buffer_by_role(role) / 1e6
            for role in LEAF_SPINE_ROLES
        }
    base_fct = out["fct"]["w/o floodgate"]
    fg_fct = out["fct"]["w/ floodgate"]
    out["avg_reduction_pct"] = (
        100.0 * (1 - fg_fct["avg_us"] / base_fct["avg_us"])
        if base_fct["avg_us"]
        else 0.0
    )
    bd = out["buffers"]
    out["tor_down_factor"] = (
        bd["w/o floodgate"]["tor-down"] / bd["w/ floodgate"]["tor-down"]
        if bd["w/ floodgate"]["tor-down"]
        else float("inf")
    )
    return out
