"""Fig. 11: traffic reallocation and per-hop queueing analysis.

(a) max buffer per hop (ToR-Up / Core / ToR-Down): DCQCN piles on the
incast aggregation points; Floodgate shifts occupancy to ToR-Up.
(b) split of non-incast flows' queueing time per hop: Floodgate's
larger ToR-Up occupancy does NOT translate into queueing delay for
non-incast flows, because incast sits isolated in VOQs.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.figures.common import (
    LEAF_SPINE_ROLES,
    incastmix_base,
    run_variants,
)


def run(
    quick: bool = True,
    workloads: Iterable[str] = ("webserver",),
) -> Dict:
    out: Dict = {"buffers_mb": {}, "queuing_us": {}}
    for workload in workloads:
        base = incastmix_base(quick, workload)
        results = run_variants(base)
        out["buffers_mb"][workload] = {
            label: {
                role: r.stats.max_port_buffer_by_role(role) / 1e6
                for role in LEAF_SPINE_ROLES
            }
            for label, r in results.items()
        }
        out["queuing_us"][workload] = {
            label: {
                role: r.stats.avg_queuing_by_role(role, incast=False) / 1e3
                for role in LEAF_SPINE_ROLES
            }
            for label, r in results.items()
        }
    return out
