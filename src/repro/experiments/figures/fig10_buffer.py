"""Fig. 10: maximum switch buffer occupancy across workloads.

Paper: Floodgate reduces the max buffer 2.4-3.7x vs DCQCN (the ideal
design more), because every switch holds back a share of the incast
in its VOQs instead of letting it pile onto the destination ToR.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.figures.common import incastmix_base, run_variants


def run(
    quick: bool = True,
    workloads: Iterable[str] = ("memcached", "webserver"),
    cc: str = "dcqcn",
) -> Dict:
    """Returns {workload: {variant: max_buffer_mb}} plus factors."""
    out: Dict = {"max_buffer_mb": {}, "reduction_factor": {}}
    for workload in workloads:
        base = incastmix_base(quick, workload, cc=cc)
        results = run_variants(base)
        row = {
            label: r.max_switch_buffer_mb for label, r in results.items()
        }
        out["max_buffer_mb"][workload] = row
        if row.get("floodgate"):
            out["reduction_factor"][workload] = (
                row["baseline"] / row["floodgate"]
            )
    return out
