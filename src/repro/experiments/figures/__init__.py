"""One module per paper figure/table.

Each module exposes ``run(quick=True, ...)`` returning a plain dict of
rows/series shaped like the paper's result, and the benchmarks print
them.  ``quick=True`` shrinks durations/host counts for bench time;
``quick=False`` uses the full CI-scale defaults (see DESIGN.md's
per-experiment index and EXPERIMENTS.md for paper-vs-measured).
"""
