"""Fig. 9: FCT CDFs by flow class under the Web Server incastmix.

Separates incast flows, victims of incast (same destination rack),
and victims of PFC (everyone else).  The paper's claim: Floodgate
removes the HOL blocking of both victim classes without hurting the
incast flows themselves.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.figures.common import incastmix_base, run_variants
from repro.stats.collector import FlowClass
from repro.stats.fct import fct_cdf, summarize_fct


def run(quick: bool = True, workload: str = "webserver") -> Dict:
    base = incastmix_base(quick, workload)
    results = run_variants(base)
    out: Dict = {"cdf": {}, "summary": {}}
    for label, r in results.items():
        out["cdf"][label] = {}
        out["summary"][label] = {}
        for cls in (
            FlowClass.INCAST,
            FlowClass.VICTIM_INCAST,
            FlowClass.VICTIM_PFC,
        ):
            records = r.stats.fct_of_class(cls)
            out["cdf"][label][cls.value] = fct_cdf(records)
            s = summarize_fct(records)
            out["summary"][label][cls.value] = {
                "avg_us": s.avg_us,
                "p99_us": s.p99_us,
                "count": s.count,
            }
    return out
