"""Shared helpers for the figure modules."""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.experiments.parallel import ResultSummary, SweepTask, run_sweep
from repro.experiments.scenario import ScenarioConfig

#: the three protocol variants most figures compare
VARIANTS = {
    "baseline": "none",
    "ideal": "floodgate-ideal",
    "floodgate": "floodgate",
}

#: per-hop port roles in 2-tier topologies, in packet-path order
LEAF_SPINE_ROLES = ["tor-up", "core", "tor-down"]
#: per-hop port roles in the 3-tier fat tree (Fig. 13)
FAT_TREE_ROLES = ["edge-up", "agg-up", "core", "agg-down", "edge-down"]


def quick_overrides(quick: bool) -> dict:
    """Topology/duration shrink for bench-time runs.

    The buffer shrinks with the host count so the incast burst stays
    comparable to the shared buffer (the ratio that drives the PFC and
    HOL dynamics every incastmix figure depends on).
    """
    if not quick:
        return {}
    # incast_load 0.8 shortens the burst interval so the 600 us window
    # still covers several incast rounds
    # fan-in 16 wraps the 12 eligible senders so the burst stays
    # comparable to the shared buffer and to the spine link's drain
    # rate (the ratios that create the HOL/PFC pressure the incastmix
    # figures measure)
    return dict(
        n_tors=4,
        hosts_per_tor=4,
        duration=600_000,
        buffer_bytes=500_000,
        incast_load=0.8,
        incast_fan_in=16,
    )


def incastmix_base(
    quick: bool, workload: str, cc: str = "dcqcn", **kw
) -> ScenarioConfig:
    """The standard §6.1 incastmix scenario at bench or CI scale."""
    params = dict(cc=cc, workload=workload, **quick_overrides(quick))
    params.update(kw)
    return ScenarioConfig(**params)


def run_variants(
    base: ScenarioConfig,
    variants: Optional[Dict[str, str]] = None,
    max_workers: Optional[int] = None,
    cache: Union[bool, str, Path, None] = None,
    **overrides,
) -> Dict[str, ResultSummary]:
    """Run the same scenario under several flow-control variants.

    The variants fan out over the parallel sweep runner (one process
    per variant, results cached on disk when ``REPRO_CACHE_DIR`` or
    ``cache=`` is set) and come back as slim
    :class:`~repro.experiments.parallel.ResultSummary` objects.
    """
    tasks = [
        SweepTask(key=label, config=replace(base, flow_control=fc, **overrides))
        for label, fc in (variants or VARIANTS).items()
    ]
    return run_sweep(tasks, max_workers=max_workers, cache=cache)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Align a small result table for terminal output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def fct_row(result: ResultSummary) -> List[float]:
    """[avg_us, p99_us] of the Poisson (non-incast) flows."""
    s = result.poisson_fct
    return [round(s.avg_us, 1), round(s.p99_us, 1)]
