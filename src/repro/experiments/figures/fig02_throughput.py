"""Fig. 2: realtime throughput under incastmix, DCQCN vs +Floodgate.

The paper shows that without Floodgate, victim-of-incast flows are HOL
blocked (their throughput stays at zero for ~1.8 ms) and victims of
PFC dip when the pause storm spreads; with Floodgate both classes
receive immediately and PFC never triggers.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.stats.collector import FlowClass
from repro.stats.timeseries import ThroughputMonitor
from repro.units import us


def run(quick: bool = True, workload: str = "webserver") -> Dict:
    """Returns per-variant throughput series and HOL-delay summary."""
    from repro.experiments.figures.common import incastmix_base

    base = incastmix_base(quick, workload)
    out: Dict = {"series": {}, "summary": {}}
    for label, fc in (("dcqcn", "none"), ("dcqcn+floodgate", "floodgate")):
        cfg = replace(base, flow_control=fc)
        sc = Scenario(cfg)
        stats = sc.stats
        monitor = ThroughputMonitor(
            sc.sim,
            {
                "incast": lambda s=stats: s.rx_bytes_of_class(FlowClass.INCAST),
                "victim_incast": lambda s=stats: s.rx_bytes_of_class(
                    FlowClass.VICTIM_INCAST
                ),
                "victim_pfc": lambda s=stats: s.rx_bytes_of_class(
                    FlowClass.VICTIM_PFC
                ),
            },
            interval=us(20),
        )
        monitor.start()
        result = run_scenario(cfg, scenario=sc)
        monitor.stop()
        out["series"][label] = {
            name: monitor.series(name) for name in monitor.sources
        }
        out["summary"][label] = {
            "victim_incast_first_rx_ms": monitor.first_nonzero_time(
                "victim_incast"
            ),
            "pfc_events": result.stats.pfc_pause_events,
            "mean_victim_pfc_gbps": monitor.mean_after("victim_pfc"),
        }
    return out
