"""Fig. 23 (Appendix B): comparison with NDP under incastmix.

Paper: NDP beats DCQCN (shallow queues from trimming) but loses to
DCQCN+Floodgate for non-incast flows — trimming hits innocent flows
once incast has depleted the queue to the cut-payload threshold, and
retransmissions cost at least an RTT.  NDP also *prolongs* incast
flows because trimmed headers consume significant bottleneck
bandwidth.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.figures.common import incastmix_base
from repro.experiments.runner import run_scenario


def run(
    quick: bool = True,
    workloads: Iterable[str] = ("memcached",),
) -> Dict:
    variants = (
        ("dcqcn", "dcqcn", "none"),
        ("dcqcn+floodgate", "dcqcn", "floodgate"),
        ("ndp", "static", "ndp"),
    )
    out: Dict = {}
    for workload in workloads:
        out[workload] = {}
        for label, cc, fc in variants:
            cfg = incastmix_base(quick, workload, cc=cc, flow_control=fc)
            r = run_scenario(cfg)
            p, i = r.poisson_fct, r.incast_fct
            trimmed = sum(
                getattr(ext, "trimmed_packets", 0)
                for ext in r.scenario.extensions
            )
            out[workload][label] = {
                "nonincast_avg_us": p.avg_us,
                "nonincast_p99_us": p.p99_us,
                "incast_avg_us": i.avg_us,
                "incast_p99_us": i.p99_us,
                "trimmed_packets": trimmed,
            }
    return out
