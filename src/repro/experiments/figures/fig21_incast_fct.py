"""Fig. 21 (Appendix A.1): incast flows' own FCT under incastmix.

Paper: Floodgate does not degrade the incast flows — their bandwidth
is fully used (often slightly better, since they avoid the huge
last-hop queueing delay); the ideal design trades a small incast
slowdown for bigger Poisson gains.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.experiments.figures.common import incastmix_base, run_variants


def run(
    quick: bool = True,
    workloads: Iterable[str] = ("memcached", "webserver"),
) -> Dict:
    out: Dict = {}
    for workload in workloads:
        base = incastmix_base(quick, workload)
        results = run_variants(base)
        out[workload] = {
            label: {
                "avg_us": r.incast_fct.avg_us,
                "p99_us": r.incast_fct.p99_us,
                "count": r.incast_fct.count,
            }
            for label, r in results.items()
        }
    return out
