"""Declarative scenario registry: named scenarios as data.

Every named scenario the tooling refers to — the bench matrix, the
fluid-tier twins, the closed-loop rpc workloads — lives here as one
:class:`ScenarioEntry`: a name, a description, the config sequence it
runs, free-form tags, and the throughput metric its bench records are
gated on.  ``bench.py`` derives its matrix from the ``bench`` tag and
``cli.py`` derives its ``--scenario`` choices and the ``scenarios
list``/``scenarios show`` subcommands from the same table, so adding a
workload is config, not code spread over three files.

Naming conventions carried over from the bench matrix (the gate and
the history files key off them):

* ``flowsim-*`` — runs at ``fidelity="flow"``, gated on flows/s,
  recorded in ``BENCH_flowsim.json``;
* ``hybrid-*`` — runs at ``fidelity="hybrid"``, gated on flows/s plus
  a packet-twin speedup, recorded in ``BENCH_flowsim.json``;
* ``rpc-*`` — closed-loop rpc workloads, gated on requests/s,
  recorded in ``BENCH_rpc.json``;
* everything else — the packet engine, gated on events/s, recorded in
  ``BENCH_engine.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.experiments.scenario import ScenarioConfig
from repro.rpc.spec import RpcWorkloadSpec
from repro.units import ms, us

#: metrics a bench record can be gated on (keys of the record dict)
GATE_METRICS = ("events_per_sec", "flows_per_sec", "requests_per_sec")


@dataclass(frozen=True)
class ScenarioEntry:
    """One named scenario: pure data, no behavior.

    Multi-config entries (the incast-degree sweep) are treated as one
    unit wherever they run: a bench repeat runs every config once.
    """

    name: str
    description: str
    configs: Tuple[ScenarioConfig, ...]
    tags: Tuple[str, ...] = ()
    #: throughput metric the bench gate tracks for this scenario
    gate_metric: str = "events_per_sec"
    #: extra knob documentation shown by ``scenarios show``
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario entries need a non-empty name")
        if not self.configs:
            raise ValueError(
                f"scenario {self.name!r} needs at least one config"
            )
        if self.gate_metric not in GATE_METRICS:
            raise ValueError(
                f"scenario {self.name!r}: unknown gate_metric "
                f"{self.gate_metric!r}; valid values: "
                f"{', '.join(GATE_METRICS)}"
            )


_REGISTRY: Dict[str, ScenarioEntry] = {}


def register(entry: ScenarioEntry) -> ScenarioEntry:
    """Add ``entry`` to the registry (duplicate names are an error)."""
    if entry.name in _REGISTRY:
        raise ValueError(f"scenario {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry
    return entry


def get(name: str) -> ScenarioEntry:
    """Look up a scenario; unknown names list what is available."""
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ValueError(
            f"unknown scenario {name!r}; available scenarios: "
            f"{', '.join(names())}"
        )
    return entry


def names(tag: Optional[str] = None) -> List[str]:
    """Registered names in registration (canonical) order."""
    return [
        name
        for name, entry in _REGISTRY.items()
        if tag is None or tag in entry.tags
    ]


def entries(tag: Optional[str] = None) -> List[ScenarioEntry]:
    return [_REGISTRY[name] for name in names(tag)]


# -- built-in entries ---------------------------------------------------------


def _quick_config() -> ScenarioConfig:
    """The canonical fixed-seed ``quick`` scenario.

    Mirrors ``figures.common.quick_overrides`` (the bench-scale
    incastmix substrate) with the webserver workload — the heaviest of
    the quick-scale figure runs, and deterministic at seed 1.
    """
    return ScenarioConfig(
        workload="webserver",
        cc="dcqcn",
        n_tors=4,
        hosts_per_tor=4,
        duration=600_000,
        buffer_bytes=500_000,
        incast_load=0.8,
        incast_fan_in=16,
        seed=1,
    )


def _rpc_fanout_config() -> ScenarioConfig:
    """The canonical closed-loop rpc scenario at bench scale.

    Eight clients on the 16-host leaf-spine substrate, each spraying
    8-way requests under Zipf-skewed shard placement with Floodgate
    holding the fan-in — the regime the rpc subsystem exists for.
    """
    return ScenarioConfig(
        pattern="rpc",
        rpc=RpcWorkloadSpec(
            n_clients=8,
            fan_out=8,
            think_time=us(20),
            server_selection="zipf",
            zipf_alpha=1.2,
        ),
        flow_control="floodgate",
        cc="dcqcn",
        n_tors=4,
        hosts_per_tor=4,
        duration=600_000,
        buffer_bytes=500_000,
        seed=1,
    )


def _builtin_entries() -> List[ScenarioEntry]:
    incast_sweep = tuple(
        ScenarioConfig(
            workload="websearch",
            cc="dcqcn",
            n_tors=16,
            hosts_per_tor=16,
            n_spines=4,
            pattern="incast",
            incast_fan_in=fan_in,
            incast_load=0.8,
            duration=200_000,
            seed=1,
        )
        for fan_in in (64, 128, 255)
    )
    fattree = ScenarioConfig(
        topology="fat-tree",
        fat_tree_k=8,
        hosts_per_edge=4,
        workload="websearch",
        cc="dcqcn",
        pattern="poisson",
        poisson_load=0.6,
        duration=ms(1),
        seed=1,
    )
    # the fluid-tier twins: same scenarios at fidelity="flow".  The
    # incast twin uses the cross-validation variant (Floodgate,
    # burst-sized buffer, a hard stop that lets the burst drain) so
    # flows actually complete and flows/second measures the fluid
    # engine, not the build.
    flowsim_incast = tuple(
        replace(
            cfg,
            fidelity="flow",
            flow_control="floodgate",
            buffer_bytes=2_000_000,
            max_runtime_factor=64.0,
        )
        for cfg in incast_sweep
    )
    # the hybrid-tier twin: hot racks at packet level over a fluid
    # background, on the same validation variant as flowsim-incast256
    # so the three tiers' records are directly comparable
    hybrid_incast = tuple(
        replace(cfg, fidelity="hybrid") for cfg in flowsim_incast
    )
    return [
        ScenarioEntry(
            "quick",
            "bench-scale incastmix (16 hosts, webserver); the CI gate",
            (_quick_config(),),
            tags=("bench", "packet"),
        ),
        ScenarioEntry(
            "incast256",
            "256-host leaf-spine incast-degree sweep (fan-in 64/128/255)",
            incast_sweep,
            tags=("bench", "packet"),
        ),
        ScenarioEntry(
            "fattree-a2a",
            "128-host fat-tree (k=8) Poisson all-to-all",
            (fattree,),
            tags=("bench", "packet"),
        ),
        ScenarioEntry(
            "flowsim-quick",
            "fluid tier: bench-scale incastmix at fidelity=flow",
            (replace(_quick_config(), fidelity="flow"),),
            tags=("bench", "flowsim"),
            gate_metric="flows_per_sec",
        ),
        ScenarioEntry(
            "flowsim-incast256",
            "fluid tier: incast-degree sweep at fidelity=flow "
            "(validation variant: Floodgate, drop-free buffer)",
            flowsim_incast,
            tags=("bench", "flowsim"),
            gate_metric="flows_per_sec",
        ),
        ScenarioEntry(
            "flowsim-fattree-a2a",
            "fluid tier: fat-tree Poisson all-to-all at fidelity=flow",
            (replace(fattree, fidelity="flow"),),
            tags=("bench", "flowsim"),
            gate_metric="flows_per_sec",
        ),
        ScenarioEntry(
            "hybrid-incast256",
            "hybrid tier: incast-degree sweep with the victim rack at "
            "packet level over a fluid background",
            hybrid_incast,
            tags=("bench", "hybrid"),
            gate_metric="flows_per_sec",
            notes="records speedup_vs_packet from a packet-engine twin "
            "timed in the same repeat; gated >=3x (see bench.check_gate)",
        ),
        ScenarioEntry(
            "shard-incast256",
            "sharded engine (2 domains): the incast-degree sweep under "
            "conservative-parallel execution",
            tuple(replace(cfg, shards=2) for cfg in incast_sweep),
            tags=("bench", "packet", "shard"),
            notes="speedup_vs_serial is recorded but not gated: incast "
            "traffic is boundary-heavy, so scaling is topology-bound",
        ),
        ScenarioEntry(
            "shard-fattree-a2a",
            "sharded engine (4 per-pod domains): the fat-tree Poisson "
            "all-to-all under conservative-parallel execution",
            (replace(fattree, shards=4),),
            tags=("bench", "packet", "shard"),
            notes="gates >=1.8x speedup_vs_serial when the machine has "
            "at least as many CPUs as shards (see bench.check_gate)",
        ),
        ScenarioEntry(
            "rpc-fanout",
            "closed-loop rpc: 8 clients x 8-way fan-out, Zipf shards, "
            "Floodgate (16 hosts)",
            (_rpc_fanout_config(),),
            tags=("bench", "rpc", "packet"),
            gate_metric="requests_per_sec",
            notes="gated on requests/s; recorded in BENCH_rpc.json",
        ),
        ScenarioEntry(
            "rpc-fanout-flow",
            "fluid tier: the rpc-fanout closed loop at fidelity=flow",
            (replace(_rpc_fanout_config(), fidelity="flow"),),
            tags=("bench", "rpc", "flowsim"),
            gate_metric="requests_per_sec",
            notes="gated on requests/s; recorded in BENCH_rpc.json",
        ),
    ]


for _entry in _builtin_entries():
    register(_entry)
