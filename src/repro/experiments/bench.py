"""Engine performance benchmarks: a named scenario matrix with history.

The matrix is the ``bench``-tagged slice of the declarative scenario
registry (``repro.experiments.registry``).  The fixed-seed scenarios
cover the regimes the engine must stay fast in:

* ``quick`` — the §6.1 incastmix substrate at bench scale (the
  canonical record tracked PR over PR; this is what CI gates on);
* ``incast256`` — a 256-host leaf-spine incast-degree sweep (fan-in
  64/128/255), the pause/credit-heavy regime where control traffic
  dominates;
* ``fattree-a2a`` — a 128-host fat-tree (k=8) under Poisson
  all-to-all, the multi-hop routing-heavy regime;
* ``flowsim-*`` — fluid-tier twins, gated on flows/s into
  ``BENCH_flowsim.json`` (each record also carries the incremental
  max-min allocator's flows/s delta vs a full-recompute twin);
* ``hybrid-*`` — hybrid-tier twins, gated on flows/s plus a
  ``speedup_vs_packet`` twin timing, also in ``BENCH_flowsim.json``;
* ``rpc-*`` — closed-loop rpc workloads (repro.rpc), gated on
  requests/s into ``BENCH_rpc.json``.

Each scenario is timed ``--repeats`` times (default 3) and reported as
the *median* wall time with its stdev, so one GC pause or noisy
neighbour cannot fake a regression or an improvement.  Event counts
are seed-determined and asserted identical across repeats — a repeat
that executes different events is a determinism bug, not noise.

``BENCH_engine.json`` is a trajectory, not a snapshot: every
``run_and_write`` appends a history entry (timestamp, machine,
per-scenario records) and refreshes the ``latest`` block.  The CI
perf-smoke gate (:func:`check_gate`) compares a fresh run against the
best *same-machine* history entry and fails on a >20 % events/second
regression; with no same-machine history it falls back to an absolute
floor that only catches structural collapses.

Entry points:

* ``floodgate-experiment bench [--scenario ...] [--repeats N] [--gate]``;
* ``benchmarks/test_perf_engine.py`` (pytest).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import statistics
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.experiments import registry
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig

#: env override for where ``BENCH_engine.json`` lands
ENV_BENCH_OUT = "REPRO_BENCH_OUT"

#: default output file (current working directory)
DEFAULT_BENCH_FILE = "BENCH_engine.json"

#: the fluid tier's own trajectory; always written next to the engine
#: file so the two histories travel together
DEFAULT_FLOWSIM_FILE = "BENCH_flowsim.json"

#: closed-loop rpc trajectory, also written next to the engine file
DEFAULT_RPC_FILE = "BENCH_rpc.json"

#: scenarios carrying this prefix run at ``fidelity="flow"`` and are
#: recorded/gated separately (events/second is meaningless when a
#: whole incast is a handful of rate events)
FLOWSIM_PREFIX = "flowsim-"

#: closed-loop rpc scenarios: recorded in their own trajectory and
#: gated on requests/second (the number the subsystem exists to serve)
RPC_PREFIX = "rpc-"

#: hybrid-tier scenarios (``fidelity="hybrid"``): recorded alongside
#: the fluid tier in ``BENCH_flowsim.json``, gated on flows/second,
#: plus a packet-engine twin timing that yields ``speedup_vs_packet``
HYBRID_PREFIX = "hybrid-"

#: sharded-engine scenarios (``config.shards > 1``): recorded in the
#: engine trajectory with the usual events/second regression gate,
#: plus a serial-twin timing that yields ``speedup_vs_serial``
SHARD_PREFIX = "shard-"

#: scenario -> minimum speedup_vs_serial the gate enforces.  The gate
#: only applies when the record's machine had at least as many CPUs as
#: shards — conservative-parallel workers time-slicing one core can
#: only lose; the record still carries the measured ratio either way
SHARD_SPEEDUP_GATES = {"shard-fattree-a2a": 1.8}

#: scenario -> minimum speedup_vs_packet the gate enforces for hybrid
#: records.  Bench scale is smaller than the validate-hybrid runs, so
#: the bar sits below the 5x the validation CLI asserts at full scale
HYBRID_SPEEDUP_GATES = {"hybrid-incast256": 3.0}

#: flowsim gate fallback when no same-machine history exists: the
#: fluid tier completes tens of thousands of flows per second; below
#: this something structural broke
FLOWS_PER_SEC_FLOOR = 1_000

#: rpc gate fallback: the bench-scale closed loop completes tens of
#: requests per wall second even on slow hardware; below this
#: something structural broke
REQUESTS_PER_SEC_FLOOR = 10

#: gate fallback when no same-machine history exists: any hardware
#: does far better than this; below it something structural broke
EVENTS_PER_SEC_FLOOR = 40_000

#: gate metric -> (record key, display unit, absolute floor)
_GATE_METRICS = {
    "events_per_sec": ("events_per_sec", "ev/s", EVENTS_PER_SEC_FLOOR),
    "flows_per_sec": ("flows_per_sec", "flows/s", FLOWS_PER_SEC_FLOOR),
    "requests_per_sec": ("requests_per_sec", "req/s", REQUESTS_PER_SEC_FLOOR),
}

#: the CI gate's default regression budget (fraction of the best
#: same-machine events/second)
DEFAULT_MAX_REGRESSION = 0.20

#: history entries kept per (machine, scenario) — enough trajectory to
#: eyeball trends without the file growing unboundedly
MAX_HISTORY = 50


@dataclass(frozen=True)
class BenchScenario:
    """One named benchmark: a description plus its config sequence.

    Multi-config scenarios (the incast-degree sweep) are timed as one
    unit: a repeat runs every config once, and events/walls are summed.
    """

    name: str
    description: str
    configs: Tuple[ScenarioConfig, ...]


def bench_config() -> ScenarioConfig:
    """The canonical fixed-seed ``quick`` scenario (from the registry)."""
    return registry.get("quick").configs[0]


def scenario_matrix() -> Dict[str, BenchScenario]:
    """The full named matrix, in canonical order.

    Derived from the ``bench``-tagged entries of the declarative
    scenario registry (``repro.experiments.registry``) — the registry
    is the single source of truth for what exists and how it is gated;
    this view only adapts the shape the bench runners consume.
    """
    return {
        entry.name: BenchScenario(entry.name, entry.description, entry.configs)
        for entry in registry.entries(tag="bench")
    }


def gate_metric_for(scenario: str) -> str:
    """The throughput metric ``scenario`` is gated on.

    Registered scenarios declare it; unregistered names (historical
    records, ad-hoc entries) fall back to the prefix conventions the
    history files are organized around.
    """
    if scenario in registry.names():
        return registry.get(scenario).gate_metric
    if scenario.startswith((FLOWSIM_PREFIX, HYBRID_PREFIX)):
        return "flows_per_sec"
    if scenario.startswith(RPC_PREFIX):
        return "requests_per_sec"
    return "events_per_sec"


def machine_fingerprint() -> str:
    """Identifies the hardware a record was measured on.

    Events/second is only comparable within one machine; the gate
    never compares records across fingerprints.
    """
    return f"{platform.node()}/{platform.machine()}"


# -- running ------------------------------------------------------------------


def run_bench_scenario(spec: BenchScenario, repeats: int = 3) -> Dict:
    """Time ``spec`` ``repeats`` times; report the median.

    Event counts and flow totals are seed-determined: a repeat that
    disagrees is a determinism regression and raises immediately.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    sharded = any(cfg.shards > 1 for cfg in spec.configs)
    hybrid = any(cfg.fidelity == "hybrid" for cfg in spec.configs)
    # the incremental max-min fast path's contribution, measured on the
    # fluid tier where the allocator *is* the engine: time a
    # full-recompute twin and record the flows/second delta
    fluid = not hybrid and any(cfg.fidelity == "flow" for cfg in spec.configs)
    walls: List[float] = []
    serial_walls: List[float] = []
    packet_walls: List[float] = []
    full_maxmin_walls: List[float] = []
    events = completed = total = sim_time = requests = -1
    for _ in range(repeats):
        # collect before every timed sweep: without this, the first
        # sweep of an iteration pays GC for the previous iteration's
        # garbage, a *positional* bias that systematically flatters
        # whichever twin runs second (it dwarfed the real delta on
        # near-1x comparisons like the incremental-max-min twin)
        gc.collect()
        wall = 0.0
        ev = done = flows = stime = reqs = 0
        for cfg in spec.configs:
            r = run_scenario(cfg)
            wall += r.wall_seconds
            ev += r.events
            done += r.completed_flows
            flows += r.total_flows
            stime += r.sim_time
            reqs += r.completed_requests
        if events >= 0 and (ev, done, flows, reqs) != (
            events,
            completed,
            total,
            requests,
        ):
            raise RuntimeError(
                f"benchmark {spec.name!r} is nondeterministic across "
                f"repeats: {ev} events vs {events} on the previous run"
            )
        events, completed, total, sim_time, requests = ev, done, flows, stime, reqs
        walls.append(wall)
        if sharded:
            # the serial twin, timed under the same repeat so machine
            # noise hits both sides; speedup is median over median
            gc.collect()
            serial_walls.append(
                sum(
                    run_scenario(replace(cfg, shards=1)).wall_seconds
                    for cfg in spec.configs
                )
            )
        if hybrid:
            # the packet-engine twin, same repeat for the same reason
            gc.collect()
            packet_walls.append(
                sum(
                    run_scenario(
                        replace(cfg, fidelity="packet", hot_racks=())
                    ).wall_seconds
                    for cfg in spec.configs
                )
            )
        if fluid:
            gc.collect()
            full_maxmin_walls.append(
                sum(
                    run_scenario(
                        replace(cfg, maxmin_incremental=False)
                    ).wall_seconds
                    for cfg in spec.configs
                )
            )
    median = statistics.median(walls)
    stdev = statistics.stdev(walls) if len(walls) > 1 else 0.0
    record = {
        "scenario": spec.name,
        "description": spec.description,
        "events": events,
        "wall_seconds": round(median, 4),
        "wall_stdev": round(stdev, 4),
        "events_per_sec": round(events / median) if median else 0,
        "flows_per_sec": round(completed / median) if median else 0,
        "requests_per_sec": round(requests / median) if median else 0,
        "sim_time_ns": sim_time,
        "completed_flows": completed,
        "total_flows": total,
        "completed_requests": requests,
        "repeats": repeats,
    }
    if sharded:
        serial_median = statistics.median(serial_walls)
        record["shards"] = max(cfg.shards for cfg in spec.configs)
        record["cpus"] = os.cpu_count() or 1
        record["serial_wall_seconds"] = round(serial_median, 4)
        record["speedup_vs_serial"] = (
            round(serial_median / median, 3) if median else 0.0
        )
    if hybrid:
        packet_median = statistics.median(packet_walls)
        record["packet_wall_seconds"] = round(packet_median, 4)
        record["speedup_vs_packet"] = (
            round(packet_median / median, 3) if median else 0.0
        )
    if fluid:
        full_median = statistics.median(full_maxmin_walls)
        record["full_maxmin_wall_seconds"] = round(full_median, 4)
        record["flows_per_sec_full_maxmin"] = (
            round(completed / full_median) if full_median else 0
        )
        record["maxmin_incremental_speedup"] = (
            round(full_median / median, 3) if median else 0.0
        )
    return record


def run_matrix(
    scenarios: Optional[Iterable[str]] = None, repeats: int = 3
) -> Dict[str, Dict]:
    """Run the named scenarios (default: just ``quick``)."""
    matrix = scenario_matrix()
    names = list(scenarios) if scenarios else ["quick"]
    unknown = [n for n in names if n not in matrix]
    if unknown:
        raise ValueError(
            f"unknown benchmark scenario(s) {unknown}; "
            f"choose from {sorted(matrix)}"
        )
    return {name: run_bench_scenario(matrix[name], repeats) for name in names}


# -- the history file ---------------------------------------------------------


def load_bench_file(path: Union[str, Path]) -> Dict:
    """Read ``BENCH_engine.json``, upgrading the legacy single-record
    format (pre-matrix: one flat ``quick`` record, no machine tag) into
    a one-entry history so committed baselines stay on the trajectory.
    """
    path = Path(path)
    if not path.exists():
        return {"benchmark": "engine-bench", "history": []}
    data = json.loads(path.read_text())
    if "history" in data:
        return data
    # legacy: a single flat record for the quick scenario
    entry = {
        "machine": data.get("machine", "unknown"),
        "timestamp": data.get("timestamp", "unknown"),
        "scenarios": {
            "quick": {
                "scenario": "quick",
                "events": data.get("events", 0),
                "wall_seconds": data.get("wall_seconds", 0.0),
                "events_per_sec": data.get("events_per_sec", 0),
                "repeats": data.get("repeats", 1),
            }
        },
    }
    return {"benchmark": "engine-bench", "history": [entry]}


def append_history(
    records: Dict[str, Dict],
    path: Union[str, Path, None] = None,
    benchmark: str = "engine-bench",
) -> Dict:
    """Append one history entry for ``records`` and rewrite the file.

    Returns the entry written.  ``latest`` mirrors the newest record
    per scenario so dashboards need not scan the history.
    """
    out = Path(path or os.environ.get(ENV_BENCH_OUT) or DEFAULT_BENCH_FILE)
    data = load_bench_file(out)
    entry = {
        "machine": machine_fingerprint(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": records,
    }
    history = data.get("history", [])
    history.append(entry)
    data["history"] = history[-MAX_HISTORY:]
    latest = data.get("latest", {})
    latest.update(records)
    data["latest"] = latest
    data["benchmark"] = benchmark
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(data, indent=2) + "\n")
    return entry


def best_history_rate(
    data: Dict, scenario: str, machine: str, metric: str = "events_per_sec"
) -> Optional[int]:
    """Best recorded ``metric`` for ``scenario`` on ``machine``.

    Entries without a machine tag (legacy records) are skipped — they
    may come from different hardware and would poison the comparison.
    """
    best: Optional[int] = None
    for entry in data.get("history", []):
        if entry.get("machine") != machine:
            continue
        rec = entry.get("scenarios", {}).get(scenario)
        if not rec:
            continue
        rate = rec.get(metric, 0)
        if best is None or rate > best:
            best = rate
    return best


def check_gate(
    records: Dict[str, Dict],
    data: Dict,
    machine: Optional[str] = None,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> Tuple[bool, List[str]]:
    """The CI perf-smoke gate: no scenario may regress > ``max_regression``.

    Compares each fresh record against the best same-machine history
    entry; a machine with no history falls back to the absolute floor
    (CI runners change hardware, and cross-machine events/second is
    meaningless).  Returns ``(ok, messages)``.
    """
    machine = machine or machine_fingerprint()
    ok = True
    messages: List[str] = []
    for name, rec in records.items():
        # each scenario declares its own metric in the registry:
        # fluid-tier records gate on flows/second (a whole incast burst
        # is a handful of rate events, so events/second would only
        # measure the scenario build) and closed-loop rpc records on
        # requests/second (the number the subsystem exists to serve)
        metric, unit, floor = _GATE_METRICS[gate_metric_for(name)]
        rate = rec.get(metric, 0)
        best = best_history_rate(data, name, machine, metric)
        if best is None or best <= 0:
            bar = floor
            basis = f"absolute floor (no history for machine {machine!r})"
        else:
            bar = round(best * (1.0 - max_regression))
            basis = f"best same-machine run {best:,} {unit} - {max_regression:.0%}"
        if rate < bar:
            ok = False
            messages.append(
                f"GATE FAIL {name}: {rate:,} {unit} < {bar:,} ({basis})"
            )
        else:
            messages.append(
                f"gate ok {name}: {rate:,} {unit} >= {bar:,} ({basis})"
            )
        min_hybrid = HYBRID_SPEEDUP_GATES.get(name)
        if min_hybrid is not None and "speedup_vs_packet" in rec:
            speedup = rec["speedup_vs_packet"]
            if speedup < min_hybrid:
                ok = False
                messages.append(
                    f"GATE FAIL {name}: speedup {speedup}x < "
                    f"{min_hybrid}x vs the packet engine"
                )
            else:
                messages.append(
                    f"gate ok {name}: speedup {speedup}x >= "
                    f"{min_hybrid}x vs packet"
                )
        min_speedup = SHARD_SPEEDUP_GATES.get(name)
        if min_speedup is not None and "speedup_vs_serial" in rec:
            speedup = rec["speedup_vs_serial"]
            shards = rec.get("shards", 0)
            cpus = rec.get("cpus", 0)
            if cpus < shards:
                # workers time-slicing fewer cores than domains cannot
                # show parallel speedup; record it, don't gate on it
                messages.append(
                    f"gate skip {name}: speedup {speedup}x not gated "
                    f"({cpus} CPU(s) < {shards} shards)"
                )
            elif speedup < min_speedup:
                ok = False
                messages.append(
                    f"GATE FAIL {name}: speedup {speedup}x < "
                    f"{min_speedup}x vs serial on {cpus} CPUs"
                )
            else:
                messages.append(
                    f"gate ok {name}: speedup {speedup}x >= {min_speedup}x"
                )
    return ok, messages


# -- one-call entry points ----------------------------------------------------


def run_engine_benchmark(repeats: int = 3) -> Dict:
    """The canonical ``quick`` record (kept for perf tests and tools)."""
    return run_bench_scenario(scenario_matrix()["quick"], repeats=repeats)


def run_and_write(
    repeats: int = 3,
    path: Union[str, Path, None] = None,
    scenarios: Optional[Iterable[str]] = None,
) -> Dict:
    """Benchmark, append to the trajectories, and return the records.

    Packet-engine records land in the engine file (``path`` /
    ``$REPRO_BENCH_OUT`` / ``BENCH_engine.json``); ``flowsim-*`` and
    ``hybrid-*`` records land in ``BENCH_flowsim.json`` and ``rpc-*``
    records in ``BENCH_rpc.json``, both next to it.  The return value maps
    scenario name to its fresh record, plus ``output_file`` (engine)
    and, when they ran, ``flowsim_output_file`` / ``rpc_output_file``.
    """
    records = run_matrix(scenarios, repeats=repeats)
    out = Path(path or os.environ.get(ENV_BENCH_OUT) or DEFAULT_BENCH_FILE)
    rpc = {k: v for k, v in records.items() if k.startswith(RPC_PREFIX)}
    flowsim = {
        k: v
        for k, v in records.items()
        if k.startswith((FLOWSIM_PREFIX, HYBRID_PREFIX)) and k not in rpc
    }
    engine = {
        k: v for k, v in records.items() if k not in rpc and k not in flowsim
    }
    result: Dict = dict(records)
    if engine:
        append_history(engine, out)
    result["output_file"] = str(out)
    if flowsim:
        flowsim_out = out.with_name(DEFAULT_FLOWSIM_FILE)
        append_history(flowsim, flowsim_out, benchmark="flowsim-bench")
        result["flowsim_output_file"] = str(flowsim_out)
    if rpc:
        rpc_out = out.with_name(DEFAULT_RPC_FILE)
        append_history(rpc, rpc_out, benchmark="rpc-bench")
        result["rpc_output_file"] = str(rpc_out)
    return result
