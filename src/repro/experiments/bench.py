"""Engine performance benchmark: a fixed-seed incastmix run.

One canonical scenario (the quick-scale §6.1 incastmix used by the
figure benchmarks, seed 1) is run end to end and timed.  The result —
events executed, wall seconds, events/second — is written to
``BENCH_engine.json`` so the engine's throughput trajectory is tracked
PR over PR.  Entry points:

* ``floodgate-experiment bench`` (see :mod:`repro.cli`);
* ``benchmarks/test_perf_engine.py`` (pytest, asserts a throughput
  floor).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Union

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig

#: env override for where ``BENCH_engine.json`` lands
ENV_BENCH_OUT = "REPRO_BENCH_OUT"

#: default output file (current working directory)
DEFAULT_BENCH_FILE = "BENCH_engine.json"


def bench_config() -> ScenarioConfig:
    """The canonical fixed-seed benchmark scenario.

    Mirrors ``figures.common.quick_overrides`` (the bench-scale
    incastmix substrate) with the webserver workload — the heaviest of
    the quick-scale figure runs, and deterministic at seed 1.
    """
    return ScenarioConfig(
        workload="webserver",
        cc="dcqcn",
        n_tors=4,
        hosts_per_tor=4,
        duration=600_000,
        buffer_bytes=500_000,
        incast_load=0.8,
        incast_fan_in=16,
        seed=1,
    )


def run_engine_benchmark(repeats: int = 1) -> Dict:
    """Run the benchmark scenario ``repeats`` times; report the best.

    Returns a JSON-ready dict with events/sec, wall seconds, and the
    run's headline invariants (events executed and flows completed are
    seed-determined, so they double as a determinism check).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    cfg = bench_config()
    best_wall = float("inf")
    result = None
    for _ in range(repeats):
        r = run_scenario(cfg)
        if r.wall_seconds < best_wall:
            best_wall = r.wall_seconds
            result = r
    assert result is not None
    return {
        "benchmark": "engine-incastmix-quick",
        "seed": cfg.seed,
        "events": result.events,
        "wall_seconds": round(best_wall, 4),
        "events_per_sec": round(result.events / best_wall) if best_wall else 0,
        "sim_time_ns": result.sim_time,
        "completed_flows": result.completed_flows,
        "total_flows": result.total_flows,
        "repeats": repeats,
    }


def write_benchmark(result: Dict, path: Union[str, Path, None] = None) -> Path:
    """Write the benchmark record to ``BENCH_engine.json``."""
    out = Path(path or os.environ.get(ENV_BENCH_OUT) or DEFAULT_BENCH_FILE)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")
    return out


def run_and_write(
    repeats: int = 1, path: Union[str, Path, None] = None
) -> Dict:
    """Benchmark, persist, and return the record (CLI/pytest entry)."""
    result = run_engine_benchmark(repeats=repeats)
    result["output_file"] = str(write_benchmark(result, path))
    return result
