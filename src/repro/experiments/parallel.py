"""Parallel scenario sweeps with on-disk result caching.

Figures that compare variants or sweep a parameter run 3-15 independent
simulations.  This module fans those runs out over a
``ProcessPoolExecutor`` and memoizes finished runs on disk:

* each run is described by a picklable :class:`SweepTask` — a
  :class:`ScenarioConfig` plus an optional module-level task function
  for figures that build custom traffic around the config;
* the worker extracts a slim, picklable :class:`ResultSummary` (FCT
  summaries and records, buffer maxima, PFC accounting, VOQ usage,
  event/wall counters) so the unpicklable ``Scenario``/``Simulator``
  never crosses the process boundary;
* completed runs are cached in ``REPRO_CACHE_DIR`` (or an explicit
  ``cache=`` directory) keyed by a stable hash of the config, the task
  function, and its arguments — a warm sweep costs one pickle load per
  variant.

Determinism: a sweep produces byte-identical summaries whether it runs
serially, through the pool, or from a warm cache (``tasks`` map to
results by key, and each worker runs the same seeded simulation the
serial path would).

Environment knobs::

    REPRO_PARALLEL=0      force serial in-process execution
    REPRO_CACHE_DIR=path  enable the disk cache at ``path``
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import multiprocessing
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.experiments.runner import ScenarioResult, run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.stats.collector import NON_INCAST, FlowClass, FlowSelector, StatsHub
from repro.stats.fct import FctSummary, summarize_fct
from repro.stats.rpc import RpcSummary, requests_per_sec, summarize_rpc
from repro.telemetry.export import TelemetryExport

#: bump when ResultSummary's layout or the simulation's semantics
#: change in a way that invalidates previously cached runs
CACHE_SCHEMA_VERSION = 9  # v9: hybrid fidelity tier, incremental max-min, fluid tail-path cache

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_PARALLEL = "REPRO_PARALLEL"


# ---------------------------------------------------------------------------
# slim result object
# ---------------------------------------------------------------------------


@dataclass
class ResultSummary:
    """Everything a figure needs from one run, in picklable form.

    Mirrors :class:`~repro.experiments.runner.ScenarioResult` minus the
    live ``scenario`` object: the :class:`StatsHub` is plain dicts and
    lists, so it crosses process boundaries and survives pickling to
    the disk cache unchanged.
    """

    config: ScenarioConfig
    stats: StatsHub
    completed_flows: int = 0
    total_flows: int = 0
    sim_time: int = 0
    events: int = 0
    #: max VOQs in use across extensions (extracted in the worker,
    #: because the extensions themselves stay behind)
    max_voqs_used: int = 0
    #: go-back-N/NDP retransmissions summed over every flow (the flow
    #: table stays behind with the scenario)
    retransmitted_packets: int = 0
    #: FaultInjector counters, {} when no plan was installed
    fault_summary: Dict[str, int] = field(default_factory=dict)
    #: finalized telemetry export (plain data, so it pickles across the
    #: pool and into the cache byte-identically), None unless enabled
    telemetry: Optional[TelemetryExport] = None
    #: invariant violations from the opt-in sanitizer (repro.simcheck);
    #: empty for clean sanitized runs and for unsanitized runs
    sanitizer_violations: List[str] = field(default_factory=list)
    #: figure-specific picklable payload (e.g. a sampled time series)
    extras: Dict[str, Any] = field(default_factory=dict)
    #: wall time of the producing run; excluded from equality so
    #: serial / pooled / cached runs of the same seed compare equal
    wall_seconds: float = field(default=0.0, compare=False)
    #: True when this summary came from the disk cache
    from_cache: bool = field(default=False, compare=False)

    # -- FCT ---------------------------------------------------------------------

    @property
    def poisson_fct(self) -> FctSummary:
        """Avg/p99 over all non-incast flows (the paper's Fig. 8 metric)."""
        return summarize_fct(self.stats.fct_of_class(NON_INCAST))

    @property
    def incast_fct(self) -> FctSummary:
        return summarize_fct(self.stats.fct_of_class(FlowClass.INCAST))

    def fct_summary(self, cls: Union[FlowClass, FlowSelector]) -> FctSummary:
        return summarize_fct(self.stats.fct_of_class(cls))

    # -- request-level SLOs (closed-loop rpc workloads) --------------------

    @property
    def rpc_summary(self) -> RpcSummary:
        """p50/p99/p999 request latency (empty summary if not rpc)."""
        return summarize_rpc(self.stats.rpc_records)

    @property
    def completed_requests(self) -> int:
        return len(self.stats.rpc_records)

    @property
    def requests_per_sec(self) -> float:
        """Achieved request throughput over the simulated window."""
        return requests_per_sec(self.completed_requests, self.sim_time)

    # -- buffers ------------------------------------------------------------------

    @property
    def max_switch_buffer_mb(self) -> float:
        return self.stats.max_switch_buffer / 1e6

    def max_port_buffer_mb(self, role: str) -> float:
        return self.stats.max_port_buffer_by_role(role) / 1e6

    def per_hop_buffers_mb(self, roles: List[str]) -> Dict[str, float]:
        return {r: self.max_port_buffer_mb(r) for r in roles}

    # -- PFC ----------------------------------------------------------------------

    def pfc_paused_us(self, node_kind: str) -> float:
        return self.stats.total_pfc_paused_us(node_kind)

    @property
    def pfc_triggered(self) -> bool:
        return self.stats.pfc_pause_events > 0

    @property
    def pfc_pause_events(self) -> int:
        return self.stats.pfc_pause_events

    # -- completion ---------------------------------------------------------------

    @property
    def completion_rate(self) -> float:
        if self.total_flows == 0:
            return 1.0
        return self.completed_flows / self.total_flows

    # -- faults -------------------------------------------------------------------

    @property
    def stall_events(self) -> int:
        return self.stats.stall_events

    @property
    def fault_drops_total(self) -> int:
        return self.stats.fault_drops_total

    # -- identity -----------------------------------------------------------------

    def canonical_bytes(self) -> bytes:
        """Pickled form with run-dependent fields zeroed.

        Two runs of the same seeded scenario — serial, pooled, or
        cache-served — produce identical canonical bytes.  Pickling
        runs in fast mode (memo disabled) so the bytes depend only on
        the summary's values, not on which equal strings happen to be
        the same object — crossing a process boundary breaks string
        interning and would otherwise change the memo layout.
        """
        clean = dataclasses.replace(self, wall_seconds=0.0, from_cache=False)
        buf = io.BytesIO()
        pickler = pickle.Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL)
        pickler.fast = True  # summaries are acyclic plain data
        pickler.dump(clean)
        return buf.getvalue()


def summarize(
    result: ScenarioResult, extras: Optional[Dict[str, Any]] = None
) -> ResultSummary:
    """Extract the slim summary from a full in-process result."""
    return ResultSummary(
        config=result.config,
        stats=result.stats,
        completed_flows=result.completed_flows,
        total_flows=result.total_flows,
        sim_time=result.sim_time,
        events=result.events,
        max_voqs_used=result.max_voqs_used,
        retransmitted_packets=result.retransmitted_packets,
        fault_summary=result.fault_summary,
        telemetry=result.telemetry,
        sanitizer_violations=result.sanitizer_violations,
        extras=extras or {},
        wall_seconds=result.wall_seconds,
    )


# ---------------------------------------------------------------------------
# tasks
# ---------------------------------------------------------------------------

#: a task function runs one scenario in the worker process; it must be
#: a module-level callable (picklable by reference) taking the config
#: plus ``args`` and returning a ScenarioResult or a ResultSummary
TaskFn = Callable[..., Union[ScenarioResult, ResultSummary]]


@dataclass(frozen=True)
class SweepTask:
    """One unit of a sweep: a result key plus how to produce it."""

    key: Any
    config: ScenarioConfig
    fn: Optional[TaskFn] = None
    args: Tuple[Any, ...] = ()


def execute_task(task: SweepTask) -> ResultSummary:
    """Run one task to a summary (the worker-process entry point)."""
    if task.fn is None:
        result: Union[ScenarioResult, ResultSummary] = run_scenario(task.config)
    else:
        result = task.fn(task.config, *task.args)
    if isinstance(result, ResultSummary):
        return result
    return summarize(result)


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


def config_fingerprint(config: ScenarioConfig) -> str:
    """Stable hex digest of a config (nested dataclasses included)."""
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def task_fingerprint(task: SweepTask) -> str:
    """Cache key: config + task function identity + arguments."""
    fn_id = (
        f"{task.fn.__module__}.{task.fn.__qualname__}"
        if task.fn is not None
        else "run_scenario"
    )
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "config": dataclasses.asdict(task.config),
            "fn": fn_id,
            "args": repr(task.args),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "floodgate-repro"


def _resolve_cache_dir(
    cache: Union[bool, str, Path, None]
) -> Optional[Path]:
    if cache is False:
        return None
    if cache is True:
        return default_cache_dir()
    if cache is not None:
        return Path(cache)
    # None: opt in via the environment only
    env = os.environ.get(ENV_CACHE_DIR)
    return Path(env) if env else None


def _cache_load(cache_dir: Path, digest: str) -> Optional[ResultSummary]:
    path = cache_dir / f"{digest}.pkl"
    try:
        with path.open("rb") as fh:
            summary = pickle.load(fh)
    except Exception:
        # unpickling arbitrary corrupt bytes can raise nearly anything
        # (ValueError, KeyError, UnpicklingError, ...); a bad cache
        # entry must degrade to a miss, never kill the sweep
        return None
    if not isinstance(summary, ResultSummary):
        return None
    summary.from_cache = True
    return summary


def _cache_store(cache_dir: Path, digest: str, summary: ResultSummary) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    # atomic publish: never expose a half-written pickle
    fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(summary, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, cache_dir / f"{digest}.pkl")
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# the sweep driver
# ---------------------------------------------------------------------------


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pool_context():
    """Prefer fork (cheap, inherits the imported package) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sweep(
    tasks: Iterable[SweepTask],
    max_workers: Optional[int] = None,
    cache: Union[bool, str, Path, None] = None,
    serial: bool = False,
) -> Dict[Any, ResultSummary]:
    """Run every task; return ``{task.key: ResultSummary}``.

    Cache hits are served first; the misses fan out over a process
    pool (unless ``serial`` is set, ``REPRO_PARALLEL=0``, or only one
    run is needed — then they run in-process).  Results are assembled
    in task order regardless of completion order, so the returned
    mapping is deterministic.
    """
    tasks = list(tasks)
    out: Dict[Any, ResultSummary] = {}
    cache_dir = _resolve_cache_dir(cache)

    misses: List[SweepTask] = []
    digests: Dict[Any, str] = {}
    for task in tasks:
        if cache_dir is not None:
            digest = task_fingerprint(task)
            digests[task.key] = digest
            hit = _cache_load(cache_dir, digest)
            if hit is not None:
                out[task.key] = hit
                continue
        misses.append(task)

    if misses:
        if serial or os.environ.get(ENV_PARALLEL) == "0":
            workers = 1
        else:
            workers = min(len(misses), max_workers or available_cpus())
        if workers <= 1 or len(misses) == 1:
            summaries = [execute_task(t) for t in misses]
        else:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            ) as pool:
                summaries = list(pool.map(execute_task, misses))
        for task, summary in zip(misses, summaries, strict=True):
            out[task.key] = summary
            if cache_dir is not None:
                _cache_store(cache_dir, digests[task.key], summary)

    # preserve the caller's task order
    return {task.key: out[task.key] for task in tasks}
