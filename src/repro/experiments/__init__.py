"""Experiment harness: scenario construction, runner, per-figure modules.

Every figure/table in the paper has a module under
``repro.experiments.figures`` that builds the right
:class:`ScenarioConfig`, runs it, and returns the rows/series the paper
reports.  Benchmarks under ``benchmarks/`` call those modules.
"""

from repro.experiments.scenario import Scale, Scenario, ScenarioConfig
from repro.experiments.runner import ScenarioResult, run_scenario
from repro.experiments.parallel import (
    ResultSummary,
    SweepTask,
    run_sweep,
    summarize,
)

__all__ = [
    "Scale",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "ResultSummary",
    "SweepTask",
    "run_scenario",
    "run_sweep",
    "summarize",
]
