"""Scenario construction: topology x congestion control x flow control.

A :class:`ScenarioConfig` names everything an experiment varies; a
:class:`Scenario` builds the simulator, network, protocol stack, and
traffic from it.  The two scales:

* ``Scale.PAPER`` — the paper's parameters (100/400 Gbps, 160 hosts,
  20 MB buffers).  Faithful but far too slow for CI in pure Python.
* ``Scale.CI`` — bandwidths, host counts, and durations shrunk ~10x
  with all dimensionless ratios preserved (oversubscription, loads,
  BDP-relative thresholds), so every result keeps its shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.cc.base import CcAlgorithm, StaticWindowCc
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import StallWatchdog
from repro.cc.dcqcn import Dcqcn, DcqcnConfig
from repro.cc.dctcp import Dctcp, DctcpConfig
from repro.cc.hpcc import Hpcc, HpccConfig
from repro.cc.timely import Timely, TimelyConfig
from repro.floodgate.config import FloodgateConfig
from repro.floodgate.extension import FloodgateExtension
from repro.net.ecn import EcnConfig, EcnMarker
from repro.net.host import Host
from repro.net.packet import DISABLED_POOL, PacketPool
from repro.net.switch import Switch
from repro.net.topology import (
    Topology,
    build_dumbbell,
    build_fat_tree,
    build_leaf_spine,
    build_testbed,
)
from repro.rpc.driver import ClosedLoopDriver
from repro.rpc.spec import RpcWorkloadSpec
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.simcheck.sanitizer import SanitizerConfig, SimSanitizer
from repro.stats.collector import StatsHub
from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.registry import TelemetryConfig
from repro.units import bdp_bytes, gbps, mb, ms, us
from repro.workloads.distributions import WORKLOADS
from repro.workloads.mix import IncastMix, build_incastmix
from repro.workloads.poisson import FlowSpec, PoissonGenerator


class Scale(str, Enum):
    """Experiment scale preset (see module docstring)."""

    CI = "ci"
    PAPER = "paper"


#: legal values for every enumerated config field, used by
#: ``ScenarioConfig.__post_init__`` — a typo'd value must fail at
#: construction, not silently run a default
_VALID_TOPOLOGIES = ("leaf-spine", "fat-tree", "testbed", "dumbbell")
_VALID_CC = ("dcqcn", "dctcp", "timely", "hpcc", "static")
_VALID_FLOW_CONTROL = (
    "none",
    "floodgate",
    "floodgate-ideal",
    "bfc",
    "pfc-tag",
    "ndp",
)
_VALID_PATTERNS = ("incastmix", "poisson", "incast", "rpc", "none")
_VALID_FIDELITY = ("packet", "flow", "hybrid")
#: flow controls the fluid tier can model (per-dst window caps); the
#: queue-level baselines have no fluid equivalent.  The hybrid tier
#: inherits the same set: its cold racks are fluid.
_FLOW_FIDELITY_FLOW_CONTROL = ("none", "floodgate", "floodgate-ideal")


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything one experiment run needs."""

    # --- fidelity ---------------------------------------------------------
    #: simulation tier: "packet" runs the per-packet event engine,
    #: "flow" the fluid max-min rate model (repro.flowsim), "hybrid"
    #: packet-level hot racks over a fluid background (repro.hybrid)
    fidelity: str = "packet"
    #: hybrid tier: rack indices (ToR order) simulated at packet
    #: fidelity; empty selects hot racks automatically from the
    #: workload's per-destination expected arrival rates
    hot_racks: Tuple[int, ...] = ()
    #: restrict fluid max-min recomputation to the connected component
    #: of links dirtied by the arrival/departure (repro.flowsim)
    maxmin_incremental: bool = True
    #: cross-check every incremental reallocation against a full
    #: recompute (slow; the validate CLIs expose it as --paranoid)
    paranoid_maxmin: bool = False

    # --- topology -----------------------------------------------------------
    topology: str = "leaf-spine"  # leaf-spine | fat-tree | testbed | dumbbell
    scale: Scale = Scale.CI
    n_spines: int = 0             # 0 -> scale default
    n_tors: int = 0
    hosts_per_tor: int = 0
    fat_tree_k: int = 4
    hosts_per_edge: int = 2
    host_bandwidth: float = 0.0   # bits/s; 0 -> scale default
    fabric_bandwidth: float = 0.0
    link_delay: int = 0           # ns (switch-switch); 0 -> scale default
    host_link_delay: int = 0      # ns (host-ToR); 0 -> scale default
    buffer_bytes: int = 0         # 0 -> scale default
    per_flow_ecmp: bool = False

    # --- protocol stack ------------------------------------------------------
    cc: str = "dcqcn"             # dcqcn | dctcp | timely | hpcc | static
    flow_control: str = "none"    # none | floodgate | floodgate-ideal |
    #                               bfc | pfc-tag | ndp
    per_dst_pause: bool = False
    pfc_enabled: bool = True
    #: per-flow sending window in base-BDP units (§6: one BDP)
    swnd_bdp: float = 1.0
    ecn_kmin: int = 0             # bytes; 0 -> BDP-derived default
    ecn_kmax: int = 0
    ecn_pmax: float = 0.2
    floodgate: Optional[FloodgateConfig] = None  # None -> scale defaults
    #: delayCredit threshold in BDP units (0 -> scale default: 10 at
    #: paper scale, 2 at CI scale — see EXPERIMENTS.md scaling notes)
    delay_credit_bdp: float = 0.0
    bfc_queues: int = 32          # physical queues/port (bfc); 0 = ideal
    rto: int = 0                  # ns; 0 -> derived from base RTT

    # --- workload ---------------------------------------------------------------
    workload: str = "websearch"
    pattern: str = "incastmix"    # incastmix | poisson | incast | none
    poisson_load: float = 0.8
    incast_load: float = 0.5
    incast_fan_in: int = 0        # 0 -> every host outside the dst rack
    incast_dst: int = 0
    #: closed-loop RPC workload (repro.rpc); required iff pattern="rpc".
    #: Plain frozen data, so it hashes into the sweep cache key like
    #: ``fault_plan``.
    rpc: Optional[RpcWorkloadSpec] = None
    duration: int = 0             # ns of traffic generation; 0 -> default
    seed: int = 1

    # --- faults -----------------------------------------------------------------
    #: scheduled fault injection (repro.faults); None or an empty plan
    #: leaves the run bit-identical to a fault-free build.  The plan is
    #: part of the config, so it hashes into the sweep cache key.
    fault_plan: Optional[FaultPlan] = None

    # --- telemetry --------------------------------------------------------------
    #: unified observability (repro.telemetry); None keeps the run
    #: bit-identical to a telemetry-free build.  Part of the config, so
    #: it hashes into the sweep cache key alongside the exported blob.
    telemetry: Optional[TelemetryConfig] = None

    # --- sanitizer --------------------------------------------------------------
    #: runtime invariant checks (repro.simcheck); None keeps the run
    #: bit-identical to a sanitizer-free build.  Part of the config, so
    #: it hashes into the sweep cache key.
    sanitize: Optional[SanitizerConfig] = None

    # --- run control ------------------------------------------------------------
    #: simulation domains (repro.sim.sharded): 1 runs the classic
    #: serial loop; >1 partitions the topology into per-pod (leaf-spine:
    #: per-ToR-group) domains synchronized by conservative lookahead.
    #: Sharded runs reproduce the serial event order exactly — the
    #: determinism harness asserts byte-identical digests/summaries.
    shards: int = 1
    #: sharded executor: "process" (one worker process per domain, the
    #: speedup path), "barrier" (in-process conservative windows),
    #: "lockstep" (in-process global-order merge, the equivalence
    #: reference), or "auto" (process, falling back to barrier for rpc
    #: workloads whose closed loop must share one address space)
    shard_mode: str = "auto"
    #: hard stop as a multiple of `duration` (lets stragglers finish)
    max_runtime_factor: float = 8.0
    track_bandwidth: bool = False
    #: recycle consumed packets through a shared free list (see
    #: repro.net.packet.PacketPool).  Off produces byte-identical event
    #: streams — the determinism suite asserts it — at more GC pressure.
    packet_pool: bool = True

    def __post_init__(self) -> None:
        """Reject invalid field values at construction time.

        Every enumerated field is checked here rather than deep inside
        the build, so ``ScenarioConfig(cc="bogus")`` fails immediately
        with the legal values in the message.  (Misspelled field
        *names* already fail: dataclasses reject unknown kwargs.)
        """
        checks = (
            ("fidelity", self.fidelity, _VALID_FIDELITY),
            ("topology", self.topology, _VALID_TOPOLOGIES),
            ("cc", self.cc, _VALID_CC),
            ("flow_control", self.flow_control, _VALID_FLOW_CONTROL),
            ("pattern", self.pattern, _VALID_PATTERNS),
            ("workload", self.workload, tuple(WORKLOADS)),
        )
        for name, value, valid in checks:
            if value not in valid:
                raise ValueError(
                    f"unknown {name} {value!r}; valid values: "
                    f"{', '.join(valid)}"
                )
        if self.pattern == "rpc" and self.rpc is None:
            raise ValueError(
                "pattern='rpc' needs a workload description: pass "
                "rpc=RpcWorkloadSpec(...) (see repro.rpc.spec for the knobs)"
            )
        if self.rpc is not None and self.pattern != "rpc":
            raise ValueError(
                f"an RpcWorkloadSpec was given but pattern is "
                f"{self.pattern!r}; set pattern='rpc' to drive the "
                f"closed-loop workload (or drop the rpc field)"
            )
        if self.rpc is not None and self.fault_plan is not None:
            for fault in self.fault_plan.faults:
                if fault.kind == "link-down" and fault.duration == 0:
                    raise ValueError(
                        "rpc workloads cannot run under a permanent "
                        "LinkDown (duration=0 means the link never comes "
                        "back, so closed-loop clients behind it stall "
                        "forever and the run only ends at the hard stop); "
                        "give the fault a finite duration"
                    )
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ValueError(
                f"shards must be a positive integer, got {self.shards!r}"
            )
        if self.shard_mode not in ("auto", "lockstep", "barrier", "process"):
            raise ValueError(
                f"unknown shard_mode {self.shard_mode!r}; valid values: "
                f"auto, lockstep, barrier, process"
            )
        if self.shards > 1 and self.fidelity != "packet":
            # faults, telemetry, and the sanitizer all run under shards
            # now (domain-local fault application, per-domain telemetry
            # shards, per-domain conservation ledgers — see
            # repro.sim.sharded); the fluid tier remains a single global
            # rate computation with nothing to partition
            raise ValueError(
                "shards > 1 requires fidelity='packet' (the fluid "
                "model is a single global rate computation)"
            )
        if self.fidelity in ("flow", "hybrid"):
            if self.flow_control not in _FLOW_FIDELITY_FLOW_CONTROL:
                raise ValueError(
                    f"fidelity={self.fidelity!r} cannot model flow_control="
                    f"{self.flow_control!r}; supported: "
                    f"{', '.join(_FLOW_FIDELITY_FLOW_CONTROL)}"
                )
            if self.fault_plan is not None and self.fault_plan:
                raise ValueError(
                    "fault injection requires fidelity='packet' "
                    "(the fluid model has no packets to drop or links "
                    "to flap mid-transfer)"
                )
        if not isinstance(self.hot_racks, tuple) or any(
            not isinstance(r, int) or isinstance(r, bool) or r < 0
            for r in self.hot_racks
        ):
            raise ValueError(
                f"hot_racks must be a tuple of non-negative rack "
                f"indices, got {self.hot_racks!r}"
            )
        if self.hot_racks and self.fidelity != "hybrid":
            raise ValueError(
                "hot_racks only applies to fidelity='hybrid' (packet "
                "runs everything hot, flow runs everything cold)"
            )
        if self.fidelity == "hybrid":
            if self.pattern == "rpc":
                raise ValueError(
                    "fidelity='hybrid' does not support closed-loop rpc "
                    "workloads yet (the driver would need to observe "
                    "completions across both tiers); use fidelity="
                    "'packet' or 'flow'"
                )
            if self.topology not in ("leaf-spine", "fat-tree"):
                raise ValueError(
                    "fidelity='hybrid' needs a racked topology "
                    "(leaf-spine or fat-tree) to partition into hot and "
                    "cold domains"
                )

    def resolved(self) -> "ScenarioConfig":
        """Fill in scale-dependent defaults."""
        if self.scale is Scale.PAPER:
            d = dict(
                n_spines=self.n_spines or 4,
                n_tors=self.n_tors or 10,
                hosts_per_tor=self.hosts_per_tor or 16,
                host_bandwidth=self.host_bandwidth or gbps(100),
                fabric_bandwidth=self.fabric_bandwidth or gbps(400),
                link_delay=self.link_delay or 600,
                host_link_delay=self.host_link_delay or self.link_delay or 600,
                buffer_bytes=self.buffer_bytes or mb(20),
                duration=self.duration or ms(4),
            )
        else:
            # CI scale keeps the paper's ratios: host links carry most
            # of the propagation delay so the *end-to-end* BDP stays
            # around one incast flow (30-40 MTU ~ 1 BDP, the sub-BDP
            # regime where CC cannot help), while switch-to-switch hop
            # BDP stays small so Floodgate's windows are small relative
            # to the buffer — the paper's hopBDP << C*T regime.  The
            # incast burst is comparable to the shared buffer so
            # PFC/drop dynamics appear as they do at 100 Gbps scale.
            d = dict(
                n_spines=self.n_spines or 2,
                n_tors=self.n_tors or 4,
                hosts_per_tor=self.hosts_per_tor or 8,
                host_bandwidth=self.host_bandwidth or gbps(10),
                fabric_bandwidth=self.fabric_bandwidth or gbps(40),
                link_delay=self.link_delay or 500,
                host_link_delay=self.host_link_delay or 6_000,
                buffer_bytes=self.buffer_bytes or 500_000,
                duration=self.duration or ms(2),
            )
        return replace(self, **d)


class Scenario:
    """A built, ready-to-run experiment."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config.resolved()
        cfg = self.config
        self.sim = Simulator()
        self.stats = StatsHub()
        self.stats.track_bandwidth = cfg.track_bandwidth
        self.rng = RngRegistry(cfg.seed)
        self.flow_table: Dict[int, object] = {}
        self._hosts_pending_cc: List[Host] = []
        self.extensions: List[object] = []
        self.topology = self._build_topology()
        # hosts and topology share one flow table
        self.topology.flow_table = self.flow_table
        #: one packet recycler per run, shared by every node (a packet
        #: released at its sink may be reborn anywhere)
        self.pool = PacketPool() if cfg.packet_pool else DISABLED_POOL
        for node in self.topology.hosts + self.topology.switches:
            node.pool = self.pool
        self.base_rtt = self.topology.base_rtt
        self.base_bdp = bdp_bytes(cfg.host_bandwidth, self.base_rtt)
        self.cc = self._build_cc()
        for host in self._hosts_pending_cc:
            host.cc = self.cc
            host.int_enabled = getattr(self.cc, "needs_int", False)
            host.rto = cfg.rto or 20 * self.base_rtt
            host.cnp_enabled = cfg.cc == "dcqcn"
        self._install_flow_control()
        self.mix: Optional[IncastMix] = None
        self.flows: List[FlowSpec] = []
        #: closed-loop driver (repro.rpc), built iff pattern="rpc"; the
        #: runner starts it after the open-loop schedule is loaded
        self.rpc_driver: Optional[ClosedLoopDriver] = None
        self._build_traffic()
        #: the fluid engine (repro.flowsim) attaches itself here when
        #: the runner dispatches a fidelity="flow" run; the sanitizer's
        #: rate-conservation sweep looks for it
        self.fluid = None
        #: the hybrid engine (repro.hybrid) attaches itself here on a
        #: fidelity="hybrid" run (it also sets ``fluid``: it *is* the
        #: cold tier); the sanitizer's boundary-conservation sweep and
        #: the telemetry harvest look for it
        self.hybrid = None
        self.fault_injector: Optional[FaultInjector] = None
        self.watchdog: Optional[StallWatchdog] = None
        self.telemetry: Optional[TelemetryRecorder] = None
        self.sanitizer: Optional[SimSanitizer] = None
        if cfg.shards == 1:
            # a sharded run defers all three layers to the sharded
            # runner, which installs them *after* domain binding so
            # fault events land on their link's own simulator, samplers
            # read per-domain hub shards, and the sanitizer keeps
            # per-domain conservation ledgers (repro.sim.sharded); the
            # install order there mirrors this one
            self._install_faults()
            if cfg.telemetry is not None:
                self.telemetry = TelemetryRecorder(self, cfg.telemetry)
                self.telemetry.start()
            if cfg.sanitize is not None:
                self.sanitizer = SimSanitizer(self, cfg.sanitize)
                self.sanitizer.start()

    def _install_faults(self) -> None:
        """Arm the fault plan, if any (no plan -> nothing scheduled)."""
        plan = self.config.fault_plan
        if plan is None or not plan:
            return
        if plan.faults:
            self.fault_injector = FaultInjector(
                self.sim, self.topology, plan, self.rng, stats=self.stats
            )
            self.fault_injector.install()
        if plan.stall_window > 0:
            self.watchdog = StallWatchdog(
                self.sim, self.topology, self.stats, plan.stall_window
            )
            self.watchdog.start()

    # -- topology ----------------------------------------------------------------

    def _host_factory(self, sim: Simulator, node_id: int, name: str) -> Host:
        cfg = self.config
        if cfg.flow_control == "ndp":
            from repro.baselines.ndp import NdpHost

            host: Host = NdpHost(
                sim, node_id, name, None, self.flow_table, stats=self.stats
            )
        elif cfg.flow_control == "bfc":
            from repro.baselines.bfc import BfcHost

            host = BfcHost(
                sim, node_id, name, None, self.flow_table, stats=self.stats
            )
        else:
            host = Host(
                sim, node_id, name, None, self.flow_table, stats=self.stats
            )
        self._hosts_pending_cc.append(host)
        return host

    def _switch_factory(
        self, sim: Simulator, node_id: int, name: str, kind: str, level: int
    ) -> Switch:
        cfg = self.config
        ecn = None
        if cfg.cc in ("dcqcn", "dctcp", "hpcc"):
            kmin = cfg.ecn_kmin or self._default_kmin()
            kmax = cfg.ecn_kmax or 4 * kmin
            ecn = EcnMarker(
                EcnConfig(kmin, max(kmax, kmin), cfg.ecn_pmax),
                self.rng.stream(f"ecn:{name}"),
            )
        # NDP is lossy by design (trimming replaces lossless fabrics)
        pfc = cfg.pfc_enabled and cfg.flow_control != "ndp"
        sw = Switch(
            sim,
            node_id,
            name,
            buffer_capacity=cfg.buffer_bytes,
            kind=kind,
            pfc_enabled=pfc,
            ecn=ecn,
            stats=self.stats,
            int_enabled=(cfg.cc == "hpcc"),
            per_flow_ecmp=cfg.per_flow_ecmp,
        )
        sw.level = level
        return sw

    def _default_kmin(self) -> int:
        # ECN marking threshold ~ one base BDP, the conventional setting
        cfg = self.config
        approx_rtt = 8 * cfg.link_delay + us(4)
        return max(10_000, bdp_bytes(cfg.host_bandwidth, approx_rtt))

    def _build_topology(self) -> Topology:
        cfg = self.config
        if cfg.topology == "leaf-spine":
            return build_leaf_spine(
                self.sim,
                self._host_factory,
                self._switch_factory,
                n_spines=cfg.n_spines,
                n_tors=cfg.n_tors,
                hosts_per_tor=cfg.hosts_per_tor,
                host_bandwidth=cfg.host_bandwidth,
                spine_bandwidth=cfg.fabric_bandwidth,
                link_delay=cfg.link_delay,
                host_link_delay=cfg.host_link_delay,
            )
        if cfg.topology == "fat-tree":
            return build_fat_tree(
                self.sim,
                self._host_factory,
                self._switch_factory,
                k=cfg.fat_tree_k,
                hosts_per_edge=cfg.hosts_per_edge,
                host_bandwidth=cfg.host_bandwidth,
                fabric_bandwidth=cfg.fabric_bandwidth or cfg.host_bandwidth,
                link_delay=cfg.link_delay,
                host_link_delay=cfg.host_link_delay,
            )
        if cfg.topology == "testbed":
            return build_testbed(
                self.sim,
                self._host_factory,
                self._switch_factory,
                host_bandwidth=cfg.host_bandwidth,
                core_bandwidth=cfg.fabric_bandwidth,
                link_delay=cfg.link_delay,
                host_link_delay=cfg.host_link_delay,
            )
        if cfg.topology == "dumbbell":
            return build_dumbbell(
                self.sim,
                self._host_factory,
                self._switch_factory,
                hosts_per_side=max(cfg.hosts_per_tor, 2),
                host_bandwidth=cfg.host_bandwidth,
                trunk_bandwidth=cfg.fabric_bandwidth,
                link_delay=cfg.link_delay,
            )
        raise ValueError(f"unknown topology {cfg.topology!r}")

    # -- protocol stack -------------------------------------------------------------

    def _build_cc(self) -> CcAlgorithm:
        cfg = self.config
        swnd = max(int(cfg.swnd_bdp * self.base_bdp), 2_000)
        if cfg.cc == "dcqcn":
            return Dcqcn(cfg.host_bandwidth, swnd, DcqcnConfig())
        if cfg.cc == "dctcp":
            return Dctcp(
                cfg.host_bandwidth, swnd, DctcpConfig(base_rtt=self.base_rtt)
            )
        if cfg.cc == "timely":
            return Timely(
                cfg.host_bandwidth, swnd, TimelyConfig(base_rtt=self.base_rtt)
            )
        if cfg.cc == "hpcc":
            return Hpcc(
                cfg.host_bandwidth, swnd, HpccConfig(base_rtt=self.base_rtt)
            )
        if cfg.cc == "static":
            return StaticWindowCc(cfg.host_bandwidth, swnd)
        raise ValueError(f"unknown congestion control {cfg.cc!r}")

    def _floodgate_config(self, ideal: bool) -> FloodgateConfig:
        cfg = self.config
        ci = cfg.scale is Scale.CI
        if cfg.floodgate is not None:
            base = cfg.floodgate
        elif ci:
            # Preserve the window-to-buffer ratio at CI scale: the
            # paper's T=10us at 400 Gbps adds ~500 KB to each window
            # against a 20 MB buffer (2.5%); 2us at 40 Gbps adds 10 KB
            # against 0.5 MB (2%).
            base = FloodgateConfig(credit_timer=us(2))
        else:
            base = FloodgateConfig()
        multiple = cfg.delay_credit_bdp or (2.0 if ci else 10.0)
        base = base.with_base_bdp(self.base_bdp, multiple)
        return replace(
            base,
            ideal=ideal,
            per_dst_pause=cfg.per_dst_pause or (ideal and base.per_dst_pause),
        )

    def _install_flow_control(self) -> None:
        cfg = self.config
        fc = cfg.flow_control
        if fc == "none":
            return
        if fc in ("floodgate", "floodgate-ideal"):
            fg_cfg = self._floodgate_config(ideal=(fc == "floodgate-ideal"))
            if cfg.per_dst_pause:
                fg_cfg = replace(fg_cfg, per_dst_pause=True)
            for sw in self.topology.switches:
                ext = FloodgateExtension(self.sim, fg_cfg)
                sw.install_extension(ext)
                self.extensions.append(ext)
            return
        if fc == "bfc":
            from repro.baselines.bfc import BfcConfig, install_bfc

            bfc_cfg = BfcConfig(
                n_queues=cfg.bfc_queues,
                pause_threshold=self.base_bdp,
            )
            install_bfc(self.sim, self.topology, bfc_cfg, self.extensions)
            return
        if fc == "pfc-tag":
            from repro.baselines.pfc_tag import PfcTagConfig, install_pfc_tag

            tag_cfg = PfcTagConfig(
                pause_threshold=2 * self.base_bdp,
                resume_threshold=self.base_bdp,
            )
            install_pfc_tag(self.sim, self.topology, tag_cfg, self.extensions)
            return
        if fc == "ndp":
            from repro.baselines.ndp import NdpSwitchExtension, configure_ndp_hosts

            for sw in self.topology.switches:
                ext = NdpSwitchExtension(self.sim)
                sw.install_extension(ext)
                self.extensions.append(ext)
            configure_ndp_hosts(self.topology, self.base_rtt)
            return
        raise ValueError(f"unknown flow control {fc!r}")

    # -- traffic ------------------------------------------------------------------------

    def rack_of(self) -> Dict[int, int]:
        """Host id -> rack index (derived from ToR attachment)."""
        mapping: Dict[int, int] = {}
        tors = [s for s in self.topology.switches if s.level == 0]
        for rack, tor in enumerate(tors):
            for host_id in tor.connected_hosts:
                mapping[host_id] = rack
        return mapping

    def incast_senders(self) -> List[int]:
        """Incast senders: hosts outside the destination's rack.

        ``incast_fan_in`` overrides the burst's flow count; values
        larger than the eligible host set wrap around (several flows
        per sender), which is how the successive-incast experiment
        reaches "hundreds of flows" per burst.
        """
        cfg = self.config
        rack_of = self.rack_of()
        dst_rack = rack_of[cfg.incast_dst]
        eligible = [
            h.node_id
            for h in self.topology.hosts
            if rack_of[h.node_id] != dst_rack
        ]
        if not cfg.incast_fan_in:
            return eligible
        return [eligible[i % len(eligible)] for i in range(cfg.incast_fan_in)]

    def _build_traffic(self) -> None:
        cfg = self.config
        if cfg.pattern == "none":
            return
        dist = WORKLOADS[cfg.workload]
        rng = self.rng.stream("workload")
        hosts = [h.node_id for h in self.topology.hosts]
        if cfg.pattern == "incastmix":
            self.mix = build_incastmix(
                dist,
                hosts,
                self.rack_of(),
                incast_dst=cfg.incast_dst,
                incast_senders=self.incast_senders(),
                host_bandwidth=cfg.host_bandwidth,
                duration=cfg.duration,
                rng=rng,
                poisson_load=cfg.poisson_load,
                incast_load=cfg.incast_load,
            )
            self.mix.register(self.stats)
            self.flows = self.mix.flows
        elif cfg.pattern == "poisson":
            gen = PoissonGenerator(
                dist,
                hosts,
                cfg.host_bandwidth,
                cfg.poisson_load,
                rng,
            )
            self.flows = gen.generate(cfg.duration)
        elif cfg.pattern == "rpc":
            spec = cfg.rpc
            first_flow_id = 0
            if spec.background_load > 0.0:
                gen = PoissonGenerator(
                    dist,
                    hosts,
                    cfg.host_bandwidth,
                    spec.background_load,
                    rng,
                )
                self.flows = gen.generate(cfg.duration)
                first_flow_id = gen.next_flow_id
            self.rpc_driver = ClosedLoopDriver(
                self, spec, first_flow_id=first_flow_id
            )
            self.rpc_driver.attach()
        elif cfg.pattern == "incast":
            from repro.workloads.incast import periodic_incast

            spec = periodic_incast(
                senders=self.incast_senders(),
                dst=cfg.incast_dst,
                host_bandwidth=cfg.host_bandwidth,
                duration=cfg.duration,
                rng=rng,
                load=cfg.incast_load,
            )
            for f in spec.flows:
                self.stats.register_incast_flow(f.flow_id)
            self.flows = spec.flows
        else:
            raise ValueError(f"unknown traffic pattern {cfg.pattern!r}")

    def schedule_flows(self, flows: Optional[List[FlowSpec]] = None) -> None:
        """Register and schedule flow start events (bulk heap load)."""
        topo = self.topology
        topo.start_flows(
            [
                topo.make_flow(
                    spec.flow_id, spec.src, spec.dst, spec.size, spec.start_time
                )
                for spec in (flows if flows is not None else self.flows)
            ]
        )
