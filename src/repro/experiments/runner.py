"""Run a scenario to completion and package the results.

The runner drives the simulator in chunks, stopping early once every
scheduled flow has delivered all its bytes (plus a drain margin), and
then extracts the aggregates the paper's figures report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.flowsim.model import FluidSimulation
from repro.stats.collector import NON_INCAST, FlowClass, FlowSelector, StatsHub
from repro.stats.fct import FctSummary, summarize_fct
from repro.stats.rpc import RpcSummary, requests_per_sec, summarize_rpc
from repro.telemetry.export import TelemetryExport
from repro.units import us


@dataclass
class ScenarioResult:
    """Everything a figure needs from one run."""

    config: ScenarioConfig
    stats: StatsHub
    scenario: Scenario
    completed_flows: int = 0
    total_flows: int = 0
    sim_time: int = 0
    wall_seconds: float = 0.0
    events: int = 0
    #: finalized telemetry export, None unless the config enabled it
    telemetry: Optional[TelemetryExport] = None
    #: invariant violations the sanitizer collected; empty both for
    #: clean sanitized runs and for unsanitized runs
    sanitizer_violations: List[str] = field(default_factory=list)
    #: sharded-run aggregates (repro.sim.sharded).  A multiprocess
    #: sharded run leaves the in-memory scenario unexecuted, so VOQ and
    #: retransmission totals come back from the workers instead of the
    #: local extension/flow-table scan; None everywhere else.
    shard_max_voqs: Optional[int] = None
    shard_retransmitted: Optional[int] = None
    #: per-domain event-stream digests (hex), populated only when the
    #: determinism harness requests them from a sharded run
    shard_digests: Optional[List[str]] = None
    #: lockstep-mode global digest (hex), byte-comparable to a serial
    #: run's depth-free EventStreamDigest
    shard_global_digest: Optional[str] = None
    #: fault counters merged back from sharded workers (the parent's
    #: in-memory injector never ran there); None everywhere else
    shard_fault_summary: Optional[Dict[str, int]] = None
    #: cross-domain mutations the isolation sanitizer caught under
    #: ``check --sharded --isolate``; None when isolation was off
    shard_isolation_violations: Optional[List[str]] = None

    # -- FCT ---------------------------------------------------------------------

    @property
    def poisson_fct(self) -> FctSummary:
        """Avg/p99 over all non-incast flows (the paper's Fig. 8 metric)."""
        return summarize_fct(self.stats.fct_of_class(NON_INCAST))

    @property
    def incast_fct(self) -> FctSummary:
        return summarize_fct(self.stats.fct_of_class(FlowClass.INCAST))

    def fct_summary(self, cls: Union[FlowClass, FlowSelector]) -> FctSummary:
        return summarize_fct(self.stats.fct_of_class(cls))

    # -- request-level SLOs (closed-loop rpc workloads) --------------------

    @property
    def rpc_summary(self) -> RpcSummary:
        """p50/p99/p999 request latency (empty summary if not rpc)."""
        return summarize_rpc(self.stats.rpc_records)

    @property
    def completed_requests(self) -> int:
        return len(self.stats.rpc_records)

    @property
    def requests_per_sec(self) -> float:
        """Achieved request throughput over the simulated window."""
        return requests_per_sec(self.completed_requests, self.sim_time)

    # -- buffers ------------------------------------------------------------------

    @property
    def max_switch_buffer_mb(self) -> float:
        return self.stats.max_switch_buffer / 1e6

    def max_port_buffer_mb(self, role: str) -> float:
        return self.stats.max_port_buffer_by_role(role) / 1e6

    def per_hop_buffers_mb(self, roles: List[str]) -> Dict[str, float]:
        return {r: self.max_port_buffer_mb(r) for r in roles}

    # -- PFC ----------------------------------------------------------------------

    def pfc_paused_us(self, node_kind: str) -> float:
        return self.stats.total_pfc_paused_us(node_kind)

    @property
    def pfc_triggered(self) -> bool:
        return self.stats.pfc_pause_events > 0

    # -- Floodgate internals ---------------------------------------------------------

    @property
    def max_voqs_used(self) -> int:
        if self.shard_max_voqs is not None:
            return self.shard_max_voqs
        return max(
            (
                ext.pool.max_in_use
                for ext in self.scenario.extensions
                if hasattr(ext, "pool")
            ),
            default=0,
        )

    @property
    def completion_rate(self) -> float:
        if self.total_flows == 0:
            return 1.0
        return self.completed_flows / self.total_flows

    # -- fault injection --------------------------------------------------------

    @property
    def fault_summary(self) -> Dict[str, int]:
        """Injected-fault counters, or {} when no plan was installed."""
        if self.shard_fault_summary is not None:
            return self.shard_fault_summary
        injector = self.scenario.fault_injector
        return injector.summary() if injector is not None else {}

    @property
    def stall_events(self) -> int:
        return self.stats.stall_events

    @property
    def retransmitted_packets(self) -> int:
        """Go-back-N/NDP retransmissions summed over every flow."""
        if self.shard_retransmitted is not None:
            return self.shard_retransmitted
        return sum(
            f.retransmitted_packets
            for f in self.scenario.topology.flow_table.values()
        )


def run_scenario(
    config: ScenarioConfig,
    scenario: Optional[Scenario] = None,
    check_interval: int = us(100),
    isolate: bool = False,
) -> ScenarioResult:
    """Build (unless given), schedule, and run a scenario to completion."""
    wall_start = time.monotonic()  # simcheck: ignore[SIM002] -- wall time for reporting only
    sc = scenario if scenario is not None else Scenario(config)
    if sc.config.shards > 1:
        # conservative-parallel path: partition the topology into
        # domains and run them concurrently (repro.sim.sharded).  The
        # serial loop below stays byte-for-byte untouched at shards=1.
        from repro.sim.sharded import run_sharded_scenario

        return run_sharded_scenario(
            sc, check_interval, wall_start, isolate=isolate
        )
    fluid = None
    if sc.config.fidelity == "flow":
        # fluid tier: same Scenario build (topology, routes, traffic,
        # CC/flow-control parameters), but flows evolve as rates on the
        # event loop instead of packets — see repro.flowsim
        fluid = FluidSimulation(sc)
        fluid.schedule()
    elif sc.config.fidelity == "hybrid":
        # hybrid tier: hot racks run the packet engine, everything else
        # the fluid model, stitched at the rack uplinks — see
        # repro.hybrid (it subclasses FluidSimulation, so the fluid
        # plumbing below applies to its cold tier too)
        from repro.hybrid.model import HybridSimulation

        fluid = HybridSimulation(sc)
        fluid.schedule()
    else:
        sc.schedule_flows()
    driver = sc.rpc_driver
    if driver is not None:
        driver.start(fluid)
    sim = sc.sim
    cfg = sc.config
    topo = sc.topology
    hard_end = int(cfg.duration * cfg.max_runtime_factor)
    # completion is an O(1) counter kept by the hosts' flow-done
    # callbacks (Topology.completed_flows), not an O(total) table scan.
    # Closed-loop drivers grow the flow table while the run progresses,
    # so `total` is re-read each check rather than captured once.
    while True:
        next_stop = min(sim.now + check_interval, hard_end)
        sim.run(until=next_stop)
        total = len(topo.flow_table)
        if topo.completed_flows >= total and (
            driver is None or driver.finished
        ):
            break
        if sim.now >= hard_end:
            break
        if sim.peek_next_time() is None:
            break  # drained without completing (e.g. unrecovered loss)
    total = len(topo.flow_table)
    topo.report_pause_times()
    if sc.watchdog is not None:
        if topo.completed_flows < total:
            # ended (hard stop or drain) with flows stranded: make sure
            # the stall is on the record even if the last watchdog
            # window never elapsed
            sc.watchdog.note_drained()
        sc.watchdog.stop()
    for ext in sc.extensions:
        stop = getattr(ext, "stop", None)
        if stop is not None:
            stop()
    if sc.hybrid is not None:
        sc.hybrid.stop()
    telemetry = sc.telemetry.finalize() if sc.telemetry is not None else None
    violations: List[str] = []
    if sc.sanitizer is not None:
        sc.sanitizer.final_check()
        violations = list(sc.sanitizer.violations)
    # canonical record order: makes serial and sharded runs (which
    # merge per-domain stats) produce identical summary bytes
    sc.stats.canonicalize()
    return ScenarioResult(
        config=cfg,
        stats=sc.stats,
        scenario=sc,
        completed_flows=topo.completed_flows,
        total_flows=total,
        sim_time=sim.now,
        wall_seconds=time.monotonic() - wall_start,  # simcheck: ignore[SIM002] -- wall time for reporting only
        events=sim.events_executed,
        telemetry=telemetry,
        sanitizer_violations=violations,
    )
