"""Timer and periodic-task helpers built on the raw event engine.

These wrap the common stateful patterns in network protocols: a
restartable one-shot timer (retransmission timeouts, switchSYN
timeouts) and a periodic task (credit timers, rate-increase timers)
that can be paused and resumed without leaking events.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A restartable one-shot timer.

    ``start`` (re)arms the timer; ``stop`` disarms it.  The callback
    fires once per arming.  Restarting an armed timer cancels the
    pending expiry first, so at most one expiry is ever outstanding.
    """

    def __init__(self, sim: Simulator, fn: Callable[..., Any], *args: Any) -> None:
        self._sim = sim
        self._fn = fn
        self._args = args
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """True while an expiry is pending."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: int) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` ns from now."""
        self.stop()
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._fn(*self._args)


class PeriodicTask:
    """Calls ``fn`` every ``interval`` ns until stopped.

    The first call happens one full interval after :meth:`start` (use
    ``phase`` to shift it).  The callback runs before the next interval
    is scheduled, so a callback that calls :meth:`stop` terminates the
    task cleanly.

    ``observer=True`` marks the task as pure observation: its callback
    reads simulation state but never mutates it or schedules follow-up
    work (telemetry samplers, sanitizer sweeps, stall watchdogs).  The
    determinism harness excludes observer ticks from event-stream
    digests, because a sharded run observes per domain (D ticks per
    interval) where a serial run observes once — the *simulation*
    streams are still required to match byte-for-byte.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: int,
        fn: Callable[..., Any],
        *args: Any,
        observer: bool = False,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self.interval = interval
        self._fn = fn
        self._args = args
        self._event: Optional[Event] = None
        self._running = False
        self.observer = observer

    @property
    def running(self) -> bool:
        return self._running

    def start(self, phase: int = 0) -> None:
        """Begin ticking; first tick at ``now + interval + phase``."""
        if self._running:
            return
        self._running = True
        self._event = self._sim.schedule(self.interval + phase, self._tick)

    def stop(self) -> None:
        """Stop ticking; the pending tick is cancelled."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._fn(*self._args)
        if self._running:
            self._event = self._sim.schedule(self.interval, self._tick)
