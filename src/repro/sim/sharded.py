"""Conservative-parallel sharded execution of one big topology.

The serial engine runs one heap over the whole fabric.  This module
partitions a built :class:`~repro.experiments.scenario.Scenario` into
``shards`` simulation *domains* — per-pod on fat trees, per-ToR-group
on leaf-spine fabrics — each with its own :class:`Simulator` heap,
node set, and packet pool, synchronized by classic conservative
lookahead: the minimum propagation delay over the links that cross a
domain boundary.  Domains advance independently inside a window no
wider than that lookahead, then exchange boundary deliveries through
deterministic ordered channels.

Why the result is *identical* to serial, not merely statistically
equivalent: the engine's heap key is ``(time, lid, seq)`` where every
link delivery carries the per-direction link id it crossed and local
events carry ``lid=0`` (see :mod:`repro.sim.engine`).  Two events in
different domains can only interact through a link delivery, and a
boundary delivery's full key is computed on the *sending* side.
Within a domain, events execute in the serial order restricted to that
domain (induction on the event sequence: identical state implies
identical scheduling actions implies identical keys); across domains,
keys at the same instant are ordered by ``lid``, which names the
sending domain for boundary traffic.  So per-domain execution order —
and therefore every measured quantity — is independent of how the
domains interleave in wall time.

Three executors share that argument:

* ``lockstep`` — in-process reference: one merged loop always runs the
  globally smallest key, all domain sims share one sequence counter,
  so the interleaved stream replays the serial order *exactly* (the
  equivalence harness hashes it against a serial run);
* ``barrier`` — in-process conservative windows: domains run
  sequentially to each barrier, boundary deliveries are exchanged at
  the barrier.  Needed for closed-loop rpc workloads, whose driver
  state (requests, the growing flow table) must share one address
  space;
* ``process`` — the speedup path: one forked worker per domain, each
  inheriting the built scenario and running only its own domain;
  boundary deliveries and barrier control ride pipes, and per-domain
  stats hubs are merged (:meth:`StatsHub.merge_from`) at the end.

Fault plans, telemetry, and the sanitizer all run under shards.  Each
is installed *after* domain binding so its state is domain-local:
fault transitions are scheduled on the faulted link's own simulator
(plans touching boundary links are rejected up front), telemetry
samples per-domain hub shards merged in deterministic domain order
(:mod:`repro.telemetry.shard`), and the sanitizer keeps per-domain
conservation ledgers summed at barrier windows
(:class:`~repro.simcheck.sanitizer.ShardedSanitizer`).  The optional
isolation sanitizer (``check --sharded --isolate``) tags hot objects
with their owning domain and asserts every executed callback ran under
that domain (:mod:`repro.simcheck.isolation`).

Remaining restrictions (enforced by ``ScenarioConfig.__post_init__``
and this module): packet fidelity only; the rpc closed loop and the
stall watchdog need one address space, so they run under the
in-process executors only.
"""

from __future__ import annotations

import time as _time
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.net.packet import DISABLED_POOL, PacketKind, PacketPool
from repro.sim.engine import Simulator

__all__ = [
    "partition_nodes",
    "boundary_lookahead",
    "run_sharded_scenario",
]


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------


def partition_nodes(scenario, shards: int) -> Dict[int, int]:
    """Map every node id (hosts and switches) to a domain index.

    Fat trees partition per pod (``pod * shards // k``) with core
    switches block-distributed across domains; every other built
    topology partitions its ToRs into contiguous groups
    (``tor * shards // n_tors``), hosts follow their rack, and
    spines/cores are block-distributed.  The rules are pure functions
    of the build, so every worker process computes the same map.
    """
    cfg = scenario.config
    topo = scenario.topology
    domain: Dict[int, int] = {}
    if cfg.topology == "fat-tree":
        k = cfg.fat_tree_k
        half = k // 2
        n_cores = half * half
        for i, sw in enumerate(topo.switches):
            if i < n_cores:
                domain[sw.node_id] = i * shards // n_cores
            else:
                # per pod: half aggs then half edges, k switches total
                pod = (i - n_cores) // k
                domain[sw.node_id] = pod * shards // k
        hosts_per_pod = half * cfg.hosts_per_edge
        for h in topo.hosts:
            pod = h.node_id // hosts_per_pod
            domain[h.node_id] = pod * shards // k
    else:
        tors = [s for s in topo.switches if s.level == 0]
        spines = [s for s in topo.switches if s.level != 0]
        n_tors = len(tors)
        for t, sw in enumerate(tors):
            domain[sw.node_id] = t * shards // n_tors
        for s, sw in enumerate(spines):
            domain[sw.node_id] = s * shards // len(spines)
        for h in topo.hosts:
            tor = h.links[0].peer_of(h)
            domain[h.node_id] = domain[tor.node_id]
    populated = set(domain.values())
    if populated != set(range(shards)):
        empty = sorted(set(range(shards)) - populated)
        raise ValueError(
            f"shards={shards} leaves domain(s) {empty} empty on this "
            f"topology; use fewer shards"
        )
    return domain


def boundary_lookahead(topology, domain_of: Dict[int, int]) -> int:
    """Conservative lookahead: min propagation delay crossing domains."""
    lookahead: Optional[int] = None
    for link in topology.links:
        if domain_of[link.node_a.node_id] != domain_of[link.node_b.node_id]:
            if lookahead is None or link.delay < lookahead:
                lookahead = link.delay
    if lookahead is None:
        raise ValueError(
            "no links cross a domain boundary; a connected topology "
            "partitioned into 2+ non-empty domains always has some"
        )
    if lookahead <= 0:
        raise ValueError("boundary links must have positive delay")
    return lookahead


# ---------------------------------------------------------------------------
# domain binding
# ---------------------------------------------------------------------------


class _SharedSeqSimulator(Simulator):
    """A domain simulator drawing sequence numbers from a shared cell.

    The lockstep executor interleaves domain heaps in global key
    order; sharing one counter across the domains makes every tie at
    ``(time, lid=0)`` break in the same global scheduling order a
    serial run would produce, so the merged stream replays serial
    execution exactly.
    """

    def __init__(self, cell: List[int]) -> None:
        # the property below routes _seq through the cell, so the cell
        # must exist before Simulator.__init__ assigns _seq = 0
        self._seq_cell = cell
        super().__init__()

    @property
    def _seq(self) -> int:
        return self._seq_cell[0]

    @_seq.setter
    def _seq(self, value: int) -> None:
        self._seq_cell[0] = value


class _DirectChannel:
    """Lockstep boundary channel: push straight into the target heap.

    Safe because the merged loop always executes the globally smallest
    key and a delivery's time is strictly in the future.
    """

    __slots__ = ("sims", "domain_of")

    def __init__(self, sims: List[Simulator], domain_of: Dict[int, int]):
        self.sims = sims
        self.domain_of = domain_of

    def send(self, peer, item: tuple) -> None:
        heappush(self.sims[self.domain_of[peer.node_id]]._heap, item)


class _MailboxChannel:
    """Barrier boundary channel: buffer until the next barrier flush."""

    __slots__ = ("mailboxes", "domain_of")

    def __init__(self, mailboxes: List[list], domain_of: Dict[int, int]):
        self.mailboxes = mailboxes
        self.domain_of = domain_of

    def send(self, peer, item: tuple) -> None:
        self.mailboxes[self.domain_of[peer.node_id]].append(item)


class _WireChannel:
    """Process-mode boundary channel: picklable outbox entries.

    The heap item holds a bound method (``peer.receive``) that cannot
    cross a pipe; ship ``(time, lid, seq, node_id, port, packet)`` and
    let the receiving worker rebind it to its own copy of the node.
    """

    __slots__ = ("outbox", "domain_of")

    def __init__(self, outbox: List[list], domain_of: Dict[int, int]):
        self.outbox = outbox
        self.domain_of = domain_of

    def send(self, peer, item: tuple) -> None:
        t, lid, seq, _ev, _fn, (pkt, port) = item
        self.outbox[self.domain_of[peer.node_id]].append(
            (t, lid, seq, peer.node_id, port, pkt)
        )


def _rebind_extension(ext, sim: Simulator) -> None:
    """Point a switch extension's timer machinery at its domain sim."""
    if hasattr(ext, "sim"):
        ext.sim = sim
    credits = getattr(ext, "credits", None)
    if credits is not None:
        credits.sim = sim
        for task in getattr(credits, "_timers", {}).values():
            task._sim = sim
    syn = getattr(ext, "_syn_task", None)
    if syn is not None:
        syn._sim = sim


def _bind_domains(
    scenario,
    domain_of: Dict[int, int],
    sims: List[Simulator],
    pools: list,
    channel,
    hubs: Optional[list] = None,
) -> None:
    """Rebind every node, port, link, and extension to its domain.

    The scenario is built against one throwaway simulator; the build
    leaves its heap empty (every protocol timer is created lazily), so
    rebinding is pure pointer surgery — no scheduled event moves.
    Boundary links get the channel instead of a domain sim; their
    ``deliver`` computes the ordering key on the sending side.

    ``hubs`` (in-process telemetry runs only) rebinds every node's
    stats sink to its domain's hub shard, so sampler reads and hot-path
    records stay domain-local; every ``.stats`` access in the data path
    goes through the node attribute, so this one rebind covers hosts,
    switches, extensions, and link fault states alike.
    """
    topo = scenario.topology
    for node in topo.hosts + topo.switches:
        d = domain_of[node.node_id]
        node.sim = sims[d]
        node.pool = pools[d]
        if hubs is not None:
            node.stats = hubs[d]
        for port in node.ports:
            port.sim = sims[d]
    for link in topo.links:
        da = domain_of[link.node_a.node_id]
        db = domain_of[link.node_b.node_id]
        if da == db:
            link.sim = sims[da]
        else:
            link.channel = channel
    for sw in topo.switches:
        if sw.extension is not None:
            _rebind_extension(sw.extension, sims[domain_of[sw.node_id]])


def _schedule_flows_sharded(scenario) -> None:
    """Schedule every open-loop flow start on its source host's sim.

    Iterates the flow list in the exact order the serial
    ``schedule_flows`` bulk-load does, so per-domain sequence numbers
    preserve the serial relative order (and the lockstep executor's
    shared counter reproduces the serial numbers outright).
    """
    topo = scenario.topology
    hosts = topo.hosts
    for spec in scenario.flows:
        flow = topo.make_flow(
            spec.flow_id, spec.src, spec.dst, spec.size, spec.start_time
        )
        host = hosts[flow.src]
        sim = host.sim
        sim.schedule_call_at(
            max(flow.start_time, sim.now), host.start_flow, flow
        )


def _assert_clean_build(scenario) -> None:
    if scenario.sim.pending_events:
        raise RuntimeError(
            "sharded execution requires an empty build-time heap; "
            "something scheduled events during Scenario construction"
        )


class _Clock:
    """Minimal ``.now`` holder for the lockstep global digest."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0


# ---------------------------------------------------------------------------
# faults / telemetry / sanitizer under shards
# ---------------------------------------------------------------------------


def _validate_fault_plan(scenario, domain_of: Dict[int, int]) -> None:
    """Reject fault plans that touch a boundary link.

    A boundary link's delivery is split across two domains (send-side
    key computation, receive-side execution), so a fault state on it
    would be mutated from both — the exact cross-domain aliasing the
    shard-safety lints forbid.  Domain-local application is the only
    sound semantics, so boundary-crossing plans fail fast here rather
    than silently diverging from serial.
    """
    plan = scenario.config.fault_plan
    if plan is None or not plan.faults:
        return
    from repro.faults.injector import match_links

    for fault in plan.faults:
        for link in match_links(fault.link, scenario.topology):
            da = domain_of[link.node_a.node_id]
            db = domain_of[link.node_b.node_id]
            if da != db:
                raise ValueError(
                    f"fault plan selector {fault.link!r} matches boundary "
                    f"link {link.node_a.name}<->{link.node_b.name} "
                    f"(domains {da} and {db}); sharded fault application "
                    "is domain-local — target intra-domain links (e.g. "
                    "'host-switch') or use shards=1"
                )


def _install_faults_sharded(scenario, watchdog_sim: Optional[Simulator]) -> None:
    """Arm the fault plan after domain binding (in-process executors).

    ``LinkFaultState`` schedules every transition on its link's own
    domain simulator and counts drops into the link's owner hub, so
    installation is domain-local once validation has rejected boundary
    targets.  The stall watchdog is a whole-run observer with no
    per-domain state; it rides the first domain's engine (windows are
    exact under lockstep, approximate under barrier — each sweep sees
    other domains at most one window behind).
    """
    plan = scenario.config.fault_plan
    if plan is None or not plan:
        return
    if plan.faults:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            scenario.sim, scenario.topology, plan, scenario.rng,
            stats=scenario.stats,
        )
        injector.install()
        scenario.fault_injector = injector
    if plan.stall_window > 0 and watchdog_sim is not None:
        from repro.faults.watchdog import StallWatchdog

        watchdog = StallWatchdog(
            watchdog_sim, scenario.topology, scenario.stats,
            plan.stall_window,
        )
        watchdog.start()
        scenario.watchdog = watchdog


def _wire_shard_telemetry(scenario, domain_of, sims, hubs, tele_cfg) -> list:
    """One started :class:`DomainTelemetry` per domain, in domain order."""
    from repro.telemetry.shard import DomainTelemetry

    topo = scenario.topology
    recorders = []
    for d, sim in enumerate(sims):
        hosts = [h for h in topo.hosts if domain_of[h.node_id] == d]
        switches = [s for s in topo.switches if domain_of[s.node_id] == d]
        recorder = DomainTelemetry(d, sim, tele_cfg, hubs[d], hosts, switches)
        recorder.start()
        recorders.append(recorder)
    if tele_cfg.histograms and scenario.rpc_driver is not None:
        # request latencies record on the parent hub (the driver's own
        # sink); per-domain hub shards carry fct/queuing only
        from repro.telemetry.registry import Histogram

        scenario.stats.rpc_histogram = Histogram("rpc_latency_ns", unit="ns")
    return recorders


def _set_domain_profilers(sims, sinks_of) -> None:
    """Install per-domain profiler-slot sinks, fanning out when needed."""
    from repro.telemetry.profile import ProfilerFanout

    for d, sim in enumerate(sims):
        sinks = [s for s in sinks_of(d) if s is not None]
        if len(sinks) == 1:
            sim.set_profiler(sinks[0])
        elif sinks:
            sim.set_profiler(ProfilerFanout(*sinks))


# ---------------------------------------------------------------------------
# in-process executors
# ---------------------------------------------------------------------------


def _advance_lockstep(sims: List[Simulator], until: int, digests) -> None:
    """Execute the globally smallest key until every head passes ``until``."""
    heaps = [s._heap for s in sims]
    if digests is not None:
        global_digest, domain_digests, clock = digests
    while True:
        best_d = -1
        best_key: Optional[Tuple[int, int, int]] = None
        for d, heap in enumerate(heaps):
            while heap:
                head = heap[0]
                ev = head[3]
                if ev is not None and ev.cancelled:
                    heappop(heap)
                    continue
                break
            if not heap:
                continue
            head = heap[0]
            if head[0] > until:
                continue
            key = (head[0], head[1], head[2])
            if best_key is None or key < best_key:
                best_key = key
                best_d = d
        if best_d < 0:
            break
        sim = sims[best_d]
        time_, _lid, _seq, _ev, fn, args = heappop(heaps[best_d])
        sim.now = time_
        sim._events_executed += 1
        fn(*args)
        # the merged loop bypasses Simulator.run(), so any slot sink
        # (telemetry profiler, isolation probe) gets fed here; lockstep
        # digests stay explicit below and are never also in the slot
        prof = sim._profiler
        if prof is not None:
            prof.note(fn, 0.0, len(heaps[best_d]))
        if digests is not None:
            clock.now = time_
            global_digest.note(fn, 0.0, 0)
            domain_digests[best_d].note(fn, 0.0, 0)
    for s in sims:
        if s.now < until:
            s.now = until


def _flush_mailboxes(sims: List[Simulator], mailboxes: List[list]) -> None:
    for d, box in enumerate(mailboxes):
        if box:
            heap = sims[d]._heap
            for item in box:
                heappush(heap, item)
            box.clear()


def _advance_barrier(
    sims: List[Simulator],
    mailboxes: List[list],
    start: int,
    until: int,
    lookahead: int,
) -> None:
    """Run conservative windows from ``start`` to exactly ``until``.

    Window safety: events executed in ``(H, H_next]`` can only send
    boundary deliveries at ``t_e + delay >= t_e + lookahead``, and
    ``H_next <= max(H, min_next - 1) + lookahead`` with ``t_e > H``
    and ``t_e >= min_next``, so every delivery lands strictly after
    ``H_next`` — always in a future window.  The adaptive jump to
    ``min_next - 1 + lookahead`` keeps idle stretches (and the drain
    tail) from costing one barrier per lookahead.
    """
    H = start
    while H < until:
        _flush_mailboxes(sims, mailboxes)
        min_next: Optional[int] = None
        for s in sims:
            t = s.peek_next_time()
            if t is not None and (min_next is None or t < min_next):
                min_next = t
        if min_next is None or min_next > until:
            h_next = until
        else:
            h_next = min(until, max(H + lookahead, min_next - 1 + lookahead))
        for s in sims:
            s.run(until=h_next)
        H = h_next
    _flush_mailboxes(sims, mailboxes)


def _run_inprocess(
    scenario, mode: str, check_interval: int, wall_start: float,
    domain_of: Dict[int, int], lookahead: int, collect_digests: bool,
    isolate: bool,
):
    from repro.experiments.runner import ScenarioResult

    cfg = scenario.config
    shards = cfg.shards
    if mode == "lockstep":
        cell = [0]
        sims: List[Simulator] = [_SharedSeqSimulator(cell) for _ in range(shards)]
        mailboxes: List[list] = []
        channel = _DirectChannel(sims, domain_of)
    else:
        sims = [Simulator() for _ in range(shards)]
        mailboxes = [[] for _ in range(shards)]
        channel = _MailboxChannel(mailboxes, domain_of)
    pools = [
        PacketPool() if cfg.packet_pool else DISABLED_POOL
        for _ in range(shards)
    ]
    tele_cfg = cfg.telemetry
    hubs = None
    if tele_cfg is not None:
        # per-domain hub shards: samplers must read domain-local state
        # only (a shared hub mid-window would mix domains at different
        # times).  Runtime flow registrations fan out from the parent.
        hubs = [scenario.stats.shard_clone() for _ in range(shards)]
        scenario.stats.bind_shards(hubs)
    _bind_domains(scenario, domain_of, sims, pools, channel, hubs=hubs)
    _install_faults_sharded(scenario, sims[0])
    recorders: list = []
    if tele_cfg is not None:
        recorders = _wire_shard_telemetry(
            scenario, domain_of, sims, hubs, tele_cfg
        )
    sanitizer = None
    if cfg.sanitize is not None:
        from repro.simcheck.sanitizer import ShardedSanitizer

        def _transit():
            # barrier mailboxes hold deliveries no heap sees yet
            for box in mailboxes:
                for t, _lid, _seq, _ev, fn, args in box:
                    yield t, fn, args

        sanitizer = ShardedSanitizer(
            scenario, sims, domain_of, pools, config=cfg.sanitize,
            extra_pending=_transit if mode == "barrier" else None,
        )
        scenario.sanitizer = sanitizer
    iso = None
    if isolate:
        from repro.simcheck.isolation import ShardIsolationSanitizer

        iso = ShardIsolationSanitizer()
        # after fault install, so link fault states carry owner tags
        iso.tag_scenario(scenario, domain_of, pools)
    _schedule_flows_sharded(scenario)
    driver = scenario.rpc_driver
    if driver is not None:
        driver.start(None)
    digests = None
    domain_digests: List = []
    if collect_digests:
        from repro.simcheck.determinism import EventStreamDigest

        domain_digests = [
            EventStreamDigest(s, include_depth=False) for s in sims
        ]
        if mode == "lockstep":
            clock = _Clock()
            digests = (
                EventStreamDigest(clock, include_depth=False),
                domain_digests,
                clock,
            )
    _set_domain_profilers(
        sims,
        lambda d: (
            # lockstep digests are fed explicitly by the merged loop
            domain_digests[d] if domain_digests and mode != "lockstep" else None,
            recorders[d].profiler if recorders else None,
            iso.probe(d, sims[d]) if iso is not None else None,
        ),
    )
    topo = scenario.topology
    hard_end = int(cfg.duration * cfg.max_runtime_factor)
    now = 0
    while True:
        next_stop = min(now + check_interval, hard_end)
        if mode == "lockstep":
            _advance_lockstep(sims, next_stop, digests)
        else:
            _advance_barrier(sims, mailboxes, now, next_stop, lookahead)
        now = next_stop
        if sanitizer is not None:
            # barrier sweep: every domain has executed exactly the
            # serial prefix up to `now`, so ledgers read the serial cut
            sanitizer.sim.now = now
            sanitizer.check_now()
        total = len(topo.flow_table)
        if topo.completed_flows >= total and (
            driver is None or driver.finished
        ):
            break
        if now >= hard_end:
            break
        if all(s.peek_next_time() is None for s in sims) and not any(
            mailboxes
        ):
            break
    total = len(topo.flow_table)
    topo.report_pause_times()
    if scenario.watchdog is not None:
        if topo.completed_flows < total:
            scenario.watchdog.note_drained()
        scenario.watchdog.stop()
    for ext in scenario.extensions:
        stop = getattr(ext, "stop", None)
        if stop is not None:
            stop()
    for recorder in recorders:
        recorder.stop()
    violations: List[str] = []
    if sanitizer is not None:
        sanitizer.sim.now = now
        sanitizer.final_check()
        violations = list(sanitizer.violations)
    stats = scenario.stats
    if hubs is not None:
        # deterministic domain-order merge back into the parent hub
        for hub in hubs:
            stats.merge_from(hub)
    stats.canonicalize()
    telemetry = None
    if tele_cfg is not None:
        from repro.telemetry.shard import (
            build_shard_export, merge_raw_profiles, merge_raw_series,
        )

        ext_harvests = []
        for ext in scenario.extensions:
            harvest = getattr(ext, "telemetry_counters", None)
            if harvest is not None:
                ext_harvests.append(harvest())
        rpc_counts = None
        if driver is not None:
            rpc_counts = (driver.requests_issued, driver.requests_completed)
        telemetry = build_shard_export(
            cfg,
            tele_cfg,
            now,
            sum(s.events_executed for s in sims),
            stats,
            topo.completed_flows,
            total,
            sum(f.retransmitted_packets for f in topo.flow_table.values()),
            rpc_counts,
            ext_harvests,
            merge_raw_series([r.raw_series() for r in recorders]),
            merge_raw_profiles([r.raw_profile() for r in recorders]),
        )
    result = ScenarioResult(
        config=cfg,
        stats=stats,
        scenario=scenario,
        completed_flows=topo.completed_flows,
        total_flows=total,
        sim_time=now,
        wall_seconds=_time.monotonic() - wall_start,  # simcheck: ignore[SIM002] -- wall time for reporting only
        events=sum(s.events_executed for s in sims),
        telemetry=telemetry,
        sanitizer_violations=violations,
        shard_isolation_violations=(
            list(iso.violations) if iso is not None else None
        ),
    )
    if collect_digests:
        result.shard_digests = [d.hexdigest() for d in domain_digests]
        if digests is not None:
            result.shard_global_digest = digests[0].hexdigest()
    return result


# ---------------------------------------------------------------------------
# multiprocess executor
# ---------------------------------------------------------------------------


def _drain_outbox(outbox: List[list]) -> List[Tuple[int, list]]:
    out: List[Tuple[int, list]] = []
    for d, box in enumerate(outbox):
        if box:
            out.append((d, box[:]))
            box.clear()
    return out


def _worker_main(
    scenario, domain_of: Dict[int, int], my_domain: int, conn,
    collect_digest: bool, isolate: bool,
) -> None:
    """One forked worker: bind, then run exactly one domain to orders.

    The worker inherits the fully built scenario through fork, so the
    rebinding below produces the same object graph every in-process
    executor sees; only ``sims[my_domain]`` ever runs here.  The
    worker's private ``scenario.stats`` copy *is* its domain hub —
    every node keeps pointing at it, and only this domain's events
    write to it, so the parent's domain-order ``merge_from`` pass
    reassembles exactly the serial hub.
    """
    cfg = scenario.config
    shards = cfg.shards
    sims = [Simulator() for _ in range(shards)]
    pools = [
        PacketPool() if cfg.packet_pool else DISABLED_POOL
        for _ in range(shards)
    ]
    outbox: List[list] = [[] for _ in range(shards)]
    _bind_domains(scenario, domain_of, sims, pools, _WireChannel(outbox, domain_of))
    # the full plan installs on this worker's private copy: foreign
    # links schedule onto sims that never run here, own-domain links
    # replay exactly the serial subsequence (per-link name-derived rng
    # streams make the draws identical everywhere)
    plan = cfg.fault_plan
    injector = None
    if plan is not None and plan.faults:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            scenario.sim, scenario.topology, plan, scenario.rng,
            stats=scenario.stats,
        )
        injector.install()
        scenario.fault_injector = injector
    dsim = sims[my_domain]
    tele_cfg = cfg.telemetry
    recorder = None
    if tele_cfg is not None:
        from repro.telemetry.shard import DomainTelemetry

        topo_ = scenario.topology
        recorder = DomainTelemetry(
            my_domain, dsim, tele_cfg, scenario.stats,
            [h for h in topo_.hosts if domain_of[h.node_id] == my_domain],
            [s for s in topo_.switches if domain_of[s.node_id] == my_domain],
        )
        recorder.start()
    sanitizer = None
    if cfg.sanitize is not None:
        from repro.simcheck.sanitizer import ShardedSanitizer

        sanitizer = ShardedSanitizer(
            scenario, sims, domain_of, pools, config=cfg.sanitize,
            my_domain=my_domain,
        )
        scenario.sanitizer = sanitizer
    iso = None
    if isolate:
        from repro.simcheck.isolation import ShardIsolationSanitizer

        iso = ShardIsolationSanitizer()
        iso.tag_scenario(scenario, domain_of, pools)
    _schedule_flows_sharded(scenario)
    digest = None
    if collect_digest:
        from repro.simcheck.determinism import EventStreamDigest

        digest = EventStreamDigest(dsim, include_depth=False)
    _set_domain_profilers(
        [dsim],
        lambda _d: (
            digest,
            recorder.profiler if recorder is not None else None,
            iso.probe(my_domain, dsim) if iso is not None else None,
        ),
    )
    topo = scenario.topology
    nodes_by_id = {h.node_id: h for h in topo.hosts}
    nodes_by_id.update({s.node_id: s for s in topo.switches})
    conn.send(
        ("state", dsim.peek_next_time(), topo.completed_flows,
         _drain_outbox(outbox))
    )
    while True:
        msg = conn.recv()
        op = msg[0]
        if op == "run":
            _op, h_next, incoming, sweep = msg
            heap = dsim._heap
            for t, lid, seq, node_id, port, pkt in incoming:
                heappush(
                    heap,
                    (t, lid, seq, None, nodes_by_id[node_id].receive,
                     (pkt, port)),
                )
            dsim.run(until=h_next)
            if sweep and sanitizer is not None:
                # h_next is a check_interval boundary: this domain has
                # executed exactly the serial prefix of its events
                sanitizer.sim.now = h_next
                sanitizer.check_now()
            conn.send(
                ("state", dsim.peek_next_time(), topo.completed_flows,
                 _drain_outbox(outbox))
            )
            continue
        # op == "finish": epilogue over this domain's devices only —
        # the others belong to (and are reported by) their own workers
        _op, final_now = msg
        if dsim.now < final_now:
            dsim.now = final_now
        max_voqs = 0
        retrans = 0
        ext_harvests: List[Dict[str, int]] = []
        for node in topo.hosts + topo.switches:
            if domain_of[node.node_id] != my_domain:
                continue
            node.report_pause_time()
            ext = getattr(node, "extension", None)
            if ext is not None:
                stop = getattr(ext, "stop", None)
                if stop is not None:
                    stop()
                pool = getattr(ext, "pool", None)
                if pool is not None and pool.max_in_use > max_voqs:
                    max_voqs = pool.max_in_use
                if tele_cfg is not None:
                    harvest = getattr(ext, "telemetry_counters", None)
                    if harvest is not None:
                        ext_harvests.append(harvest())
        for flow in topo.flow_table.values():
            retrans += flow.retransmitted_packets
        if recorder is not None:
            recorder.stop()
        sanitizer_payload = None
        if sanitizer is not None:
            sanitizer.sim.now = final_now
            sanitizer.final_check()
            sanitizer_payload = {
                "violations": list(sanitizer.violations),
                "ledger": sanitizer.domain_ledger(my_domain),
                "checks_run": sanitizer.checks_run,
            }
        extras = {
            "flows_total": len(topo.flow_table),
            "ext_harvests": ext_harvests,
            "telemetry_series": (
                recorder.raw_series() if recorder is not None else None
            ),
            "telemetry_profile": (
                recorder.raw_profile() if recorder is not None else None
            ),
            "fault_summary": (
                injector.summary() if injector is not None else None
            ),
            "sanitizer": sanitizer_payload,
            "isolation": list(iso.violations) if iso is not None else None,
        }
        conn.send(
            ("result", scenario.stats, topo.completed_flows,
             dsim.events_executed, max_voqs, retrans,
             digest.hexdigest() if digest is not None else None,
             extras)
        )
        conn.close()
        return


def _run_process(
    scenario, check_interval: int, wall_start: float,
    domain_of: Dict[int, int], lookahead: int, collect_digests: bool,
    isolate: bool,
):
    import multiprocessing

    from repro.experiments.runner import ScenarioResult

    ctx = multiprocessing.get_context("fork")
    cfg = scenario.config
    shards = cfg.shards
    topo = scenario.topology
    pipes = []
    procs = []
    for d in range(shards):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(scenario, domain_of, d, child_conn, collect_digests,
                  isolate),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        pipes.append(parent_conn)
        procs.append(proc)
    try:
        hard_end = int(cfg.duration * cfg.max_runtime_factor)
        # the parent never schedules flows (its flow_table stays empty;
        # only the forked workers call make_flow), and process mode
        # forbids closed-loop workloads, so the flow population is
        # exactly the build-time spec list
        total = len(scenario.flows)
        #: boundary deliveries awaiting their target domain, per domain
        pending: List[list] = [[] for _ in range(shards)]
        states = [pipes[d].recv() for d in range(shards)]
        next_times = [st[1] for st in states]
        completed = [st[2] for st in states]
        for st in states:
            for target, items in st[3]:
                pending[target].extend(items)
        now = 0
        while True:
            next_stop = min(now + check_interval, hard_end)
            H = now
            while H < next_stop:
                min_next: Optional[int] = None
                for t in next_times:
                    if t is not None and (min_next is None or t < min_next):
                        min_next = t
                for box in pending:
                    for item in box:
                        if min_next is None or item[0] < min_next:
                            min_next = item[0]
                if min_next is None or min_next > next_stop:
                    h_next = next_stop
                else:
                    h_next = min(
                        next_stop, max(H + lookahead, min_next - 1 + lookahead)
                    )
                # the last window of each step lands exactly on the
                # check_interval boundary: tell workers to sweep there
                sweep = h_next == next_stop and cfg.sanitize is not None
                for d in range(shards):
                    pipes[d].send(("run", h_next, pending[d], sweep))
                    pending[d] = []
                states = [pipes[d].recv() for d in range(shards)]
                next_times = [st[1] for st in states]
                completed = [st[2] for st in states]
                for st in states:
                    for target, items in st[3]:
                        pending[target].extend(items)
                H = h_next
            now = next_stop
            if sum(completed) >= total:
                break
            if now >= hard_end:
                break
            if all(t is None for t in next_times) and not any(pending):
                break
        for d in range(shards):
            pipes[d].send(("finish", now))
        results = [pipes[d].recv() for d in range(shards)]
    finally:
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        for conn in pipes:
            conn.close()
    # merge per-domain hubs in domain order; the parent's own hub holds
    # only build-time registrations (flow classes, incast sets) that
    # every worker inherited too, so the union-style merges dedup them
    stats = scenario.stats
    digests: List[str] = []
    extras_list: List[dict] = []
    events = 0
    completed_total = 0
    max_voqs = 0
    retrans = 0
    for res in results:
        (_tag, worker_stats, worker_completed, worker_events, voqs, rtx,
         dig, extras) = res
        stats.merge_from(worker_stats)
        completed_total += worker_completed
        events += worker_events
        if voqs > max_voqs:
            max_voqs = voqs
        retrans += rtx
        if dig is not None:
            digests.append(dig)
        extras_list.append(extras)
    stats.canonicalize()
    # fault counters: the static plan shape is identical in every
    # worker; the injection counters are disjoint partials (each link's
    # events ran in exactly one worker), so they sum
    fault_summary = None
    worker_faults = [ex["fault_summary"] for ex in extras_list]
    if any(f is not None for f in worker_faults):
        live = [f for f in worker_faults if f is not None]
        fault_summary = dict(live[0])
        for f in live[1:]:
            for key in (
                "injected_drops_data", "injected_drops_ctrl",
                "injected_corruptions",
            ):
                fault_summary[key] += f[key]
    # sanitizer: per-domain sweeps already ran in the workers; the
    # whole-fabric conservation equations are judged here, over the
    # summed final ledgers plus packets still in transit boxes
    violations: List[str] = []
    if cfg.sanitize is not None:
        from repro.simcheck.sanitizer import conservation_violations

        ledgers = []
        for ex in extras_list:
            payload = ex["sanitizer"]
            if payload is not None:
                violations.extend(payload["violations"])
                ledgers.append(payload["ledger"])
        extra_data = extra_credit = 0
        for box in pending:
            for item in box:
                pkt = item[5]
                if pkt.kind == PacketKind.DATA:
                    extra_data += 1
                elif pkt.kind == PacketKind.CREDIT:
                    extra_credit += 1
        for message in conservation_violations(
            ledgers, extra_data, extra_credit
        ):
            violations.append(f"t={now}ns: {message}")
    iso_violations = None
    if isolate:
        iso_violations = [
            v for ex in extras_list for v in (ex["isolation"] or [])
        ]
    telemetry = None
    tele_cfg = cfg.telemetry
    if tele_cfg is not None:
        from repro.telemetry.shard import (
            build_shard_export, merge_raw_profiles, merge_raw_series,
        )

        telemetry = build_shard_export(
            cfg,
            tele_cfg,
            now,
            events,
            stats,
            completed_total,
            len(scenario.flows),
            retrans,
            None,  # rpc never runs under process mode
            [h for ex in extras_list for h in ex["ext_harvests"]],
            merge_raw_series(
                [ex["telemetry_series"] or [] for ex in extras_list]
            ),
            merge_raw_profiles(
                [ex["telemetry_profile"] for ex in extras_list]
            ),
        )
    result = ScenarioResult(
        config=cfg,
        stats=stats,
        scenario=scenario,
        completed_flows=completed_total,
        total_flows=len(scenario.flows),
        sim_time=now,
        wall_seconds=_time.monotonic() - wall_start,  # simcheck: ignore[SIM002] -- wall time for reporting only
        events=events,
        telemetry=telemetry,
        sanitizer_violations=violations,
        shard_max_voqs=max_voqs,
        shard_retransmitted=retrans,
        shard_fault_summary=fault_summary,
        shard_isolation_violations=iso_violations,
    )
    if collect_digests:
        result.shard_digests = digests
    return result


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def resolve_mode(config) -> str:
    """Concrete executor for a config (resolves ``auto``)."""
    mode = config.shard_mode
    if mode == "auto":
        mode = "barrier" if config.pattern == "rpc" else "process"
    if mode == "process" and config.pattern == "rpc":
        raise ValueError(
            "rpc workloads cannot run under shard_mode='process': the "
            "closed-loop driver grows one shared flow table across "
            "domains; use 'barrier' (or 'auto')"
        )
    return mode


def run_sharded_scenario(
    scenario,
    check_interval: int,
    wall_start: float,
    collect_digests: bool = False,
    isolate: bool = False,
):
    """Run a built scenario across ``config.shards`` domains.

    Returns the same :class:`ScenarioResult` the serial runner builds,
    with identical completion/stop semantics: the run advances in
    ``check_interval`` steps and stops at the first step boundary where
    every flow has completed (and any rpc driver is finished), the hard
    end is reached, or every domain has drained.

    ``isolate`` arms the :class:`ShardIsolationSanitizer`: hot objects
    are tagged with their owning domain at partition time and every
    executed callback is checked against the domain it ran under
    (``check --sharded --isolate``).
    """
    cfg = scenario.config
    mode = resolve_mode(cfg)
    _assert_clean_build(scenario)
    domain_of = partition_nodes(scenario, cfg.shards)
    lookahead = boundary_lookahead(scenario.topology, domain_of)
    _validate_fault_plan(scenario, domain_of)
    if mode == "process":
        plan = cfg.fault_plan
        if plan is not None and plan.stall_window > 0:
            raise ValueError(
                "stall_window under shard_mode='process' is unsupported: "
                "the watchdog needs whole-fabric progress visibility in "
                "one address space; use shard_mode='barrier' or "
                "'lockstep' (or stall_window=0)"
            )
        return _run_process(
            scenario, check_interval, wall_start, domain_of, lookahead,
            collect_digests, isolate,
        )
    return _run_inprocess(
        scenario, mode, check_interval, wall_start, domain_of, lookahead,
        collect_digests, isolate,
    )
