"""Deterministic per-component random-number streams.

Every stochastic component (workload generators, ECMP hashing salts,
fault injectors, ECN marking) draws from its own named stream derived
from a single experiment seed.  Adding or removing one component
therefore never perturbs the draws seen by another — runs stay
reproducible and comparable across configurations, which the paper's
"run ten times, small deviation" methodology depends on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of independent, named ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of ``(seed, name)`` so the
        same name always yields the same sequence for a given
        experiment seed.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """Derive an independent registry (e.g. per repetition)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
