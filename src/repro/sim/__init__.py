"""Discrete-event simulation engine.

A minimal, fast, deterministic event engine: an integer-nanosecond clock,
a binary-heap event queue, and callback-based events.  This is the
substrate the network model runs on (the paper used NS-3; see DESIGN.md
for the substitution argument).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import PeriodicTask, Timer
from repro.sim.rng import RngRegistry

__all__ = ["Event", "Simulator", "PeriodicTask", "Timer", "RngRegistry"]
