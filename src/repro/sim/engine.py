"""The core event loop.

Design notes
------------
* Callback events (``fn(*args)``) rather than coroutine processes: the
  hot loop is a heap-pop plus a function call, which is the fastest
  structure pure Python offers for a packet-level simulator.
* Integer-nanosecond timestamps: no float drift, and identical event
  ordering across platforms.
* Ties are broken by insertion order (a monotonically increasing
  sequence number), which makes runs fully deterministic.
* Cancellation is lazy: a cancelled event stays in the heap but is
  skipped when popped.  This is O(1) for cancel and keeps the heap code
  branch-free.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule`; hold on to it only if the
    event may need cancelling or rescheduling.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} {name}{state}>"


class Simulator:
    """Discrete-event simulator with an integer-nanosecond clock.

    Usage::

        sim = Simulator()
        sim.schedule(us(5), handler, arg1, arg2)
        sim.run(until=ms(10))
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_executed: int = 0
        self._running = False
        self._stopped = False

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        self._seq += 1
        ev = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    # -- execution ------------------------------------------------------------

    def run(self, until: Optional[int] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given, the clock is left at exactly ``until``
        even if the queue drained earlier, so follow-up ``run`` calls
        continue from a well-defined point.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        heap = self._heap
        try:
            while heap and not self._stopped:
                ev = heap[0]
                if until is not None and ev.time > until:
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    continue
                self.now = ev.time
                self._events_executed += 1
                ev.fn(*ev.args)
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # -- introspection ----------------------------------------------------------

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (for perf reporting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Events still in the heap, including lazily-cancelled ones."""
        return len(self._heap)

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if drained."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None
