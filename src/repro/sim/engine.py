"""The core event loop.

Design notes
------------
* Callback events (``fn(*args)``) rather than coroutine processes: the
  hot loop is a heap-pop plus a function call, which is the fastest
  structure pure Python offers for a packet-level simulator.
* The heap stores plain tuples ``(time, lid, seq, event, fn, args)``.
  The ``(lid, seq)`` pair is unique, so tuple comparison is decided
  entirely by the first three integers at C level — no Python
  ``__lt__`` dunder ever runs during a push or pop.
* ``lid`` is a *link id*: link deliveries carry the per-build id of the
  link they crossed (assigned deterministically by ``Topology.connect``
  in creation order), every locally-scheduled event carries 0.  Ties at
  the same instant therefore break first by link, then by insertion
  order.  This makes the ordering key **decomposable**: when a topology
  is partitioned into sharded domains (:mod:`repro.sim.sharded`), two
  events in different domains can only interact through a link
  delivery, and the delivery's ``(time, lid, seq)`` key is computed
  entirely on the sending side — so per-domain execution order is
  independent of when boundary messages are physically inserted into
  the receiving heap, and sharded runs replay the serial order exactly.
* Integer-nanosecond timestamps: no float drift, and identical event
  ordering across platforms.
* Remaining ties are broken by insertion order (a monotonically
  increasing sequence number), which makes runs fully deterministic.
* Cancellation is lazy: a cancelled event stays in the heap but is
  skipped when popped.  This is O(1) for cancel and keeps the heap code
  branch-free.  :meth:`Simulator.run` and
  :meth:`Simulator.peek_next_time` discard cancelled entries the same
  way — by popping them when they surface at the heap top — including
  at the ``until`` boundary of a stepped run, so introspection between
  stepped ``run`` calls never over-reports live work.
* Events that never need cancelling (the vast majority: packet
  serialization/propagation) can skip the :class:`Event` handle
  entirely via :meth:`Simulator.schedule_call`, and bulk loads (flow
  start times) go through :meth:`Simulator.schedule_many`, which picks
  ``heappush`` or ``heapify`` based on batch size.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Iterable, Optional, Tuple


class Event:
    """A cancellable scheduled callback.

    Returned by :meth:`Simulator.schedule`; hold on to it only if the
    event may need cancelling or rescheduling.  Ordering lives in the
    heap tuples, not on this object.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} {name}{state}>"


class Simulator:
    """Discrete-event simulator with an integer-nanosecond clock.

    Usage::

        sim = Simulator()
        sim.schedule(us(5), handler, arg1, arg2)
        sim.run(until=ms(10))
    """

    def __init__(self) -> None:
        self.now: int = 0
        #: heap of (time, lid, seq, Event-or-None, fn, args) tuples
        self._heap: list[tuple] = []
        self._seq: int = 0
        self._events_executed: int = 0
        self._running = False
        self._stopped = False
        #: optional EngineProfiler (repro.telemetry.profile); when set,
        #: run() switches to an instrumented twin loop.  The unprofiled
        #: path pays exactly one ``is None`` check per run() call.
        self._profiler = None

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        self._seq += 1
        ev = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, 0, self._seq, ev, fn, args))
        return ev

    def schedule_call(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fast-path :meth:`schedule` without a cancellation handle.

        Skips the :class:`Event` allocation entirely; use it for events
        that are never cancelled (packet serialization, propagation).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(
            self._heap, (self.now + delay, 0, self._seq, None, fn, args)
        )

    def schedule_call_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`schedule_call`."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, 0, self._seq, None, fn, args))

    def schedule_many(
        self, items: Iterable[Tuple[int, Callable[..., Any], tuple]]
    ) -> None:
        """Bulk-schedule ``(abs_time, fn, args)`` entries, no handles.

        Small batches are pushed one by one (``m`` pushes at
        O(log n) each); genuine bulk loads append everything and
        restore the heap invariant once with ``heapify`` — O(n + m).
        The crossover is ``m * log2(n) < n``: below it, pushes are
        cheaper than re-heapifying the whole heap.  Ties break by
        overall insertion order (the shared sequence counter) either
        way, exactly as if each entry had been scheduled one by one.
        """
        heap = self._heap
        seq = self._seq
        now = self.now
        batch = items if isinstance(items, list) else list(items)
        n = len(heap)
        if n and len(batch) * n.bit_length() < n:
            push = heapq.heappush
            for time, fn, args in batch:
                if time < now:
                    raise ValueError(
                        f"cannot schedule at {time}, current time is {now}"
                    )
                seq += 1
                push(heap, (time, 0, seq, None, fn, args))
            self._seq = seq
            return
        for time, fn, args in batch:
            if time < now:
                raise ValueError(
                    f"cannot schedule at {time}, current time is {now}"
                )
            seq += 1
            heap.append((time, 0, seq, None, fn, args))
        self._seq = seq
        heapq.heapify(heap)

    # -- execution ------------------------------------------------------------

    def run(self, until: Optional[int] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given, the clock is left at exactly ``until``
        even if the queue drained earlier, so follow-up ``run`` calls
        continue from a well-defined point.  Lazily-cancelled entries
        surfacing at the heap top — including ones beyond ``until`` —
        are discarded, so ``pending_events`` between stepped runs
        reflects live work only.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        if self._profiler is not None:
            self._run_profiled(until)
            return
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        executed = self._events_executed
        try:
            if until is None:
                while heap and not self._stopped:
                    # single UNPACK beats five tuple index ops per event
                    time_, _lid, _seq, ev, fn, args = pop(heap)
                    if ev is not None and ev.cancelled:
                        continue
                    self.now = time_
                    executed += 1
                    fn(*args)
            else:
                while heap and not self._stopped:
                    head = heap[0]
                    if head[0] > until:
                        ev = head[3]
                        if ev is not None and ev.cancelled:
                            # drain cancelled heads at the boundary so
                            # stepped runs leave a clean heap top
                            pop(heap)
                            continue
                        break
                    time_, _lid, _seq, ev, fn, args = pop(heap)
                    if ev is not None and ev.cancelled:
                        continue
                    self.now = time_
                    executed += 1
                    fn(*args)
        finally:
            self._events_executed = executed
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def _run_profiled(self, until: Optional[int]) -> None:
        """Instrumented twin of :meth:`run` (profiler installed).

        Times every callback and feeds per-type counts plus heap depth
        to the profiler.  Kept separate so the common unprofiled loop
        stays free of ``perf_counter`` calls and extra branches.
        """
        profiler = self._profiler
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        perf = time.perf_counter  # simcheck: ignore[SIM002] -- profiled loop times callbacks by design
        executed = self._events_executed
        run_start = perf()
        try:
            while heap and not self._stopped:
                if until is not None and heap[0][0] > until:
                    ev = heap[0][3]
                    if ev is not None and ev.cancelled:
                        pop(heap)
                        continue
                    break
                item = pop(heap)
                ev = item[3]
                if ev is not None and ev.cancelled:
                    continue
                self.now = item[0]
                executed += 1
                t0 = perf()
                item[4](*item[5])
                profiler.note(item[4], perf() - t0, len(heap))
        finally:
            profiler.wall_seconds += perf() - run_start
            self._events_executed = executed
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def set_profiler(self, profiler) -> None:
        """Install (or with ``None`` remove) an engine profiler."""
        self._profiler = profiler

    @property
    def profiler(self):
        return self._profiler

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # -- introspection ----------------------------------------------------------

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (for perf reporting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Events still in the heap, including lazily-cancelled ones."""
        return len(self._heap)

    def pending_items(self) -> list:
        """Snapshot of live heap entries as ``(time, fn, args)`` tuples.

        Read-only introspection for the runtime sanitizer's in-flight
        walk; cancelled entries are filtered out but left in the heap.
        """
        return [
            (item[0], item[4], item[5])
            for item in self._heap
            if item[3] is None or not item[3].cancelled
        ]

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if drained.

        Cancelled entries surfacing at the heap top are discarded, the
        same cleanup :meth:`run` applies when popping — peeking between
        ``run`` calls never changes which live event runs next or the
        order live events run in.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            ev = head[3]
            if ev is None or not ev.cancelled:
                return head[0]
            heapq.heappop(heap)
        return None
