"""Downstream-side credit generation (§4.1).

The ideal (strawman) design returns one credit per forwarded packet,
immediately.  The practical design aggregates: a timer per ingress
port fires every ``T``; for each destination with forwarded-but-
uncredited packets it emits one ``<dst, count>`` credit — unless that
destination's VOQ backlog exceeds the *delayCredit* threshold, in
which case the credits stay owed until the backlog drains (avoiding
"unnecessary buffer buildup" upstream).

Credits echo the highest PSN forwarded for loss recovery (§4.3).

Credit regeneration (fault tolerance): credits ride a lossy network,
and a credit dropped by a fault would leave the upstream window
permanently tight — the upstream's switchSYN probe covers the case
where it *knows* packets are unaccounted, but a credit lost after the
SYN exchange still strands the VOQ.  With
``credit_regen_timeout > 0`` the scheduler re-emits a count-0 credit
carrying the last forwarded PSN whenever an (ingress port, dst) pair
has been credit-silent for that long; the upstream reconciles against
the PSN and recovers the window.  At most ``credit_regen_limit``
consecutive regenerations are sent per pair with no forwarding
activity in between, so an idle fabric quiesces.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.floodgate.config import FloodgateConfig
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTask

#: send_fn(ingress_port, dst_host, count, last_psn)
SendFn = Callable[[int, int, int, int], None]
#: backlog_fn(dst_host) -> VOQ bytes queued for dst at this switch
BacklogFn = Callable[[int], int]


class CreditScheduler:
    """Tracks owed credits per (ingress port, destination)."""

    def __init__(
        self,
        sim: Simulator,
        config: FloodgateConfig,
        send_fn: SendFn,
        backlog_fn: BacklogFn,
    ) -> None:
        self.sim = sim
        self.config = config
        self.send_fn = send_fn
        self.backlog_fn = backlog_fn
        #: owed credits: port -> {dst: count}
        self.owed: Dict[int, Dict[int, int]] = {}
        #: highest PSN forwarded: (port, dst) -> psn
        self.last_fwd_psn: Dict[tuple[int, int], int] = {}
        self._timers: Dict[int, PeriodicTask] = {}
        self.credits_sent = 0
        self.credits_delayed = 0
        # -- regeneration guard (practical design only) -------------------
        self._regen_enabled = (
            not config.ideal and config.credit_regen_timeout > 0
        )
        #: sim time of the last credit emitted per (port, dst)
        self._last_emit: Dict[tuple[int, int], int] = {}
        #: consecutive idle regenerations per port: {dst: count};
        #: a dst leaves the table once it hits credit_regen_limit
        self._regen_pending: Dict[int, Dict[int, int]] = {}
        self.credits_regenerated = 0

    def watch_port(self, port: int) -> None:
        """Enable credit generation toward the peer on ``port``.

        Only ports whose upstream peer is a Floodgate switch need
        credits; hosts never maintain windows (§3.2).  The per-port
        timer is created here but runs lazily: it starts on the first
        owed credit and stops once the port has nothing left to
        return, so idle switches cost no events.
        """
        self.owed.setdefault(port, {})
        if not self.config.ideal and port not in self._timers:
            self._timers[port] = PeriodicTask(
                self.sim, self.config.credit_timer, self._tick, port
            )

    def stop(self) -> None:
        for task in self._timers.values():
            task.stop()

    # -- data-path hooks ---------------------------------------------------------

    def note_forwarded(self, in_port: int, dst: int, psn: int) -> None:
        """A data packet from ``in_port`` toward ``dst`` left this switch."""
        table = self.owed.get(in_port)
        if table is None:
            return  # upstream is a host: no credits
        key = (in_port, dst)
        if psn > self.last_fwd_psn.get(key, -1):
            self.last_fwd_psn[key] = psn
        if self.config.ideal:
            self.send_fn(in_port, dst, 1, self.last_fwd_psn[key])
            self.credits_sent += 1
        else:
            table[dst] = table.get(dst, 0) + 1
            if self._regen_enabled:
                # new forwarding activity re-arms the regeneration
                # budget for this pair
                self._regen_pending.setdefault(in_port, {})[dst] = 0
            timer = self._timers[in_port]
            if not timer.running:
                # Stagger the phase by port index so a switch's ports
                # do not all emit credit bursts in the same instant.
                timer.start(phase=(in_port * 97) % self.config.credit_timer)

    def telemetry_counters(self) -> Dict[str, int]:
        """End-of-run counter values for :mod:`repro.telemetry`."""
        return {
            "credits_sent": self.credits_sent,
            "credits_delayed": self.credits_delayed,
            "credits_regenerated": self.credits_regenerated,
        }

    def answer_syn(self, in_port: int, dst: int) -> None:
        """switchSYN reply: echo the last forwarded PSN unconditionally."""
        key = (in_port, dst)
        psn = self.last_fwd_psn.get(key, -1)
        table = self.owed.get(in_port)
        count = table.pop(dst, 0) if table is not None else 0
        self.send_fn(in_port, dst, count, psn)
        self.credits_sent += 1
        if self._regen_enabled:
            self._last_emit[key] = self.sim.now

    # -- timer ------------------------------------------------------------------------

    def _tick(self, port: int) -> None:
        table = self.owed.get(port)
        if table:
            threshold = self.config.thre_credit_bytes
            flushable: List[int] = []
            for dst in table:
                if self.backlog_fn(dst) <= threshold:
                    flushable.append(dst)
                else:
                    self.credits_delayed += 1
            now = self.sim.now
            for dst in flushable:
                count = table.pop(dst)
                self.send_fn(
                    port, dst, count, self.last_fwd_psn.get((port, dst), -1)
                )
                self.credits_sent += 1
                if self._regen_enabled:
                    self._last_emit[(port, dst)] = now
        if self._regen_enabled and self._regenerate(port):
            return  # regeneration still pending: keep the timer alive
        if not table:
            self._timers[port].stop()

    def _regenerate(self, port: int) -> bool:
        """Re-emit count-0 credits for credit-silent pairs.

        Returns True while any pair on ``port`` still has regeneration
        budget, so the caller keeps the per-port timer running even
        with no owed credits.
        """
        pending = self._regen_pending.get(port)
        if not pending:
            return False
        now = self.sim.now
        timeout = self.config.credit_regen_timeout
        limit = self.config.credit_regen_limit
        owed = self.owed.get(port) or {}
        exhausted: List[int] = []
        for dst, idle in pending.items():
            if dst in owed:
                continue  # credits owed: the flush path covers this dst
            key = (port, dst)
            if now - self._last_emit.get(key, -timeout - 1) < timeout:
                continue
            self.send_fn(port, dst, 0, self.last_fwd_psn.get(key, -1))
            self.credits_sent += 1
            self.credits_regenerated += 1
            self._last_emit[key] = now
            pending[dst] = idle + 1
            if pending[dst] >= limit:
                exhausted.append(dst)
        for dst in exhausted:
            del pending[dst]
        return bool(pending)
