"""Downstream-side credit generation (§4.1).

The ideal (strawman) design returns one credit per forwarded packet,
immediately.  The practical design aggregates: a timer per ingress
port fires every ``T``; for each destination with forwarded-but-
uncredited packets it emits one ``<dst, count>`` credit — unless that
destination's VOQ backlog exceeds the *delayCredit* threshold, in
which case the credits stay owed until the backlog drains (avoiding
"unnecessary buffer buildup" upstream).

Credits echo the highest PSN forwarded for loss recovery (§4.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.floodgate.config import FloodgateConfig
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTask

#: send_fn(ingress_port, dst_host, count, last_psn)
SendFn = Callable[[int, int, int, int], None]
#: backlog_fn(dst_host) -> VOQ bytes queued for dst at this switch
BacklogFn = Callable[[int], int]


class CreditScheduler:
    """Tracks owed credits per (ingress port, destination)."""

    def __init__(
        self,
        sim: Simulator,
        config: FloodgateConfig,
        send_fn: SendFn,
        backlog_fn: BacklogFn,
    ) -> None:
        self.sim = sim
        self.config = config
        self.send_fn = send_fn
        self.backlog_fn = backlog_fn
        #: owed credits: port -> {dst: count}
        self.owed: Dict[int, Dict[int, int]] = {}
        #: highest PSN forwarded: (port, dst) -> psn
        self.last_fwd_psn: Dict[tuple[int, int], int] = {}
        self._timers: Dict[int, PeriodicTask] = {}
        self.credits_sent = 0
        self.credits_delayed = 0

    def watch_port(self, port: int) -> None:
        """Enable credit generation toward the peer on ``port``.

        Only ports whose upstream peer is a Floodgate switch need
        credits; hosts never maintain windows (§3.2).  The per-port
        timer is created here but runs lazily: it starts on the first
        owed credit and stops once the port has nothing left to
        return, so idle switches cost no events.
        """
        self.owed.setdefault(port, {})
        if not self.config.ideal and port not in self._timers:
            self._timers[port] = PeriodicTask(
                self.sim, self.config.credit_timer, self._tick, port
            )

    def stop(self) -> None:
        for task in self._timers.values():
            task.stop()

    # -- data-path hooks ---------------------------------------------------------

    def note_forwarded(self, in_port: int, dst: int, psn: int) -> None:
        """A data packet from ``in_port`` toward ``dst`` left this switch."""
        table = self.owed.get(in_port)
        if table is None:
            return  # upstream is a host: no credits
        key = (in_port, dst)
        if psn > self.last_fwd_psn.get(key, -1):
            self.last_fwd_psn[key] = psn
        if self.config.ideal:
            self.send_fn(in_port, dst, 1, self.last_fwd_psn[key])
            self.credits_sent += 1
        else:
            table[dst] = table.get(dst, 0) + 1
            timer = self._timers[in_port]
            if not timer.running:
                # Stagger the phase by port index so a switch's ports
                # do not all emit credit bursts in the same instant.
                timer.start(phase=(in_port * 97) % self.config.credit_timer)

    def answer_syn(self, in_port: int, dst: int) -> None:
        """switchSYN reply: echo the last forwarded PSN unconditionally."""
        key = (in_port, dst)
        psn = self.last_fwd_psn.get(key, -1)
        table = self.owed.get(in_port)
        count = table.pop(dst, 0) if table is not None else 0
        self.send_fn(in_port, dst, count, psn)
        self.credits_sent += 1

    # -- timer ------------------------------------------------------------------------

    def _tick(self, port: int) -> None:
        table = self.owed.get(port)
        if not table:
            self._timers[port].stop()
            return
        threshold = self.config.thre_credit_bytes
        flushable: List[int] = []
        for dst in table:
            if self.backlog_fn(dst) <= threshold:
                flushable.append(dst)
            else:
                self.credits_delayed += 1
        for dst in flushable:
            count = table.pop(dst)
            self.send_fn(port, dst, count, self.last_fwd_psn.get((port, dst), -1))
            self.credits_sent += 1
