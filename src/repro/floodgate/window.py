"""Per-destination sending windows with PSN loss recovery.

The window is the incast *probe* (§3.2): destinations whose credits
return promptly always show a full window; a destination behind a
bottleneck drains its window and is thereby identified as incast.

Windows count packets ("decreased by one", §3.2).  With loss recovery
enabled (§4.3), each (egress-port, destination) pair carries a PSN
sequence; credits echo the highest PSN the downstream switch has
forwarded, letting the upstream reconstruct the remaining window as
``init - (next_send - echoed)`` — self-healing after data *or* credit
loss.
"""

from __future__ import annotations

from typing import Dict, Tuple


class WindowTable:
    """Sending-window state for one Floodgate switch."""

    def __init__(self) -> None:
        #: remaining window per destination, packets
        self.window: Dict[int, int] = {}
        #: the initial window per destination (fixed per route)
        self.initial: Dict[int, int] = {}
        #: PSN of the next data packet per (egress port, dst)
        self.next_psn: Dict[Tuple[int, int], int] = {}
        #: highest PSN echoed back by downstream per (egress port, dst)
        self.echoed_psn: Dict[Tuple[int, int], int] = {}
        #: last time a credit arrived per (egress port, dst), ns
        self.last_credit_time: Dict[Tuple[int, int], int] = {}

    def ensure(self, dst: int, initial: int) -> int:
        """Install the initial window for ``dst`` on first sight."""
        if dst not in self.window:
            self.window[dst] = initial
            self.initial[dst] = initial
        return self.window[dst]

    def consume(self, dst: int) -> None:
        """One packet forwarded toward ``dst``."""
        self.window[dst] -= 1

    def add_credits(self, dst: int, n: int) -> None:
        """Incremental credit return (no PSN information)."""
        if dst in self.window:
            self.window[dst] = min(self.window[dst] + n, self.initial[dst])

    def assign_psn(self, port: int, dst: int) -> int:
        """Next PSN for a data packet leaving ``port`` toward ``dst``."""
        key = (port, dst)
        psn = self.next_psn.get(key, 0)
        self.next_psn[key] = psn + 1
        return psn

    def reconcile(self, port: int, dst: int, echoed_psn: int, now: int) -> None:
        """Absolute window reconstruction from a PSN-bearing credit."""
        key = (port, dst)
        prev = self.echoed_psn.get(key, -1)
        if echoed_psn < prev:
            return  # stale / reordered credit
        self.echoed_psn[key] = echoed_psn
        self.last_credit_time[key] = now
        if dst in self.initial:
            inflight = self.next_psn.get(key, 0) - (echoed_psn + 1)
            self.window[dst] = self.initial[dst] - max(inflight, 0)

    def exhausted_pairs(self) -> list[Tuple[int, int]]:
        """(port, dst) pairs with packets outstanding (switchSYN scan)."""
        pairs = []
        for key, sent in self.next_psn.items():
            if sent - (self.echoed_psn.get(key, -1) + 1) > 0:
                pairs.append(key)
        return pairs

    def active_destinations(self) -> int:
        """Destinations with a less-than-full window (memory footprint)."""
        return sum(
            1 for d, w in self.window.items() if w < self.initial.get(d, w)
        )
