"""Floodgate configuration.

Defaults follow §6 ("Parameters"): credit timer ``T = 10 µs``,
delayCredit threshold ``10 BDP``, ``m = 1.5`` for the ideal design, and
up to 100 VOQs per switch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import us


@dataclass(frozen=True)
class FloodgateConfig:
    """Parameters for one Floodgate deployment.

    ``ideal=True`` selects the strawman design of §3.2: per-packet
    credits (no aggregation timer, no delayCredit) and a sending window
    of ``m * BDP_nextHop``.  The practical design (§4) aggregates
    credits every ``credit_timer`` and initializes the window to
    ``BDP_nextHop + C_out * T``.
    """

    ideal: bool = False
    #: credit aggregation interval T (practical design), ns
    credit_timer: int = us(10)
    #: delayCredit threshold on the per-dst VOQ backlog, bytes
    #: (the paper's default is 10 BDP; set from the topology's base BDP)
    thre_credit_bytes: int = 640_000
    #: window aggressiveness for the ideal design (m * BDP_nextHop)
    m: float = 1.5
    #: VOQ pool size per switch
    max_voqs: int = 100
    #: enable the optional per-dst PAUSE host support (§4.3)
    per_dst_pause: bool = False
    #: dstPause on/off thresholds on per-dst VOQ backlog, bytes
    #: (paper: "a relatively small value, e.g., one-hop BDP")
    thre_off_bytes: int = 64_000
    thre_on_bytes: int = 32_000
    #: enable PSN tracking + switchSYN loss recovery (§4.3)
    loss_recovery: bool = True
    #: switchSYN probe timeout, ns ("a relatively large timeout")
    syn_timeout: int = us(100)
    #: credit-regeneration guard: when > 0 (ns), a downstream switch
    #: that has emitted no credit toward an (ingress port, dst) for
    #: this long re-sends a count-0 credit echoing the last forwarded
    #: PSN, so a *dropped* credit cannot strand the upstream VOQ
    #: forever (the upstream heals its window via PSN reconcile).
    #: 0 disables the guard (default — keeps fault-free runs
    #: bit-identical with earlier versions).  Practical design only.
    credit_regen_timeout: int = 0
    #: max consecutive regenerations per (port, dst) with no new
    #: forwarding activity in between; bounds idle control traffic
    credit_regen_limit: int = 3
    #: ablation: when False, VOQ-drained (incast) packets re-enter the
    #: normal egress queue instead of the dedicated lowest-priority
    #: queue — removing the isolation that protects non-incast traffic
    #: from HOL blocking (§3.2 "incast isolation")
    isolate_incast: bool = True

    def with_base_bdp(
        self, bdp_bytes: int, credit_multiple: float = 10.0
    ) -> "FloodgateConfig":
        """Derive BDP-relative thresholds from the fabric's base BDP.

        ``credit_multiple`` is the delayCredit threshold in BDP units;
        the paper uses 10 and shows robustness across 1-38 (Fig. 17d).
        Scaled-down (CI) runs use a smaller multiple to preserve the
        threshold's ratio to the (also scaled-down) switch buffer.
        """
        return replace(
            self,
            thre_credit_bytes=int(credit_multiple * bdp_bytes),
            thre_off_bytes=bdp_bytes,
            thre_on_bytes=max(bdp_bytes // 2, 1),
        )
