"""Virtual Output Queues with bitmap allocation and hash fallback.

VOQ semantics (§4.2, §7.2):

* a free VOQ is dedicated to one destination on demand (bitmap scan);
* when the pool is exhausted, the destination is CRC-hashed onto an
  *occupied* VOQ of the same direction group, so packets of different
  destinations may share a VOQ (the corner case the paper tolerates);
* VOQs are grouped into *down* (destination below this switch) and
  *up* (destination reached via a higher layer) to break the
  hold-and-wait cycle of Fig. 4;
* an emptied VOQ returns to the pool.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from repro.net.packet import Packet

#: direction groups (deadlock avoidance)
GROUP_DOWN = 0
GROUP_UP = 1


def _crc_hash(value: int) -> int:
    """Deterministic stand-in for the CRC the paper suggests (§4.2)."""
    value = (value ^ (value >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    value = (value ^ (value >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    return value ^ (value >> 16)


class Voq:
    """One virtual output queue."""

    __slots__ = ("index", "packets", "bytes", "dsts", "group", "in_use")

    def __init__(self, index: int) -> None:
        self.index = index
        self.packets: Deque[Packet] = deque()
        self.bytes = 0
        self.dsts: Set[int] = set()
        self.group = GROUP_DOWN
        self.in_use = False

    def push(self, pkt: Packet) -> None:
        self.packets.append(pkt)
        self.bytes += pkt.size
        self.dsts.add(pkt.dst)

    def head(self) -> Optional[Packet]:
        return self.packets[0] if self.packets else None

    def pop(self) -> Packet:
        pkt = self.packets.popleft()
        self.bytes -= pkt.size
        return pkt

    def reset(self) -> None:
        self.packets.clear()
        self.bytes = 0
        self.dsts.clear()
        self.in_use = False


class VoqPool:
    """The switch's VOQ resources.

    Tracks which destination maps to which VOQ, per-destination backlog
    (for delayCredit and dstPause thresholds), and usage statistics.
    """

    def __init__(self, max_voqs: int) -> None:
        if max_voqs < 1:
            raise ValueError(f"need at least one VOQ, got {max_voqs}")
        self.voqs: List[Voq] = [Voq(i) for i in range(max_voqs)]
        self.voq_of_dst: Dict[int, Voq] = {}
        self.bytes_by_dst: Dict[int, int] = {}
        self.max_in_use = 0
        self.hash_fallbacks = 0
        self.overflow_bypasses = 0

    # -- queries --------------------------------------------------------------------

    @property
    def in_use_count(self) -> int:
        return sum(1 for v in self.voqs if v.in_use)

    def lookup(self, dst: int) -> Optional[Voq]:
        """The VOQ currently holding ``dst``'s packets, if any."""
        return self.voq_of_dst.get(dst)

    def dst_backlog(self, dst: int) -> int:
        """Bytes queued in VOQs for destination ``dst``."""
        return self.bytes_by_dst.get(dst, 0)

    def total_bytes(self) -> int:
        return sum(v.bytes for v in self.voqs if v.in_use)

    def telemetry_counters(self) -> Dict[str, int]:
        """End-of-run counter values for :mod:`repro.telemetry`."""
        return {
            "voq_max_in_use": self.max_in_use,
            "voq_hash_fallbacks": self.hash_fallbacks,
            "voq_overflow_bypasses": self.overflow_bypasses,
        }

    # -- allocation -------------------------------------------------------------------

    def allocate(self, dst: int, group: int) -> Optional[Voq]:
        """Find a VOQ for ``dst``: free slot first, hash fallback second.

        Returns None only when the pool is exhausted *and* no occupied
        VOQ of the same group exists (caller falls back to the default
        egress queue — counted as an overflow bypass).
        """
        for voq in self.voqs:
            if not voq.in_use:
                voq.in_use = True
                voq.group = group
                self.voq_of_dst[dst] = voq
                used = self.in_use_count
                if used > self.max_in_use:
                    self.max_in_use = used
                return voq
        same_group = [v for v in self.voqs if v.in_use and v.group == group]
        if not same_group:
            self.overflow_bypasses += 1
            return None
        self.hash_fallbacks += 1
        voq = same_group[_crc_hash(dst) % len(same_group)]
        self.voq_of_dst[dst] = voq
        return voq

    def push(self, voq: Voq, pkt: Packet) -> None:
        voq.push(pkt)
        self.bytes_by_dst[pkt.dst] = self.bytes_by_dst.get(pkt.dst, 0) + pkt.size

    def pop(self, voq: Voq) -> Packet:
        pkt = voq.pop()
        remaining = self.bytes_by_dst.get(pkt.dst, 0) - pkt.size
        if remaining > 0:
            self.bytes_by_dst[pkt.dst] = remaining
        else:
            self.bytes_by_dst.pop(pkt.dst, None)
        if not voq.packets:
            for dst in sorted(voq.dsts):
                self.voq_of_dst.pop(dst, None)
            voq.reset()
        return pkt
