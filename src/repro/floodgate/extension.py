"""The Floodgate switch extension: where windows, VOQs, credits meet.

Install on every switch *after* the topology is built (ports must
exist)::

    for sw in topo.switches:
        sw.install_extension(FloodgateExtension(sim, config))

Data path (§4.2):

1.  Packets for directly-attached hosts bypass Floodgate — the last
    hop maintains no window (§3.2) — but still earn credits for the
    upstream switch when they depart.
2.  If the destination already owns a VOQ, the packet joins it
    (ordering).
3.  Otherwise, if the per-dst window has room, the packet is forwarded
    to the egress queue, the window is consumed, and a PSN assigned.
4.  Otherwise a VOQ is allocated (bitmap, then same-group CRC-hash
    fallback) and the packet parked there.

Credits arriving from downstream refill the window (absolute PSN
reconciliation when loss recovery is on) and trigger VOQ drains.
Drained packets enter a dedicated lowest-priority egress queue so
non-incast traffic is never blocked behind them (§7.2's strict
priority + RR scheduler).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.floodgate.config import FloodgateConfig
from repro.floodgate.credit import CreditScheduler
from repro.floodgate.voq import GROUP_DOWN, GROUP_UP, VoqPool
from repro.floodgate.window import WindowTable
from repro.net.host import Host
from repro.net.packet import Packet, PacketKind
from repro.net.port import EgressPort
from repro.net.switch import Switch, SwitchExtension
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTask
from repro.units import CTRL_PKT_SIZE, MTU, SEC, serialization_delay


class FloodgateExtension(SwitchExtension):
    """Per-switch Floodgate state machine."""

    def __init__(self, sim: Simulator, config: FloodgateConfig) -> None:
        self.sim = sim
        self.config = config
        self.windows = WindowTable()
        self.pool = VoqPool(config.max_voqs)
        self.credits = CreditScheduler(
            sim, config, self._send_credit, self.pool.dst_backlog
        )
        #: egress queue index for VOQ-drained (incast) traffic, per port
        self.incast_queue: List[int] = []
        #: per-dst pause bookkeeping: dst -> paused source host ids
        self.paused_sources: Dict[int, Set[int]] = {}
        self._syn_task: Optional[PeriodicTask] = None
        self.syn_sent = 0
        self.dst_pauses_sent = 0
        #: CREDIT frames this switch consumed (sanitizer credit ledger)
        self.credit_frames_rx = 0

    def telemetry_counters(self) -> Dict[str, int]:
        """Credit + VOQ counters for :mod:`repro.telemetry` harvesting."""
        counters = dict(self.credits.telemetry_counters())
        counters.update(self.pool.telemetry_counters())
        counters["syn_sent"] = self.syn_sent
        counters["dst_pauses_sent"] = self.dst_pauses_sent
        return counters

    # -- installation -----------------------------------------------------------------

    def attach(self, switch: Switch) -> None:
        super().attach(switch)
        for port in switch.ports:
            self.incast_queue.append(port.add_rr_queues(1))
            peer = switch.peer(port.index)
            if isinstance(peer, Switch):
                self.credits.watch_port(port.index)
        if self.config.loss_recovery:
            # Runs lazily: armed whenever data is outstanding, stops
            # once every (port, dst) pair has been fully credited.
            self._syn_task = PeriodicTask(
                self.sim, self.config.syn_timeout, self._syn_scan
            )

    # -- window sizing ------------------------------------------------------------------

    def _initial_window(self, dst: int) -> int:
        """Initial per-dst window in packets (§3.2 ideal / §4.2 practical)."""
        sw = self.switch
        out = sw.route_for_dst(dst)
        link = sw.links[out]
        bw = link.bandwidth
        hop_rtt = (
            2 * link.delay
            + serialization_delay(MTU, bw)
            + serialization_delay(CTRL_PKT_SIZE, bw)
        )
        bdp_pkts = max(1, -(-int(bw * hop_rtt / (8 * SEC)) // MTU))
        if self.config.ideal:
            return max(1, int(self.config.m * bdp_pkts + 0.5))
        timer_pkts = -(-int(bw * self.config.credit_timer / (8 * SEC)) // MTU)
        return bdp_pkts + timer_pkts

    # -- data path ------------------------------------------------------------------------

    def on_data(self, pkt: Packet, in_port: int, out_port: int) -> bool:
        sw = self.switch
        dst = pkt.dst
        # Remember the upstream's PSN before we stamp our own: the
        # credit we eventually return must echo *their* sequence.
        pkt.upstream_psn = pkt.psn
        if sw.is_last_hop_for(dst):
            return False  # no window at the last hop (§3.2)
        voq = self.pool.lookup(dst)
        if voq is not None:
            self._park(pkt, out_port, voq)
            return True
        win = self.windows.ensure(dst, self._initial_window(dst))
        if win >= 1:
            self._forward(pkt, out_port)
            return True
        voq = self.pool.allocate(dst, self._group_of(out_port))
        if voq is None:
            # pool exhausted, no same-group VOQ: forced bypass (rare)
            self._forward(pkt, out_port, consume_window=False)
            return True
        self._park(pkt, out_port, voq)
        return True

    def _forward(
        self, pkt: Packet, out_port: int, consume_window: bool = True
    ) -> None:
        """Window-consuming fast path into the normal egress queue."""
        dst = pkt.dst
        if consume_window:
            self.windows.consume(dst)
        pkt.psn = self.windows.assign_psn(out_port, dst)
        key = (out_port, dst)
        self.windows.last_credit_time.setdefault(key, self.sim.now)
        self._arm_syn_scan()
        self.switch.enqueue_data(pkt, out_port)

    def _arm_syn_scan(self) -> None:
        if self._syn_task is not None and not self._syn_task.running:
            self._syn_task.start()

    def _park(self, pkt: Packet, out_port: int, voq) -> None:
        """Buffer an incast packet in its VOQ (charged to the pool)."""
        sw = self.switch
        buffer = sw.buffer
        assert buffer is not None
        if not buffer.admit(pkt.size, pkt.ingress_port):
            sw.dropped_packets += 1
            if sw.stats is not None:
                sw.stats.record_drop()
            sw.pool.release(pkt)
            return
        pkt.no_win = True
        sw._note_port_bytes(out_port, pkt.size)
        if sw.stats is not None:
            sw.stats.record_switch_buffer(sw.name, buffer.used)
        self.pool.push(voq, pkt)
        self._maybe_pause_source(pkt)

    def _group_of(self, out_port: int) -> int:
        """VOQ direction group: is the next hop below or above us?"""
        peer = self.switch.peer(out_port)
        if isinstance(peer, Host):
            return GROUP_DOWN
        if isinstance(peer, Switch) and peer.level < self.switch.level:
            return GROUP_DOWN
        return GROUP_UP

    # -- VOQ drain ----------------------------------------------------------------------------

    def _drain_dst(self, dst: int) -> None:
        voq = self.pool.lookup(dst)
        if voq is None:
            return
        sw = self.switch
        while voq.packets:
            head = voq.packets[0]
            d = head.dst
            out = sw.route_for_dst(d)
            win = self.windows.ensure(d, self._initial_window(d))
            if win < 1:
                break
            pkt = self.pool.pop(voq)
            self.windows.consume(d)
            pkt.psn = self.windows.assign_psn(out, d)
            self.windows.last_credit_time.setdefault((out, d), self.sim.now)
            self._arm_syn_scan()
            queue = self.incast_queue[out] if self.config.isolate_incast else 1
            sw.enqueue_data(pkt, out, queue_idx=queue, already_charged=True)
            self._maybe_resume_sources(d)

    # -- control path -------------------------------------------------------------------------

    def handle_control(self, pkt: Packet, in_port: int) -> bool:
        if pkt.kind == PacketKind.CREDIT:
            self.credit_frames_rx += 1
            for dst, count in pkt.credits or ():
                if self.config.loss_recovery and pkt.last_psn >= 0:
                    self.windows.reconcile(in_port, dst, pkt.last_psn, self.sim.now)
                else:
                    self.windows.add_credits(dst, count)
                self._drain_dst(dst)
            # consumed: recycle (note self.pool is the VoqPool — the
            # packet recycler lives on the switch)
            self.switch.pool.release(pkt)
            return True
        if pkt.kind == PacketKind.SWITCH_SYN:
            self.credits.answer_syn(in_port, pkt.pause_dst)
            self.switch.pool.release(pkt)
            return True
        return False

    def on_dequeue(self, port: EgressPort, pkt: Packet, queue_idx: int) -> None:
        if pkt.kind == PacketKind.DATA:
            self.credits.note_forwarded(
                pkt.ingress_port, pkt.dst, pkt.upstream_psn
            )

    def adjusted_qlen(self, pkt: Packet, port: EgressPort) -> Optional[int]:
        """HPCC co-existence (§8): incast packets report VOQ backlog."""
        if pkt.no_win:
            return port.data_bytes_queued + self.pool.total_bytes()
        return None

    # -- credit emission ---------------------------------------------------------------------------

    def _send_credit(self, port: int, dst: int, count: int, psn: int) -> None:
        sw = self.switch
        peer = sw.peer(port)
        credit = sw.pool.acquire_control(PacketKind.CREDIT, sw.node_id, peer.node_id)
        credit.credits = [(dst, count)]
        credit.last_psn = psn
        sw.ports[port].enqueue_control(credit)

    # -- switchSYN loss recovery -----------------------------------------------------------------------

    def _syn_scan(self) -> None:
        now = self.sim.now
        timeout = self.config.syn_timeout
        pairs = self.windows.exhausted_pairs()
        if not pairs and self._syn_task is not None:
            self._syn_task.stop()
            return
        for (port, dst) in pairs:
            last = self.windows.last_credit_time.get((port, dst), now)
            if now - last >= timeout:
                peer = self.switch.peer(port)
                if not isinstance(peer, Switch):
                    continue  # the last hop is a host: nothing to probe
                syn = self.switch.pool.acquire_control(
                    PacketKind.SWITCH_SYN, self.switch.node_id, peer.node_id
                )
                syn.pause_dst = dst
                self.switch.ports[port].enqueue_control(syn)
                self.windows.last_credit_time[(port, dst)] = now
                self.syn_sent += 1

    # -- per-dst PAUSE (§4.3, optional host support) ----------------------------------------------------

    def _maybe_pause_source(self, pkt: Packet) -> None:
        if not self.config.per_dst_pause or self.switch.level != 0:
            return
        dst = pkt.dst
        if self.pool.dst_backlog(dst) <= self.config.thre_off_bytes:
            return
        src_port = self.switch.connected_hosts.get(pkt.src)
        if src_port is None:
            return
        paused = self.paused_sources.setdefault(dst, set())
        if pkt.src in paused:
            return
        paused.add(pkt.src)
        self.dst_pauses_sent += 1
        frame = self.switch.pool.acquire_control(
            PacketKind.DST_PAUSE, self.switch.node_id, pkt.src
        )
        frame.pause_dst = dst
        self.switch.ports[src_port].enqueue_control(frame)

    def _maybe_resume_sources(self, dst: int) -> None:
        if not self.config.per_dst_pause:
            return
        paused = self.paused_sources.get(dst)
        if not paused:
            return
        if self.pool.dst_backlog(dst) >= self.config.thre_on_bytes:
            return
        for src in sorted(paused):
            src_port = self.switch.connected_hosts.get(src)
            if src_port is None:
                continue
            frame = self.switch.pool.acquire_control(
                PacketKind.DST_RESUME, self.switch.node_id, src
            )
            frame.pause_dst = dst
            self.switch.ports[src_port].enqueue_control(frame)
        paused.clear()

    # -- teardown / stats --------------------------------------------------------------------------------

    def stop(self) -> None:
        """Cancel periodic tasks (end of experiment)."""
        self.credits.stop()
        if self._syn_task is not None:
            self._syn_task.stop()
