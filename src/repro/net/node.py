"""Base class for network devices (switches and hosts)."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.sim.engine import Simulator
from repro.net.packet import DISABLED_POOL, PacketPool
from repro.net.port import EgressPort

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.packet import Packet


class Node:
    """A device with numbered ports, each attached to one link."""

    def __init__(self, sim: Simulator, node_id: int, name: str = "") -> None:
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"node{node_id}"
        self.ports: List[EgressPort] = []
        self.links: List["Link"] = []
        #: packet recycler shared by every node in a scenario; the
        #: module-level disabled pool by default, so allocation sites
        #: can call ``self.pool.acquire`` / ``.release`` unconditionally
        self.pool: PacketPool = DISABLED_POOL

    def attach_link(
        self,
        link: "Link",
        n_data_queues: int = 1,
        rr_data_queues: int = 0,
    ) -> int:
        """Create the egress port for ``link`` and return its index."""
        index = len(self.ports)
        port = EgressPort(
            self.sim,
            self,
            index,
            link,
            n_data_queues=n_data_queues,
            rr_data_queues=rr_data_queues,
        )
        # only wire the dequeue hook when the subclass actually has one;
        # hosts inherit the base no-op, and skipping it saves a method
        # call per transmitted packet on every NIC port
        if type(self).on_port_dequeue is not Node.on_port_dequeue:
            port.on_dequeue = self.on_port_dequeue
        self.ports.append(port)
        self.links.append(link)
        if link.node_a is self:
            link.port_a = index
        else:
            link.port_b = index
        return index

    def peer(self, port_index: int) -> "Node":
        """The node on the far side of ``port_index``."""
        return self.links[port_index].peer_of(self)

    # -- to be provided by subclasses ------------------------------------------------

    def receive(self, pkt: "Packet", ingress_port: int) -> None:
        """Handle a packet delivered by a link."""
        raise NotImplementedError

    def on_port_dequeue(
        self, port: EgressPort, pkt: "Packet", queue_idx: int
    ) -> None:
        """Hook fired when a packet leaves one of our egress queues."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
