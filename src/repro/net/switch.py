"""Output-queued switch with shared buffer, ECN, PFC, and extensions.

The base switch implements what the paper calls "today's commodity
switch": per-dst (or per-flow) ECMP forwarding, RED/ECN marking at
egress, a shared buffer with dynamic-threshold PFC, and in-band
telemetry for HPCC.

Flow-control schemes — Floodgate, BFC, NDP trimming, PFC-w/-tag — plug
in as a :class:`SwitchExtension`.  The extension sees each data packet
*before* the default enqueue and may claim it (hold it in a VOQ, trim
it, re-queue it); it also observes dequeues for credit accounting.
This keeps the combinatorics of (congestion control x flow control)
out of the class hierarchy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.net.buffer import SharedBuffer
from repro.net.ecn import EcnMarker
from repro.net.node import Node
from repro.net.packet import (
    IS_ACK_LIKE,
    IS_CONTROL,
    IntRecord,
    Packet,
    PacketKind,
)
from repro.net.port import EgressPort
from repro.sim.engine import Simulator
from repro.stats.collector import BW_CREDIT, BW_CTRL, BW_DATA, StatsHub

#: hoisted enum members: the receive dispatcher compares against these
#: once per packet, and a module global beats an Enum class attribute
_DATA = PacketKind.DATA
_PFC_PAUSE = PacketKind.PFC_PAUSE
_PFC_RESUME = PacketKind.PFC_RESUME
_CREDIT_LIKE = (PacketKind.CREDIT, PacketKind.SWITCH_SYN)

#: dense route entries only for dsts below this bound.  Host ids are
#: small and contiguous (switch ids start at 1_000_000), so every real
#: destination lands in the flat table; anything above falls back to
#: the dict without allocating a million-slot list.
_FLAT_ROUTE_LIMIT = 1 << 17


def _ecmp_hash(value: int) -> int:
    """Cheap deterministic integer hash (Knuth multiplicative)."""
    return (value * 2654435761) & 0xFFFFFFFF


class SwitchExtension:
    """Hook interface for switch-resident flow-control schemes."""

    switch: "Switch"

    def attach(self, switch: "Switch") -> None:
        """Called once when installed on ``switch``."""
        self.switch = switch

    def handle_control(self, pkt: Packet, in_port: int) -> bool:
        """Consume a control frame; return True if handled."""
        return False

    def on_data(self, pkt: Packet, in_port: int, out_port: int) -> bool:
        """See a data packet before default forwarding.

        Return True if the extension took ownership (buffered it in a
        VOQ, trimmed it, dropped it, enqueued it itself).
        """
        return False

    def on_dequeue(self, port: EgressPort, pkt: Packet, queue_idx: int) -> None:
        """Observe a packet leaving an egress queue."""

    def voq_bytes_for_port(self, port_index: int) -> int:
        """Extension-held bytes logically belonging to ``port_index``."""
        return 0

    def adjusted_qlen(self, pkt: Packet, port: EgressPort) -> Optional[int]:
        """Override the INT queue length for ``pkt`` (None = default)."""
        return None


class Switch(Node):
    """An output-queued datacenter switch."""

    #: node kind used in PFC accounting ("tor", "core", "agg", ...)
    kind: str = "switch"

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        name: str,
        buffer_capacity: int,
        kind: str = "switch",
        pfc_enabled: bool = True,
        pfc_alpha: float = 2.0,
        ecn: Optional[EcnMarker] = None,
        stats: Optional[StatsHub] = None,
        int_enabled: bool = False,
        per_flow_ecmp: bool = False,
    ) -> None:
        super().__init__(sim, node_id, name)
        self.kind = kind
        #: topology layer: 0 = ToR/edge, 1 = agg/spine, 2 = core.
        #: Set by the topology factory; used by Floodgate's VOQ grouping.
        self.level = 0
        self.buffer_capacity = buffer_capacity
        self.pfc_enabled = pfc_enabled
        self.pfc_alpha = pfc_alpha
        self.ecn = ecn
        self.stats = stats
        self.int_enabled = int_enabled
        self.per_flow_ecmp = per_flow_ecmp
        # routing: dst host id -> port index, or tuple of candidates
        self.routes: Dict[int, Union[int, Tuple[int, ...]]] = {}
        #: dense dst-indexed route table (-1 = no entry): the per-dst
        #: ECMP choice is resolved once at set_route time, so the hot
        #: path is a single list index instead of dict + isinstance +
        #: hash per packet
        self._route_flat: List[int] = []
        #: parallel table of ECMP candidate tuples (None = single port),
        #: consulted only under per-flow ECMP where the choice depends
        #: on the packet's flow id
        self._route_multi: List[Optional[Tuple[int, ...]]] = []
        #: hosts attached directly: host id -> port index
        self.connected_hosts: Dict[int, int] = {}
        #: per-port role labels for stats ("tor-up", "core", ...)
        self.port_roles: List[str] = []
        self.extension: Optional[SwitchExtension] = None
        # buffer is created on finalize() once the port count is known
        self.buffer: Optional[SharedBuffer] = None
        #: optional per-packet tracer (see repro.net.trace)
        self.tracer = None
        self.dropped_packets = 0
        #: control frames no extension claimed (e.g. Floodgate credits
        #: arriving after teardown, or frames meant for an extension
        #: this switch doesn't run).  Counted so fault experiments can
        #: tell injected control loss from unclaimed-frame discard.
        self.unclaimed_control_frames = 0
        #: subset of the above that were Floodgate CREDIT frames, so the
        #: sanitizer can balance the credit conservation ledger
        self.unclaimed_credit_frames = 0
        #: optional SimSanitizer back-reference (repro.simcheck); None
        #: on unsanitized runs, so control paths pay one is-None check
        self.sanitizer = None
        #: per-port occupancy (egress queues + extension VOQ bytes)
        self._port_bytes: List[int] = []
        self.port_max_bytes: List[int] = []

    # -- construction -----------------------------------------------------------

    def attach_link(self, link, n_data_queues: int = 1, rr_data_queues: int = 0) -> int:
        index = super().attach_link(link, n_data_queues, rr_data_queues)
        self.port_roles.append("unknown")
        self._port_bytes.append(0)
        self.port_max_bytes.append(0)
        return index

    def finalize(self) -> None:
        """Create the shared buffer once all links are attached."""
        self.buffer = SharedBuffer(
            self.buffer_capacity,
            n_ports=len(self.ports),
            alpha=self.pfc_alpha,
            pfc_enabled=self.pfc_enabled,
        )
        self.buffer.on_pause = self._send_pfc_pause
        self.buffer.on_resume = self._send_pfc_resume

    def install_extension(self, ext: SwitchExtension) -> None:
        self.extension = ext
        ext.attach(self)

    def set_route(self, dst: int, ports: Union[int, Tuple[int, ...]]) -> None:
        self.routes[dst] = ports
        if not 0 <= dst < _FLAT_ROUTE_LIMIT:
            return  # exotic dst: served from the dict fallback
        flat = self._route_flat
        if dst >= len(flat):
            grow = dst + 1 - len(flat)
            flat.extend([-1] * grow)
            self._route_multi.extend([None] * grow)
        if isinstance(ports, int):
            flat[dst] = ports
            self._route_multi[dst] = None
        else:
            # per-dst ECMP resolved once, here, instead of per packet
            flat[dst] = ports[_ecmp_hash(dst) % len(ports)]
            self._route_multi[dst] = tuple(ports)

    # -- routing ------------------------------------------------------------------

    def route(self, pkt: Packet) -> int:
        """Egress port index for ``pkt`` (ECMP resolved here)."""
        dst = pkt.dst
        try:
            port = self._route_flat[dst]
        except IndexError:
            port = -1
        if port < 0:
            return self._route_slow(dst, pkt.flow_id)
        if self.per_flow_ecmp:
            entry = self._route_multi[dst]
            if entry is not None:
                return entry[_ecmp_hash(pkt.flow_id) % len(entry)]
        return port

    def route_for_dst(self, dst: int) -> int:
        """Egress port for a destination under per-dst ECMP."""
        try:
            port = self._route_flat[dst]
        except IndexError:
            port = -1
        if port < 0:
            return self._route_slow(dst, None)
        return port

    def _route_slow(self, dst: int, flow_id: Optional[int]) -> int:
        """Dict fallback for dsts outside the flat table (or unset)."""
        entry = self.routes[dst]  # KeyError for unknown dst, as before
        if isinstance(entry, int):
            return entry
        key = flow_id if (self.per_flow_ecmp and flow_id is not None) else dst
        return entry[_ecmp_hash(key) % len(entry)]

    def is_last_hop_for(self, dst: int) -> bool:
        """True when ``dst`` is a host directly attached to this switch."""
        return dst in self.connected_hosts

    # -- receive path -----------------------------------------------------------------

    def receive(self, pkt: Packet, ingress_port: int) -> None:
        pkt.hop_count += 1
        pkt.ingress_port = ingress_port
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.name, "rx", pkt)
        kind = pkt.kind
        if kind == _DATA:
            # the vast majority of arrivals: dispatch before the
            # control-kind ladder
            out_port = self.route(pkt)
            ext = self.extension
            if ext is not None and ext.on_data(pkt, ingress_port, out_port):
                return
            self.enqueue_data(pkt, out_port)
            return
        if kind == _PFC_PAUSE:
            port = self.ports[ingress_port]
            if self.sanitizer is not None:
                self.sanitizer.note_pfc(self, ingress_port, True, port.paused)
            port.pause()
            self.pool.release(pkt)
            return
        if kind == _PFC_RESUME:
            port = self.ports[ingress_port]
            if self.sanitizer is not None:
                self.sanitizer.note_pfc(self, ingress_port, False, port.paused)
            port.resume()
            self.pool.release(pkt)
            return
        if IS_CONTROL[kind]:
            if self.extension is not None and self.extension.handle_control(
                pkt, ingress_port
            ):
                return  # the extension consumed (and recycled) the frame
            # unclaimed: no extension owns this frame — count and trace
            # the discard instead of losing it silently
            self.unclaimed_control_frames += 1
            if kind == PacketKind.CREDIT:
                self.unclaimed_credit_frames += 1
            if self.stats is not None:
                self.stats.record_unclaimed_control()
            if self.tracer is not None:
                self.tracer.record(self.sim.now, self.name, "drop", pkt)
            self.pool.release(pkt)
            return
        out_port = self.route(pkt)
        if IS_ACK_LIKE[kind]:
            # End-to-end control: strictly prioritized, not buffer-accounted
            # (negligible size, never the congestion bottleneck).
            self.ports[out_port].enqueue_control(pkt)
            return
        if self.extension is not None and self.extension.on_data(
            pkt, ingress_port, out_port
        ):
            return
        self.enqueue_data(pkt, out_port)

    def enqueue_data(
        self,
        pkt: Packet,
        out_port: int,
        queue_idx: int = 1,
        already_charged: bool = False,
    ) -> None:
        """Admission control + ECN + enqueue to an egress data queue.

        ``already_charged`` skips buffer admission and port-occupancy
        accounting for packets moving out of an extension's VOQ (they
        were charged when first buffered).
        """
        buffer = self.buffer
        if buffer is None:
            raise RuntimeError(f"{self.name}: finalize() was not called")
        stats = self.stats
        if not already_charged:
            if not buffer.admit(pkt.size, pkt.ingress_port):
                self.dropped_packets += 1
                if stats is not None:
                    stats.record_drop()
                if self.tracer is not None:
                    # the dropped copy's "rx" must not be mistaken for
                    # a queued packet when pairing rx/tx delays
                    self.tracer.record(self.sim.now, self.name, "drop", pkt)
                self.pool.release(pkt)
                return
        port = self.ports[out_port]
        if (
            self.ecn is not None
            and pkt.ecn_capable
            and not pkt.ecn_marked
            and self.ecn.should_mark(port.data_bytes_queued)
        ):
            pkt.ecn_marked = True
        if not already_charged:
            self._note_port_bytes(out_port, pkt.size)
            if stats is not None:
                stats.record_switch_buffer(self.name, buffer.used)
        port.enqueue(pkt, queue_idx)

    # -- occupancy tracking ----------------------------------------------------------

    def _note_port_bytes(self, port_index: int, delta: int) -> None:
        """Track per-port occupancy (egress + VOQ) and report maxima."""
        self._port_bytes[port_index] += delta
        used = self._port_bytes[port_index]
        if used > self.port_max_bytes[port_index]:
            self.port_max_bytes[port_index] = used
            if self.stats is not None:
                self.stats.record_port_buffer(
                    self.name, self.port_roles[port_index], used
                )

    def port_occupancy(self, port_index: int) -> int:
        """Current bytes held for ``port_index`` (queues + VOQs)."""
        return self._port_bytes[port_index]

    def telemetry_gauges(self):
        """Pull-read gauge surfaces for :mod:`repro.telemetry`.

        Polled by periodic samplers only — nothing here runs on the
        packet path.
        """
        return {
            "buffer_bytes": lambda s=self: (
                s.buffer.used if s.buffer is not None else 0
            ),
            "dropped_packets": lambda s=self: s.dropped_packets,
        }

    # -- dequeue hook -------------------------------------------------------------------

    def on_port_dequeue(self, port: EgressPort, pkt: Packet, queue_idx: int) -> None:
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.name, "tx", pkt)
        stats = self.stats
        if pkt.ecn_capable:  # DATA packets only
            if self.buffer is not None:
                self.buffer.release(pkt.size, pkt.ingress_port)
            self._port_bytes[port.index] -= pkt.size
            if stats is not None:
                stats.record_queuing(
                    self.port_roles[port.index],
                    pkt.flow_id,
                    self.sim.now - pkt.enqueue_time,
                )
            if self.int_enabled and pkt.int_records is not None:
                qlen = None
                if self.extension is not None:
                    qlen = self.extension.adjusted_qlen(pkt, port)
                if qlen is None:
                    qlen = port.data_bytes_queued
                pkt.int_records.append(
                    IntRecord(qlen, port.tx_bytes, self.sim.now, port.bandwidth)
                )
        if self.extension is not None:
            self.extension.on_dequeue(port, pkt, queue_idx)
        if stats is not None and stats.track_bandwidth:
            kind = pkt.kind
            if kind == _DATA:
                stats.record_tx(BW_DATA, pkt.size)
            elif kind in _CREDIT_LIKE:
                stats.record_tx(BW_CREDIT, pkt.size)
            else:
                stats.record_tx(BW_CTRL, pkt.size)

    # -- PFC generation --------------------------------------------------------------------

    def _send_pfc_pause(self, ingress_port: int) -> None:
        """Our ingress crossed the threshold: pause the upstream peer."""
        peer = self.peer(ingress_port)
        frame = self.pool.acquire_control(
            PacketKind.PFC_PAUSE, self.node_id, peer.node_id
        )
        self.ports[ingress_port].enqueue_control(frame)
        if self.stats is not None:
            self.stats.record_pfc_event()

    def _send_pfc_resume(self, ingress_port: int) -> None:
        peer = self.peer(ingress_port)
        frame = self.pool.acquire_control(
            PacketKind.PFC_RESUME, self.node_id, peer.node_id
        )
        self.ports[ingress_port].enqueue_control(frame)

    def report_pause_time(self) -> None:
        """Flush accumulated egress pause durations into the stats hub."""
        if self.stats is None:
            return
        for port in self.ports:
            paused = port.total_paused_time
            if port.pause_started >= 0:  # still paused at end of run
                paused += self.sim.now - port.pause_started
            if paused:
                self.stats.record_pfc_pause(self.kind, paused)
