"""Output-queued switch with shared buffer, ECN, PFC, and extensions.

The base switch implements what the paper calls "today's commodity
switch": per-dst (or per-flow) ECMP forwarding, RED/ECN marking at
egress, a shared buffer with dynamic-threshold PFC, and in-band
telemetry for HPCC.

Flow-control schemes — Floodgate, BFC, NDP trimming, PFC-w/-tag — plug
in as a :class:`SwitchExtension`.  The extension sees each data packet
*before* the default enqueue and may claim it (hold it in a VOQ, trim
it, re-queue it); it also observes dequeues for credit accounting.
This keeps the combinatorics of (congestion control x flow control)
out of the class hierarchy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.net.buffer import SharedBuffer
from repro.net.ecn import EcnMarker
from repro.net.node import Node
from repro.net.packet import IntRecord, Packet, PacketKind
from repro.net.port import EgressPort
from repro.sim.engine import Simulator
from repro.stats.collector import BW_CREDIT, BW_CTRL, BW_DATA, StatsHub


def _ecmp_hash(value: int) -> int:
    """Cheap deterministic integer hash (Knuth multiplicative)."""
    return (value * 2654435761) & 0xFFFFFFFF


class SwitchExtension:
    """Hook interface for switch-resident flow-control schemes."""

    switch: "Switch"

    def attach(self, switch: "Switch") -> None:
        """Called once when installed on ``switch``."""
        self.switch = switch

    def handle_control(self, pkt: Packet, in_port: int) -> bool:
        """Consume a control frame; return True if handled."""
        return False

    def on_data(self, pkt: Packet, in_port: int, out_port: int) -> bool:
        """See a data packet before default forwarding.

        Return True if the extension took ownership (buffered it in a
        VOQ, trimmed it, dropped it, enqueued it itself).
        """
        return False

    def on_dequeue(self, port: EgressPort, pkt: Packet, queue_idx: int) -> None:
        """Observe a packet leaving an egress queue."""

    def voq_bytes_for_port(self, port_index: int) -> int:
        """Extension-held bytes logically belonging to ``port_index``."""
        return 0

    def adjusted_qlen(self, pkt: Packet, port: EgressPort) -> Optional[int]:
        """Override the INT queue length for ``pkt`` (None = default)."""
        return None


class Switch(Node):
    """An output-queued datacenter switch."""

    #: node kind used in PFC accounting ("tor", "core", "agg", ...)
    kind: str = "switch"

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        name: str,
        buffer_capacity: int,
        kind: str = "switch",
        pfc_enabled: bool = True,
        pfc_alpha: float = 2.0,
        ecn: Optional[EcnMarker] = None,
        stats: Optional[StatsHub] = None,
        int_enabled: bool = False,
        per_flow_ecmp: bool = False,
    ) -> None:
        super().__init__(sim, node_id, name)
        self.kind = kind
        #: topology layer: 0 = ToR/edge, 1 = agg/spine, 2 = core.
        #: Set by the topology factory; used by Floodgate's VOQ grouping.
        self.level = 0
        self.buffer_capacity = buffer_capacity
        self.pfc_enabled = pfc_enabled
        self.pfc_alpha = pfc_alpha
        self.ecn = ecn
        self.stats = stats
        self.int_enabled = int_enabled
        self.per_flow_ecmp = per_flow_ecmp
        # routing: dst host id -> port index, or tuple of candidates
        self.routes: Dict[int, Union[int, Tuple[int, ...]]] = {}
        #: hosts attached directly: host id -> port index
        self.connected_hosts: Dict[int, int] = {}
        #: per-port role labels for stats ("tor-up", "core", ...)
        self.port_roles: List[str] = []
        self.extension: Optional[SwitchExtension] = None
        # buffer is created on finalize() once the port count is known
        self.buffer: Optional[SharedBuffer] = None
        #: optional per-packet tracer (see repro.net.trace)
        self.tracer = None
        self.dropped_packets = 0
        #: control frames no extension claimed (e.g. Floodgate credits
        #: arriving after teardown, or frames meant for an extension
        #: this switch doesn't run).  Counted so fault experiments can
        #: tell injected control loss from unclaimed-frame discard.
        self.unclaimed_control_frames = 0
        #: subset of the above that were Floodgate CREDIT frames, so the
        #: sanitizer can balance the credit conservation ledger
        self.unclaimed_credit_frames = 0
        #: optional SimSanitizer back-reference (repro.simcheck); None
        #: on unsanitized runs, so control paths pay one is-None check
        self.sanitizer = None
        #: per-port occupancy (egress queues + extension VOQ bytes)
        self._port_bytes: List[int] = []
        self.port_max_bytes: List[int] = []

    # -- construction -----------------------------------------------------------

    def attach_link(self, link, n_data_queues: int = 1, rr_data_queues: int = 0) -> int:
        index = super().attach_link(link, n_data_queues, rr_data_queues)
        self.port_roles.append("unknown")
        self._port_bytes.append(0)
        self.port_max_bytes.append(0)
        return index

    def finalize(self) -> None:
        """Create the shared buffer once all links are attached."""
        self.buffer = SharedBuffer(
            self.buffer_capacity,
            n_ports=len(self.ports),
            alpha=self.pfc_alpha,
            pfc_enabled=self.pfc_enabled,
        )
        self.buffer.on_pause = self._send_pfc_pause
        self.buffer.on_resume = self._send_pfc_resume

    def install_extension(self, ext: SwitchExtension) -> None:
        self.extension = ext
        ext.attach(self)

    def set_route(self, dst: int, ports: Union[int, Tuple[int, ...]]) -> None:
        self.routes[dst] = ports

    # -- routing ------------------------------------------------------------------

    def route(self, pkt: Packet) -> int:
        """Egress port index for ``pkt`` (ECMP resolved here)."""
        entry = self.routes[pkt.dst]
        if isinstance(entry, int):
            return entry
        key = pkt.flow_id if self.per_flow_ecmp else pkt.dst
        return entry[_ecmp_hash(key) % len(entry)]

    def route_for_dst(self, dst: int) -> int:
        """Egress port for a destination under per-dst ECMP."""
        entry = self.routes[dst]
        if isinstance(entry, int):
            return entry
        return entry[_ecmp_hash(dst) % len(entry)]

    def is_last_hop_for(self, dst: int) -> bool:
        """True when ``dst`` is a host directly attached to this switch."""
        return dst in self.connected_hosts

    # -- receive path -----------------------------------------------------------------

    def receive(self, pkt: Packet, ingress_port: int) -> None:
        pkt.hop_count += 1
        pkt.ingress_port = ingress_port
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.name, "rx", pkt)
        kind = pkt.kind
        if kind == PacketKind.PFC_PAUSE:
            port = self.ports[ingress_port]
            if self.sanitizer is not None:
                self.sanitizer.note_pfc(self, ingress_port, True, port.paused)
            port.pause()
            return
        if kind == PacketKind.PFC_RESUME:
            port = self.ports[ingress_port]
            if self.sanitizer is not None:
                self.sanitizer.note_pfc(self, ingress_port, False, port.paused)
            port.resume()
            return
        if pkt.is_control():
            if self.extension is not None and self.extension.handle_control(
                pkt, ingress_port
            ):
                return
            # unclaimed: no extension owns this frame — count and trace
            # the discard instead of losing it silently
            self.unclaimed_control_frames += 1
            if kind == PacketKind.CREDIT:
                self.unclaimed_credit_frames += 1
            if self.stats is not None:
                self.stats.record_unclaimed_control()
            if self.tracer is not None:
                self.tracer.record(self.sim.now, self.name, "drop", pkt)
            return
        out_port = self.route(pkt)
        if pkt.is_ack_like():
            # End-to-end control: strictly prioritized, not buffer-accounted
            # (negligible size, never the congestion bottleneck).
            self.ports[out_port].enqueue_control(pkt)
            return
        if self.extension is not None and self.extension.on_data(
            pkt, ingress_port, out_port
        ):
            return
        self.enqueue_data(pkt, out_port)

    def enqueue_data(
        self,
        pkt: Packet,
        out_port: int,
        queue_idx: int = 1,
        already_charged: bool = False,
    ) -> None:
        """Admission control + ECN + enqueue to an egress data queue.

        ``already_charged`` skips buffer admission and port-occupancy
        accounting for packets moving out of an extension's VOQ (they
        were charged when first buffered).
        """
        buffer = self.buffer
        if buffer is None:
            raise RuntimeError(f"{self.name}: finalize() was not called")
        if not already_charged:
            if not buffer.admit(pkt.size, pkt.ingress_port):
                self.dropped_packets += 1
                if self.stats is not None:
                    self.stats.record_drop()
                if self.tracer is not None:
                    # the dropped copy's "rx" must not be mistaken for
                    # a queued packet when pairing rx/tx delays
                    self.tracer.record(self.sim.now, self.name, "drop", pkt)
                return
        port = self.ports[out_port]
        if (
            self.ecn is not None
            and pkt.ecn_capable
            and not pkt.ecn_marked
            and self.ecn.should_mark(port.data_bytes_queued)
        ):
            pkt.ecn_marked = True
        if not already_charged:
            self._note_port_bytes(out_port, pkt.size)
            if self.stats is not None:
                self.stats.record_switch_buffer(self.name, buffer.used)
        port.enqueue(pkt, queue_idx)

    # -- occupancy tracking ----------------------------------------------------------

    def _note_port_bytes(self, port_index: int, delta: int) -> None:
        """Track per-port occupancy (egress + VOQ) and report maxima."""
        self._port_bytes[port_index] += delta
        used = self._port_bytes[port_index]
        if used > self.port_max_bytes[port_index]:
            self.port_max_bytes[port_index] = used
            if self.stats is not None:
                self.stats.record_port_buffer(
                    self.name, self.port_roles[port_index], used
                )

    def port_occupancy(self, port_index: int) -> int:
        """Current bytes held for ``port_index`` (queues + VOQs)."""
        return self._port_bytes[port_index]

    def telemetry_gauges(self):
        """Pull-read gauge surfaces for :mod:`repro.telemetry`.

        Polled by periodic samplers only — nothing here runs on the
        packet path.
        """
        return {
            "buffer_bytes": lambda s=self: (
                s.buffer.used if s.buffer is not None else 0
            ),
            "dropped_packets": lambda s=self: s.dropped_packets,
        }

    # -- dequeue hook -------------------------------------------------------------------

    def on_port_dequeue(self, port: EgressPort, pkt: Packet, queue_idx: int) -> None:
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.name, "tx", pkt)
        stats = self.stats
        if pkt.ecn_capable:  # DATA packets only
            if self.buffer is not None:
                self.buffer.release(pkt.size, pkt.ingress_port)
            self._port_bytes[port.index] -= pkt.size
            if stats is not None:
                stats.record_queuing(
                    self.port_roles[port.index],
                    pkt.flow_id,
                    self.sim.now - pkt.enqueue_time,
                )
            if self.int_enabled and pkt.int_records is not None:
                qlen = None
                if self.extension is not None:
                    qlen = self.extension.adjusted_qlen(pkt, port)
                if qlen is None:
                    qlen = port.data_bytes_queued
                pkt.int_records.append(
                    IntRecord(qlen, port.tx_bytes, self.sim.now, port.bandwidth)
                )
        if self.extension is not None:
            self.extension.on_dequeue(port, pkt, queue_idx)
        if stats is not None and stats.track_bandwidth:
            if pkt.kind == PacketKind.DATA:
                stats.record_tx(BW_DATA, pkt.size)
            elif pkt.kind in (PacketKind.CREDIT, PacketKind.SWITCH_SYN):
                stats.record_tx(BW_CREDIT, pkt.size)
            else:
                stats.record_tx(BW_CTRL, pkt.size)

    # -- PFC generation --------------------------------------------------------------------

    def _send_pfc_pause(self, ingress_port: int) -> None:
        """Our ingress crossed the threshold: pause the upstream peer."""
        peer = self.peer(ingress_port)
        frame = Packet.control(PacketKind.PFC_PAUSE, self.node_id, peer.node_id)
        self.ports[ingress_port].enqueue_control(frame)
        if self.stats is not None:
            self.stats.record_pfc_event()

    def _send_pfc_resume(self, ingress_port: int) -> None:
        peer = self.peer(ingress_port)
        frame = Packet.control(PacketKind.PFC_RESUME, self.node_id, peer.node_id)
        self.ports[ingress_port].enqueue_control(frame)

    def report_pause_time(self) -> None:
        """Flush accumulated egress pause durations into the stats hub."""
        if self.stats is None:
            return
        for port in self.ports:
            paused = port.total_paused_time
            if port.pause_started >= 0:  # still paused at end of run
                paused += self.sim.now - port.pause_started
            if paused:
                self.stats.record_pfc_pause(self.kind, paused)
