"""Per-packet tracing for debugging and path inspection.

Attach a :class:`PacketTracer` to any subset of switches/hosts and it
records packet lifecycle events (switch arrival, egress dequeue, host
delivery) with timestamps.  Filters keep the hot path cheap and the
trace small; helpers reconstruct a packet's hop-by-hop path — the tool
you want when asking "where exactly did this flow queue?".

Tracing is strictly opt-in: untraced runs pay a single ``is None``
check per event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.topology import Topology


@dataclass(frozen=True)
class TraceEvent:
    """One recorded packet event."""

    time: int
    node: str
    action: str      # "rx" | "tx" | "deliver" | "drop"
    kind: str
    flow_id: int
    seq: int
    size: int

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"{self.time:>12d} ns  {self.node:<10s} {self.action:<7s}"
            f" {self.kind:<10s} flow={self.flow_id} seq={self.seq}"
            f" {self.size}B"
        )


class PacketTracer:
    """Event recorder with flow/kind filters and a hard size cap."""

    def __init__(
        self,
        flow_ids: Optional[Iterable[int]] = None,
        kinds: Optional[Iterable[str]] = None,
        max_events: int = 100_000,
    ) -> None:
        self.flow_filter: Optional[Set[int]] = (
            set(flow_ids) if flow_ids is not None else None
        )
        self.kind_filter: Optional[Set[str]] = (
            set(kinds) if kinds is not None else None
        )
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped_events = 0

    # -- recording (hot path) ------------------------------------------------------

    def record(
        self, time: int, node: str, action: str, pkt: "Packet"
    ) -> None:
        if self.flow_filter is not None and pkt.flow_id not in self.flow_filter:
            return
        kind = pkt.kind.name
        if self.kind_filter is not None and kind not in self.kind_filter:
            return
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(
            TraceEvent(time, node, action, kind, pkt.flow_id, pkt.seq, pkt.size)
        )

    # -- installation ---------------------------------------------------------------

    def attach(self, topology: "Topology") -> None:
        """Install on every switch and host of a topology."""
        for sw in topology.switches:
            sw.tracer = self
        for host in topology.hosts:
            host.tracer = self

    # -- queries -----------------------------------------------------------------------

    def of_flow(self, flow_id: int) -> List[TraceEvent]:
        return [e for e in self.events if e.flow_id == flow_id]

    def path_of(self, flow_id: int, seq: int) -> List[Tuple[int, str, str]]:
        """(time, node, action) steps of one packet, in order."""
        return [
            (e.time, e.node, e.action)
            for e in self.events
            if e.flow_id == flow_id and e.seq == seq and e.kind == "DATA"
        ]

    def hops_of(self, flow_id: int, seq: int) -> List[str]:
        """Distinct switch/host names the packet visited, in order.

        Retransmission-aware: when a seq traverses the network more
        than once (loss, rewind), later copies revisit nodes already
        on the path — each node is reported once, at its first visit,
        so the result is the route rather than the retry history.
        """
        hops: List[str] = []
        seen = set()
        for _, node, action in self.path_of(flow_id, seq):
            if action in ("rx", "deliver") and node not in seen:
                seen.add(node)
                hops.append(node)
        return hops

    def queueing_delays(self, flow_id: int, seq: int, node: str) -> List[int]:
        """Per-visit queueing delays (ns) of one seq at ``node``.

        A retransmitted seq can pass through the same node several
        times, and a copy can arrive and then be dropped without ever
        departing.  Each ``tx`` is therefore paired with the most
        recent *unconsumed* ``rx`` of the same visit — never an ``rx``
        that an earlier ``tx`` or a ``drop`` already accounted for —
        which keeps every reported delay non-negative and tied to one
        physical traversal.
        """
        pending: List[int] = []  # rx times awaiting their tx (or drop)
        delays: List[int] = []
        for e in self.events:
            if (
                e.flow_id != flow_id
                or e.seq != seq
                or e.kind != "DATA"
                or e.node != node
            ):
                continue
            if e.action == "rx":
                pending.append(e.time)
            elif e.action == "tx" and pending:
                delays.append(e.time - pending.pop())
            elif e.action == "drop" and pending:
                pending.pop()  # this copy died here: its rx is spent
        return delays

    def queueing_delay(self, flow_id: int, seq: int, node: str) -> Optional[int]:
        """ns between a packet's arrival and departure at ``node``.

        The first completed visit's delay (see :meth:`queueing_delays`
        for all visits of a retransmitted seq), or ``None`` if the
        packet never both arrived and departed there.
        """
        delays = self.queueing_delays(flow_id, seq, node)
        return delays[0] if delays else None

    def dump(self, limit: int = 50) -> str:
        """Human-readable transcript of the first ``limit`` events."""
        lines = [str(e) for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
