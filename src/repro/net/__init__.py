"""Network model: packets, links, ports, switches, hosts, topologies.

This package is the NS-3-equivalent substrate: store-and-forward links
with serialization and propagation delay, output-queued switches with a
shared buffer, dynamic-threshold PFC, RED/ECN marking, and hosts with
rate-limited NICs.
"""

from repro.net.packet import Packet, PacketKind
from repro.net.link import Link
from repro.net.port import EgressPort
from repro.net.buffer import SharedBuffer
from repro.net.node import Node
from repro.net.switch import Switch, SwitchExtension
from repro.net.host import Host
from repro.net.trace import PacketTracer, TraceEvent
from repro.net.topology import (
    PortRole,
    Topology,
    build_dumbbell,
    build_fat_tree,
    build_leaf_spine,
    build_testbed,
)

__all__ = [
    "Packet",
    "PacketKind",
    "Link",
    "EgressPort",
    "SharedBuffer",
    "Node",
    "Switch",
    "SwitchExtension",
    "Host",
    "PacketTracer",
    "TraceEvent",
    "PortRole",
    "Topology",
    "build_dumbbell",
    "build_leaf_spine",
    "build_fat_tree",
    "build_testbed",
]
