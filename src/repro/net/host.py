"""End hosts: RoCE-like transport with pluggable congestion control.

Sender side
    Per-flow pacing at ``flow.rate`` capped by ``flow.cwnd_bytes`` (the
    CC window) and the per-flow sending window.  Reliability is
    go-back-N: NACKs and a retransmission timeout rewind ``next_seq``.

Receiver side
    In-order delivery with cumulative ACKs, NACK on gap (rate-limited),
    DCQCN CNP generation on ECN-marked arrivals, INT echo for HPCC,
    and FCT recording at last-byte arrival.

The host also understands PFC pause frames from its ToR and Floodgate's
optional per-dst pause (``dstPause``/``dstResume``), for which the NIC
keeps per-destination pause state (§4.3 "Hosts' support").
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.cc.base import CcAlgorithm
from repro.cc.flow import Flow
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from repro.stats.collector import StatsHub
from repro.stats.fct import FctRecord
from repro.units import SEC, us

#: hoisted enum members for the per-packet receive dispatch
_DATA = PacketKind.DATA
_ACK = PacketKind.ACK
_NACK = PacketKind.NACK
_CNP = PacketKind.CNP


class Host(Node):
    """A server with one NIC port."""

    kind = "host"

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        name: str,
        cc: CcAlgorithm,
        flow_table: Dict[int, Flow],
        stats: Optional[StatsHub] = None,
        rto: int = us(500),
        nack_interval: int = us(10),
        cnp_interval: int = us(50),
        ack_interval: int = 1,
        int_enabled: bool = False,
    ) -> None:
        super().__init__(sim, node_id, name)
        self.cc = cc  # property: also caches the optional send hook
        self.flow_table = flow_table
        self.stats = stats
        self.rto = rto
        self.nack_interval = nack_interval
        self.cnp_interval = cnp_interval
        self.ack_interval = ack_interval
        self.int_enabled = int_enabled
        self.paused_dsts: Set[int] = set()
        self.active_flows: Set[int] = set()
        self.rx_data_bytes = 0
        self.tx_data_bytes = 0
        self.rx_data_packets = 0
        self.tx_data_packets = 0
        #: optional SimSanitizer back-reference (repro.simcheck); None
        #: on unsanitized runs, so control paths pay one is-None check
        self.sanitizer = None
        #: emit DCQCN CNPs on marked arrivals (off for DCTCP-style CC,
        #: which reads the ECN echo on ACKs instead)
        self.cnp_enabled = True
        #: optional per-packet tracer (see repro.net.trace)
        self.tracer = None
        #: fired once per flow when the last byte arrives; the topology
        #: wires this to its completion counter so runners can check
        #: "all flows done" in O(1) instead of scanning the flow table
        self.on_flow_done: Optional[Callable[[Flow], None]] = None

    @property
    def cc(self):
        """The congestion-control module driving this host's flows."""
        return self._cc

    @cc.setter
    def cc(self, value) -> None:
        self._cc = value
        #: resolved at assignment: the optional CC send hook would
        #: otherwise cost a getattr per emitted data packet
        self._cc_on_data_sent = getattr(value, "on_data_sent", None)

    # -- sending -------------------------------------------------------------------

    def start_flow(self, flow: Flow) -> None:
        """Begin transmitting ``flow`` (must already be in the table)."""
        if flow.src != self.node_id:
            raise ValueError(
                f"flow {flow.flow_id} has src {flow.src}, host is {self.node_id}"
            )
        self.flow_table[flow.flow_id] = flow
        self.active_flows.add(flow.flow_id)
        self._cc.on_flow_start(flow, self.sim.now)
        flow.next_send_time = self.sim.now
        flow.rto_timer = Timer(self.sim, self._on_rto, flow)
        self._try_send(flow)

    def _kick(self, flow: Flow) -> None:
        """(Re)run the send loop, collapsing any pending send event."""
        if flow.send_event is not None:
            flow.send_event.cancel()
            flow.send_event = None
        self._try_send(flow)

    def _flow_blocked(self, flow: Flow) -> bool:
        """NIC-level pause check (per-dst pause; subclasses extend)."""
        return flow.dst in self.paused_dsts

    def _try_send(self, flow: Flow) -> None:
        flow.send_event = None
        if flow.sender_done or flow.all_sent:
            return
        if self._flow_blocked(flow):
            return  # resumed when the pause lifts
        cap = min(flow.cwnd_bytes, self._cc.swnd_bytes)
        if flow.inflight_bytes + flow.packet_size(flow.next_seq) > cap:
            return  # ACK-clocked: resumed by _receive_ack
        now = self.sim.now
        if now < flow.next_send_time:
            flow.send_event = self.sim.schedule_at(
                flow.next_send_time, self._try_send, flow
            )
            return
        self._emit_data(flow)
        if not flow.all_sent:
            flow.send_event = self.sim.schedule_at(
                max(flow.next_send_time, now), self._try_send, flow
            )

    def _emit_data(self, flow: Flow) -> None:
        now = self.sim.now
        seq = flow.next_seq
        size = flow.packet_size(seq)
        pkt = self.pool.acquire(
            PacketKind.DATA, self.node_id, flow.dst, size, flow.flow_id, seq
        )
        pkt.sent_time = now
        if self.int_enabled:
            pkt.int_records = []
        self._stamp_packet(pkt, flow)
        flow.next_seq = seq + 1
        self.tx_data_bytes += size
        self.tx_data_packets += 1
        self.ports[0].enqueue(pkt, 1)
        on_data_sent = self._cc_on_data_sent
        if on_data_sent is not None:
            on_data_sent(flow, size, now)
        # pacing: space packets at flow.rate
        gap = int(size * 8 * SEC / flow.rate) if flow.rate > 0 else 0
        flow.next_send_time = max(now, flow.next_send_time) + gap
        if flow.rto_timer is not None and not flow.rto_timer.armed:
            flow.rto_timer.start(self.rto)

    def _stamp_packet(self, pkt: Packet, flow: Flow) -> None:
        """Hook for subclasses to tag outgoing data (e.g. BFC queues)."""

    def _on_rto(self, flow: Flow) -> None:
        if flow.all_acked:
            return
        # go-back-N: rewind to the last cumulative ACK
        flow.retransmitted_packets += flow.next_seq - flow.acked_seq
        flow.next_seq = flow.acked_seq
        flow.next_send_time = self.sim.now
        self._cc.on_timeout(flow, self.sim.now)
        if flow.rto_timer is not None:
            flow.rto_timer.start(self.rto)
        self._kick(flow)

    # -- receiving -----------------------------------------------------------------

    def receive(self, pkt: Packet, ingress_port: int) -> None:
        kind = pkt.kind
        if kind == _DATA:
            self._receive_data(pkt)
        elif kind == _ACK:
            self._receive_ack(pkt)
        elif kind == _NACK:
            self._receive_nack(pkt)
        elif kind == _CNP:
            flow = self.flow_table.get(pkt.flow_id)
            if flow is not None and not flow.sender_done:
                self._cc.on_cnp(flow, self.sim.now)
        elif kind == PacketKind.PFC_PAUSE:
            port = self.ports[ingress_port]
            if self.sanitizer is not None:
                self.sanitizer.note_pfc(self, ingress_port, True, port.paused)
            port.pause()
        elif kind == PacketKind.PFC_RESUME:
            port = self.ports[ingress_port]
            if self.sanitizer is not None:
                self.sanitizer.note_pfc(self, ingress_port, False, port.paused)
            port.resume()
        elif kind == PacketKind.DST_PAUSE:
            if self.sanitizer is not None:
                self.sanitizer.note_dst_pause(
                    self, pkt.pause_dst, True, pkt.pause_dst in self.paused_dsts
                )
            self.paused_dsts.add(pkt.pause_dst)
        elif kind == PacketKind.DST_RESUME:
            if self.sanitizer is not None:
                self.sanitizer.note_dst_pause(
                    self, pkt.pause_dst, False, pkt.pause_dst in self.paused_dsts
                )
            self.paused_dsts.discard(pkt.pause_dst)
            for flow_id in sorted(self.active_flows):
                flow = self.flow_table[flow_id]
                if flow.dst == pkt.pause_dst and not flow.sender_done:
                    self._kick(flow)
        # hosts are sinks: every kind above is fully consumed here, so
        # the packet can go straight back to the pool (handlers keep no
        # reference — ACK INT stacks are aliased as lists, and reset()
        # only rebinds ``int_records``, never mutates the list)
        self.pool.release(pkt)

    def _receive_data(self, pkt: Packet) -> None:
        self.rx_data_packets += 1
        flow = self.flow_table.get(pkt.flow_id)
        if flow is None:
            return  # stale packet from a flow we never learned about
        now = self.sim.now
        if pkt.corrupted:
            # delivered but failed the integrity check: never delivered
            # to the application; NACK like a sequence gap so go-back-N
            # rewinds to it (fault injection's delivered-but-NACKed class)
            if self.stats is not None:
                self.stats.record_corrupt_rx()
            if now - flow.last_nack_time >= self.nack_interval:
                flow.last_nack_time = now
                nack = self.pool.acquire_control(
                    PacketKind.NACK, self.node_id, flow.src
                )
                nack.flow_id = flow.flow_id
                nack.seq = flow.expected_seq
                self.ports[0].enqueue_control(nack)
            return
        if self.tracer is not None:
            self.tracer.record(now, self.name, "deliver", pkt)
        self.rx_data_bytes += pkt.size
        if self.stats is not None:
            self.stats.record_rx(pkt.flow_id, pkt.size)
        if pkt.seq == flow.expected_seq:
            flow.expected_seq += 1
            flow.delivered_bytes += pkt.size
            if flow.receiver_done and flow.finish_time < 0:
                flow.finish_time = now
                if self.stats is not None:
                    self.stats.record_fct(
                        FctRecord(
                            flow.flow_id,
                            flow.src,
                            flow.dst,
                            flow.size,
                            flow.start_time,
                            now,
                        )
                    )
                if self.on_flow_done is not None:
                    self.on_flow_done(flow)
            last = flow.expected_seq >= flow.n_packets
            if last or flow.expected_seq % self.ack_interval == 0:
                # hybrid boundary flows have no packet-level sender to
                # ACK-clock; the injector paces off fluid allocations
                if not flow.fluid_src:
                    self._send_ack(flow, pkt)
        elif pkt.seq > flow.expected_seq:
            # gap: go-back-N NACK, rate limited
            if not flow.fluid_src and now - flow.last_nack_time >= self.nack_interval:
                flow.last_nack_time = now
                nack = self.pool.acquire_control(
                    PacketKind.NACK, self.node_id, flow.src
                )
                nack.flow_id = flow.flow_id
                nack.seq = flow.expected_seq
                self.ports[0].enqueue_control(nack)
        else:
            # duplicate after a rewind: re-ACK so the sender advances
            if not flow.fluid_src:
                self._send_ack(flow, pkt)
        if (
            self.cnp_enabled
            and not flow.fluid_src
            and pkt.ecn_marked
            and now - flow.last_cnp_time >= self.cnp_interval
        ):
            flow.last_cnp_time = now
            cnp = self.pool.acquire_control(PacketKind.CNP, self.node_id, flow.src)
            cnp.flow_id = flow.flow_id
            self.ports[0].enqueue_control(cnp)

    def _send_ack(self, flow: Flow, data_pkt: Packet) -> None:
        ack = self.pool.acquire_control(PacketKind.ACK, self.node_id, flow.src)
        ack.flow_id = flow.flow_id
        ack.seq = flow.expected_seq
        ack.echo_time = data_pkt.sent_time
        ack.int_records = data_pkt.int_records
        # ECN echo (DCTCP-style controllers read it; others ignore it)
        ack.ecn_marked = data_pkt.ecn_marked
        self.ports[0].enqueue_control(ack)

    def _receive_ack(self, pkt: Packet) -> None:
        flow = self.flow_table.get(pkt.flow_id)
        if flow is None:
            return
        now = self.sim.now
        flow.acks_received += 1
        if pkt.seq > flow.acked_seq:
            flow.acked_seq = pkt.seq
            if flow.rto_timer is not None:
                if flow.all_acked:
                    flow.rto_timer.stop()
                else:
                    flow.rto_timer.start(self.rto)
        if flow.all_acked and flow.all_sent:
            flow.sender_done = True
            self.active_flows.discard(flow.flow_id)
        self._cc.on_ack(flow, pkt, now)
        if not flow.sender_done:
            self._kick(flow)

    def _receive_nack(self, pkt: Packet) -> None:
        flow = self.flow_table.get(pkt.flow_id)
        if flow is None or flow.sender_done:
            return
        if pkt.seq > flow.acked_seq:
            flow.acked_seq = pkt.seq
        if pkt.seq < flow.next_seq:
            flow.retransmitted_packets += flow.next_seq - pkt.seq
            flow.next_seq = pkt.seq
            flow.next_send_time = self.sim.now
            self._kick(flow)

    # -- bookkeeping ---------------------------------------------------------------

    def telemetry_gauges(self):
        """Pull-read gauge surfaces for :mod:`repro.telemetry`.

        Polled by periodic samplers only — never on the packet path.
        """
        return {
            "rx_data_bytes": lambda h=self: h.rx_data_bytes,
            "tx_data_bytes": lambda h=self: h.tx_data_bytes,
            "active_flows": lambda h=self: len(h.active_flows),
        }

    def report_pause_time(self) -> None:
        """Flush accumulated PFC pause time into the stats hub."""
        if self.stats is None:
            return
        for port in self.ports:
            paused = port.total_paused_time
            if port.pause_started >= 0:
                paused += self.sim.now - port.pause_started
            if paused:
                self.stats.record_pfc_pause(self.kind, paused)
