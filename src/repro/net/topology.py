"""Topology construction and shortest-path ECMP routing.

Builders cover every topology in the paper:

* :func:`build_leaf_spine` — the main 2-level evaluation fabric
  (4 spines x 10 ToRs x 16 hosts at paper scale);
* :func:`build_fat_tree` — the 8-ary, 3-tier robustness topology;
* :func:`build_testbed` — the 1-core / 3-ToR / 6-host testbed (§5.2);
* :func:`build_dumbbell` — a 2-ToR micro-topology for unit tests.

Routing is hop-count BFS from every destination host; a switch's route
entry lists all ports on shortest paths (ECMP).  Port *roles* label
each egress for the paper's per-hop buffer accounting (ToR-Up, Core,
ToR-Down, Edge-Up, Agg-Down, ...).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.cc.flow import Flow
from repro.net.host import Host
from repro.net.link import Link
from repro.net.node import Node
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.units import gbps, ns


class PortRole:
    """Egress-port role labels used in the paper's figures."""

    HOST_UP = "host-up"      # host NIC toward its ToR
    TOR_UP = "tor-up"        # ToR toward spine/core (first packet hop)
    TOR_DOWN = "tor-down"    # ToR toward hosts (last packet hop)
    CORE = "core"            # spine/core toward ToRs/aggs
    EDGE_UP = "edge-up"      # fat tree: edge toward agg
    EDGE_DOWN = "edge-down"  # fat tree: edge toward hosts
    AGG_UP = "agg-up"        # fat tree: agg toward core
    AGG_DOWN = "agg-down"    # fat tree: agg toward edge


#: factory signature: (sim, node_id, name) -> Host
HostFactory = Callable[[Simulator, int, str], Host]
#: factory signature: (sim, node_id, name, kind, level) -> Switch
SwitchFactory = Callable[[Simulator, int, str, str, int], Switch]

#: switch node ids start here so host ids stay small and contiguous
SWITCH_ID_BASE = 1_000_000


@dataclass
class Topology:
    """A built network: nodes, links, and shared flow state."""

    sim: Simulator
    hosts: List[Host] = field(default_factory=list)
    switches: List[Switch] = field(default_factory=list)
    links: List[Link] = field(default_factory=list)
    flow_table: Dict[int, Flow] = field(default_factory=dict)
    #: unloaded round-trip time between the two most distant hosts, ns
    base_rtt: int = 0
    #: one-hop host link bandwidth, bits/s
    host_bandwidth: float = 0.0
    #: flows fully delivered so far (kept by the hosts' ``on_flow_done``
    #: callbacks, wired in :meth:`finalize`) — runners read this instead
    #: of scanning the flow table
    completed_flows: int = 0

    def host_by_id(self, node_id: int) -> Host:
        return self.hosts[node_id]

    def switches_of_kind(self, kind: str) -> List[Switch]:
        return [s for s in self.switches if s.kind == kind]

    def connect(
        self,
        a: Node,
        b: Node,
        bandwidth: float,
        delay: int,
        role_a: str = "unknown",
        role_b: str = "unknown",
        rr_queues: int = 0,
    ) -> Link:
        """Create a link and both endpoints' egress ports."""
        link = Link(self.sim, a, b, bandwidth, delay)
        # per-direction ordering-key ids, assigned in link-creation
        # order: the topology build sequence is deterministic, so two
        # builds of the same config agree on every lid — the property
        # sharded-vs-serial equivalence rests on
        link.lid_ab = 2 * len(self.links) + 1
        link.lid_ba = 2 * len(self.links) + 2
        idx_a = a.attach_link(link, rr_data_queues=rr_queues)
        idx_b = b.attach_link(link, rr_data_queues=rr_queues)
        if isinstance(a, Switch):
            a.port_roles[idx_a] = role_a
        if isinstance(b, Switch):
            b.port_roles[idx_b] = role_b
        self.links.append(link)
        return link

    # -- routing --------------------------------------------------------------------

    def compute_routes(self) -> None:
        """Populate every switch's route table with BFS/ECMP entries.

        The per-destination BFS runs over a dense integer adjacency
        built once (hosts first, then switches): node-object traversal
        with per-visit ``peer_of`` calls and dict-keyed distances
        dominated build time on 256-host fabrics.
        """
        n_hosts = len(self.hosts)
        index_of: Dict[int, int] = {}
        for i, host in enumerate(self.hosts):
            index_of[host.node_id] = i
        for j, switch in enumerate(self.switches):
            index_of[switch.node_id] = n_hosts + j
        adj: List[List[Tuple[int, bool]]] = [
            [] for _ in range(n_hosts + len(self.switches))
        ]
        for node in (*self.hosts, *self.switches):
            entries = adj[index_of[node.node_id]]
            for link in node.links:
                peer = link.peer_of(node)
                entries.append(
                    (index_of[peer.node_id], isinstance(peer, Switch))
                )
        switch_neighbors = [
            [peer_idx for peer_idx, _ in adj[n_hosts + j]]
            for j in range(len(self.switches))
        ]
        if any(len(host.links) != 1 for host in self.hosts):
            # exotic (multi-homed) hosts: per-destination BFS
            for host in self.hosts:
                self._routes_to(
                    host, index_of[host.node_id], adj, switch_neighbors, n_hosts
                )
            return
        # single-homed hosts (every built topology): all hosts behind
        # one ToR share every route except the ToR's own last hop, so
        # one BFS per rack replaces one BFS per host
        racks: Dict[int, List[Host]] = {}
        for host in self.hosts:
            tor_idx = index_of[host.links[0].peer_of(host).node_id] - n_hosts
            racks.setdefault(tor_idx, []).append(host)
        for tor_idx in sorted(racks):
            self._routes_via_tor(
                tor_idx, racks[tor_idx], adj, switch_neighbors, n_hosts
            )

    def _routes_via_tor(
        self,
        tor_idx: int,
        rack_hosts: List[Host],
        adj: List[List[Tuple[int, bool]]],
        switch_neighbors: List[List[int]],
        n_hosts: int,
    ) -> None:
        """Install routes for every (single-homed) host behind one ToR.

        BFS over the switch graph rooted at the ToR; a host's distance
        is its ToR's plus one, so the shortest-path port sets at every
        other switch are identical for all hosts on the rack and are
        computed once.  Produces exactly the entries :meth:`_routes_to`
        would.
        """
        n_switches = len(switch_neighbors)
        dist = [-1] * n_switches
        dist[tor_idx] = 0
        frontier: deque[int] = deque([tor_idx])
        while frontier:
            node_idx = frontier.popleft()
            d = dist[node_idx] + 1
            for peer_idx, is_switch in adj[n_hosts + node_idx]:
                if is_switch and dist[peer_idx - n_hosts] < 0:
                    dist[peer_idx - n_hosts] = d
                    frontier.append(peer_idx - n_hosts)
        # shared candidate sets: ports toward the rack, per switch
        shared: List[Optional[Union[int, Tuple[int, ...]]]] = [None] * n_switches
        for j, neighbor_ids in enumerate(switch_neighbors):
            if j == tor_idx or dist[j] < 0:
                continue
            want = dist[j] - 1
            candidates = [
                idx
                for idx, peer_idx in enumerate(neighbor_ids)
                if peer_idx >= n_hosts and dist[peer_idx - n_hosts] == want
            ]
            if candidates:
                shared[j] = (
                    candidates[0]
                    if len(candidates) == 1
                    else tuple(candidates)
                )
        tor = self.switches[tor_idx]
        tor_neighbors = switch_neighbors[tor_idx]
        switches = self.switches
        for host in rack_hosts:
            dst_id = host.node_id
            host_idx = 0  # hosts are indexed by contiguous node id
            for idx, peer_idx in enumerate(tor_neighbors):
                if peer_idx == dst_id:
                    host_idx = idx
                    break
            tor.set_route(dst_id, host_idx)
            tor.connected_hosts[dst_id] = host_idx
            for j in range(n_switches):
                entry = shared[j]
                if entry is not None:
                    switches[j].set_route(dst_id, entry)

    def _routes_to(
        self,
        dst: Host,
        dst_idx: int,
        adj: List[List[Tuple[int, bool]]],
        switch_neighbors: List[List[int]],
        n_hosts: int,
    ) -> None:
        dist = [-1] * len(adj)
        dist[dst_idx] = 0
        frontier: deque[int] = deque([dst_idx])
        while frontier:
            node_idx = frontier.popleft()
            d = dist[node_idx] + 1
            for peer_idx, is_switch in adj[node_idx]:
                if dist[peer_idx] < 0:
                    dist[peer_idx] = d
                    # hosts other than dst never forward traffic
                    if is_switch:
                        frontier.append(peer_idx)
        dst_id = dst.node_id
        for j, neighbor_ids in enumerate(switch_neighbors):
            my_dist = dist[n_hosts + j]
            if my_dist < 0:
                continue  # disconnected from this dst
            want = my_dist - 1
            candidates = [
                idx
                for idx, peer_idx in enumerate(neighbor_ids)
                if dist[peer_idx] == want
            ]
            if not candidates:
                continue
            switch = self.switches[j]
            if len(candidates) == 1:
                switch.set_route(dst_id, candidates[0])
            else:
                switch.set_route(dst_id, tuple(candidates))
            if my_dist == 1:
                switch.connected_hosts[dst_id] = candidates[0]

    def finalize(self) -> None:
        """Compute routes, create switch buffers, wire completion; call once."""
        self.compute_routes()
        for switch in self.switches:
            switch.finalize()
        for host in self.hosts:
            if host.on_flow_done is None:
                host.on_flow_done = self._on_flow_done

    def _on_flow_done(self, flow: Flow) -> None:
        self.completed_flows += 1

    # -- flows --------------------------------------------------------------------------

    def make_flow(
        self, flow_id: int, src: int, dst: int, size: int, start_time: int
    ) -> Flow:
        """Register a flow in the shared table (not yet started)."""
        flow = Flow(flow_id, src, dst, size, start_time)
        self.flow_table[flow_id] = flow
        return flow

    def start_flow(self, flow: Flow) -> None:
        """Schedule the flow's first packet at its start time."""
        self.sim.schedule_call_at(
            max(flow.start_time, self.sim.now),
            self.hosts[flow.src].start_flow,
            flow,
        )

    def start_flows(self, flows: List[Flow]) -> None:
        """Bulk :meth:`start_flow`: one heapify instead of n pushes."""
        now = self.sim.now
        hosts = self.hosts
        self.sim.schedule_many(
            (max(f.start_time, now), hosts[f.src].start_flow, (f,))
            for f in flows
        )

    def report_pause_times(self) -> None:
        """Flush PFC pause accounting on every node (end of run)."""
        for switch in self.switches:
            switch.report_pause_time()
        for host in self.hosts:
            host.report_pause_time()


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def build_leaf_spine(
    sim: Simulator,
    host_factory: HostFactory,
    switch_factory: SwitchFactory,
    n_spines: int = 4,
    n_tors: int = 10,
    hosts_per_tor: int = 16,
    host_bandwidth: float = gbps(100),
    spine_bandwidth: float = gbps(400),
    link_delay: int = ns(600),
    host_link_delay: int = 0,
    rr_queues: int = 0,
) -> Topology:
    """The paper's 2-level leaf-spine fabric (§6, default topology).

    ``host_link_delay`` (defaults to ``link_delay``) lets scaled-down
    configurations keep the end-to-end BDP large while the per-hop
    switch-to-switch BDP stays small — see EXPERIMENTS.md.
    """
    host_link_delay = host_link_delay or link_delay
    topo = Topology(sim)
    topo.host_bandwidth = host_bandwidth
    next_switch = SWITCH_ID_BASE
    spines: List[Switch] = []
    for i in range(n_spines):
        sw = switch_factory(sim, next_switch, f"spine{i}", "core", 1)
        next_switch += 1
        spines.append(sw)
        topo.switches.append(sw)
    for t in range(n_tors):
        tor = switch_factory(sim, next_switch, f"tor{t}", "tor", 0)
        next_switch += 1
        topo.switches.append(tor)
        for h in range(hosts_per_tor):
            hid = t * hosts_per_tor + h
            host = host_factory(sim, hid, f"h{hid}")
            topo.hosts.append(host)
            topo.connect(
                tor,
                host,
                host_bandwidth,
                host_link_delay,
                role_a=PortRole.TOR_DOWN,
                role_b=PortRole.HOST_UP,
                rr_queues=rr_queues,
            )
        for spine in spines:
            topo.connect(
                tor,
                spine,
                spine_bandwidth,
                link_delay,
                role_a=PortRole.TOR_UP,
                role_b=PortRole.CORE,
                rr_queues=rr_queues,
            )
    topo.finalize()
    # host -> ToR -> spine -> ToR -> host: 4 links each way
    topo.base_rtt = _path_rtt(
        [
            (host_bandwidth, host_link_delay),
            (spine_bandwidth, link_delay),
            (spine_bandwidth, link_delay),
            (host_bandwidth, host_link_delay),
        ]
    )
    return topo


def build_fat_tree(
    sim: Simulator,
    host_factory: HostFactory,
    switch_factory: SwitchFactory,
    k: int = 8,
    hosts_per_edge: int = 4,
    host_bandwidth: float = gbps(100),
    fabric_bandwidth: float = gbps(100),
    link_delay: int = ns(600),
    host_link_delay: int = 0,
    rr_queues: int = 0,
) -> Topology:
    """k-ary fat tree (k pods, k/2 edge + k/2 agg per pod, (k/2)^2 cores).

    With ``k=8`` and 4 hosts per edge this is the paper's 3-tier
    robustness topology: 32 edges, 32 aggs, 16 cores, 128 hosts.
    """
    if k % 2:
        raise ValueError(f"fat tree arity must be even, got {k}")
    host_link_delay = host_link_delay or link_delay
    half = k // 2
    topo = Topology(sim)
    topo.host_bandwidth = host_bandwidth
    next_switch = SWITCH_ID_BASE
    cores: List[Switch] = []
    for i in range(half * half):
        sw = switch_factory(sim, next_switch, f"core{i}", "core", 2)
        next_switch += 1
        cores.append(sw)
        topo.switches.append(sw)
    hid = 0
    for pod in range(k):
        aggs: List[Switch] = []
        for a in range(half):
            sw = switch_factory(sim, next_switch, f"agg{pod}.{a}", "agg", 1)
            next_switch += 1
            aggs.append(sw)
            topo.switches.append(sw)
        for e in range(half):
            edge = switch_factory(sim, next_switch, f"edge{pod}.{e}", "tor", 0)
            next_switch += 1
            topo.switches.append(edge)
            for _ in range(hosts_per_edge):
                host = host_factory(sim, hid, f"h{hid}")
                hid += 1
                topo.hosts.append(host)
                topo.connect(
                    edge,
                    host,
                    host_bandwidth,
                    host_link_delay,
                    role_a=PortRole.EDGE_DOWN,
                    role_b=PortRole.HOST_UP,
                    rr_queues=rr_queues,
                )
            for agg in aggs:
                topo.connect(
                    edge,
                    agg,
                    fabric_bandwidth,
                    link_delay,
                    role_a=PortRole.EDGE_UP,
                    role_b=PortRole.AGG_DOWN,
                    rr_queues=rr_queues,
                )
        for a, agg in enumerate(aggs):
            for c in range(half):
                core = cores[a * half + c]
                topo.connect(
                    agg,
                    core,
                    fabric_bandwidth,
                    link_delay,
                    role_a=PortRole.AGG_UP,
                    role_b=PortRole.CORE,
                    rr_queues=rr_queues,
                )
    topo.finalize()
    topo.base_rtt = _path_rtt(
        [(host_bandwidth, host_link_delay)]
        + [(fabric_bandwidth, link_delay)] * 4
        + [(host_bandwidth, host_link_delay)]
    )
    return topo


def build_testbed(
    sim: Simulator,
    host_factory: HostFactory,
    switch_factory: SwitchFactory,
    hosts_per_tor: int = 2,
    n_tors: int = 3,
    host_bandwidth: float = gbps(10),
    core_bandwidth: float = gbps(20),
    link_delay: int = ns(1000),
    host_link_delay: int = 0,
    rr_queues: int = 0,
) -> Topology:
    """The §5.2 testbed: one core, three ToRs, two hosts per ToR."""
    return build_leaf_spine(
        sim,
        host_factory,
        switch_factory,
        n_spines=1,
        n_tors=n_tors,
        hosts_per_tor=hosts_per_tor,
        host_bandwidth=host_bandwidth,
        spine_bandwidth=core_bandwidth,
        link_delay=link_delay,
        host_link_delay=host_link_delay,
        rr_queues=rr_queues,
    )


def build_dumbbell(
    sim: Simulator,
    host_factory: HostFactory,
    switch_factory: SwitchFactory,
    hosts_per_side: int = 2,
    host_bandwidth: float = gbps(10),
    trunk_bandwidth: float = gbps(10),
    link_delay: int = ns(500),
    rr_queues: int = 0,
) -> Topology:
    """Two ToRs joined by one trunk link — the unit-test micro-fabric."""
    topo = Topology(sim)
    topo.host_bandwidth = host_bandwidth
    left = switch_factory(sim, SWITCH_ID_BASE, "torL", "tor", 0)
    right = switch_factory(sim, SWITCH_ID_BASE + 1, "torR", "tor", 0)
    topo.switches.extend([left, right])
    for i in range(hosts_per_side * 2):
        tor = left if i < hosts_per_side else right
        host = host_factory(sim, i, f"h{i}")
        topo.hosts.append(host)
        topo.connect(
            tor,
            host,
            host_bandwidth,
            link_delay,
            role_a=PortRole.TOR_DOWN,
            role_b=PortRole.HOST_UP,
            rr_queues=rr_queues,
        )
    topo.connect(
        left,
        right,
        trunk_bandwidth,
        link_delay,
        role_a=PortRole.TOR_UP,
        role_b=PortRole.TOR_UP,
        rr_queues=rr_queues,
    )
    topo.finalize()
    topo.base_rtt = _path_rtt(
        [
            (host_bandwidth, link_delay),
            (trunk_bandwidth, link_delay),
            (host_bandwidth, link_delay),
        ]
    )
    return topo


def _path_rtt(hops: List[Tuple[float, int]]) -> int:
    """Unloaded RTT along a path of ``(bandwidth, delay)`` hops."""
    from repro.units import MTU, serialization_delay

    one_way = sum(d + serialization_delay(MTU, bw) for bw, d in hops)
    ack_way = sum(d + serialization_delay(64, bw) for bw, d in hops)
    return one_way + ack_way
