"""Egress ports: serialization, multi-queue scheduling, pausing.

Each attached link direction gets one :class:`EgressPort`.  The port
owns a configurable set of FIFO queues:

* queue 0 is the *control* queue — link-level control (PFC frames,
  Floodgate credits) and host ACK/CNP traffic.  It has strict highest
  priority and is never paused, mirroring how control rides a separate
  priority class on real fabrics.
* queues ``1 .. rr_start-1`` are strict-priority data queues (lower
  index wins), used e.g. to prioritize non-incast traffic over
  VOQ-drained incast traffic in Floodgate.
* queues ``rr_start ..`` form a round-robin group at the lowest
  priority — used for BFC's per-flow physical queues and for
  Floodgate's drained VOQs.

Pausing is supported at two granularities: the whole port (PFC) or a
single queue (BFC); both exempt the control queue.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.node import Node
    from repro.net.packet import Packet

#: Index of the always-on control queue.
CONTROL_QUEUE = 0


class EgressPort:
    """One transmit direction of a node onto a link."""

    __slots__ = (
        "sim",
        "node",
        "index",
        "link",
        "_bandwidth",
        "_delay_table",
        "queues",
        "queue_bytes",
        "rr_start",
        "_rr_next",
        "_busy",
        "_queued",
        "_data_bytes",
        "_peer",
        "_peer_port",
        "_lid",
        "paused",
        "paused_queues",
        "tx_bytes",
        "tx_data_bytes",
        "on_dequeue",
        "pause_started",
        "total_paused_time",
    )

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        index: int,
        link: "Link",
        n_data_queues: int = 1,
        rr_data_queues: int = 0,
    ) -> None:
        self.sim = sim
        self.node = node
        self.index = index
        self.link = link
        self._bandwidth = link.bandwidth
        #: wire size -> serialization delay (ns), filled lazily.  Real
        #: traffic uses only a handful of distinct sizes (data MTU, the
        #: flow-tail remainder, ACK/credit/PFC frames), so the division
        #: and round in ``size * 8 * SEC / bandwidth`` run once per
        #: (port, size) instead of once per packet.
        self._delay_table: Dict[int, int] = {}
        total = 1 + n_data_queues + rr_data_queues
        self.queues: List[Deque["Packet"]] = [deque() for _ in range(total)]
        self.queue_bytes: List[int] = [0] * total
        self.rr_start = 1 + n_data_queues
        self._rr_next = self.rr_start
        self._busy = False
        #: total packets across all queues — O(1) idle check, so the
        #: post-transmit re-kick on an empty port costs one comparison
        #: instead of a queue scan
        self._queued = 0
        #: bytes across the data queues (everything but control),
        #: maintained on enqueue/dequeue so the ECN marking decision
        #: reads a counter instead of summing a list slice per packet
        self._data_bytes = 0
        #: cached peer node + peer port index for the healthy-link
        #: delivery fast path; resolved lazily on the first transmit
        #: (the far end attaches after this port exists).  The peer's
        #: ``receive`` is looked up per delivery, not cached, so tests
        #: that stub it still intercept traffic.
        self._peer: Optional["Node"] = None
        self._peer_port = -1
        #: cached per-direction link id for the ordering key, resolved
        #: together with ``_peer``
        self._lid = 0
        self.paused = False
        self.paused_queues: set[int] = set()
        self.tx_bytes = 0        # everything, for INT and overhead stats
        self.tx_data_bytes = 0   # DATA only, for goodput accounting
        #: callback fired when a packet leaves a queue for the wire:
        #: ``on_dequeue(port, pkt, queue_idx)``.  Owners use it for
        #: buffer uncharging and Floodgate credit accounting.
        self.on_dequeue: Optional[Callable[["EgressPort", "Packet", int], None]] = None
        self.pause_started: int = -1
        self.total_paused_time: int = 0

    # -- bandwidth / serialization-delay table ----------------------------------

    @property
    def bandwidth(self) -> float:
        """Current egress rate, bits/s (see :meth:`set_bandwidth`)."""
        return self._bandwidth

    @bandwidth.setter
    def bandwidth(self, value: float) -> None:
        self.set_bandwidth(value)

    def set_bandwidth(self, value: float) -> None:
        """Change the egress rate and rebuild the delay table.

        The single invalidation path shared by construction, fault
        injection (``PortDegrade`` rate scaling), and any future rate
        changes: the memoized per-size serialization delays are only
        valid for the rate they were computed at, so a stale table
        would keep a degraded port serializing at full speed.
        """
        if value <= 0:
            raise ValueError(f"bandwidth must be positive, got {value}")
        if value != self._bandwidth:
            self._bandwidth = value
            self._delay_table.clear()

    def serialization_delay_of(self, size: int) -> int:
        """Memoized wire time for ``size`` bytes at the current rate."""
        delay = self._delay_table.get(size)
        if delay is None:
            delay = int(round(size * 8 * SEC / self._bandwidth))
            self._delay_table[size] = delay
        return delay

    # -- introspection ----------------------------------------------------------

    @property
    def data_bytes_queued(self) -> int:
        """Bytes waiting in all data queues (excludes control)."""
        return self._data_bytes

    def add_rr_queues(self, count: int) -> int:
        """Append ``count`` round-robin queues; returns first new index."""
        first = len(self.queues)
        for _ in range(count):
            self.queues.append(deque())
            self.queue_bytes.append(0)
        return first

    # -- enqueue ----------------------------------------------------------------

    def enqueue(self, pkt: "Packet", queue_idx: int = 1) -> None:
        """Append ``pkt`` to the given queue and kick the transmitter."""
        pkt.enqueue_time = self.sim.now
        self.queues[queue_idx].append(pkt)
        self.queue_bytes[queue_idx] += pkt.size
        self._queued += 1
        if queue_idx != CONTROL_QUEUE:
            self._data_bytes += pkt.size
        if not self._busy:
            self._try_transmit()

    def enqueue_control(self, pkt: "Packet") -> None:
        """Append ``pkt`` to the control queue (enqueue body inlined —
        one call frame per ACK/credit/PFC frame)."""
        pkt.enqueue_time = self.sim.now
        self.queues[CONTROL_QUEUE].append(pkt)
        self.queue_bytes[CONTROL_QUEUE] += pkt.size
        self._queued += 1
        if not self._busy:
            self._try_transmit()

    # -- pause / resume ------------------------------------------------------------

    def pause(self) -> None:
        """PFC: stop serving data queues (control still flows)."""
        if not self.paused:
            self.paused = True
            self.pause_started = self.sim.now

    def resume(self) -> None:
        """PFC: resume data queues."""
        if self.paused:
            self.paused = False
            if self.pause_started >= 0:
                self.total_paused_time += self.sim.now - self.pause_started
                self.pause_started = -1
            self._try_transmit()

    def pause_queue(self, queue_idx: int) -> None:
        """BFC: stop serving one data queue."""
        if queue_idx == CONTROL_QUEUE:
            raise ValueError("the control queue cannot be paused")
        self.paused_queues.add(queue_idx)

    def resume_queue(self, queue_idx: int) -> None:
        """BFC: resume one data queue."""
        self.paused_queues.discard(queue_idx)
        self._try_transmit()

    # -- transmit machinery ---------------------------------------------------------

    def _pick_queue(self) -> int:
        """Scheduler: control, then strict-priority data, then RR group.

        Returns the queue index to serve next, or -1 if nothing is
        eligible (empty, paused, or port-paused).
        """
        queues = self.queues
        if queues[CONTROL_QUEUE]:
            return CONTROL_QUEUE
        if self.paused:
            return -1
        rr_start = self.rr_start
        paused_queues = self.paused_queues
        for idx in range(1, rr_start):
            if queues[idx] and idx not in paused_queues:
                return idx
        n = len(queues)
        if n > rr_start:
            span = n - rr_start
            start = self._rr_next
            for off in range(span):
                idx = rr_start + (start - rr_start + off) % span
                if queues[idx] and idx not in paused_queues:
                    self._rr_next = rr_start + (idx - rr_start + 1) % span
                    return idx
        return -1

    def _try_transmit(self) -> None:
        if self._busy or not self._queued:
            return
        # inline the two overwhelmingly common scheduler outcomes
        # (control frame waiting; single unpaused data queue) before
        # falling back to the full priority/RR scan
        queues = self.queues
        if queues[CONTROL_QUEUE]:
            idx = CONTROL_QUEUE
        elif self.paused:
            return
        elif self.rr_start > 1 and queues[1] and 1 not in self.paused_queues:
            idx = 1
        else:
            idx = self._pick_queue()
            if idx < 0:
                return
        pkt = queues[idx].popleft()
        size = pkt.size
        self.queue_bytes[idx] -= size
        self._queued -= 1
        if idx != CONTROL_QUEUE:
            self._data_bytes -= size
        # mark busy *before* the dequeue hook: hooks may enqueue more
        # packets (VOQ drains), which must not re-enter the transmitter
        self._busy = True
        on_dequeue = self.on_dequeue
        if on_dequeue is not None:
            on_dequeue(self, pkt, idx)
        self.tx_bytes += size
        if pkt.ecn_capable:
            self.tx_data_bytes += size
        # memoized serialization delay (same arithmetic as the old
        # inline division); the schedule_call fast path is inlined —
        # identical heap tuple, one packet-rate call frame saved
        delay = self._delay_table.get(size)
        if delay is None:
            delay = int(round(size * 8 * SEC / self._bandwidth))
            self._delay_table[size] = delay
        sim = self.sim
        sim._seq += 1
        heappush(
            sim._heap,
            (sim.now + delay, 0, sim._seq, None, self._tx_done, (pkt,)),
        )

    def _tx_done(self, pkt: "Packet") -> None:
        self._busy = False
        link = self.link
        if link.loss_rate == 0.0 and link.fault is None and link.channel is None:
            # healthy link: skip deliver()'s call frame and schedule the
            # peer's receive directly (identical event tuple)
            peer = self._peer
            if peer is None:
                peer = self._peer = link.peer_of(self.node)
                self._peer_port = link.peer_port_of(self.node)
                self._lid = (
                    link.lid_ab if self.node is link.node_a else link.lid_ba
                )
            sim = self.sim
            sim._seq += 1
            heappush(
                sim._heap,
                (
                    sim.now + link.delay,
                    self._lid,
                    sim._seq,
                    None,
                    peer.receive,
                    (pkt, self._peer_port),
                ),
            )
        else:
            link.deliver(pkt, self.node)
        if self._queued:
            self._try_transmit()

    def kick(self) -> None:
        """Re-evaluate the scheduler (after external state changed)."""
        self._try_transmit()
