"""Egress ports: serialization, multi-queue scheduling, pausing.

Each attached link direction gets one :class:`EgressPort`.  The port
owns a configurable set of FIFO queues:

* queue 0 is the *control* queue — link-level control (PFC frames,
  Floodgate credits) and host ACK/CNP traffic.  It has strict highest
  priority and is never paused, mirroring how control rides a separate
  priority class on real fabrics.
* queues ``1 .. rr_start-1`` are strict-priority data queues (lower
  index wins), used e.g. to prioritize non-incast traffic over
  VOQ-drained incast traffic in Floodgate.
* queues ``rr_start ..`` form a round-robin group at the lowest
  priority — used for BFC's per-flow physical queues and for
  Floodgate's drained VOQs.

Pausing is supported at two granularities: the whole port (PFC) or a
single queue (BFC); both exempt the control queue.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

from repro.sim.engine import Simulator
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.node import Node
    from repro.net.packet import Packet

#: Index of the always-on control queue.
CONTROL_QUEUE = 0


class EgressPort:
    """One transmit direction of a node onto a link."""

    __slots__ = (
        "sim",
        "node",
        "index",
        "link",
        "bandwidth",
        "queues",
        "queue_bytes",
        "rr_start",
        "_rr_next",
        "_busy",
        "paused",
        "paused_queues",
        "tx_bytes",
        "tx_data_bytes",
        "on_dequeue",
        "pause_started",
        "total_paused_time",
    )

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        index: int,
        link: "Link",
        n_data_queues: int = 1,
        rr_data_queues: int = 0,
    ) -> None:
        self.sim = sim
        self.node = node
        self.index = index
        self.link = link
        self.bandwidth = link.bandwidth
        total = 1 + n_data_queues + rr_data_queues
        self.queues: List[Deque["Packet"]] = [deque() for _ in range(total)]
        self.queue_bytes: List[int] = [0] * total
        self.rr_start = 1 + n_data_queues
        self._rr_next = self.rr_start
        self._busy = False
        self.paused = False
        self.paused_queues: set[int] = set()
        self.tx_bytes = 0        # everything, for INT and overhead stats
        self.tx_data_bytes = 0   # DATA only, for goodput accounting
        #: callback fired when a packet leaves a queue for the wire:
        #: ``on_dequeue(port, pkt, queue_idx)``.  Owners use it for
        #: buffer uncharging and Floodgate credit accounting.
        self.on_dequeue: Optional[Callable[["EgressPort", "Packet", int], None]] = None
        self.pause_started: int = -1
        self.total_paused_time: int = 0

    # -- introspection ----------------------------------------------------------

    @property
    def data_bytes_queued(self) -> int:
        """Bytes waiting in all data queues (excludes control)."""
        return sum(self.queue_bytes[1:])

    def add_rr_queues(self, count: int) -> int:
        """Append ``count`` round-robin queues; returns first new index."""
        first = len(self.queues)
        for _ in range(count):
            self.queues.append(deque())
            self.queue_bytes.append(0)
        return first

    # -- enqueue ----------------------------------------------------------------

    def enqueue(self, pkt: "Packet", queue_idx: int = 1) -> None:
        """Append ``pkt`` to the given queue and kick the transmitter."""
        pkt.enqueue_time = self.sim.now
        self.queues[queue_idx].append(pkt)
        self.queue_bytes[queue_idx] += pkt.size
        self._try_transmit()

    def enqueue_control(self, pkt: "Packet") -> None:
        """Append ``pkt`` to the control queue."""
        self.enqueue(pkt, CONTROL_QUEUE)

    # -- pause / resume ------------------------------------------------------------

    def pause(self) -> None:
        """PFC: stop serving data queues (control still flows)."""
        if not self.paused:
            self.paused = True
            self.pause_started = self.sim.now

    def resume(self) -> None:
        """PFC: resume data queues."""
        if self.paused:
            self.paused = False
            if self.pause_started >= 0:
                self.total_paused_time += self.sim.now - self.pause_started
                self.pause_started = -1
            self._try_transmit()

    def pause_queue(self, queue_idx: int) -> None:
        """BFC: stop serving one data queue."""
        if queue_idx == CONTROL_QUEUE:
            raise ValueError("the control queue cannot be paused")
        self.paused_queues.add(queue_idx)

    def resume_queue(self, queue_idx: int) -> None:
        """BFC: resume one data queue."""
        self.paused_queues.discard(queue_idx)
        self._try_transmit()

    # -- transmit machinery ---------------------------------------------------------

    def _pick_queue(self) -> int:
        """Scheduler: control, then strict-priority data, then RR group.

        Returns the queue index to serve next, or -1 if nothing is
        eligible (empty, paused, or port-paused).
        """
        queues = self.queues
        if queues[CONTROL_QUEUE]:
            return CONTROL_QUEUE
        if self.paused:
            return -1
        rr_start = self.rr_start
        paused_queues = self.paused_queues
        for idx in range(1, rr_start):
            if queues[idx] and idx not in paused_queues:
                return idx
        n = len(queues)
        if n > rr_start:
            span = n - rr_start
            start = self._rr_next
            for off in range(span):
                idx = rr_start + (start - rr_start + off) % span
                if queues[idx] and idx not in paused_queues:
                    self._rr_next = rr_start + (idx - rr_start + 1) % span
                    return idx
        return -1

    def _try_transmit(self) -> None:
        if self._busy:
            return
        idx = self._pick_queue()
        if idx < 0:
            return
        pkt = self.queues[idx].popleft()
        size = pkt.size
        self.queue_bytes[idx] -= size
        # mark busy *before* the dequeue hook: hooks may enqueue more
        # packets (VOQ drains), which must not re-enter the transmitter
        self._busy = True
        if self.on_dequeue is not None:
            self.on_dequeue(self, pkt, idx)
        self.tx_bytes += size
        if pkt.ecn_capable:
            self.tx_data_bytes += size
        # inline serialization_delay (same arithmetic) — this runs once
        # per transmitted packet; handle-free schedule: never cancelled
        self.sim.schedule_call(
            int(round(size * 8 * SEC / self.bandwidth)), self._tx_done, pkt
        )

    def _tx_done(self, pkt: "Packet") -> None:
        self._busy = False
        self.link.deliver(pkt, self.node)
        self._try_transmit()

    def kick(self) -> None:
        """Re-evaluate the scheduler (after external state changed)."""
        self._try_transmit()
