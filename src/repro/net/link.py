"""Point-to-point full-duplex links.

A link only models propagation (serialization lives in the egress
port).  Links host two fault hooks, both zero-cost when unused:

* the legacy Bernoulli drop (``set_loss``) used by the paper's Fig. 12
  robustness experiment — a flat loss rate for the whole run;
* the ``fault`` slot, installed per link by
  :class:`repro.faults.injector.FaultInjector` when a scenario carries
  a :class:`~repro.faults.plan.FaultPlan` — scheduled outages, bursty
  and class-split loss, corruption, and degradation.  Unfaulted links
  pay one ``is None`` check per delivery.
"""

from __future__ import annotations

import random
from heapq import heappush
from typing import TYPE_CHECKING, Optional

from repro.net.packet import PacketKind
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import LinkFaultState
    from repro.net.node import Node
    from repro.net.packet import Packet


class Link:
    """Full-duplex link between two nodes.

    ``bandwidth`` is stored here as the single source of truth for both
    directions; the two egress ports read it at attach time.
    """

    __slots__ = (
        "sim",
        "node_a",
        "node_b",
        "port_a",
        "port_b",
        "bandwidth",
        "delay",
        "loss_rate",
        "_loss_rng",
        "dropped_packets",
        "dropped_data_packets",
        "dropped_credit_packets",
        "fault",
        "lid_ab",
        "lid_ba",
        "channel",
    )

    def __init__(
        self,
        sim: Simulator,
        node_a: "Node",
        node_b: "Node",
        bandwidth: float,
        delay: int,
    ) -> None:
        self.sim = sim
        self.node_a = node_a
        self.node_b = node_b
        self.bandwidth = bandwidth
        self.delay = delay
        #: port index of this link on each endpoint (set by Node.attach_link)
        self.port_a: int = -1
        self.port_b: int = -1
        self.loss_rate: float = 0.0
        self._loss_rng: Optional[random.Random] = None
        self.dropped_packets: int = 0
        #: kind-split Bernoulli drop counters, so the sanitizer's
        #: conservation ledgers balance on lossy runs
        self.dropped_data_packets: int = 0
        self.dropped_credit_packets: int = 0
        #: scheduled-fault state (see repro.faults); None on healthy links
        self.fault: Optional["LinkFaultState"] = None
        #: per-direction link ids for the engine ordering key.  Assigned
        #: deterministically by ``Topology.connect`` in link-creation
        #: order (a->b odd, b->a even); 0 for raw links built outside a
        #: topology, which keeps plain insertion-order tie-breaks.
        self.lid_ab: int = 0
        self.lid_ba: int = 0
        #: boundary channel (repro.sim.sharded); when set, deliveries
        #: cross a domain boundary through the channel instead of the
        #: local heap.  None on every serial and intra-domain link.
        self.channel = None

    def set_loss(self, rate: float, rng: random.Random) -> None:
        """Enable Bernoulli packet loss on this link (both directions)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.loss_rate = rate
        self._loss_rng = rng

    def peer_of(self, node: "Node") -> "Node":
        """The endpoint opposite ``node``."""
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node} is not an endpoint of this link")

    def peer_port_of(self, node: "Node") -> int:
        """The peer's port index for this link."""
        return self.port_b if node is self.node_a else self.port_a

    def deliver(self, pkt: "Packet", sender: "Node") -> None:
        """Carry ``pkt`` from ``sender`` to the peer after the prop delay."""
        if self.loss_rate > 0.0 and self._loss_rng is not None:
            if self._loss_rng.random() < self.loss_rate:
                self.dropped_packets += 1
                if pkt.kind == PacketKind.DATA:
                    self.dropped_data_packets += 1
                elif pkt.kind == PacketKind.CREDIT:
                    self.dropped_credit_packets += 1
                return
        # inline peer resolution (peer_of + peer_port_of): this runs
        # once per transmitted packet, and two method calls are
        # measurable at that rate
        if sender is self.node_a:
            peer = self.node_b
            peer_port = self.port_b
            lid = self.lid_ab
        else:
            peer = self.node_a
            peer_port = self.port_a
            lid = self.lid_ba
        if self.fault is not None:
            self.fault.transmit(pkt, peer, peer_port)
            return
        if self.channel is not None:
            # boundary delivery: the full ordering key is computed on
            # the sending side, so the receiving domain merges it into
            # its heap in exactly the serial position
            sim = sender.sim
            sim._seq += 1
            self.channel.send(
                peer,
                (sim.now + self.delay, lid, sim._seq, None, peer.receive,
                 (pkt, peer_port)),
            )
            return
        # handle-free fast path (schedule_call inlined): propagation
        # events are never cancelled, and this runs once per packet
        sim = self.sim
        sim._seq += 1
        heappush(
            sim._heap,
            (sim.now + self.delay, lid, sim._seq, None, peer.receive,
             (pkt, peer_port)),
        )
