"""Shared switch buffer with dynamic-threshold PFC accounting.

Models the shared-memory buffer of a commodity switch the way the
DCQCN/HPCC NS-3 models do:

* every buffered data packet is charged against the total pool and
  against the *ingress* port it arrived on;
* an ingress port whose occupancy exceeds the dynamic threshold
  ``alpha * (capacity - total_used)`` triggers a PFC PAUSE to its
  upstream peer; it resumes once occupancy falls below the threshold
  minus a hysteresis margin (two MTUs here);
* a packet that cannot be admitted at all (pool exhausted) is dropped.

The paper runs with the dynamic threshold and ``alpha = 2``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.units import MTU


class SharedBuffer:
    """Per-switch buffer pool with per-ingress PFC state."""

    __slots__ = (
        "capacity",
        "alpha",
        "pfc_enabled",
        "used",
        "ingress_bytes",
        "ingress_paused",
        "n_ports",
        "n_paused",
        "max_used",
        "dropped",
        "hysteresis",
        "on_pause",
        "on_resume",
        "headroom",
    )

    def __init__(
        self,
        capacity: int,
        n_ports: int,
        alpha: float = 2.0,
        pfc_enabled: bool = True,
        hysteresis: int = 2 * MTU,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.alpha = alpha
        self.pfc_enabled = pfc_enabled
        self.hysteresis = hysteresis
        self.used = 0
        self.ingress_bytes: List[int] = [0] * n_ports
        self.ingress_paused: List[bool] = [False] * n_ports
        self.n_ports = n_ports
        #: count of True entries in ingress_paused — lets release() skip
        #: its every-port resume scan in the common nothing-paused case
        self.n_paused = 0
        self.max_used = 0
        self.dropped = 0
        #: callbacks installed by the switch: ``on_pause(ingress_port)``
        self.on_pause: Optional[Callable[[int], None]] = None
        self.on_resume: Optional[Callable[[int], None]] = None
        # Reserve a little headroom per port so packets in flight during
        # the pause round-trip do not overflow the pool (as real
        # deployments do).  Admission uses capacity directly; headroom
        # only shifts the pause threshold earlier.
        self.headroom = 2 * MTU

    # -- admission ----------------------------------------------------------------

    def threshold(self) -> float:
        """Current dynamic PFC threshold for any one ingress port."""
        free = self.capacity - self.used
        return self.alpha * max(free, 0)

    def admit(self, size: int, ingress_port: int) -> bool:
        """Charge ``size`` bytes to the pool; False (and drop) if full."""
        if self.used + size > self.capacity:
            self.dropped += 1
            return False
        self.used += size
        if self.used > self.max_used:
            self.max_used = self.used
        if 0 <= ingress_port < self.n_ports:
            self.ingress_bytes[ingress_port] += size
            self._check_pause(ingress_port)
        return True

    def release(self, size: int, ingress_port: int) -> None:
        """Return ``size`` bytes to the pool (packet left the switch)."""
        self.used -= size
        if self.used < 0:
            raise RuntimeError("buffer accounting underflow (double release?)")
        if 0 <= ingress_port < self.n_ports:
            self.ingress_bytes[ingress_port] -= size
            if self.ingress_bytes[ingress_port] < 0:
                raise RuntimeError(
                    f"ingress accounting underflow on port {ingress_port}"
                )
            self._check_resume(ingress_port)
        # A release frees pool space, which raises every port's dynamic
        # threshold; ports paused near the boundary may resume.
        if self.n_paused and self.pfc_enabled:
            for port, paused in enumerate(self.ingress_paused):
                if paused and port != ingress_port:
                    self._check_resume(port)

    # -- PFC state machine ------------------------------------------------------------

    def _check_pause(self, port: int) -> None:
        if not self.pfc_enabled or self.ingress_paused[port]:
            return
        if self.ingress_bytes[port] + self.headroom > self.threshold():
            self.ingress_paused[port] = True
            self.n_paused += 1
            if self.on_pause is not None:
                self.on_pause(port)

    def _check_resume(self, port: int) -> None:
        if not self.pfc_enabled or not self.ingress_paused[port]:
            return
        if self.ingress_bytes[port] + self.headroom + self.hysteresis < self.threshold():
            self.ingress_paused[port] = False
            self.n_paused -= 1
            if self.on_resume is not None:
                self.on_resume(port)
