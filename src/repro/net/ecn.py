"""RED/ECN marking.

Implements the marking curve DCQCN (and DCTCP) assume at switch egress
queues: below ``kmin`` never mark, above ``kmax`` always mark, and
between the two mark with probability rising linearly to ``pmax``.
The paper's convergence study (Fig. 16) sweeps ``(kmin, kmax)``, so the
thresholds are per-instance configuration rather than globals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class EcnConfig:
    """RED-style marking thresholds (bytes)."""

    kmin: int
    kmax: int
    pmax: float = 1.0

    def __post_init__(self) -> None:
        if self.kmin < 0 or self.kmax < self.kmin:
            raise ValueError(f"need 0 <= kmin <= kmax, got {self.kmin}, {self.kmax}")
        if not 0.0 <= self.pmax <= 1.0:
            raise ValueError(f"pmax must be in [0, 1], got {self.pmax}")


class EcnMarker:
    """Stateless marking decision with a dedicated RNG stream."""

    __slots__ = ("config", "_rng", "marked_count")

    def __init__(self, config: EcnConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        self.marked_count = 0

    def should_mark(self, queue_bytes: int) -> bool:
        """Marking decision for a packet arriving to a queue of this depth."""
        cfg = self.config
        if queue_bytes <= cfg.kmin:
            return False
        if queue_bytes >= cfg.kmax:
            self.marked_count += 1
            return True
        span = cfg.kmax - cfg.kmin
        p = cfg.pmax * (queue_bytes - cfg.kmin) / span if span else cfg.pmax
        if self._rng.random() < p:
            self.marked_count += 1
            return True
        return False
