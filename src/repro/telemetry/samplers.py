"""Periodic samplers: turn registry gauges into time series.

Two shapes cover every time-series figure in the paper:

* :class:`GaugeSampler` records a gauge's level at each tick (buffer
  occupancy, VOQs in use);
* :class:`RateSampler` differentiates a monotone counter into a rate
  (receive throughput), dividing by the *actual* elapsed window since
  the previous sample — not the nominal interval — so a sampler
  started at ``sim.now > 0``, mid-interval, or restarted after a
  ``stop()`` never reports a rate over bytes the window didn't cover.

Both read their sources only at tick time; nothing here touches the
per-packet hot path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTask


class PeriodicSampler:
    """Shared machinery: a tick task plus per-source sample storage.

    ``sources`` maps a series name to a zero-argument callable; attach
    registry gauges with ``{g.name: g.read for g in ...}``.
    """

    def __init__(
        self,
        sim: Simulator,
        sources: Dict[str, Callable[[], int]],
        interval: int,
        unit: str = "",
    ) -> None:
        self.sim = sim
        self.sources = sources
        self.interval = interval
        self.unit = unit
        self.samples: Dict[str, List[Tuple[int, float]]] = {
            name: [] for name in sources
        }
        self._task = PeriodicTask(sim, interval, self._sample, observer=True)

    def start(self) -> None:
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    def _sample(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- queries ------------------------------------------------------------

    def series(self, name: str) -> List[Tuple[int, float]]:
        """Raw ``(time_ns, value)`` samples for one series."""
        return self.samples[name]

    def max_value(self, name: str) -> float:
        return max((v for _, v in self.samples[name]), default=0)

    def value_at(self, name: str, time: int) -> float:
        """Last sampled value at or before ``time`` (0 if none yet)."""
        best: float = 0
        for t, v in self.samples[name]:
            if t > time:
                break
            best = v
        return best


class GaugeSampler(PeriodicSampler):
    """Samples each source's level directly."""

    def _sample(self) -> None:
        now = self.sim.now
        for name, fn in self.sources.items():
            self.samples[name].append((now, fn()))


class RateSampler(PeriodicSampler):
    """Differentiates monotone counters into rates.

    A sample's value is ``scale * delta / elapsed_ns`` where ``delta``
    is the counter increase since the previous sample (or since
    :meth:`start`) and ``elapsed_ns`` the actual time that increase
    accumulated over.  With ``scale=8`` a bytes counter reads in Gbps
    (bytes/ns * 8 == Gbps).
    """

    def __init__(
        self,
        sim: Simulator,
        sources: Dict[str, Callable[[], int]],
        interval: int,
        scale: float = 1.0,
        unit: str = "",
    ) -> None:
        super().__init__(sim, sources, interval, unit)
        self.scale = scale
        self._last: Dict[str, int] = {name: 0 for name in sources}
        self._last_time = 0

    def start(self) -> None:
        # baseline: counted bytes before this instant belong to no window
        for name, fn in self.sources.items():
            self._last[name] = fn()
        self._last_time = self.sim.now
        super().start()

    def _sample(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_time
        if elapsed <= 0:
            return  # same-instant tick (restart artifact): no window yet
        self._last_time = now
        for name, fn in self.sources.items():
            current = fn()
            delta = current - self._last[name]
            self._last[name] = current
            self.samples[name].append((now, delta * self.scale / elapsed))
