"""Unified observability: one registry for counters, gauges,
histograms, periodic samplers, engine profiling, and run exports.

Opt in per run via ``ScenarioConfig(telemetry=TelemetryConfig())``;
the resulting :class:`TelemetryExport` rides on
``ScenarioResult.telemetry`` / ``ResultSummary.telemetry``, survives
the process pool and the sweep cache byte-identically, and renders
with the ``report`` CLI subcommand.
"""

from repro.telemetry.export import TelemetryExport
from repro.telemetry.profile import EngineProfiler
from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.report import render_export
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    TelemetryConfig,
    TelemetryRegistry,
)
from repro.telemetry.samplers import GaugeSampler, PeriodicSampler, RateSampler

__all__ = [
    "Counter",
    "EngineProfiler",
    "Gauge",
    "GaugeSampler",
    "Histogram",
    "PeriodicSampler",
    "RateSampler",
    "TelemetryConfig",
    "TelemetryExport",
    "TelemetryRecorder",
    "TelemetryRegistry",
    "render_export",
]
