"""Engine profiling: who eats the event budget.

Installed on a :class:`~repro.sim.engine.Simulator` via
``set_profiler``; the engine then routes its run loop through an
instrumented twin that times every callback and tracks heap depth.
With no profiler installed the engine pays a single ``is None`` check
per ``run()`` call — zero per-event cost.

The profile splits into two halves:

* **deterministic** — per-callback-type event counts, max heap depth,
  events executed.  These depend only on the simulated schedule, so
  they export byte-identically from serial, pooled, and cached runs.
* **wall-clock** — per-callback-type time shares and events/sec.
  Inherently machine- and run-dependent; surfaced by :meth:`report`
  for live inspection but never part of the canonical export.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple


def callback_name(fn: Callable[..., Any]) -> str:
    """Stable label for a callback (no memory addresses)."""
    name = getattr(fn, "__qualname__", None)
    return name if name is not None else type(fn).__name__


class ProfilerFanout:
    """Fan one engine profiler slot out to several sinks.

    A :class:`~repro.sim.engine.Simulator` has a single profiler slot,
    but a sharded run can need up to three listeners on it at once: the
    per-domain :class:`~repro.simcheck.determinism.EventStreamDigest`,
    the per-domain :class:`EngineProfiler`, and the isolation probe of
    :class:`~repro.simcheck.isolation.ShardIsolationSanitizer`.  Every
    sink sees the exact same ``note`` calls in the same order.
    """

    __slots__ = ("sinks", "_wall_sink", "_wall_local")

    def __init__(self, *sinks: Any) -> None:
        self.sinks = tuple(s for s in sinks if s is not None)
        # the engine charges run-loop wall time to `profiler.wall_seconds`;
        # route it to the sink that reports it (the EngineProfiler)
        self._wall_sink = next(
            (s for s in self.sinks if hasattr(s, "wall_seconds")), None
        )
        self._wall_local = 0.0

    @property
    def wall_seconds(self) -> float:
        if self._wall_sink is not None:
            return self._wall_sink.wall_seconds
        return self._wall_local

    @wall_seconds.setter
    def wall_seconds(self, value: float) -> None:
        if self._wall_sink is not None:
            self._wall_sink.wall_seconds = value
        else:
            self._wall_local = value

    def note(self, fn: Callable[..., Any], dt: float, heap_depth: int) -> None:
        for sink in self.sinks:
            sink.note(fn, dt, heap_depth)


class EngineProfiler:
    """Accumulates per-callback-type counts and times."""

    __slots__ = (
        "counts",
        "seconds",
        "events",
        "max_heap_depth",
        "wall_seconds",
    )

    def __init__(self) -> None:
        #: callback qualname -> events executed
        self.counts: Dict[str, int] = {}
        #: callback qualname -> cumulative seconds inside the callback
        self.seconds: Dict[str, float] = {}
        self.events = 0
        self.max_heap_depth = 0
        #: total wall time spent inside profiled run() calls
        self.wall_seconds = 0.0

    # -- hot path (profiling mode only) ------------------------------------

    def note(self, fn: Callable[..., Any], dt: float, heap_depth: int) -> None:
        name = callback_name(fn)
        self.counts[name] = self.counts.get(name, 0) + 1
        self.seconds[name] = self.seconds.get(name, 0.0) + dt
        self.events += 1
        if heap_depth > self.max_heap_depth:
            self.max_heap_depth = heap_depth

    # -- queries ------------------------------------------------------------

    def count_rows(self) -> List[Tuple[str, int]]:
        """Deterministic ``(callback, count)`` rows, busiest first."""
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def time_shares(self) -> List[Tuple[str, float, float]]:
        """Wall-clock ``(callback, seconds, share)`` rows, hottest first."""
        total = sum(self.seconds.values())
        rows = [
            (name, secs, secs / total if total else 0.0)
            for name, secs in self.seconds.items()
        ]
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def report(self, limit: int = 12) -> str:
        """Human-readable profile table (wall-clock half included)."""
        lines = [
            f"events executed   {self.events:,}",
            f"max heap depth    {self.max_heap_depth:,}",
            f"events/sec        {self.events_per_sec:,.0f}",
            "",
            f"{'callback':<44s} {'events':>10s} {'seconds':>9s} {'share':>7s}",
        ]
        shares = {name: (secs, share) for name, secs, share in self.time_shares()}
        for name, count in self.count_rows()[:limit]:
            secs, share = shares.get(name, (0.0, 0.0))
            lines.append(f"{name:<44s} {count:>10,d} {secs:>9.3f} {share:>6.1%}")
        return "\n".join(lines)
