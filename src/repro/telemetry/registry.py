"""The instrument registry: counters, gauges, streaming histograms.

One :class:`TelemetryRegistry` per run holds every instrument under a
flat namespace (``"switch.tor0.buffer_bytes"``); samplers, the engine
profiler, and the exporters all speak to the registry rather than to
individual subsystems.  Instruments are deliberately tiny:

* :class:`Counter` — a push-updated monotone integer (credits sent,
  packets dropped);
* :class:`Gauge` — a pull-read callable (buffer occupancy *right
  now*), polled by samplers, never on the packet hot path;
* :class:`Histogram` — a streaming power-of-two-binned distribution
  (FCTs, queueing delays) with O(1) memory and deterministic bins.

Everything a registry holds is integer- or string-valued, so a
snapshot is deterministic across processes — the property the export
layer's byte-identical contract rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.units import us


@dataclass(frozen=True)
class TelemetryConfig:
    """What a run records; part of :class:`ScenarioConfig`.

    Frozen so it hashes into the sweep-cache fingerprint: a cached run
    can only serve requests that asked for the same telemetry.
    """

    #: sampling period for all periodic samplers, ns
    interval: int = us(20)
    #: per-flow-class receive throughput series (Fig. 2's raw material)
    throughput: bool = True
    #: per-switch and total buffer occupancy series (Figs. 10/16)
    buffers: bool = True
    #: cumulative counter series (PFC events, drops) + end-of-run counters
    counters: bool = True
    #: FCT and queueing-delay streaming histograms
    histograms: bool = True
    #: engine profile: per-callback event counts, heap depth
    engine_profile: bool = True


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "unit", "value")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A pull-read instrument: ``fn()`` returns the current level."""

    __slots__ = ("name", "unit", "fn")

    def __init__(self, name: str, fn: Callable[[], int], unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.fn = fn

    def read(self) -> int:
        return self.fn()


class Histogram:
    """Streaming histogram with power-of-two bins.

    ``observe(v)`` is O(1) and allocation-free after the first hit per
    bin; bin ``i`` covers ``[2**(i-1), 2**i)`` with bin 0 holding
    values <= 0 ... 1.  Bin edges depend only on the values observed,
    never on observation order or wall clock, so two runs that observe
    the same multiset export identical histograms.
    """

    __slots__ = ("name", "unit", "counts", "total", "sum", "min", "max")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        #: bin index -> count (sparse; only touched bins exist)
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        idx = int(value).bit_length() if value > 0 else 0
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.total += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Power-of-two bins make the merge exact: a value lands in the
        same bin no matter which domain observed it, so summing bin
        counts reproduces the histogram a single observer would have
        built.  Used by the sharded executors to combine per-domain
        telemetry (:meth:`repro.stats.collector.StatsHub.merge_from`).
        """
        for idx, count in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + count
        self.total += other.total
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def bins(self) -> List[Tuple[int, int]]:
        """Sorted ``(upper_edge, count)`` pairs for the touched bins."""
        return [(1 << i if i else 1, c) for i, c in sorted(self.counts.items())]

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> int:
        """Upper edge of the bin containing the ``q``-quantile (0..1)."""
        if not self.total:
            return 0
        target = q * self.total
        seen = 0
        for edge, count in self.bins():
            seen += count
            if seen >= target:
                return edge
        return self.bins()[-1][0]


class TelemetryRegistry:
    """Flat namespace of instruments plus the samplers that read them."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: samplers driven off this registry (see telemetry.samplers)
        self.samplers: List[object] = []

    # -- registration (create-or-get, so wiring code stays idempotent) ----

    def counter(self, name: str, unit: str = "") -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name, unit)
        return inst

    def gauge(self, name: str, fn: Callable[[], int], unit: str = "") -> Gauge:
        inst = Gauge(name, fn, unit)
        self.gauges[name] = inst
        return inst

    def histogram(self, name: str, unit: str = "") -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name, unit)
        return inst

    # -- lifecycle ---------------------------------------------------------

    def add_sampler(self, sampler: object) -> None:
        self.samplers.append(sampler)

    def start(self) -> None:
        for s in self.samplers:
            s.start()

    def stop(self) -> None:
        for s in self.samplers:
            s.stop()

    # -- snapshot ----------------------------------------------------------

    def counter_values(self) -> List[Tuple[str, str, int]]:
        """Sorted ``(name, unit, value)`` rows — deterministic order."""
        return [
            (c.name, c.unit, c.value)
            for _, c in sorted(self.counters.items())
        ]
