"""Machine-readable telemetry exports: JSONL and CSV.

A :class:`TelemetryExport` is the frozen, picklable end-of-run
snapshot: plain dicts/lists/ints/floats, no live objects.  It carries
only simulation-deterministic data (sample series, counters,
histograms, per-callback event counts) — wall-clock measurements stay
on the live profiler — so the same seeded run serialises to the same
bytes whether it executed serially, in a pool worker, or was replayed
from the sweep cache.

Formats::

    JSONL  one record per line: meta, then counters, series,
           histograms, profile — each a sorted-key compact JSON object
    CSV    flat ``kind,name,x,value`` rows (x = time_ns for series,
           bin upper edge for histograms, empty otherwise)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: bump when the record layout changes incompatibly
EXPORT_SCHEMA = 1


def _dumps(obj: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace — stable bytes."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class TelemetryExport:
    """Deterministic snapshot of one run's telemetry."""

    #: run identity and totals (sim_time_ns, events, interval_ns, ...)
    meta: Dict[str, Any] = field(default_factory=dict)
    #: sorted (name, unit, value) rows
    counters: List[Tuple[str, str, int]] = field(default_factory=list)
    #: sorted by name: {"name", "unit", "points": [[t_ns, value], ...]}
    series: List[Dict[str, Any]] = field(default_factory=list)
    #: sorted by name: {"name", "unit", "bins": [[edge, count], ...],
    #: "total", "sum", "min", "max"}
    histograms: List[Dict[str, Any]] = field(default_factory=list)
    #: {"events", "max_heap_depth", "callbacks": [[name, count], ...]}
    profile: Optional[Dict[str, Any]] = None

    # -- queries ------------------------------------------------------------

    def series_named(self, name: str) -> Optional[Dict[str, Any]]:
        for s in self.series:
            if s["name"] == name:
                return s
        return None

    def series_prefixed(self, prefix: str) -> List[Dict[str, Any]]:
        return [s for s in self.series if s["name"].startswith(prefix)]

    def counter_value(self, name: str) -> Optional[int]:
        for n, _, v in self.counters:
            if n == name:
                return v
        return None

    # -- serialisation ------------------------------------------------------

    def to_jsonl(self) -> str:
        """One canonical-JSON record per line (ends with a newline)."""
        lines = [_dumps({"type": "meta", "schema": EXPORT_SCHEMA, **self.meta})]
        for name, unit, value in self.counters:
            lines.append(
                _dumps(
                    {"type": "counter", "name": name, "unit": unit, "value": value}
                )
            )
        for s in self.series:
            lines.append(_dumps({"type": "series", **s}))
        for h in self.histograms:
            lines.append(_dumps({"type": "hist", **h}))
        if self.profile is not None:
            lines.append(_dumps({"type": "profile", **self.profile}))
        return "\n".join(lines) + "\n"

    def to_csv(self) -> str:
        """Flat ``kind,name,x,value`` rows (same content, same order)."""
        rows = ["kind,name,x,value"]
        for name, _, value in self.counters:
            rows.append(f"counter,{name},,{value}")
        for s in self.series:
            for t, v in s["points"]:
                rows.append(f"series,{s['name']},{t},{v!r}")
        for h in self.histograms:
            for edge, count in h["bins"]:
                rows.append(f"hist,{h['name']},{edge},{count}")
        if self.profile is not None:
            for name, count in self.profile["callbacks"]:
                rows.append(f"profile,{name},,{count}")
        return "\n".join(rows) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        """Write JSONL or CSV depending on the path's suffix."""
        path = Path(path)
        text = self.to_csv() if path.suffix == ".csv" else self.to_jsonl()
        path.write_text(text)
        return path

    @staticmethod
    def from_jsonl(text: str) -> "TelemetryExport":
        """Parse a JSONL export back (inverse of :meth:`to_jsonl`)."""
        export = TelemetryExport()
        for line in text.splitlines():
            if not line.strip():
                continue
            rec = json.loads(line)
            kind = rec.pop("type")
            if kind == "meta":
                rec.pop("schema", None)
                export.meta = rec
            elif kind == "counter":
                export.counters.append((rec["name"], rec["unit"], rec["value"]))
            elif kind == "series":
                export.series.append(rec)
            elif kind == "hist":
                export.histograms.append(rec)
            elif kind == "profile":
                export.profile = rec
        return export
