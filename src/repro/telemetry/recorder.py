"""Wire a scenario to the telemetry registry.

The recorder is the glue between the generic instruments
(:mod:`repro.telemetry.registry`) and this simulator's subsystems: it
harvests gauge surfaces from switches and hosts
(``telemetry_gauges()``), counter surfaces from Floodgate's credit
scheduler and VOQ pool (``telemetry_counters()``), hangs streaming
histograms off the :class:`StatsHub` hot-path hooks, and installs the
engine profiler.  Everything it records is polled or is-None-gated, so
a run with ``telemetry=None`` is bit-identical to one built before
this module existed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.stats.collector import FlowClass
from repro.telemetry.export import TelemetryExport
from repro.telemetry.profile import EngineProfiler
from repro.telemetry.registry import TelemetryConfig, TelemetryRegistry
from repro.telemetry.samplers import GaugeSampler, RateSampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.scenario import Scenario


class TelemetryRecorder:
    """Owns one run's registry, samplers, and engine profiler."""

    def __init__(self, scenario: "Scenario", config: TelemetryConfig) -> None:
        self.scenario = scenario
        self.config = config
        self.registry = TelemetryRegistry()
        self.profiler: Optional[EngineProfiler] = None
        self._finalized: Optional[TelemetryExport] = None
        self._wire()

    # -- wiring --------------------------------------------------------------

    def _wire(self) -> None:
        sc = self.scenario
        cfg = self.config
        reg = self.registry
        sim = sc.sim
        stats = sc.stats
        topo = sc.topology

        if cfg.throughput:
            sources: Dict[str, Callable[[], int]] = {
                f"rx_gbps.{cls.value}": (
                    lambda s=stats, c=cls: s.rx_bytes_of_class(c)
                )
                for cls in FlowClass
            }
            host_rx = tuple(
                h.telemetry_gauges()["rx_data_bytes"] for h in topo.hosts
            )
            sources["rx_gbps.total"] = lambda fns=host_rx: sum(
                f() for f in fns
            )
            reg.add_sampler(
                RateSampler(sim, sources, cfg.interval, scale=8.0, unit="gbps")
            )

        if cfg.buffers:
            gauges: Dict[str, Callable[[], int]] = {}
            reads = []
            for sw in topo.switches:
                fn = sw.telemetry_gauges()["buffer_bytes"]
                gauges[f"buffer_bytes.{sw.name}"] = fn
                reads.append(fn)
            gauges["buffer_bytes.total"] = lambda fns=tuple(reads): sum(
                f() for f in fns
            )
            reg.add_sampler(
                GaugeSampler(sim, gauges, cfg.interval, unit="bytes")
            )

        if cfg.counters:
            reg.add_sampler(
                GaugeSampler(
                    sim,
                    {
                        "pfc_pause_events": lambda s=stats: s.pfc_pause_events,
                        "packets_dropped": lambda s=stats: s.packets_dropped,
                    },
                    cfg.interval,
                    unit="count",
                )
            )

        if cfg.histograms:
            # streaming: StatsHub feeds these behind is-None checks
            stats.fct_histogram = reg.histogram("fct_ns", unit="ns")
            stats.queuing_histogram = reg.histogram("queuing_ns", unit="ns")
            if sc.rpc_driver is not None:
                stats.rpc_histogram = reg.histogram("rpc_latency_ns", unit="ns")

        if cfg.engine_profile:
            self.profiler = EngineProfiler()
            sim.set_profiler(self.profiler)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self.registry.start()

    def finalize(self) -> TelemetryExport:
        """Stop sampling, harvest end-of-run counters, build the export.

        Idempotent: the first call freezes the snapshot.
        """
        if self._finalized is not None:
            return self._finalized
        self.registry.stop()
        if self.config.counters:
            self._harvest_counters()
        self._finalized = self._build_export()
        return self._finalized

    def _harvest_counters(self) -> None:
        sc = self.scenario
        reg = self.registry
        stats = sc.stats
        topo = sc.topology
        reg.counter("flows.completed").value = topo.completed_flows
        reg.counter("flows.total").value = len(topo.flow_table)
        reg.counter("drops.congestion").value = stats.packets_dropped
        reg.counter("drops.fault_data").value = stats.fault_drops["data"]
        reg.counter("drops.fault_ctrl").value = stats.fault_drops["ctrl"]
        reg.counter("rx.corrupt").value = stats.corrupt_rx
        reg.counter("control.unclaimed").value = stats.unclaimed_control_frames
        reg.counter("pfc.pause_events").value = stats.pfc_pause_events
        reg.counter("stalls").value = stats.stall_events
        for kind in sorted(stats.pfc_paused_time):
            reg.counter(f"pfc.paused_ns.{kind}", unit="ns").value = (
                stats.pfc_paused_time[kind]
            )
        reg.counter("retransmissions").value = sum(
            f.retransmitted_packets for f in topo.flow_table.values()
        )
        driver = sc.rpc_driver
        if driver is not None:
            reg.counter("rpc.requests_issued").value = driver.requests_issued
            reg.counter("rpc.requests_completed").value = (
                driver.requests_completed
            )
        for ext in sc.extensions:
            harvest = getattr(ext, "telemetry_counters", None)
            if harvest is None:
                continue
            for name, value in harvest().items():
                if name.endswith("max_in_use"):
                    # a maximum, not a sum: keep the largest across switches
                    counter = reg.counter(f"floodgate.{name}")
                    if value > counter.value:
                        counter.value = value
                else:
                    reg.counter(f"floodgate.{name}").inc(value)
        if sc.hybrid is not None:
            for name, value in sc.hybrid.telemetry_counters().items():
                reg.counter(name).value = value

    def _build_export(self) -> TelemetryExport:
        sc = self.scenario
        cfg = sc.config
        reg = self.registry
        meta = {
            "sim_time_ns": sc.sim.now,
            "events": sc.sim.events_executed,
            "interval_ns": self.config.interval,
            "seed": cfg.seed,
            "topology": cfg.topology,
            "cc": cfg.cc,
            "flow_control": cfg.flow_control,
            "workload": cfg.workload,
        }
        series = []
        for sampler in reg.samplers:
            for name in sorted(sampler.samples):
                series.append(
                    {
                        "name": name,
                        "unit": sampler.unit,
                        "points": [[t, v] for t, v in sampler.samples[name]],
                    }
                )
        series.sort(key=lambda s: s["name"])
        histograms = [
            {
                "name": h.name,
                "unit": h.unit,
                "bins": [[edge, count] for edge, count in h.bins()],
                "total": h.total,
                "sum": h.sum,
                "min": h.min,
                "max": h.max,
            }
            for _, h in sorted(reg.histograms.items())
        ]
        profile = None
        if self.profiler is not None:
            profile = {
                "events": self.profiler.events,
                "max_heap_depth": self.profiler.max_heap_depth,
                "callbacks": [
                    [name, count] for name, count in self.profiler.count_rows()
                ],
            }
        return TelemetryExport(
            meta=meta,
            counters=reg.counter_values(),
            series=series,
            histograms=histograms,
            profile=profile,
        )
