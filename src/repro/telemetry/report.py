"""Human-readable run reports: the `report` CLI's rendering layer.

Takes a :class:`TelemetryExport` (live or re-loaded from a JSONL
file) and renders the run's timeline with the same ASCII plotting the
figure modules use — throughput per flow class, buffer occupancy,
cumulative PFC/drop counters, histograms, and the engine profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.stats.asciiplot import line_chart
from repro.telemetry.export import TelemetryExport
from repro.telemetry.profile import EngineProfiler


def _as_ms(points: Sequence[Sequence[float]]) -> List[Tuple[float, float]]:
    return [(t / 1_000_000.0, v) for t, v in points]


def _chart_block(
    title: str,
    series: Dict[str, List[Tuple[float, float]]],
    y_label: str,
    width: int,
) -> List[str]:
    lines = [f"--- {title} " + "-" * max(0, width - len(title) - 5)]
    lines.append(
        line_chart(series, width=width, height=12, x_label="time (ms)",
                   y_label=y_label)
    )
    return lines


def _bin_quantile(bins: Sequence[Sequence[int]], q: float) -> int:
    """Upper edge of the bin holding the ``q``-quantile (0..1)."""
    total = sum(count for _, count in bins)
    target = q * total
    seen = 0
    for edge, count in bins:
        seen += count
        if seen >= target:
            return edge
    return bins[-1][0]


def _slo_block(export: TelemetryExport, width: int) -> List[str]:
    """Request-level SLOs, rendered only when rpc telemetry is present.

    The export carries the raw power-of-two latency bins, so the
    quantiles here are bin upper edges — coarse but deterministic and
    computable offline from the JSONL file alone.
    """
    hist = next(
        (h for h in export.histograms if h["name"] == "rpc_latency_ns"), None
    )
    if hist is None:
        return []
    lines = ["--- request-level SLOs " + "-" * max(0, width - 23)]
    bins = hist["bins"]
    if not bins:
        lines.append("  (no completed requests)")
        return lines
    for label, q in (("p50", 0.50), ("p99", 0.99), ("p999", 0.999)):
        edge = _bin_quantile(bins, q)
        lines.append(f"  {label:<5s} <= {edge / 1000.0:>12,.1f} us")
    lines.append(
        f"  n={hist['total']:,}  mean={hist['sum'] / hist['total'] / 1000.0:,.1f} us"
    )
    completed = next(
        (v for n, _, v in export.counters if n == "rpc.requests_completed"),
        None,
    )
    sim_ns = export.meta.get("sim_time_ns", 0)
    if completed is not None and sim_ns:
        rate = completed / (sim_ns / 1e9)
        lines.append(f"  achieved {rate:,.0f} requests/s (simulated time)")
    return lines


def _hist_block(hist: Dict, width: int) -> List[str]:
    name, bins = hist["name"], hist["bins"]
    lines = [f"--- histogram {name} ({hist['unit']}) " + "-" * 8]
    if not bins:
        lines.append("(no observations)")
        return lines
    peak = max(count for _, count in bins)
    for edge, count in bins:
        bar = "#" * max(1, int(count / peak * (width - 28)))
        lines.append(f"  <= {edge:>12,d}  {count:>8,d} {bar}")
    lines.append(
        f"  n={hist['total']:,}  mean={hist['sum'] / hist['total']:,.0f}"
        f"  min={hist['min']:,}  max={hist['max']:,}"
    )
    return lines


def render_export(
    export: TelemetryExport,
    width: int = 72,
    profiler: Optional[EngineProfiler] = None,
) -> str:
    """Render every section of an export as one terminal page.

    ``profiler`` (only available on a live run) adds the wall-clock
    time-share half of the engine profile; the export alone carries
    the deterministic half.
    """
    meta = export.meta
    out: List[str] = []
    out.append(
        "run: "
        + "  ".join(
            f"{k}={meta[k]}"
            for k in ("topology", "cc", "flow_control", "workload", "seed")
            if k in meta
        )
    )
    if "sim_time_ns" in meta:
        out.append(
            f"sim time {meta['sim_time_ns'] / 1e6:.3f} ms, "
            f"{meta.get('events', 0):,} events"
        )

    rate = {
        s["name"].split(".", 1)[1]: _as_ms(s["points"])
        for s in export.series_prefixed("rx_gbps.")
        if s["points"] and any(v > 0 for _, v in s["points"])
    }
    if rate:
        out += _chart_block("throughput by flow class", rate, "Gbps", width)

    total = export.series_named("buffer_bytes.total")
    if total is not None and total["points"]:
        buf = {"total": [(t, v / 1000.0) for t, v in _as_ms(total["points"])]}
        # the busiest individual switch gives the hotspot view
        per_switch = [
            s
            for s in export.series_prefixed("buffer_bytes.")
            if s["name"] != "buffer_bytes.total" and s["points"]
        ]
        if per_switch:
            hottest = max(
                per_switch, key=lambda s: max(v for _, v in s["points"])
            )
            buf[hottest["name"].split(".", 1)[1]] = [
                (t, v / 1000.0) for t, v in _as_ms(hottest["points"])
            ]
        out += _chart_block("buffer occupancy", buf, "KB", width)

    cum = {
        s["name"]: _as_ms(s["points"])
        for s in export.series
        if s["name"] in ("pfc_pause_events", "packets_dropped")
        and s["points"]
        and any(v > 0 for _, v in s["points"])
    }
    if cum:
        out += _chart_block("cumulative events", cum, "count", width)

    out += _slo_block(export, width)

    for hist in export.histograms:
        out += _hist_block(hist, width)

    nonzero = [(n, u, v) for n, u, v in export.counters if v]
    if nonzero:
        out.append("--- counters " + "-" * (width - 13))
        name_w = max(len(n) for n, _, _ in nonzero)
        for name, unit, value in nonzero:
            out.append(f"  {name:<{name_w}s}  {value:>14,d} {unit}")

    if export.profile is not None:
        prof = export.profile
        out.append("--- engine profile " + "-" * (width - 19))
        out.append(
            f"  events {prof['events']:,}   "
            f"max heap depth {prof['max_heap_depth']:,}"
        )
        if profiler is not None:
            out.append("")
            out.append(profiler.report())
        else:
            for name, count in prof["callbacks"][:12]:
                out.append(f"  {name:<44s} {count:>10,d}")

    return "\n".join(out)
