"""Per-domain telemetry shards with a deterministic domain-order merge.

The serial :class:`~repro.telemetry.recorder.TelemetryRecorder` reads
whole-fabric surfaces (the shared :class:`StatsHub`, every host's rx
gauge, every switch's buffer gauge).  Under the sharded engine those
reads would cross domain boundaries — exactly the SIM008 pattern the
shard-safety lints reject — so a sharded run wires one
:class:`DomainTelemetry` per domain instead.  Each domain samples only
state it owns (its hub shard, its hosts, its switches), recording *raw
cumulative integers* rather than derived rates; the merge then
reproduces, byte for byte, what the serial recorder would have
exported:

* rate series (``rx_gbps.*``): per-timestamp sums of the per-domain
  integer cumulatives equal the serial counter reads (every domain
  ticks at the same instants, and the conservative-window invariant
  means each domain's tick observes exactly the serial cut of its own
  state), so differentiating the summed series replays the serial
  float arithmetic on identical integers;
* gauge sums (``buffer_bytes.total``, counter series): per-timestamp
  integer sums across domains;
* single-owner gauges (``buffer_bytes.<switch>``): recorded by exactly
  one domain and passed through verbatim.

Histograms live on the per-domain hub shards and merge exactly
(power-of-two bins); end-of-run counters re-run the serial harvest
arithmetic on merged inputs (sums and maxima commute).  The engine
profile is the one deliberately non-identical surface: a sharded run
executes extra observer ticks and per-domain heaps have different
depths, so the equivalence harness strips it before comparing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.stats.collector import FlowClass
from repro.telemetry.export import TelemetryExport
from repro.telemetry.profile import EngineProfiler
from repro.telemetry.registry import TelemetryConfig, TelemetryRegistry
from repro.telemetry.samplers import GaugeSampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.stats.collector import StatsHub

#: merge rules for raw per-domain series
KIND_RATE = "rate"  # per-timestamp int sum, then differentiate
KIND_SUM = "sum"    # per-timestamp int sum
KIND_ONE = "one"    # recorded by exactly one domain; pass through


class _CumulativeSampler(GaugeSampler):
    """Records raw monotone counter values for a post-run rate merge.

    The serial :class:`RateSampler` differentiates at tick time; a
    domain shard cannot (its counter is only one summand of the serial
    value), so it records the raw cumulative and keeps the baseline the
    serial sampler would have subtracted at ``start()``.
    """

    def __init__(
        self,
        sim: "Simulator",
        sources: Dict[str, Callable[[], int]],
        interval: int,
        scale: float = 1.0,
        unit: str = "",
    ) -> None:
        super().__init__(sim, sources, interval, unit)
        self.scale = scale
        self.baseline: Dict[str, int] = {name: 0 for name in sources}
        self.start_time = 0

    def start(self) -> None:
        for name, fn in self.sources.items():
            self.baseline[name] = fn()
        self.start_time = self.sim.now
        super().start()


class DomainTelemetry:
    """One domain's samplers, hub histograms, and engine profiler.

    Mirrors the serial recorder's wiring order (throughput, buffers,
    counters, histograms, profiler) restricted to the devices and hub
    shard the domain owns, so per-domain event schedules stay a
    restriction of the serial schedule.
    """

    def __init__(
        self,
        domain: int,
        sim: "Simulator",
        cfg: TelemetryConfig,
        hub: "StatsHub",
        hosts: list,
        switches: list,
    ) -> None:
        self.domain = domain
        self.cfg = cfg
        #: (kind, sampler) in wiring order
        self._samplers: List[Tuple[Dict[str, str], GaugeSampler]] = []

        if cfg.throughput:
            sources: Dict[str, Callable[[], int]] = {
                f"rx_gbps.{cls.value}": (
                    lambda s=hub, c=cls: s.rx_bytes_of_class(c)
                )
                for cls in FlowClass
            }
            host_rx = tuple(
                h.telemetry_gauges()["rx_data_bytes"] for h in hosts
            )
            sources["rx_gbps.total"] = lambda fns=host_rx: sum(
                f() for f in fns
            )
            kinds = {name: KIND_RATE for name in sources}
            self._samplers.append(
                (
                    kinds,
                    _CumulativeSampler(
                        sim, sources, cfg.interval, scale=8.0, unit="gbps"
                    ),
                )
            )

        if cfg.buffers:
            gauges: Dict[str, Callable[[], int]] = {}
            kinds = {}
            reads = []
            for sw in switches:
                fn = sw.telemetry_gauges()["buffer_bytes"]
                gauges[f"buffer_bytes.{sw.name}"] = fn
                kinds[f"buffer_bytes.{sw.name}"] = KIND_ONE
                reads.append(fn)
            gauges["buffer_bytes.total"] = lambda fns=tuple(reads): sum(
                f() for f in fns
            )
            kinds["buffer_bytes.total"] = KIND_SUM
            self._samplers.append(
                (kinds, GaugeSampler(sim, gauges, cfg.interval, unit="bytes"))
            )

        if cfg.counters:
            counter_sources = {
                "pfc_pause_events": lambda s=hub: s.pfc_pause_events,
                "packets_dropped": lambda s=hub: s.packets_dropped,
            }
            self._samplers.append(
                (
                    {name: KIND_SUM for name in counter_sources},
                    GaugeSampler(sim, counter_sources, cfg.interval, unit="count"),
                )
            )

        if cfg.histograms:
            # fresh per-domain instances: the hot path records into the
            # domain's own histogram, StatsHub.merge_from folds them
            from repro.telemetry.registry import Histogram

            hub.fct_histogram = Histogram("fct_ns", unit="ns")
            hub.queuing_histogram = Histogram("queuing_ns", unit="ns")

        self.profiler: Optional[EngineProfiler] = (
            EngineProfiler() if cfg.engine_profile else None
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for _, sampler in self._samplers:
            sampler.start()

    def stop(self) -> None:
        for _, sampler in self._samplers:
            sampler.stop()

    # -- raw payload (picklable; crosses the process-mode pipe) --------------

    def raw_series(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for kinds, sampler in self._samplers:
            for name in sampler.samples:
                out.append(
                    {
                        "kind": kinds[name],
                        "name": name,
                        "unit": sampler.unit,
                        "scale": getattr(sampler, "scale", 1.0),
                        "baseline": getattr(sampler, "baseline", {}).get(name, 0),
                        "start_time": getattr(sampler, "start_time", 0),
                        "points": sampler.samples[name],
                    }
                )
        return out

    def raw_profile(self) -> Optional[Dict[str, Any]]:
        p = self.profiler
        if p is None:
            return None
        return {
            "events": p.events,
            "max_heap_depth": p.max_heap_depth,
            "counts": dict(p.counts),
        }


# ---------------------------------------------------------------------------
# merging
# ---------------------------------------------------------------------------


def _check_aligned(name: str, columns: List[List[Tuple[int, int]]]) -> None:
    times = [[t for t, _ in col] for col in columns]
    if any(ts != times[0] for ts in times[1:]):
        raise AssertionError(
            f"telemetry shard misalignment on series {name!r}: domains "
            "sampled at different instants (executor barrier bug)"
        )


def merge_raw_series(per_domain: List[List[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    """Merge per-domain raw series into serial-identical export series.

    ``per_domain`` is indexed by domain; merge order is domain order,
    but every rule here (sum, pass-through, differentiate-after-sum) is
    order-independent, so the output is a function of content only.
    """
    by_name: Dict[str, List[Dict[str, Any]]] = {}
    order: List[str] = []
    for series_list in per_domain:
        for rec in series_list:
            if rec["name"] not in by_name:
                by_name[rec["name"]] = []
                order.append(rec["name"])
            by_name[rec["name"]].append(rec)
    out = []
    for name in sorted(order):
        recs = by_name[name]
        kind = recs[0]["kind"]
        unit = recs[0]["unit"]
        if kind == KIND_ONE:
            if len(recs) != 1:
                raise AssertionError(
                    f"single-owner series {name!r} recorded by "
                    f"{len(recs)} domains"
                )
            points = [[t, v] for t, v in recs[0]["points"]]
        elif kind == KIND_SUM:
            cols = [rec["points"] for rec in recs]
            _check_aligned(name, cols)
            points = [
                [cols[0][i][0], sum(col[i][1] for col in cols)]
                for i in range(len(cols[0]))
            ]
        else:  # KIND_RATE: sum the cumulatives, then differentiate
            cols = [rec["points"] for rec in recs]
            _check_aligned(name, cols)
            scale = recs[0]["scale"]
            last = sum(rec["baseline"] for rec in recs)
            last_time = recs[0]["start_time"]
            points = []
            for i in range(len(cols[0])):
                now = cols[0][i][0]
                elapsed = now - last_time
                if elapsed <= 0:
                    continue  # mirror RateSampler's same-instant guard
                current = sum(col[i][1] for col in cols)
                points.append([now, (current - last) * scale / elapsed])
                last = current
                last_time = now
        out.append({"name": name, "unit": unit, "points": points})
    return out


def merge_raw_profiles(
    profiles: List[Optional[Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """Fold per-domain engine profiles (sums/maxima; NOT serial-equal).

    A sharded run executes one observer tick *per domain* per sampler
    interval and each domain heap is shallower than the serial heap, so
    this profile describes the sharded execution itself.  The
    equivalence harness strips profiles before byte comparison.
    """
    live = [p for p in profiles if p is not None]
    if not live:
        return None
    counts: Dict[str, int] = {}
    events = 0
    depth = 0
    for p in live:
        events += p["events"]
        if p["max_heap_depth"] > depth:
            depth = p["max_heap_depth"]
        for cb_name, count in p["counts"].items():
            counts[cb_name] = counts.get(cb_name, 0) + count
    rows = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return {
        "events": events,
        "max_heap_depth": depth,
        "callbacks": [[cb_name, count] for cb_name, count in rows],
    }


def merge_ext_harvests(
    registry: TelemetryRegistry, harvests: List[Dict[str, int]]
) -> None:
    """Apply extension counter dicts with the serial max/sum rule."""
    for harvest in harvests:
        for name, value in harvest.items():
            if name.endswith("max_in_use"):
                counter = registry.counter(f"floodgate.{name}")
                if value > counter.value:
                    counter.value = value
            else:
                registry.counter(f"floodgate.{name}").inc(value)


def build_shard_export(
    config,
    cfg: TelemetryConfig,
    sim_time_ns: int,
    events: int,
    hub: "StatsHub",
    flows_completed: int,
    flows_total: int,
    retransmissions: int,
    rpc_counts: Optional[Tuple[int, int]],
    ext_harvests: List[Dict[str, int]],
    series: List[Dict[str, Any]],
    profile: Optional[Dict[str, Any]],
) -> TelemetryExport:
    """Assemble the export exactly as the serial recorder would.

    ``hub`` is the merged parent hub; the remaining scalars are the
    merged equivalents of what the serial harvest reads off the live
    scenario (each a sum or max of per-domain values, so the arithmetic
    lands on identical integers).
    """
    reg = TelemetryRegistry()
    if cfg.counters:
        reg.counter("flows.completed").value = flows_completed
        reg.counter("flows.total").value = flows_total
        reg.counter("drops.congestion").value = hub.packets_dropped
        reg.counter("drops.fault_data").value = hub.fault_drops["data"]
        reg.counter("drops.fault_ctrl").value = hub.fault_drops["ctrl"]
        reg.counter("rx.corrupt").value = hub.corrupt_rx
        reg.counter("control.unclaimed").value = hub.unclaimed_control_frames
        reg.counter("pfc.pause_events").value = hub.pfc_pause_events
        reg.counter("stalls").value = hub.stall_events
        for kind in sorted(hub.pfc_paused_time):
            reg.counter(f"pfc.paused_ns.{kind}", unit="ns").value = (
                hub.pfc_paused_time[kind]
            )
        reg.counter("retransmissions").value = retransmissions
        if rpc_counts is not None:
            reg.counter("rpc.requests_issued").value = rpc_counts[0]
            reg.counter("rpc.requests_completed").value = rpc_counts[1]
        merge_ext_harvests(reg, ext_harvests)
    histograms = []
    for hist in (hub.fct_histogram, hub.queuing_histogram, hub.rpc_histogram):
        if hist is not None:
            histograms.append(hist)
    histograms.sort(key=lambda h: h.name)
    return TelemetryExport(
        meta={
            "sim_time_ns": sim_time_ns,
            "events": events,
            "interval_ns": cfg.interval,
            "seed": config.seed,
            "topology": config.topology,
            "cc": config.cc,
            "flow_control": config.flow_control,
            "workload": config.workload,
        },
        counters=reg.counter_values(),
        series=series,
        histograms=[
            {
                "name": h.name,
                "unit": h.unit,
                "bins": [[edge, count] for edge, count in h.bins()],
                "total": h.total,
                "sum": h.sum,
                "min": h.min,
                "max": h.max,
            }
            for h in histograms
        ],
        profile=profile,
    )
