"""Host congestion control: DCQCN, TIMELY, HPCC, and the flow model.

Each algorithm reimplements the control law from its paper.  Following
Floodgate's methodology (§6), every host also enforces a per-flow
sending window (one BDP by default) that models the first-RTT behaviour
of production RoCE stacks.
"""

from repro.cc.flow import Flow
from repro.cc.base import CcAlgorithm, StaticWindowCc
from repro.cc.dcqcn import Dcqcn, DcqcnConfig
from repro.cc.dctcp import Dctcp, DctcpConfig
from repro.cc.timely import Timely, TimelyConfig
from repro.cc.hpcc import Hpcc, HpccConfig

__all__ = [
    "Flow",
    "CcAlgorithm",
    "StaticWindowCc",
    "Dcqcn",
    "DcqcnConfig",
    "Dctcp",
    "DctcpConfig",
    "Timely",
    "TimelyConfig",
    "Hpcc",
    "HpccConfig",
]
