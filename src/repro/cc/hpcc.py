"""HPCC (Li et al., SIGCOMM '19).

Window-based congestion control driven by in-band network telemetry.
Every data packet collects an :class:`~repro.net.packet.IntRecord` per
hop; the ACK echoes the stack back.  The sender estimates each hop's
utilization

    U_j = qlen_j / (B_j * T) + txRate_j / B_j

(using consecutive INT samples to differentiate ``txBytes`` into
``txRate``), takes the max across hops, and sets

    W = W_c / (U / eta) + W_ai      if U >= eta or incStage >= maxStage
    W = W_c + W_ai                   otherwise (additive probe)

with the reference window ``W_c`` updated once per RTT.  Pacing rate is
``W / base_rtt``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.cc.base import CcAlgorithm
from repro.cc.flow import Flow
from repro.net.packet import IntRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet


@dataclass(frozen=True)
class HpccConfig:
    """HPCC parameters (defaults per the paper)."""

    base_rtt: int
    eta: float = 0.95
    max_stage: int = 5
    #: additive increment as a fraction of BDP
    wai_fraction: float = 0.01
    min_window_bytes: int = 1_000


class Hpcc(CcAlgorithm):
    """HPCC sender."""

    name = "hpcc"
    needs_int = True

    def __init__(
        self,
        line_rate: float,
        swnd_bytes: int,
        config: HpccConfig,
    ) -> None:
        super().__init__(line_rate, swnd_bytes)
        self.config = config
        #: one-BDP window: the paper's W_init
        self.w_init = int(line_rate * config.base_rtt / (8 * 1_000_000_000))
        self.w_init = max(self.w_init, config.min_window_bytes)
        self.w_ai = max(1, int(self.w_init * config.wai_fraction))

    def on_flow_start(self, flow: Flow, now: int) -> None:
        cc = flow.cc
        cc.window = min(self.w_init, self.swnd_bytes)
        cc.w_c = cc.window
        cc.inc_stage = 0
        cc.last_update_seq = 0
        cc.last_int: Optional[List[IntRecord]] = None
        self._apply(flow)

    def on_ack(self, flow: Flow, pkt: "Packet", now: int) -> None:
        records = pkt.int_records
        if not records:
            return
        cc = flow.cc
        u = self._max_utilization(cc.last_int, records)
        cc.last_int = records
        if u is None:
            return
        eta = self.config.eta
        if u >= eta or cc.inc_stage >= self.config.max_stage:
            cc.window = max(
                self.config.min_window_bytes,
                int(cc.w_c / (u / eta)) + self.w_ai,
            )
            if pkt.seq >= cc.last_update_seq:
                # once per RTT: move the reference window
                cc.w_c = cc.window
                cc.inc_stage = 0
                cc.last_update_seq = flow.next_seq
        else:
            cc.window = cc.w_c + self.w_ai
            if pkt.seq >= cc.last_update_seq:
                cc.inc_stage += 1
                cc.w_c = cc.window
                cc.last_update_seq = flow.next_seq
        cc.window = min(cc.window, self.swnd_bytes)
        self._apply(flow)

    def on_timeout(self, flow: Flow, now: int) -> None:
        cc = flow.cc
        cc.window = max(self.config.min_window_bytes, cc.window // 2)
        cc.w_c = cc.window
        self._apply(flow)

    # -- internals ---------------------------------------------------------------

    def _apply(self, flow: Flow) -> None:
        """Project the window onto the host's (rate, cwnd) knobs."""
        cc = flow.cc
        flow.cwnd_bytes = cc.window
        flow.rate = min(
            self.line_rate,
            max(
                self.line_rate * 0.001,
                cc.window * 8 * 1_000_000_000 / self.config.base_rtt,
            ),
        )

    def _max_utilization(
        self,
        prev: Optional[List[IntRecord]],
        curr: List[IntRecord],
    ) -> Optional[float]:
        """Max per-hop utilization across the INT stack, or None."""
        if prev is None or len(prev) != len(curr):
            return None
        u_max = 0.0
        t = self.config.base_rtt
        for p, c in zip(prev, curr, strict=True):
            dt = c.timestamp - p.timestamp
            if dt <= 0:
                continue
            tx_rate = (c.tx_bytes - p.tx_bytes) * 8 * 1_000_000_000 / dt
            u = (min(p.qlen, c.qlen) * 8) / (c.bandwidth * t / 1_000_000_000) + (
                tx_rate / c.bandwidth
            )
            if u > u_max:
                u_max = u
        return u_max if u_max > 0 else None
