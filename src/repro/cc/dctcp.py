"""DCTCP (Alizadeh et al., SIGCOMM '10).

The original ECN-fraction congestion control the paper lists among the
reactive protocols (§2.3).  Window-based:

* the receiver echoes ECN marks on ACKs (our ACKs carry the data
  packet's mark bit via the CNP-less ``ecn_echo`` convention below);
* once per RTT the sender updates ``alpha = (1-g) alpha + g F`` where
  ``F`` is the marked fraction of that window, and on any mark cuts
  ``cwnd *= 1 - alpha/2``;
* unmarked windows grow additively (one MSS per RTT, slow-start
  omitted as flows start at line rate per the paper's methodology).

Included beyond the paper's three evaluated protocols because §8's
compatibility discussion names DCTCP explicitly — it lets users check
the "compatible with different congestion control" claim directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cc.base import CcAlgorithm
from repro.cc.flow import Flow
from repro.units import MTU

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet


@dataclass(frozen=True)
class DctcpConfig:
    """DCTCP parameters (defaults per the paper)."""

    base_rtt: int
    g: float = 1.0 / 16.0
    min_window_bytes: int = MTU


class Dctcp(CcAlgorithm):
    """DCTCP sender."""

    name = "dctcp"

    def __init__(
        self,
        line_rate: float,
        swnd_bytes: int,
        config: DctcpConfig,
    ) -> None:
        super().__init__(line_rate, swnd_bytes)
        self.config = config

    def on_flow_start(self, flow: Flow, now: int) -> None:
        cc = flow.cc
        cc.window = self.swnd_bytes
        cc.alpha = 0.0
        cc.acked_in_window = 0
        cc.marked_in_window = 0
        # -1: the observation-window boundary is pinned lazily on the
        # first ACK, once we know how much was actually outstanding
        cc.window_end_seq = -1
        self._apply(flow)

    def on_ack(self, flow: Flow, pkt: "Packet", now: int) -> None:
        cc = flow.cc
        if cc.window_end_seq < 0:
            cc.window_end_seq = flow.next_seq
        cc.acked_in_window += 1
        if pkt.ecn_marked:
            cc.marked_in_window += 1
        if pkt.seq >= cc.window_end_seq:
            # one RTT's worth of ACKs observed: update alpha + window
            if cc.acked_in_window > 0:
                fraction = cc.marked_in_window / cc.acked_in_window
                g = self.config.g
                cc.alpha = (1.0 - g) * cc.alpha + g * fraction
                if cc.marked_in_window > 0:
                    cc.window = max(
                        self.config.min_window_bytes,
                        int(cc.window * (1.0 - cc.alpha / 2.0)),
                    )
                else:
                    cc.window = min(
                        self.swnd_bytes, cc.window + flow.mtu
                    )
            cc.acked_in_window = 0
            cc.marked_in_window = 0
            cc.window_end_seq = flow.next_seq
            self._apply(flow)

    def on_timeout(self, flow: Flow, now: int) -> None:
        cc = flow.cc
        cc.window = max(self.config.min_window_bytes, cc.window // 2)
        self._apply(flow)

    def _apply(self, flow: Flow) -> None:
        cc = flow.cc
        flow.cwnd_bytes = cc.window
        flow.rate = min(
            self.line_rate,
            max(
                self.line_rate * 0.001,
                cc.window * 8 * 1e9 / self.config.base_rtt,
            ),
        )
