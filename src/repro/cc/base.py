"""Congestion-control algorithm interface.

One algorithm instance serves all flows of a host; per-flow state lives
in ``flow.cc`` (a namespace) so algorithms stay stateless and cheap to
construct.  The host calls the hooks; the algorithm manipulates
``flow.rate`` (pacing, bits/s) and ``flow.cwnd_bytes`` (in-flight cap).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cc.flow import Flow

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet


class CcAlgorithm:
    """Base class: a fixed-rate, fixed-window 'null' controller."""

    #: human-readable name used in experiment labels
    name = "static"

    def __init__(self, line_rate: float, swnd_bytes: int) -> None:
        #: host NIC line rate, bits/s
        self.line_rate = line_rate
        #: the per-flow sending window the paper adds to every protocol
        self.swnd_bytes = swnd_bytes

    # -- lifecycle hooks -------------------------------------------------------------

    def on_flow_start(self, flow: Flow, now: int) -> None:
        """Initialize ``flow.rate`` / ``flow.cwnd_bytes`` (line rate start)."""
        flow.rate = self.line_rate
        flow.cwnd_bytes = self.swnd_bytes

    def on_ack(self, flow: Flow, pkt: "Packet", now: int) -> None:
        """An ACK arrived (``pkt.seq`` = cumulative next expected)."""

    def on_cnp(self, flow: Flow, now: int) -> None:
        """A DCQCN congestion notification arrived."""

    def on_timeout(self, flow: Flow, now: int) -> None:
        """Retransmission timeout fired."""


class StaticWindowCc(CcAlgorithm):
    """Line-rate sender limited only by the per-flow sending window.

    This is the transport the testbed experiment uses ("a per-flow
    sending window on hosts is added to emulate the first-RTT actions",
    §5.2) and a useful control when isolating Floodgate's contribution.
    """

    name = "static-window"
