"""TIMELY (Mittal et al., SIGCOMM '15).

RTT-gradient congestion control.  Each ACK carries an RTT sample; the
algorithm maintains an EWMA of the RTT *difference*, normalizes it by
the minimum RTT, and:

* below ``t_low``  -> additive increase (delta);
* above ``t_high`` -> multiplicative decrease toward ``t_high``;
* otherwise        -> gradient tracking: negative gradient increases
  additively (with hyper-active increase after five consecutive
  negative samples), positive gradient decreases multiplicatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cc.base import CcAlgorithm
from repro.cc.flow import Flow

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet


@dataclass(frozen=True)
class TimelyConfig:
    """TIMELY parameters.

    ``t_low``/``t_high`` default to multiples of the base (unloaded)
    RTT, which keeps the controller meaningful across the scaled-down
    topologies this reproduction runs on.
    """

    base_rtt: int
    t_low: int = 0      # 0 -> derived: 1.5x base RTT
    t_high: int = 0     # 0 -> derived: 5x base RTT
    ewma_alpha: float = 0.46
    beta: float = 0.8
    #: additive step as a fraction of line rate
    delta_fraction: float = 0.01
    min_rate_fraction: float = 0.002
    hai_threshold: int = 5

    def resolved_t_low(self) -> int:
        return self.t_low if self.t_low > 0 else int(self.base_rtt * 1.5)

    def resolved_t_high(self) -> int:
        return self.t_high if self.t_high > 0 else int(self.base_rtt * 5)


class Timely(CcAlgorithm):
    """TIMELY rate controller."""

    name = "timely"

    def __init__(
        self,
        line_rate: float,
        swnd_bytes: int,
        config: TimelyConfig,
    ) -> None:
        super().__init__(line_rate, swnd_bytes)
        self.config = config
        self.delta = line_rate * config.delta_fraction
        self.min_rate = line_rate * config.min_rate_fraction
        self.t_low = config.resolved_t_low()
        self.t_high = config.resolved_t_high()

    def on_flow_start(self, flow: Flow, now: int) -> None:
        flow.rate = self.line_rate
        flow.cwnd_bytes = self.swnd_bytes
        cc = flow.cc
        cc.prev_rtt = 0
        cc.rtt_diff_ewma = 0.0
        cc.neg_gradient_count = 0

    def on_ack(self, flow: Flow, pkt: "Packet", now: int) -> None:
        if pkt.echo_time <= 0:
            return
        rtt = now - pkt.echo_time
        cc = flow.cc
        if cc.prev_rtt == 0:
            cc.prev_rtt = rtt
            return
        rtt_diff = rtt - cc.prev_rtt
        cc.prev_rtt = rtt
        a = self.config.ewma_alpha
        cc.rtt_diff_ewma = (1.0 - a) * cc.rtt_diff_ewma + a * rtt_diff
        gradient = cc.rtt_diff_ewma / self.config.base_rtt

        if rtt < self.t_low:
            cc.neg_gradient_count = 0
            flow.rate = min(self.line_rate, flow.rate + self.delta)
            return
        if rtt > self.t_high:
            cc.neg_gradient_count = 0
            factor = 1.0 - self.config.beta * (1.0 - self.t_high / rtt)
            flow.rate = max(self.min_rate, flow.rate * factor)
            return
        if gradient <= 0:
            cc.neg_gradient_count += 1
            n = 5 if cc.neg_gradient_count >= self.config.hai_threshold else 1
            flow.rate = min(self.line_rate, flow.rate + n * self.delta)
        else:
            cc.neg_gradient_count = 0
            factor = 1.0 - self.config.beta * gradient
            flow.rate = max(self.min_rate, flow.rate * max(factor, 0.1))

    def on_timeout(self, flow: Flow, now: int) -> None:
        flow.rate = max(self.min_rate, flow.rate / 2.0)
