"""The flow abstraction shared by senders, receivers, and CC modules.

A flow is a one-way transfer of ``size`` bytes from ``src`` to ``dst``,
segmented into MTU-sized packets.  Sequence numbers count packets;
reliability is go-back-N (the RoCE model): the receiver delivers only
in-order packets and NACKs on a gap, the sender rewinds.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Optional

from repro.sim.engine import Event
from repro.sim.process import Timer
from repro.units import MTU


class Flow:
    """State for one transfer, shared between the two endpoint hosts."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size",
        "start_time",
        "mtu",
        "n_packets",
        # sender state
        "next_seq",
        "acked_seq",
        "rate",
        "cwnd_bytes",
        "next_send_time",
        "send_event",
        "rto_timer",
        "last_nack_seq",
        "cc",
        "sender_done",
        "retransmitted_packets",
        "fluid_src",
        # receiver state
        "expected_seq",
        "delivered_bytes",
        "finish_time",
        "last_cnp_time",
        "last_nack_time",
        "acks_received",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        size: int,
        start_time: int = 0,
        mtu: int = MTU,
    ) -> None:
        if size <= 0:
            raise ValueError(f"flow size must be positive, got {size}")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.start_time = start_time
        self.mtu = mtu
        self.n_packets = -(-size // mtu)  # ceil division
        # -- sender ------------------------------------------------------------
        self.next_seq = 0
        self.acked_seq = 0          # cumulative: packets known delivered
        self.rate: float = 0.0      # pacing rate, bits/s (set by CC)
        self.cwnd_bytes: int = 1 << 60  # in-flight cap (set by CC / swnd)
        self.next_send_time = 0
        self.send_event: Optional[Event] = None
        self.rto_timer: Optional[Timer] = None
        self.last_nack_seq = -1
        #: per-algorithm scratch space (alpha, stages, RTT history, ...)
        self.cc = SimpleNamespace()
        self.sender_done = False
        self.retransmitted_packets = 0
        #: hybrid-fidelity marker: the "sender" is a fluid-tier boundary
        #: injector, not a packet host, so the receiver must not emit
        #: end-to-end control (ACK/NACK/CNP) toward it (repro.hybrid)
        self.fluid_src = False
        # -- receiver -----------------------------------------------------------
        self.expected_seq = 0
        self.delivered_bytes = 0
        self.finish_time = -1
        self.last_cnp_time = -(1 << 60)
        self.last_nack_time = -(1 << 60)
        self.acks_received = 0

    # -- sequence/geometry helpers -----------------------------------------------

    def packet_size(self, seq: int) -> int:
        """Payload bytes of packet ``seq`` (the tail packet may be short)."""
        if seq < 0 or seq >= self.n_packets:
            raise ValueError(f"seq {seq} out of range for {self.n_packets} packets")
        if seq == self.n_packets - 1:
            return self.size - (self.n_packets - 1) * self.mtu
        return self.mtu

    @property
    def inflight_bytes(self) -> int:
        """Bytes sent but not yet cumulatively acknowledged."""
        if self.next_seq <= self.acked_seq:
            return 0
        full = (self.next_seq - self.acked_seq) * self.mtu
        if self.next_seq == self.n_packets:
            # the tail packet may be short
            full -= self.mtu - self.packet_size(self.n_packets - 1)
        return full

    @property
    def all_sent(self) -> bool:
        return self.next_seq >= self.n_packets

    @property
    def all_acked(self) -> bool:
        return self.acked_seq >= self.n_packets

    @property
    def receiver_done(self) -> bool:
        return self.delivered_bytes >= self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flow {self.flow_id} {self.src}->{self.dst} size={self.size} "
            f"sent={self.next_seq}/{self.n_packets} acked={self.acked_seq}>"
        )
