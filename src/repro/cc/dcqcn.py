"""DCQCN (Zhu et al., SIGCOMM '15).

Sender-side reaction point, faithful to the published control law:

* on CNP: ``Rt = Rc``, ``Rc *= (1 - alpha/2)``, ``alpha = (1-g)alpha + g``,
  and the rate-increase state machine resets;
* alpha decays by ``(1-g)`` every ``tau`` without a CNP;
* rate increases are driven by a timer and a byte counter through the
  fast-recovery, additive-increase, and hyper-increase stages.

The notification point (receiver) lives in the host: it emits at most
one CNP per ``cnp_interval`` per flow upon ECN-marked arrivals, as the
RoCE NIC does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cc.base import CcAlgorithm
from repro.cc.flow import Flow
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet


@dataclass(frozen=True)
class DcqcnConfig:
    """DCQCN parameters (defaults follow the paper / NS-3 model)."""

    g: float = 1.0 / 256.0
    #: alpha-decay period, ns
    alpha_timer: int = us(55)
    #: rate-increase timer period, ns
    increase_timer: int = us(55)
    #: byte counter for rate increase (bytes); the classic 10 MB scaled
    #: relative to line rate is applied in :meth:`Dcqcn.byte_counter`
    byte_counter_ms: float = 2.0
    #: fast-recovery stage threshold
    f: int = 5
    #: additive increase step as a fraction of line rate
    rai_fraction: float = 0.005
    #: hyper increase step as a fraction of line rate
    rhai_fraction: float = 0.05
    #: rate floor as a fraction of line rate
    min_rate_fraction: float = 0.002
    #: minimum gap between CNPs for one flow (receiver side), ns
    cnp_interval: int = us(50)


class Dcqcn(CcAlgorithm):
    """DCQCN reaction point."""

    name = "dcqcn"

    def __init__(
        self,
        line_rate: float,
        swnd_bytes: int,
        config: DcqcnConfig | None = None,
    ) -> None:
        super().__init__(line_rate, swnd_bytes)
        self.config = config or DcqcnConfig()
        self.rai = line_rate * self.config.rai_fraction
        self.rhai = line_rate * self.config.rhai_fraction
        self.min_rate = line_rate * self.config.min_rate_fraction
        # byte counter: bytes the flow must send between byte-triggered
        # increases; expressed as `byte_counter_ms` worth of line rate.
        self.byte_counter = int(line_rate * self.config.byte_counter_ms / 8_000.0)

    # -- hooks -------------------------------------------------------------------

    def on_flow_start(self, flow: Flow, now: int) -> None:
        flow.rate = self.line_rate
        flow.cwnd_bytes = self.swnd_bytes
        cc = flow.cc
        cc.rt = self.line_rate          # target rate
        cc.alpha = 1.0
        cc.last_cnp = -1
        cc.last_alpha_update = now
        cc.last_increase = now
        cc.bytes_since_increase = 0
        cc.t_stage = 0                  # timer-triggered increase events
        cc.b_stage = 0                  # byte-triggered increase events

    def on_cnp(self, flow: Flow, now: int) -> None:
        cc = flow.cc
        self._decay_alpha(flow, now)
        cc.alpha = (1.0 - self.config.g) * cc.alpha + self.config.g
        cc.last_alpha_update = now
        cc.rt = flow.rate
        flow.rate = max(self.min_rate, flow.rate * (1.0 - cc.alpha / 2.0))
        cc.last_cnp = now
        cc.last_increase = now
        cc.bytes_since_increase = 0
        cc.t_stage = 0
        cc.b_stage = 0

    def on_ack(self, flow: Flow, pkt: "Packet", now: int) -> None:
        self._decay_alpha(flow, now)
        self._maybe_increase(flow, now)

    def on_data_sent(self, flow: Flow, size: int, now: int) -> None:
        """Drive the byte counter (called by the host on each send)."""
        cc = flow.cc
        cc.bytes_since_increase += size
        if cc.bytes_since_increase >= self.byte_counter:
            cc.bytes_since_increase -= self.byte_counter
            cc.b_stage += 1
            self._increase(flow)

    def on_timeout(self, flow: Flow, now: int) -> None:
        # A timeout implies heavy loss; restart from a conservative rate.
        flow.rate = max(self.min_rate, flow.rate / 2.0)

    # -- internals -----------------------------------------------------------------

    def _decay_alpha(self, flow: Flow, now: int) -> None:
        """Apply pending (1-g) alpha decays lazily instead of per-timer."""
        cc = flow.cc
        periods = (now - cc.last_alpha_update) // self.config.alpha_timer
        if periods > 0:
            cc.alpha *= (1.0 - self.config.g) ** periods
            cc.last_alpha_update += periods * self.config.alpha_timer

    def _maybe_increase(self, flow: Flow, now: int) -> None:
        """Apply timer-triggered increase events lazily on ACK arrivals."""
        cc = flow.cc
        periods = (now - cc.last_increase) // self.config.increase_timer
        for _ in range(min(periods, 8)):  # bound work per ACK
            cc.t_stage += 1
            self._increase(flow)
        if periods > 0:
            cc.last_increase += periods * self.config.increase_timer

    def _increase(self, flow: Flow) -> None:
        cc = flow.cc
        stage = max(cc.t_stage, cc.b_stage)
        if stage <= self.config.f:
            # fast recovery: move halfway back to the target rate
            pass
        elif min(cc.t_stage, cc.b_stage) > self.config.f:
            # hyper increase
            cc.rt = min(self.line_rate, cc.rt + self.rhai)
        else:
            # additive increase
            cc.rt = min(self.line_rate, cc.rt + self.rai)
        flow.rate = max(self.min_rate, (cc.rt + flow.rate) / 2.0)
