"""Floodgate (CoNEXT '21) reproduction.

A packet-level datacenter network simulator with switch-based per-hop
flow control (Floodgate), reactive congestion control (DCQCN, TIMELY,
HPCC), and the paper's comparison baselines (BFC, NDP, PFC w/ tag).

Quick start::

    from repro.experiments import ScenarioConfig, run_scenario

    result = run_scenario(ScenarioConfig(cc="dcqcn", floodgate="practical"))
    print(result.poisson_fct.avg_ms, result.max_switch_buffer_mb)
"""

__version__ = "1.0.0"

from repro.sim import Simulator
from repro.units import gbps, kb, mb, ms, us

__all__ = ["Simulator", "gbps", "kb", "mb", "ms", "us", "__version__"]
