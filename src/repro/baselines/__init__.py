"""Comparison baselines: BFC, NDP, and PFC w/ tag.

Reimplementations of the schemes the paper compares against in §8 and
Appendix B:

* **BFC** (Goyal et al., NSDI '22) — per-hop, per-flow pause/resume on
  a limited set of physical queues, with sticky queue assignment and
  hash-collision FIDs (the paper evaluates 32Q, 128Q, and an ideal
  infinite-queue variant);
* **NDP** (Handley et al., SIGCOMM '17) — packet trimming at switches
  plus a receiver-driven pull-based transport;
* **PFC w/ tag** (Appendix B) — a reactive derivative of Floodgate
  that pauses per-destination based on egress queue length instead of
  tracking in-flight packets proactively.
"""

from repro.baselines.bfc import BfcConfig, BfcExtension, BfcHost, install_bfc
from repro.baselines.ndp import (
    NdpHost,
    NdpSwitchExtension,
    configure_ndp_hosts,
)
from repro.baselines.pfc_tag import PfcTagConfig, PfcTagExtension, install_pfc_tag

__all__ = [
    "BfcConfig",
    "BfcExtension",
    "BfcHost",
    "install_bfc",
    "NdpHost",
    "NdpSwitchExtension",
    "configure_ndp_hosts",
    "PfcTagConfig",
    "PfcTagExtension",
    "install_pfc_tag",
]
