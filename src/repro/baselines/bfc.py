"""BFC: Backpressure Flow Control (Goyal et al., NSDI '22).

Per-hop, per-flow flow control on a limited pool of physical egress
queues:

* each switch hashes a flow's identifier into a *FID* and assigns the
  FID to an egress queue — an empty queue when one is free, otherwise
  an occupied one (collision -> HOL blocking, the behaviour §8 and
  Appendix B analyze);
* assignments are *sticky*: a queue stays bound to its FID for a
  grace period after it drains, so periodic incast flows land back in
  the same (pausable) queue;
* when a queue crosses the pause threshold, the switch pauses the
  *upstream queue* conveyed in the arriving packet's metadata; it
  resumes the upstream once its own queue drains below the resume
  threshold;
* hosts cooperate: the NIC hashes flows onto the same number of
  virtual queues and pauses them when the ToR says so.

``n_queues=0`` selects **BFC-ideal**: unbounded queues, FID == flow id
(no collisions), one dedicated queue per flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.net.host import Host
from repro.net.packet import Packet, PacketKind
from repro.net.port import EgressPort
from repro.net.switch import Switch, SwitchExtension
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.units import us


def _fid_hash(value: int) -> int:
    """The switch's FID hash (collisions are part of the model)."""
    value = (value ^ (value >> 15)) * 0x2C1B3C6D & 0xFFFFFFFF
    value = (value ^ (value >> 12)) * 0x297A2D39 & 0xFFFFFFFF
    return value ^ (value >> 21)


@dataclass(frozen=True)
class BfcConfig:
    """BFC parameters."""

    #: physical queues per egress port; 0 = ideal (per-flow, unbounded)
    n_queues: int = 32
    #: queue occupancy (bytes) that triggers pausing the upstream queue
    pause_threshold: int = 20_000
    #: occupancy below which paused upstreams are resumed
    #: (0 -> half the pause threshold)
    resume_threshold: int = 0
    #: FID table size; smaller -> more flow-id collisions
    fid_space: int = 4096
    #: sticky assignment grace period after a queue drains, ns
    sticky_time: int = us(20)

    @property
    def ideal(self) -> bool:
        return self.n_queues == 0

    def resolved_resume(self) -> int:
        return self.resume_threshold or max(self.pause_threshold // 2, 1)


class _QueueState:
    """Book-keeping for one egress queue at one port."""

    __slots__ = ("fids", "last_enqueue", "paused_upstreams")

    def __init__(self) -> None:
        self.fids: Set[int] = set()
        self.last_enqueue = -(1 << 60)
        #: (ingress_port, upstream_queue) pairs we paused
        self.paused_upstreams: Set[Tuple[int, int]] = set()


class BfcExtension(SwitchExtension):
    """BFC logic for one switch."""

    def __init__(self, sim: Simulator, config: BfcConfig) -> None:
        self.sim = sim
        self.config = config
        #: per port: FID -> queue index
        self.assignment: List[Dict[int, int]] = []
        #: per port: queue index -> state
        self.queue_state: List[Dict[int, _QueueState]] = []
        #: per port: first RR queue index
        self.first_queue: List[int] = []
        #: ideal mode: per port, drained queues ready for reuse
        self.free_queues: List[List[int]] = []
        self.pauses_sent = 0
        self.collisions = 0

    def attach(self, switch: Switch) -> None:
        super().attach(switch)
        n = self.config.n_queues
        for port in switch.ports:
            first = port.add_rr_queues(n) if n else len(port.queues)
            self.first_queue.append(first)
            self.assignment.append({})
            self.queue_state.append({})
            self.free_queues.append([])

    # -- queue assignment -------------------------------------------------------

    def _fid_of(self, flow_id: int) -> int:
        if self.config.ideal:
            return flow_id
        return _fid_hash(flow_id) % self.config.fid_space

    def _queue_for(self, out_port: int, fid: int) -> int:
        """Current or fresh queue assignment for ``fid`` at ``out_port``."""
        port = self.switch.ports[out_port]
        table = self.assignment[out_port]
        states = self.queue_state[out_port]
        now = self.sim.now
        qidx = table.get(fid)
        if qidx is not None:
            state = states[qidx]
            # sticky: keep while occupied or within the grace period
            if port.queue_bytes[qidx] > 0 or (
                now - state.last_enqueue <= self.config.sticky_time
            ):
                return qidx
            state.fids.discard(fid)
            del table[fid]
        if self.config.ideal:
            # dedicate a queue per flow, reusing drained ones (O(1))
            free = self.free_queues[out_port]
            idx = free.pop() if free else port.add_rr_queues(1)
            return self._bind(out_port, fid, idx)
        first = self.first_queue[out_port]
        n = self.config.n_queues
        # prefer an empty, unbound queue
        for idx in range(first, first + n):
            state = states.get(idx)
            if port.queue_bytes[idx] == 0 and (
                state is None
                or (
                    not state.fids
                    and now - state.last_enqueue > self.config.sticky_time
                )
            ):
                return self._bind(out_port, fid, idx)
        # all queues busy: hash onto one (flows share -> HOL risk)
        self.collisions += 1
        idx = first + _fid_hash(fid ^ 0x5BF0) % n
        return self._bind(out_port, fid, idx)

    def _bind(self, out_port: int, fid: int, qidx: int) -> int:
        state = self.queue_state[out_port].setdefault(qidx, _QueueState())
        state.fids.add(fid)
        self.assignment[out_port][fid] = qidx
        return qidx

    # -- data path -----------------------------------------------------------------

    def on_data(self, pkt: Packet, in_port: int, out_port: int) -> bool:
        upstream_q = pkt.upstream_queue
        fid = self._fid_of(pkt.flow_id)
        qidx = self._queue_for(out_port, fid)
        state = self.queue_state[out_port][qidx]
        state.last_enqueue = self.sim.now
        pkt.upstream_queue = qidx  # conveyed to the next hop
        port = self.switch.ports[out_port]
        self.switch.enqueue_data(pkt, out_port, queue_idx=qidx)
        if (
            port.queue_bytes[qidx] > self.config.pause_threshold
            and upstream_q >= 0
        ):
            key = (in_port, upstream_q)
            if key not in state.paused_upstreams:
                state.paused_upstreams.add(key)
                self._send_pause(in_port, upstream_q, resume=False)
        return True

    def on_dequeue(self, port: EgressPort, pkt: Packet, queue_idx: int) -> None:
        if pkt.kind != PacketKind.DATA:
            return
        states = self.queue_state[port.index]
        state = states.get(queue_idx)
        if state is None:
            return
        if (
            state.paused_upstreams
            and port.queue_bytes[queue_idx] <= self.config.resolved_resume()
        ):
            for in_port, up_q in sorted(state.paused_upstreams):
                self._send_pause(in_port, up_q, resume=True)
            state.paused_upstreams.clear()
        if self.config.ideal and port.queue_bytes[queue_idx] == 0:
            # BFC-ideal: immediately recycle the drained per-flow queue
            table = self.assignment[port.index]
            for fid in sorted(state.fids):
                table.pop(fid, None)
            state.fids.clear()
            self.free_queues[port.index].append(queue_idx)

    # -- control -----------------------------------------------------------------------

    def handle_control(self, pkt: Packet, in_port: int) -> bool:
        if pkt.kind == PacketKind.BFC_PAUSE:
            self.switch.ports[in_port].pause_queue(pkt.pause_port)
            self.switch.pool.release(pkt)
            return True
        if pkt.kind == PacketKind.BFC_RESUME:
            self.switch.ports[in_port].resume_queue(pkt.pause_port)
            self.switch.pool.release(pkt)
            return True
        return False

    def _send_pause(self, in_port: int, upstream_q: int, resume: bool) -> None:
        peer = self.switch.peer(in_port)
        kind = PacketKind.BFC_RESUME if resume else PacketKind.BFC_PAUSE
        frame = self.switch.pool.acquire_control(
            kind, self.switch.node_id, peer.node_id
        )
        frame.pause_port = upstream_q
        self.switch.ports[in_port].enqueue_control(frame)
        if not resume:
            self.pauses_sent += 1


class BfcHost(Host):
    """Host-side BFC: virtual NIC queues that honour pause frames.

    The host hashes each flow onto ``n_queues`` virtual queues, stamps
    the queue index into outgoing packets (so the ToR knows what to
    pause), and suspends the flows of a paused queue.
    """

    def __init__(self, *args, bfc_config: Optional[BfcConfig] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.bfc_config = bfc_config or BfcConfig()
        self.paused_queues: Set[int] = set()

    def _host_queue_of(self, flow_id: int) -> int:
        n = self.bfc_config.n_queues or 128
        return _fid_hash(flow_id) % n

    def _flow_blocked(self, flow) -> bool:
        if super()._flow_blocked(flow):
            return True
        return self._host_queue_of(flow.flow_id) in self.paused_queues

    def _stamp_packet(self, pkt: Packet, flow) -> None:
        # the ToR conveys this queue index back in pause frames
        pkt.upstream_queue = self._host_queue_of(flow.flow_id)

    def receive(self, pkt: Packet, ingress_port: int) -> None:
        if pkt.kind == PacketKind.BFC_PAUSE:
            self.paused_queues.add(pkt.pause_port)
            self.pool.release(pkt)
            return
        if pkt.kind == PacketKind.BFC_RESUME:
            self.paused_queues.discard(pkt.pause_port)
            for flow_id in sorted(self.active_flows):
                flow = self.flow_table[flow_id]
                if (
                    self._host_queue_of(flow_id) == pkt.pause_port
                    and not flow.sender_done
                ):
                    self._kick(flow)
            self.pool.release(pkt)
            return
        super().receive(pkt, ingress_port)  # releases via the base sink


def install_bfc(
    sim: Simulator,
    topology: Topology,
    config: BfcConfig,
    extensions: List[object],
) -> None:
    """Install BFC on every switch and configure host-side queues."""
    for sw in topology.switches:
        ext = BfcExtension(sim, config)
        sw.install_extension(ext)
        extensions.append(ext)
    for host in topology.hosts:
        if isinstance(host, BfcHost):
            host.bfc_config = config
