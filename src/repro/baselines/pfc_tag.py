"""PFC w/ tag: the reactive per-dst derivative of Floodgate (App. B).

Behaviour per the paper:

* the last-hop ToR watches each host-facing egress queue; when it
  exceeds the pause threshold, a ``TAG_PAUSE`` carrying the congested
  destination goes to the upstream switch the triggering packet came
  from;
* an upstream switch that holds a pause for a destination parks that
  destination's packets in a VOQ; if the VOQ itself exceeds the
  threshold, the pause propagates another hop upstream;
* when the congested queue (or VOQ) drains below the resume
  threshold, ``TAG_RESUME`` frames release the recorded upstream
  entities and the VOQs drain.

Unlike Floodgate this is *reactive* — nothing is tamed until the
last-hop queue has already built up — which is exactly the contrast
Appendix B draws (longer control loop, more VOQs, worse behaviour in
oversubscribed fabrics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.floodgate.voq import GROUP_DOWN, GROUP_UP, VoqPool
from repro.net.host import Host
from repro.net.packet import Packet, PacketKind
from repro.net.port import EgressPort
from repro.net.switch import Switch, SwitchExtension
from repro.net.topology import Topology
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class PfcTagConfig:
    """PFC-w/-tag parameters (thresholds in bytes)."""

    pause_threshold: int = 40_000
    resume_threshold: int = 20_000
    max_voqs: int = 1000


class PfcTagExtension(SwitchExtension):
    """Per-switch PFC-w/-tag state."""

    def __init__(self, sim: Simulator, config: PfcTagConfig) -> None:
        self.sim = sim
        self.config = config
        self.pool = VoqPool(config.max_voqs)
        #: destinations this switch is currently told to pause
        self.paused_dsts: Set[int] = set()
        #: dst -> upstream ingress ports we have paused
        self.paused_upstreams: Dict[int, Set[int]] = {}
        self.incast_queue: List[int] = []
        self.pauses_sent = 0

    def attach(self, switch: Switch) -> None:
        super().attach(switch)
        for port in switch.ports:
            self.incast_queue.append(port.add_rr_queues(1))

    # -- data path ---------------------------------------------------------------

    def on_data(self, pkt: Packet, in_port: int, out_port: int) -> bool:
        sw = self.switch
        dst = pkt.dst
        voq = self.pool.lookup(dst)
        if dst in self.paused_dsts or voq is not None:
            if voq is None:
                voq = self.pool.allocate(dst, self._group_of(out_port))
            if voq is None:
                sw.enqueue_data(pkt, out_port)
                return True
            self._park(pkt, out_port, voq)
            # VOQ overflowing: push the pause another hop upstream
            if self.pool.dst_backlog(dst) > self.config.pause_threshold:
                self._pause_upstream(dst, in_port)
            return True
        sw.enqueue_data(pkt, out_port)
        if (
            sw.is_last_hop_for(dst)
            and sw.ports[out_port].data_bytes_queued > self.config.pause_threshold
        ):
            self._pause_upstream(dst, in_port)
        return True

    def _park(self, pkt: Packet, out_port: int, voq) -> None:
        sw = self.switch
        buffer = sw.buffer
        assert buffer is not None
        if not buffer.admit(pkt.size, pkt.ingress_port):
            sw.dropped_packets += 1
            if sw.stats is not None:
                sw.stats.record_drop()
            sw.pool.release(pkt)
            return
        sw._note_port_bytes(out_port, pkt.size)
        if sw.stats is not None:
            sw.stats.record_switch_buffer(sw.name, buffer.used)
        self.pool.push(voq, pkt)

    def _group_of(self, out_port: int) -> int:
        peer = self.switch.peer(out_port)
        if isinstance(peer, Host):
            return GROUP_DOWN
        if isinstance(peer, Switch) and peer.level < self.switch.level:
            return GROUP_DOWN
        return GROUP_UP

    # -- pause / resume ---------------------------------------------------------------

    def _pause_upstream(self, dst: int, in_port: int) -> None:
        peer = self.switch.peer(in_port)
        if not isinstance(peer, Switch):
            return  # hosts are not paused by this scheme
        paused = self.paused_upstreams.setdefault(dst, set())
        if in_port in paused:
            return
        paused.add(in_port)
        frame = self.switch.pool.acquire_control(
            PacketKind.TAG_PAUSE, self.switch.node_id, peer.node_id
        )
        frame.pause_dst = dst
        self.switch.ports[in_port].enqueue_control(frame)
        self.pauses_sent += 1

    def _maybe_resume(self, dst: int, backlog: int) -> None:
        paused = self.paused_upstreams.get(dst)
        if not paused or backlog > self.config.resume_threshold:
            return
        for in_port in sorted(paused):
            peer = self.switch.peer(in_port)
            frame = self.switch.pool.acquire_control(
                PacketKind.TAG_RESUME, self.switch.node_id, peer.node_id
            )
            frame.pause_dst = dst
            self.switch.ports[in_port].enqueue_control(frame)
        paused.clear()

    def on_dequeue(self, port: EgressPort, pkt: Packet, queue_idx: int) -> None:
        if pkt.kind != PacketKind.DATA:
            return
        sw = self.switch
        dst = pkt.dst
        if sw.is_last_hop_for(dst):
            self._maybe_resume(dst, port.data_bytes_queued)
        else:
            self._maybe_resume(dst, self.pool.dst_backlog(dst))
        # room opened on this port: trickle resumed VOQ traffic into it
        self._drain_into(port)

    def _drain_into(self, port: EgressPort) -> None:
        """Move resumed VOQ packets to ``port`` while it has room.

        Draining is throttled by the pause threshold so a re-pause can
        still take effect — dumping a whole VOQ at once would defeat
        the scheme (everything would already sit in the egress queue).
        """
        sw = self.switch
        for dst in list(self.pool.voq_of_dst):
            if dst in self.paused_dsts:
                continue
            if sw.route_for_dst(dst) != port.index:
                continue
            voq = self.pool.lookup(dst)
            while (
                voq is not None
                and voq.packets
                and voq.packets[0].dst not in self.paused_dsts
                and port.data_bytes_queued < self.config.pause_threshold
            ):
                head = self.pool.pop(voq)
                out = sw.route_for_dst(head.dst)
                sw.enqueue_data(
                    head,
                    out,
                    queue_idx=self.incast_queue[out],
                    already_charged=True,
                )
                self._maybe_resume(head.dst, self.pool.dst_backlog(head.dst))
                voq = self.pool.lookup(dst)

    # -- control -----------------------------------------------------------------------

    def handle_control(self, pkt: Packet, in_port: int) -> bool:
        if pkt.kind == PacketKind.TAG_PAUSE:
            self.paused_dsts.add(pkt.pause_dst)
            self.switch.pool.release(pkt)
            return True
        if pkt.kind == PacketKind.TAG_RESUME:
            self.paused_dsts.discard(pkt.pause_dst)
            self._drain(pkt.pause_dst)
            self.switch.pool.release(pkt)
            return True
        return False

    def _drain(self, dst: int) -> None:
        """Start releasing a destination's VOQ after a resume.

        Moves packets only while the egress has room below the pause
        threshold; the rest trickles out from :meth:`_drain_into` as
        the port dequeues.
        """
        voq = self.pool.lookup(dst)
        if voq is None:
            return
        sw = self.switch
        while voq is not None and voq.packets:
            head = voq.packets[0]
            if head.dst in self.paused_dsts:
                break  # shared VOQ: a still-paused dst blocks the head
            out = sw.route_for_dst(head.dst)
            if sw.ports[out].data_bytes_queued >= self.config.pause_threshold:
                break
            pkt = self.pool.pop(voq)
            sw.enqueue_data(
                pkt, out, queue_idx=self.incast_queue[out], already_charged=True
            )
            self._maybe_resume(pkt.dst, self.pool.dst_backlog(pkt.dst))
            voq = self.pool.lookup(dst)


def install_pfc_tag(
    sim: Simulator,
    topology: Topology,
    config: PfcTagConfig,
    extensions: List[object],
) -> None:
    """Install PFC w/ tag on every switch."""
    for sw in topology.switches:
        ext = PfcTagExtension(sim, config)
        sw.install_extension(ext)
        extensions.append(ext)
