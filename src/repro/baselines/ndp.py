"""NDP: packet trimming plus a receiver-driven transport (SIGCOMM '17).

Switch side
    When an egress data queue exceeds the (shallow) trim threshold the
    arriving packet's payload is cut and the header forwarded at high
    priority.  Headers tell the receiver exactly what was lost.

Host side
    A new flow blasts one BDP of *unscheduled* packets at line rate;
    everything after that is *pulled* by the receiver, which paces
    pull tokens at its NIC's line rate (round-robin across flows).
    Trimmed headers trigger NACKs; the affected packets are
    retransmitted when pulls arrive.  The receiver assembles data out
    of order, so — unlike the go-back-N RoCE model — a trim costs one
    RTT, not a window rewind.

Appendix B's observations fall out of this model: every flow
(incast or not) pays the trimming penalty once queues are hot, and
header/control traffic consumes a significant share of the
bottleneck's bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Set

from repro.net.host import Host
from repro.net.packet import Packet, PacketKind
from repro.net.switch import SwitchExtension
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTask, Timer
from repro.units import MTU, bdp_packets, serialization_delay


class NdpSwitchExtension(SwitchExtension):
    """Cut-payload trimming at the egress queue."""

    def __init__(self, sim: Simulator, trim_threshold: int = 8 * MTU) -> None:
        self.sim = sim
        self.trim_threshold = trim_threshold
        self.trimmed_packets = 0

    def on_data(self, pkt: Packet, in_port: int, out_port: int) -> bool:
        port = self.switch.ports[out_port]
        if pkt.kind == PacketKind.NDP_HEADER:
            # already trimmed upstream: ride the priority queue
            port.enqueue_control(pkt)
            return True
        if port.data_bytes_queued > self.trim_threshold:
            pkt.trim()
            self.trimmed_packets += 1
            port.enqueue_control(pkt)
            return True
        return False


class NdpHost(Host):
    """Receiver-driven NDP endpoint (replaces the RoCE transport)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: unscheduled window in packets (set by configure_ndp_hosts)
        self.ndp_unscheduled = 12
        #: pull pacing interval, ns (one MTU at line rate)
        self.pull_interval = 800
        self._pull_queue: Deque[int] = deque()
        self._pull_task: Optional[PeriodicTask] = None

    # -- sender ---------------------------------------------------------------------

    def start_flow(self, flow) -> None:
        if flow.src != self.node_id:
            raise ValueError(f"flow {flow.flow_id} does not start at this host")
        self.flow_table[flow.flow_id] = flow
        self.active_flows.add(flow.flow_id)
        cc = flow.cc
        cc.retx = deque()
        cc.acked: Set[int] = set()
        cc.next_new = 0
        flow.rto_timer = Timer(self.sim, self._ndp_rto, flow)
        unscheduled = min(self.ndp_unscheduled, flow.n_packets)
        self._burst(flow, unscheduled)

    def _burst(self, flow, remaining: int) -> None:
        """Emit the unscheduled window paced at line rate."""
        if remaining <= 0 or flow.cc.next_new >= flow.n_packets:
            return
        seq = flow.cc.next_new
        flow.cc.next_new = seq + 1
        self._ndp_send(flow, seq)
        gap = serialization_delay(flow.packet_size(seq), self.cc.line_rate)
        self.sim.schedule(gap, self._burst, flow, remaining - 1)

    def _ndp_send(self, flow, seq: int) -> None:
        pkt = self.pool.acquire(
            PacketKind.DATA,
            self.node_id,
            flow.dst,
            flow.packet_size(seq),
            flow.flow_id,
            seq,
        )
        pkt.sent_time = self.sim.now
        self.tx_data_bytes += pkt.size
        self.tx_data_packets += 1
        self.ports[0].enqueue(pkt, 1)
        if flow.rto_timer is not None and not flow.rto_timer.armed:
            flow.rto_timer.start(self.rto)

    def _send_one(self, flow) -> None:
        """A pull arrived: retransmissions first, then new data."""
        cc = flow.cc
        while cc.retx:
            seq = cc.retx.popleft()
            if seq not in cc.acked:
                self._ndp_send(flow, seq)
                return
        if cc.next_new < flow.n_packets:
            seq = cc.next_new
            cc.next_new = seq + 1
            self._ndp_send(flow, seq)

    def _ndp_rto(self, flow) -> None:
        """Backstop for lost tails: resend the oldest unacked packet."""
        cc = flow.cc
        if len(cc.acked) >= flow.n_packets:
            return
        for seq in range(cc.next_new):
            if seq not in cc.acked:
                flow.retransmitted_packets += 1
                self._ndp_send(flow, seq)
                break
        if flow.rto_timer is not None:
            flow.rto_timer.start(self.rto)

    # -- receiver ----------------------------------------------------------------------

    def _ndp_rx_state(self, flow):
        cc = flow.cc
        if not hasattr(cc, "rx_received"):
            cc.rx_received = set()
            unscheduled = min(self.ndp_unscheduled, flow.n_packets)
            cc.rx_pulls_needed = flow.n_packets - unscheduled
            cc.rx_pulls_sent = 0
        return cc

    def _maybe_pull(self, flow) -> None:
        cc = flow.cc
        if flow.receiver_done:
            return
        if cc.rx_pulls_sent < cc.rx_pulls_needed:
            cc.rx_pulls_sent += 1
            self._pull_queue.append(flow.flow_id)
            if self._pull_task is None:
                self._pull_task = PeriodicTask(
                    self.sim, self.pull_interval, self._emit_pull
                )
            if not self._pull_task.running:
                self._pull_task.start()

    def _emit_pull(self) -> None:
        while self._pull_queue:
            flow_id = self._pull_queue.popleft()
            flow = self.flow_table.get(flow_id)
            if flow is None or flow.receiver_done:
                continue
            pull = self.pool.acquire_control(
                PacketKind.NDP_PULL, self.node_id, flow.src
            )
            pull.flow_id = flow_id
            self.ports[0].enqueue_control(pull)
            return
        if self._pull_task is not None:
            self._pull_task.stop()

    # -- dispatch -------------------------------------------------------------------------

    def receive(self, pkt: Packet, ingress_port: int) -> None:
        kind = pkt.kind
        if kind == PacketKind.DATA:
            self._rx_data(pkt)
        elif kind == PacketKind.NDP_HEADER:
            self._rx_header(pkt)
        elif kind == PacketKind.NDP_PULL:
            flow = self.flow_table.get(pkt.flow_id)
            if flow is not None and hasattr(flow.cc, "retx"):
                self._send_one(flow)
        elif kind == PacketKind.NDP_NACK:
            flow = self.flow_table.get(pkt.flow_id)
            if flow is not None and hasattr(flow.cc, "retx"):
                if pkt.seq not in flow.cc.acked:
                    flow.retransmitted_packets += 1
                    flow.cc.retx.append(pkt.seq)
        elif kind == PacketKind.ACK:
            self._rx_ack(pkt)
        elif kind == PacketKind.PFC_PAUSE:
            port = self.ports[ingress_port]
            if self.sanitizer is not None:
                self.sanitizer.note_pfc(self, ingress_port, True, port.paused)
            port.pause()
        elif kind == PacketKind.PFC_RESUME:
            port = self.ports[ingress_port]
            if self.sanitizer is not None:
                self.sanitizer.note_pfc(self, ingress_port, False, port.paused)
            port.resume()
        # every kind is fully consumed at the host (trimmed headers
        # included — the NACK is a fresh frame), so recycle here
        self.pool.release(pkt)

    def _rx_data(self, pkt: Packet) -> None:
        self.rx_data_packets += 1
        flow = self.flow_table.get(pkt.flow_id)
        if flow is None:
            return
        if pkt.corrupted:
            # failed integrity check: same recovery as a trimmed packet
            # (NACK the sequence, budget a pull for the retransmission)
            if self.stats is not None:
                self.stats.record_corrupt_rx()
            self._rx_header(pkt)
            return
        cc = self._ndp_rx_state(flow)
        self.rx_data_bytes += pkt.size
        if self.stats is not None:
            self.stats.record_rx(pkt.flow_id, pkt.size)
        if pkt.seq not in cc.rx_received:
            cc.rx_received.add(pkt.seq)
            flow.delivered_bytes += pkt.size
            if flow.receiver_done and flow.finish_time < 0:
                flow.finish_time = self.sim.now
                if self.stats is not None:
                    from repro.stats.fct import FctRecord

                    self.stats.record_fct(
                        FctRecord(
                            flow.flow_id,
                            flow.src,
                            flow.dst,
                            flow.size,
                            flow.start_time,
                            self.sim.now,
                        )
                    )
                if self.on_flow_done is not None:
                    self.on_flow_done(flow)
        ack = self.pool.acquire_control(PacketKind.ACK, self.node_id, flow.src)
        ack.flow_id = flow.flow_id
        ack.seq = pkt.seq
        self.ports[0].enqueue_control(ack)
        self._maybe_pull(flow)

    def _rx_header(self, pkt: Packet) -> None:
        """A trimmed packet: NACK it and budget a pull for the retx."""
        flow = self.flow_table.get(pkt.flow_id)
        if flow is None:
            return
        cc = self._ndp_rx_state(flow)
        nack = self.pool.acquire_control(PacketKind.NDP_NACK, self.node_id, flow.src)
        nack.flow_id = flow.flow_id
        nack.seq = pkt.seq
        self.ports[0].enqueue_control(nack)
        cc.rx_pulls_needed += 1
        self._maybe_pull(flow)

    def _rx_ack(self, pkt: Packet) -> None:
        flow = self.flow_table.get(pkt.flow_id)
        if flow is None or not hasattr(flow.cc, "acked"):
            return
        cc = flow.cc
        cc.acked.add(pkt.seq)
        flow.acked_seq = len(cc.acked)
        if len(cc.acked) >= flow.n_packets:
            flow.sender_done = True
            self.active_flows.discard(flow.flow_id)
            if flow.rto_timer is not None:
                flow.rto_timer.stop()
        elif flow.rto_timer is not None:
            flow.rto_timer.start(self.rto)


def configure_ndp_hosts(topology: Topology, base_rtt: int) -> None:
    """Size the unscheduled window and pull pacing from the fabric."""
    for host in topology.hosts:
        if not isinstance(host, NdpHost):
            continue
        line_rate = host.ports[0].bandwidth
        host.ndp_unscheduled = bdp_packets(line_rate, base_rtt)
        host.pull_interval = serialization_delay(MTU, line_rate)
