"""Command-line entry point: run one paper experiment and print it.

Usage::

    floodgate-experiment list
    floodgate-experiment run fig10 [--full]
    floodgate-experiment run tab02
    floodgate-experiment faults [--loss-rates 0.01 0.05] [--schemes floodgate ndp]
    floodgate-experiment bench [--scenario <registry name>|all]
                               [--repeats 3] [--gate] [--out BENCH_engine.json]
    floodgate-experiment scenarios list [--tag bench]
    floodgate-experiment scenarios show NAME
    floodgate-experiment validate-flowsim [--scenario quick ...]
                                          [--tolerance 0.15] [--min-speedup 20]
    floodgate-experiment validate-hybrid [--scenario incast256 ...]
                                         [--tolerance 0.10] [--min-speedup 5]
                                         [--paranoid]
    floodgate-experiment report [--scheme floodgate] [--out run.jsonl]
    floodgate-experiment report --from run.jsonl
    floodgate-experiment check [paths ...] [--sanitize] [--rules]
                               [--sharded] [--shards 2 4]
                               [--scenarios quick incast256]
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time
from typing import Dict

#: experiment id -> (module, one-line description)
EXPERIMENTS: Dict[str, tuple[str, str]] = {
    "fig02": ("fig02_throughput", "realtime throughput under incastmix"),
    "fig06": ("fig06_testbed", "testbed: FCT + per-hop buffers"),
    "fig07": ("fig07_workloads", "workload flow-size CDFs"),
    "fig08": ("fig08_fct", "avg/p99 FCT of Poisson flows"),
    "fig09": ("fig09_victims", "FCT by flow class (victims)"),
    "fig10": ("fig10_buffer", "max switch buffer occupancy"),
    "tab02": ("tab02_pfc", "PFC pause time by node level"),
    "fig11": ("fig11_realloc", "per-hop buffers + queueing split"),
    "fig12": ("fig12_loss", "robustness to packet loss"),
    "fig13": ("fig13_fattree", "3-tier fat-tree topology"),
    "fig14": ("fig14_scaleup", "buffer vs number of ToRs"),
    "fig15": ("fig15_successive", "successive incasts + per-dst PAUSE"),
    "fig16": ("fig16_ecn", "convergence vs ECN thresholds"),
    "fig17": ("fig17_params", "parameter sweeps (T, delayCredit)"),
    "fig18": ("fig18_overhead", "bandwidth overhead breakdown"),
    "fig20": ("fig20_bfc", "comparison with BFC"),
    "fig21": ("fig21_incast_fct", "incast flows' own FCT"),
    "fig22": ("fig22_poisson", "pure Poisson scenarios"),
    "fig23": ("fig23_ndp", "comparison with NDP"),
    "fig24": ("fig24_pfctag", "comparison with PFC w/ tag"),
    "sec74": ("sec74_resources", "switch resource overhead"),
    "faults": ("fault_sweep", "fault-injection sweep: loss x fault type x scheme"),
    "rpc": ("rpc_fanout", "closed-loop rpc: p999 request latency vs fan-out"),
}


def _print_result(obj, indent: int = 0) -> None:
    """Readable nested-dict dump (numbers rounded)."""

    def default(x):
        return round(x, 3) if isinstance(x, float) else str(x)

    print(json.dumps(obj, indent=2, default=default))


def _report(args) -> int:
    """The `report` subcommand: render telemetry, saved or freshly run."""
    from repro.telemetry.export import TelemetryExport
    from repro.telemetry.report import render_export

    if args.from_file is not None:
        with open(args.from_file, "r", encoding="utf-8") as fh:
            export = TelemetryExport.from_jsonl(fh.read())
        print(render_export(export, width=args.width))
        return 0

    from dataclasses import replace

    from repro.experiments.figures.common import incastmix_base
    from repro.experiments.runner import run_scenario
    from repro.telemetry.registry import TelemetryConfig

    if args.scenario is not None:
        from repro.experiments import registry

        try:
            entry = registry.get(args.scenario)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        cfg = replace(
            entry.configs[0], seed=args.seed, telemetry=TelemetryConfig()
        )
        print(
            f"Running instrumented scenario {entry.name!r} ...",
            file=sys.stderr,
        )
    else:
        cfg = incastmix_base(
            quick=not args.full,
            workload=args.workload,
            flow_control=args.scheme,
            seed=args.seed,
            telemetry=TelemetryConfig(),
        )
        print(
            f"Running instrumented {args.scheme} / {args.workload} run ...",
            file=sys.stderr,
        )
    start = time.monotonic()
    result = run_scenario(cfg)
    elapsed = time.monotonic() - start
    assert result.telemetry is not None
    profiler = (
        result.scenario.telemetry.profiler
        if result.scenario.telemetry is not None
        else None
    )
    print(render_export(result.telemetry, width=args.width, profiler=profiler))
    if args.out:
        result.telemetry.write(args.out)
        print(f"export written to {args.out}", file=sys.stderr)
    print(f"done in {elapsed:.1f}s", file=sys.stderr)
    return 0


def _scenarios(args) -> int:
    """The `scenarios` subcommand: inspect the declarative registry."""
    import dataclasses

    from repro.experiments import registry

    if args.action == "list":
        names = registry.names(tag=args.tag)
        if not names:
            print(f"no scenarios tagged {args.tag!r}", file=sys.stderr)
            return 1
        width = max(len(n) for n in names)
        for name in names:
            entry = registry.get(name)
            tags = ",".join(entry.tags)
            print(f"{name:{width}s}  [{tags}]  {entry.description}")
        return 0

    # show
    try:
        entry = registry.get(args.name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"name:        {entry.name}")
    print(f"description: {entry.description}")
    print(f"tags:        {', '.join(entry.tags) or '-'}")
    print(f"gate metric: {entry.gate_metric}")
    if entry.notes:
        print(f"notes:       {entry.notes}")
    print(f"configs:     {len(entry.configs)}")
    for i, cfg in enumerate(entry.configs):
        print(f"--- config [{i}] ---")
        _print_result(dataclasses.asdict(cfg))
    return 0


def _check(args) -> int:
    """The `check` subcommand: static lint, optionally the runtime suite."""
    from pathlib import Path

    from repro.simcheck.linter import run_check
    from repro.simcheck.rules import RULES

    if args.rules:
        for rule, desc in RULES.items():
            print(f"{rule}  {desc}")
        return 0

    root = Path(args.root) if args.root else None
    report = run_check(root=root, paths=args.paths or None)
    for finding in report.findings:
        print(finding.format())
    for entry in report.dead_allowlist:
        print(
            f"simcheck-allowlist.txt: dead entry `{entry.rule} {entry.glob}` "
            "matches no scanned file; remove or fix the glob"
        )
    print(f"simcheck: {report.summary()}", file=sys.stderr)
    status = 0 if report.ok else 1

    if args.sanitize:
        from repro.simcheck.determinism import run_suite

        print("simcheck: running sanitized determinism suite ...", file=sys.stderr)
        start = time.monotonic()
        suite = run_suite(seed=args.seed, schemes=args.schemes)
        for name, rep in suite["schemes"].items():
            mark = "ok" if rep["ok"] else "FAIL"
            print(
                f"  {name:12s} {mark}  digest={rep['digest'][:16]} "
                f"events={rep['events']} violations={len(rep['violations'])}"
            )
            for v in rep["violations"]:
                print(f"    {v}")
        pool_mark = "ok" if suite["pool_identical"] else "FAIL"
        print(f"  serial-vs-pooled {pool_mark}")
        for key in suite["pool_mismatched"]:
            print(f"    mismatch: {key}")
        print(
            f"simcheck: suite done in {time.monotonic() - start:.1f}s",
            file=sys.stderr,
        )
        if not suite["ok"]:
            status = 1

    if args.sharded:
        from repro.simcheck.determinism import run_sharded_suite

        print(
            "simcheck: running sharded equivalence suite ...", file=sys.stderr
        )
        start = time.monotonic()
        sharded = run_sharded_suite(
            seed=args.seed,
            schemes=args.schemes,
            shards=tuple(args.shards),
            scenarios=tuple(args.scenarios),
            isolate=args.isolate,
        )
        for key, rep in sharded["cases"].items():
            mark = "ok" if rep["ok"] else "FAIL"
            modes = " ".join(
                f"{m}={'ok' if r['ok'] else 'FAIL'}"
                for m, r in rep["modes"].items()
            )
            print(f"  {key:28s} {mark}  {modes}")
            for m, r in rep["modes"].items():
                for v in r.get("isolation_violations", []):
                    print(f"    {m}: {v}")
        print(
            f"simcheck: sharded suite done in {time.monotonic() - start:.1f}s",
            file=sys.stderr,
        )
        if not sharded["ok"]:
            status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="floodgate-experiment",
        description="Reproduce one figure/table from the Floodgate paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible experiments")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_p.add_argument(
        "--full",
        action="store_true",
        help="full CI-scale parameters instead of the quick bench scale",
    )
    faults_p = sub.add_parser(
        "faults",
        help="fault-injection sweep (loss rate x fault type x scheme)",
    )
    faults_p.add_argument(
        "--full",
        action="store_true",
        help="full CI-scale parameters instead of the quick bench scale",
    )
    faults_p.add_argument(
        "--loss-rates",
        type=float,
        nargs="+",
        default=None,
        metavar="RATE",
        help="loss/corruption rates to sweep (default: scale preset)",
    )
    faults_p.add_argument(
        "--schemes",
        nargs="+",
        default=None,
        choices=["floodgate", "pfc", "bfc", "ndp"],
        help="schemes to compare (default: all four)",
    )
    bench_p = sub.add_parser(
        "bench",
        help="run the engine perf benchmarks, append to BENCH_engine.json",
    )
    bench_p.add_argument(
        "--scenario",
        nargs="+",
        default=["quick"],
        metavar="NAME",
        help="benchmark scenario(s) to run, by registry name (see "
        "`scenarios list --tag bench`); 'all' runs the full matrix, "
        "flowsim-* scenarios land in BENCH_flowsim.json and rpc-* in "
        "BENCH_rpc.json (default: quick)",
    )
    bench_p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions; the median is reported (default 3)",
    )
    bench_p.add_argument(
        "--gate",
        nargs="?",
        type=float,
        const=0.20,
        default=None,
        metavar="FRACTION",
        help="fail (exit 1) if any scenario regresses more than FRACTION "
        "below the best same-machine history entry (default 0.20)",
    )
    bench_p.add_argument(
        "--out",
        default=None,
        help="output JSON path (default BENCH_engine.json, or $REPRO_BENCH_OUT)",
    )
    validate_p = sub.add_parser(
        "validate-flowsim",
        help="cross-validate the fluid tier against the packet engine "
        "(FCT divergence + speedup)",
    )
    validate_p.add_argument(
        "--scenario",
        nargs="+",
        default=None,
        choices=["quick", "incast256", "fattree-a2a"],
        help="bench scenario(s) to validate (default: all three)",
    )
    validate_p.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="max p50/p99 FCT divergence asserted on quick and "
        "incast256 (default 0.15)",
    )
    validate_p.add_argument(
        "--min-speedup",
        type=float,
        default=20.0,
        help="min aggregate incast256 wall-clock speedup; 0 disables "
        "(default 20)",
    )
    validate_p.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="FILE",
        help="also write the per-config comparisons as JSON",
    )
    validate_h = sub.add_parser(
        "validate-hybrid",
        help="cross-validate the hybrid tier against the packet engine "
        "(hot-rack FCT divergence + speedup)",
    )
    validate_h.add_argument(
        "--scenario",
        nargs="+",
        default=None,
        choices=["quick", "incast256", "fattree-a2a"],
        help="bench scenario(s) to validate (default: incast256 and "
        "fattree-a2a)",
    )
    validate_h.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="max hot-rack p50/p99 FCT divergence (default 0.10)",
    )
    validate_h.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="min aggregate wall-clock speedup across all configs; "
        "0 disables (default 5)",
    )
    validate_h.add_argument(
        "--paranoid",
        action="store_true",
        help="cross-check every incremental max-min reallocation "
        "against a full recompute (slow)",
    )
    validate_h.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="FILE",
        help="also write the per-config comparisons as JSON",
    )
    report_p = sub.add_parser(
        "report",
        help="run one instrumented scenario and render its telemetry "
        "(or re-render a saved export)",
    )
    report_p.add_argument(
        "--from",
        dest="from_file",
        default=None,
        metavar="FILE",
        help="render a previously saved telemetry JSONL instead of running",
    )
    report_p.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="run a registry scenario (see `scenarios list`) instead of "
        "the default incastmix run; rpc scenarios add the request-level "
        "SLO section",
    )
    report_p.add_argument(
        "--scheme",
        default="floodgate",
        choices=["none", "floodgate", "floodgate-ideal", "bfc", "ndp"],
        help="flow control for the instrumented run (default floodgate)",
    )
    report_p.add_argument(
        "--workload", default="websearch", help="workload distribution name"
    )
    report_p.add_argument("--seed", type=int, default=1)
    report_p.add_argument(
        "--full",
        action="store_true",
        help="full CI-scale parameters instead of the quick bench scale",
    )
    report_p.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also save the export (.jsonl or .csv by suffix)",
    )
    report_p.add_argument(
        "--width", type=int, default=72, help="chart width in columns"
    )
    scenarios_p = sub.add_parser(
        "scenarios",
        help="inspect the declarative scenario registry",
    )
    scenarios_sub = scenarios_p.add_subparsers(dest="action", required=True)
    scenarios_list_p = scenarios_sub.add_parser(
        "list", help="list registered scenarios"
    )
    scenarios_list_p.add_argument(
        "--tag",
        default=None,
        help="only scenarios carrying this tag (e.g. bench, rpc, flowsim)",
    )
    scenarios_show_p = scenarios_sub.add_parser(
        "show", help="print one scenario's full config(s)"
    )
    scenarios_show_p.add_argument("name", help="registry name")
    # the advertised rule span is generated from the catalogue so this
    # help line can never drift from rules.RULES again
    from repro.simcheck.rules import RULES as _RULES

    _rule_ids = sorted(r for r in _RULES if r != "SIM000")
    check_p = sub.add_parser(
        "check",
        help=f"determinism + shard-safety lint ({_rule_ids[0]}..{_rule_ids[-1]}); "
        "--sanitize adds the runtime invariant + digest suite",
    )
    check_p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint, relative to the repo root "
        "(default: src tests benchmarks examples)",
    )
    check_p.add_argument(
        "--rules", action="store_true", help="print the rule catalogue and exit"
    )
    check_p.add_argument(
        "--sanitize",
        action="store_true",
        help="also run every scheme sanitized twice and compare digests",
    )
    check_p.add_argument(
        "--sharded",
        action="store_true",
        help="also prove sharded execution (lockstep/barrier/process) "
        "replays serial runs byte-for-byte, per scheme and shard count",
    )
    check_p.add_argument(
        "--schemes",
        nargs="+",
        default=None,
        choices=["dcqcn", "floodgate", "bfc", "ndp", "pfc_tag"],
        help="schemes for the --sanitize/--sharded suites (defaults: "
        "all four of each; pfc_tag is sharded-only, ndp sanitize-only)",
    )
    check_p.add_argument(
        "--shards",
        nargs="+",
        type=int,
        default=[2, 4],
        metavar="N",
        help="shard counts for the --sharded suite (default: 2 4)",
    )
    check_p.add_argument(
        "--scenarios",
        nargs="+",
        default=["quick", "incast256"],
        metavar="NAME",
        help="registry scenarios for the --sharded suite "
        "(default: quick incast256)",
    )
    check_p.add_argument(
        "--isolate",
        action="store_true",
        help="with --sharded: tag hot objects with domain ids and trap "
        "cross-domain mutations at dispatch (ShardIsolationSanitizer)",
    )
    check_p.add_argument("--seed", type=int, default=1)
    check_p.add_argument(
        "--root",
        default=None,
        help="repo root (default: ascend from CWD to pyproject.toml)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for key, (_, desc) in EXPERIMENTS.items():
            print(f"{key:7s} {desc}")
        return 0

    if args.command == "faults":
        from repro.experiments.figures import fault_sweep

        print("Running fault-injection sweep ...", file=sys.stderr)
        start = time.monotonic()
        result = fault_sweep.run(
            quick=not args.full,
            loss_rates=args.loss_rates,
            schemes=args.schemes,
        )
        _print_result(result)
        print(
            f"done in {time.monotonic() - start:.1f}s "
            f"({result['undetected_stalls']} undetected stalls)",
            file=sys.stderr,
        )
        return 0 if result["undetected_stalls"] == 0 else 1

    if args.command == "validate-flowsim":
        from repro.flowsim.validate import cross_validate

        names = args.scenario or ["quick", "incast256", "fattree-a2a"]
        print(
            f"Cross-validating fluid tier on: {', '.join(names)} ...",
            file=sys.stderr,
        )
        start = time.monotonic()
        ok, comparisons, messages = cross_validate(
            names,
            tolerance=args.tolerance,
            min_speedup=args.min_speedup,
        )
        for msg in messages:
            print(msg)
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                json.dump(
                    [c.as_dict() for c in comparisons], fh, indent=2
                )
                fh.write("\n")
            print(f"comparisons written to {args.json_out}", file=sys.stderr)
        verdict = "PASS" if ok else "FAIL"
        print(
            f"validate-flowsim: {verdict} in {time.monotonic() - start:.1f}s",
            file=sys.stderr,
        )
        return 0 if ok else 1

    if args.command == "validate-hybrid":
        from repro.hybrid.validate import validate_hybrid

        names = args.scenario or ["incast256", "fattree-a2a"]
        print(
            f"Cross-validating hybrid tier on: {', '.join(names)} ...",
            file=sys.stderr,
        )
        start = time.monotonic()
        ok, comparisons, messages = validate_hybrid(
            names,
            tolerance=args.tolerance,
            min_speedup=args.min_speedup,
            paranoid=args.paranoid,
        )
        for msg in messages:
            print(msg)
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                json.dump(
                    [c.as_dict() for c in comparisons], fh, indent=2
                )
                fh.write("\n")
            print(f"comparisons written to {args.json_out}", file=sys.stderr)
        verdict = "PASS" if ok else "FAIL"
        print(
            f"validate-hybrid: {verdict} in {time.monotonic() - start:.1f}s",
            file=sys.stderr,
        )
        return 0 if ok else 1

    if args.command == "report":
        return _report(args)

    if args.command == "scenarios":
        return _scenarios(args)

    if args.command == "check":
        return _check(args)

    if args.command == "bench":
        from pathlib import Path

        from repro.experiments.bench import (
            DEFAULT_FLOWSIM_FILE,
            DEFAULT_RPC_FILE,
            check_gate,
            gate_metric_for,
            load_bench_file,
            run_and_write,
            scenario_matrix,
        )

        if args.repeats < 1:
            parser.error(f"--repeats must be >= 1, got {args.repeats}")
        matrix = scenario_matrix()
        names = (
            list(matrix)
            if "all" in args.scenario
            else list(dict.fromkeys(args.scenario))
        )
        unknown = [n for n in names if n not in matrix]
        if unknown:
            parser.error(
                f"unknown benchmark scenario(s) {', '.join(unknown)}; "
                f"available scenarios: {', '.join(matrix)} (or 'all')"
            )
        metrics = {name: gate_metric_for(name) for name in names}
        # gate against the history as it stood *before* this run's
        # entry was appended, so a regression cannot hide behind itself
        out = args.out or os.environ.get("REPRO_BENCH_OUT") or "BENCH_engine.json"
        prior = load_bench_file(out)
        side_files = {
            "flows_per_sec": DEFAULT_FLOWSIM_FILE,
            "requests_per_sec": DEFAULT_RPC_FILE,
        }
        for side in {side_files[m] for m in metrics.values() if m in side_files}:
            side_prior = load_bench_file(Path(out).with_name(side))
            prior = {
                "history": prior.get("history", [])
                + side_prior.get("history", [])
            }
        print(f"Running engine benchmarks: {', '.join(names)} ...", file=sys.stderr)
        result = run_and_write(
            repeats=args.repeats, path=args.out, scenarios=names
        )
        _print_result(result)
        units = {
            "events_per_sec": "events/sec",
            "flows_per_sec": "flows/sec",
            "requests_per_sec": "requests/sec",
        }
        for name in names:
            rec = result[name]
            metric = metrics[name]
            print(
                f"{name}: {rec[metric]:,} {units[metric]} "
                f"(median of {rec['repeats']}, stdev {rec['wall_stdev']}s)",
                file=sys.stderr,
            )
        if any(m == "events_per_sec" for m in metrics.values()):
            print(f"-> {result['output_file']}", file=sys.stderr)
        for key in ("flowsim_output_file", "rpc_output_file"):
            if key in result:
                print(f"-> {result[key]}", file=sys.stderr)
        if args.gate is not None:
            records = {name: result[name] for name in names}
            ok, messages = check_gate(
                records, prior, max_regression=args.gate
            )
            for msg in messages:
                print(msg, file=sys.stderr)
            if not ok:
                return 1
        return 0

    module_name, desc = EXPERIMENTS[args.experiment]
    module = importlib.import_module(f"repro.experiments.figures.{module_name}")
    print(f"Running {args.experiment}: {desc} ...", file=sys.stderr)
    start = time.monotonic()
    if args.experiment == "fig07":
        result = module.run()
        result.pop("cdf", None)  # too verbose for a terminal
    else:
        result = module.run(quick=not args.full)
    elapsed = time.monotonic() - start
    # series data is for plotting, not terminals
    if isinstance(result, dict):
        result.pop("series", None)
        result.pop("cdf", None)
    _print_result(result)
    print(f"done in {elapsed:.1f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
