"""repro.simcheck: determinism linter + runtime invariant sanitizer.

Two halves, one contract — the simulator's results must be a pure
function of ``(config, seed)``:

* the **static pass** (:mod:`repro.simcheck.linter`) walks the source
  tree with AST rules SIM001..SIM004 and flags the constructs that
  historically broke that contract (ad-hoc RNGs, wall-clock reads,
  hash-ordered set iteration, float timestamps);
* the **runtime pass** (:mod:`repro.simcheck.sanitizer`) is an opt-in
  ``SimSanitizer`` that checks conservation invariants (packets,
  buffer bytes, PFC pairing, VOQ windows, credits) during and at the
  end of a run, plus a determinism harness
  (:mod:`repro.simcheck.determinism`) that digests the event stream
  and compares repeated same-seed runs.

Run both from the CLI: ``python -m repro.cli check [--sanitize]``.
"""

from repro.simcheck.determinism import EventStreamDigest, run_digest
from repro.simcheck.linter import CheckReport, run_check
from repro.simcheck.rules import Finding
from repro.simcheck.sanitizer import SanitizerConfig, SanitizerError, SimSanitizer

__all__ = [
    "CheckReport",
    "EventStreamDigest",
    "Finding",
    "SanitizerConfig",
    "SanitizerError",
    "SimSanitizer",
    "run_check",
    "run_digest",
]
