"""Runtime invariant sanitizer: conservation checks for live runs.

``SimSanitizer`` is the opt-in runtime half of :mod:`repro.simcheck`.
It follows the faults/telemetry discipline — hot paths pay nothing
when it is off (the counters it reads are unconditional integer
increments that exist anyway; the rare control branches pay one
``sanitizer is None`` check) — and verifies, periodically during a
run and again at the end:

1. **Packet conservation** — DATA packets injected by hosts equal
   packets delivered + dropped (switch admission, link loss, injected
   faults) + trimmed (NDP) + still in flight (egress queues, VOQs,
   the event heap).
2. **Buffer consistency** — each switch's shared-buffer occupancy
   equals the sum of its per-ingress charges *and* the sum of its
   per-port occupancy, never negative, never above capacity.
3. **Pause/resume pairing** — PFC PAUSE/RESUME per port, and
   Floodgate's per-dst pause per (host, dst), strictly alternate.
   (BFC's queue-level pauses are exempt: two switch queues may
   legitimately pause the same upstream queue.)
4. **Theorem-1 bound** — no Floodgate per-dst window goes negative
   (in-flight beyond the VOQ window) or above its initial value,
   except after a forced overflow bypass, which the paper's bound
   explicitly excludes.
5. **Credit conservation** — Floodgate credit frames sent equal
   frames applied upstream + unclaimed + dropped + in flight.
6. **Packet-pool integrity** — the recycler's free list agrees with
   its release/recycle counters, holds no duplicates, and is disjoint
   from every in-flight packet (a free-listed packet reachable from a
   queue, VOQ, or heap entry is a use-after-free in the making).
7. **Rate conservation** (fluid tier only) — the max-min allocation
   never oversubscribes a directed link or Floodgate VOQ cap: the sum
   of allocated flow rates on each resource stays within its capacity.

Violations are collected (with sim timestamps) rather than raised,
unless ``strict=True``.  Enable per run via
``ScenarioConfig(sanitize=SanitizerConfig())`` or the CLI's
``check --sanitize``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.packet import Packet, PacketKind
from repro.sim.process import PeriodicTask
from repro.units import us


class SanitizerError(AssertionError):
    """Raised at the point of violation when ``strict`` is set."""


@dataclass(frozen=True)
class SanitizerConfig:
    """Knobs for :class:`SimSanitizer` (frozen: hashes into cache keys)."""

    #: ns between periodic invariant sweeps during the run
    check_interval: int = us(100)
    #: raise :class:`SanitizerError` at the first violation instead of
    #: collecting messages
    strict: bool = False
    #: cap on collected messages (a broken invariant re-detected every
    #: sweep would otherwise flood the report)
    max_violations: int = 100


class SimSanitizer:
    """Invariant checker wired onto one built :class:`Scenario`."""

    def __init__(self, scenario, config: Optional[SanitizerConfig] = None) -> None:
        self.scenario = scenario
        self.config = config or SanitizerConfig()
        self.sim = scenario.sim
        self.topology = scenario.topology
        self.violations: List[str] = []
        #: messages dropped once ``max_violations`` was reached
        self.truncated = 0
        self.checks_run = 0
        #: lazily resolved: pause/resume pairing assumes lossless
        #: control delivery, so lossy/faulted links switch it off
        self._pairing: Optional[bool] = None
        #: True only during ``final_check``: the hybrid boundary sweep
        #: adds end-of-run equalities that mid-run inflight would fail
        self._final = False
        self._task = self._make_task()
        # rare-path hooks: pause/resume pairing is event-driven, so the
        # nodes get a back-reference (None on unsanitized runs)
        for node in (*self.topology.hosts, *self.topology.switches):
            node.sanitizer = self

    def _make_task(self) -> Optional[PeriodicTask]:
        """Periodic sweep driver; :class:`ShardedSanitizer` returns None.

        Observer-tagged: sweeps read state, so the determinism digests
        exclude their ticks (a sharded run sweeps at executor barriers
        instead of on heap events).
        """
        return PeriodicTask(
            self.sim, self.config.check_interval, self.check_now,
            observer=True,
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._task is not None:
            self._task.start()

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    # -- violation plumbing ------------------------------------------------

    def record(self, message: str) -> None:
        message = f"t={self.sim.now}ns: {message}"
        if self.config.strict:
            raise SanitizerError(message)
        if len(self.violations) < self.config.max_violations:
            self.violations.append(message)
        else:
            self.truncated += 1

    # -- event-driven pairing hooks (called from rare control branches) ----

    def _pairing_applicable(self) -> bool:
        """Pairing is only sound when control frames cannot be lost.

        Resolved at the first pause/resume event (loss/fault config is
        final by then): a dropped PAUSE would make the later RESUME
        look unmatched, which is loss, not a protocol bug.
        """
        if self._pairing is None:
            self._pairing = not any(
                link.loss_rate > 0.0 or link.fault is not None
                for link in self.topology.links
            )
        return self._pairing

    def note_pfc(self, node, port_index: int, pause: bool, was_paused: bool) -> None:
        """A PFC PAUSE/RESUME frame reached ``node`` on ``port_index``."""
        if not self._pairing_applicable():
            return
        if pause and was_paused:
            self.record(
                f"double PFC PAUSE at {node.name} port {port_index} "
                "(already paused; pauses must strictly alternate with resumes)"
            )
        elif not pause and not was_paused:
            self.record(
                f"PFC RESUME without matching PAUSE at {node.name} "
                f"port {port_index}"
            )

    def note_dst_pause(self, host, dst: int, pause: bool, was_paused: bool) -> None:
        """A Floodgate dstPause/dstResume frame reached ``host``."""
        if not self._pairing_applicable():
            return
        if pause and was_paused:
            self.record(
                f"double dstPause at {host.name} for dst {dst} "
                "(ToR must not re-pause an already-paused source)"
            )
        elif not pause and not was_paused:
            self.record(
                f"dstResume without matching dstPause at {host.name} "
                f"for dst {dst}"
            )

    # -- in-flight walk ----------------------------------------------------

    def _inflight(self) -> Tuple[int, int]:
        """(DATA, CREDIT) packets at rest anywhere in the system.

        Pure read-only walk: egress queues, extension VOQs, and live
        heap entries whose args carry a packet (propagation and
        serialization events).
        """
        data = credit = 0
        kinds = PacketKind
        for node in (*self.topology.hosts, *self.topology.switches):
            for port in node.ports:
                for queue in port.queues:
                    for pkt in queue:
                        if pkt.kind == kinds.DATA:
                            data += 1
                        elif pkt.kind == kinds.CREDIT:
                            credit += 1
        for ext in self.scenario.extensions:
            pool = getattr(ext, "pool", None)
            if pool is None:
                continue
            for voq in pool.voqs:
                for pkt in voq.packets:
                    if pkt.kind == kinds.DATA:
                        data += 1
                    elif pkt.kind == kinds.CREDIT:
                        credit += 1
        for _time, _fn, args in self.sim.pending_items():
            for arg in args:
                if isinstance(arg, Packet):
                    if arg.kind == kinds.DATA:
                        data += 1
                    elif arg.kind == kinds.CREDIT:
                        credit += 1
        return data, credit

    # -- the invariant sweeps ----------------------------------------------

    def check_now(self) -> None:
        """Run every pull-based invariant against current state."""
        self.checks_run += 1
        inflight_data, inflight_credit = self._inflight()
        self._check_data_conservation(inflight_data)
        self._check_buffers()
        self._check_windows()
        self._check_credits(inflight_credit)
        self._check_pool()
        self._check_flow_rates()
        self._check_hybrid_boundary()

    def final_check(self) -> None:
        """End-of-run sweep (the periodic task must be stopped first)."""
        self.stop()
        self._final = True
        self.check_now()

    def _check_data_conservation(self, inflight: int) -> None:
        topo = self.topology
        injected = sum(h.tx_data_packets for h in topo.hosts)
        delivered = sum(h.rx_data_packets for h in topo.hosts)
        dropped = sum(sw.dropped_packets for sw in topo.switches)
        link_dropped = fault_dropped = 0
        for link in topo.links:
            link_dropped += link.dropped_data_packets
            if link.fault is not None:
                fault_dropped += link.fault.injected_drops_data
        trimmed = sum(
            getattr(ext, "trimmed_packets", 0) for ext in self.scenario.extensions
        )
        accounted = delivered + dropped + link_dropped + fault_dropped + trimmed
        if injected != accounted + inflight:
            self.record(
                "DATA packet conservation broken: "
                f"injected={injected} != delivered={delivered} "
                f"+ switch-dropped={dropped} + link-dropped={link_dropped} "
                f"+ fault-dropped={fault_dropped} + trimmed={trimmed} "
                f"+ in-flight={inflight} (= {accounted + inflight}, "
                f"off by {injected - accounted - inflight})"
            )

    # -- sweep scope (ShardedSanitizer narrows these to one domain) --------

    def _swept_switches(self):
        return self.topology.switches

    def _swept_extensions(self):
        return self.scenario.extensions

    def _check_buffers(self) -> None:
        for sw in self._swept_switches():
            buf = sw.buffer
            if buf is None:
                continue
            name = sw.name
            if buf.used < 0:
                self.record(f"{name}: shared-buffer occupancy negative ({buf.used})")
            if buf.used > buf.capacity:
                self.record(
                    f"{name}: shared-buffer occupancy {buf.used} exceeds "
                    f"capacity {buf.capacity}"
                )
            negative = [i for i, b in enumerate(buf.ingress_bytes) if b < 0]
            if negative:
                self.record(
                    f"{name}: negative per-ingress buffer charge on "
                    f"port(s) {negative}"
                )
            ingress_total = sum(buf.ingress_bytes)
            if buf.used != ingress_total:
                self.record(
                    f"{name}: shared-buffer occupancy {buf.used} != "
                    f"sum of per-ingress charges {ingress_total}"
                )
            port_total = sum(sw._port_bytes)
            if buf.used != port_total:
                self.record(
                    f"{name}: shared-buffer occupancy {buf.used} != "
                    f"sum of per-port occupancy {port_total}"
                )

    def _check_windows(self) -> None:
        for ext in self._swept_extensions():
            windows = getattr(ext, "windows", None)
            if windows is None:
                continue
            pool = getattr(ext, "pool", None)
            if pool is not None and pool.overflow_bypasses:
                # forced bypasses send without consuming window; the
                # Theorem-1 bound explicitly excludes them
                continue
            name = ext.switch.name
            for dst in sorted(windows.window):
                win = windows.window[dst]
                init = windows.initial.get(dst, win)
                if win < 0:
                    self.record(
                        f"{name}: per-dst in-flight exceeds the VOQ window "
                        f"for dst {dst} (window={win} < 0, initial={init}; "
                        "Theorem-1 bound violated)"
                    )
                elif win > init:
                    self.record(
                        f"{name}: window overshoot for dst {dst} "
                        f"(window={win} > initial={init}: more credits "
                        "returned than packets sent)"
                    )

    def _check_credits(self, inflight: int) -> None:
        sent = applied = 0
        have_floodgate = False
        for ext in self.scenario.extensions:
            credits = getattr(ext, "credits", None)
            if credits is None:
                continue
            have_floodgate = True
            sent += credits.credits_sent
            applied += ext.credit_frames_rx
        if not have_floodgate:
            return
        hybrid = getattr(self.scenario, "hybrid", None)
        if hybrid is not None:
            # boundary absorption synthesizes the credit the absorbed
            # fabric would have generated; it is applied at the hot ToR
            # like any other, so it joins the sent side of the ledger
            sent += hybrid.synthesized_credit_frames
        unclaimed = sum(
            sw.unclaimed_credit_frames for sw in self.topology.switches
        )
        dropped = 0
        for link in self.topology.links:
            dropped += link.dropped_credit_packets
            if link.fault is not None:
                dropped += link.fault.injected_drops_credit
        accounted = applied + unclaimed + dropped + inflight
        if sent != accounted:
            self.record(
                "credit conservation broken: "
                f"generated={sent} != applied={applied} "
                f"+ unclaimed={unclaimed} + dropped={dropped} "
                f"+ in-flight={inflight} (= {accounted}, "
                f"off by {sent - accounted})"
            )

    def _check_pool(self) -> None:
        """Packet recycler integrity (scenarios built with pooling on).

        Counter agreement is cheap; the disjointness walk re-traverses
        the same structures as :meth:`_inflight`, which is fine at
        sanitizer cadence (the sanitizer never runs on benchmark
        paths).
        """
        pool = getattr(self.scenario, "pool", None)
        if pool is None or not pool.enabled:
            return
        self._check_one_pool(
            pool,
            (*self.topology.hosts, *self.topology.switches),
            self.scenario.extensions,
            self.sim.pending_items(),
        )

    def _check_one_pool(self, pool, nodes, extensions, pending_items) -> None:
        """Integrity sweep for one recycler against one ownership scope.

        ``nodes``/``extensions``/``pending_items`` bound the
        disjointness walk: serial runs pass the whole fabric, sharded
        runs pass one domain's slice per per-domain pool.
        """
        free = pool.free_count()
        outstanding = pool.released - pool.recycled
        if free != outstanding:
            self.record(
                f"packet pool counter drift: free list holds {free} "
                f"packets but released({pool.released}) - "
                f"recycled({pool.recycled}) = {outstanding}"
            )
        free_ids = {id(p) for p in pool.free_packets()}
        if len(free_ids) != free:
            self.record(
                f"packet pool double-release: free list holds {free} "
                f"entries but only {len(free_ids)} distinct packets"
            )
        if not free_ids:
            return
        for node in nodes:
            for port in node.ports:
                for queue in port.queues:
                    for pkt in queue:
                        if id(pkt) in free_ids:
                            self.record(
                                f"use-after-free: packet on {node.name} "
                                f"port {port.index} queue is also on the "
                                "pool free list"
                            )
        for ext in extensions:
            voq_pool = getattr(ext, "pool", None)
            if voq_pool is None:
                continue
            for voq in voq_pool.voqs:
                for pkt in voq.packets:
                    if id(pkt) in free_ids:
                        self.record(
                            f"use-after-free: packet in a VOQ of "
                            f"{ext.switch.name} is also on the pool "
                            "free list"
                        )
        for _time, fn, args in pending_items:
            for arg in args:
                if isinstance(arg, Packet) and id(arg) in free_ids:
                    name = getattr(fn, "__qualname__", repr(fn))
                    self.record(
                        f"use-after-free: packet in pending event "
                        f"{name} is also on the pool free list"
                    )

    def _check_flow_rates(self) -> None:
        """Fluid-tier rate conservation (no-op on packet-level runs).

        The packet sweeps above all pass vacuously in flow mode (zero
        packets anywhere); this is the invariant that actually bites
        there — allocated rates must fit inside every link and VOQ cap.
        """
        fluid = getattr(self.scenario, "fluid", None)
        if fluid is None:
            return
        for message in fluid.conservation_errors():
            self.record(message)

    def _check_hybrid_boundary(self) -> None:
        """Hybrid-tier byte conservation at the fluid/packet boundary."""
        hybrid = getattr(self.scenario, "hybrid", None)
        if hybrid is None:
            return
        for message in hybrid.boundary_errors(final=self._final):
            self.record(message)

    # -- reporting ----------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Picklable counters for experiment plumbing."""
        return {
            "checks_run": self.checks_run,
            "violations": len(self.violations),
            "violations_truncated": self.truncated,
        }


# ---------------------------------------------------------------------------
# sharded execution (repro.sim.sharded)
# ---------------------------------------------------------------------------


def conservation_violations(
    ledgers: List[Dict[str, int]],
    extra_data: int = 0,
    extra_credit: int = 0,
) -> List[str]:
    """Sum per-domain ledgers and evaluate the conservation equations.

    Message text matches the serial sanitizer's exactly (minus the
    ``t=`` prefix the caller adds): the per-domain ledgers are disjoint
    partial sums of the serial fabric-wide walk, so the summed ledger
    feeds the very same arithmetic.  ``extra_data`` / ``extra_credit``
    count packets at rest in inter-domain transit (mailbox or wire
    boxes) that no domain's heap can see.
    """

    def total(key: str) -> int:
        return sum(ledger[key] for ledger in ledgers)

    messages: List[str] = []
    injected = total("injected")
    delivered = total("delivered")
    dropped = total("switch_dropped")
    link_dropped = total("link_dropped")
    fault_dropped = total("fault_dropped")
    trimmed = total("trimmed")
    inflight = total("inflight_data") + extra_data
    accounted = delivered + dropped + link_dropped + fault_dropped + trimmed
    if injected != accounted + inflight:
        messages.append(
            "DATA packet conservation broken: "
            f"injected={injected} != delivered={delivered} "
            f"+ switch-dropped={dropped} + link-dropped={link_dropped} "
            f"+ fault-dropped={fault_dropped} + trimmed={trimmed} "
            f"+ in-flight={inflight} (= {accounted + inflight}, "
            f"off by {injected - accounted - inflight})"
        )
    if any(ledger["have_floodgate"] for ledger in ledgers):
        sent = total("credit_sent")
        applied = total("credit_applied")
        unclaimed = total("credit_unclaimed")
        credit_dropped = total("credit_dropped")
        credit_inflight = total("inflight_credit") + extra_credit
        credit_accounted = applied + unclaimed + credit_dropped + credit_inflight
        if sent != credit_accounted:
            messages.append(
                "credit conservation broken: "
                f"generated={sent} != applied={applied} "
                f"+ unclaimed={unclaimed} + dropped={credit_dropped} "
                f"+ in-flight={credit_inflight} (= {credit_accounted}, "
                f"off by {sent - credit_accounted})"
            )
    return messages


class _ShardClock:
    """Clock facade standing in for the single engine a serial run has.

    ``now`` is assigned by the executor at each sweep barrier (there is
    no one authoritative engine clock between barriers); ``pending_items``
    chains every domain heap plus, optionally, in-transit boundary
    messages that live in no heap.
    """

    __slots__ = ("sims", "extra", "now")

    def __init__(self, sims, extra=None) -> None:
        self.sims = sims
        self.extra = extra
        self.now = 0

    def pending_items(self):
        for sim in self.sims:
            yield from sim.pending_items()
        if self.extra is not None:
            yield from self.extra()


class ShardedSanitizer(SimSanitizer):
    """Domain-local invariant sweeps for the sharded engine.

    The serial sanitizer's fabric-wide walks would read other domains'
    state mid-window — exactly the aliasing SIM005 and the isolation
    sanitizer forbid.  This variant keeps every sweep domain-local:

    * each domain contributes a **conservation ledger** of the counters
      its own hosts/switches/links/extensions hold; summing the ledgers
      in domain order reproduces the serial equations exactly (the
      partials are disjoint),
    * buffer/window/pool sweeps run against one domain's slice at a
      time (per-domain packet pools get per-domain disjointness walks),
    * in worker mode (``my_domain`` set) conservation is skipped — no
      worker sees the whole fabric — and the final ledger ships to the
      parent, which sums all of them via :func:`conservation_violations`.

    Sweeps are driven from executor barriers (``check_now`` at every
    ``check_interval`` boundary), not from a heap task, so they never
    appear in event streams and digests stay serial-comparable.  At a
    barrier every domain has executed precisely the events before the
    sweep time, so the state read is the serial cut.
    """

    def __init__(
        self,
        scenario,
        sims,
        domain_of: Dict[int, int],
        pools,
        config: Optional[SanitizerConfig] = None,
        my_domain: Optional[int] = None,
        extra_pending=None,
    ) -> None:
        self.sims = sims
        self.domain_of = domain_of
        self.pools = pools
        self.my_domain = my_domain
        self._extra_pending = extra_pending
        super().__init__(scenario, config)
        # replace the engine handle with the barrier-driven facade
        self.sim = _ShardClock(sims, extra_pending)

    def _make_task(self) -> Optional[PeriodicTask]:
        return None  # swept from executor barriers, not a heap task

    # -- domain scoping ----------------------------------------------------

    def _domains(self):
        if self.my_domain is not None:
            return (self.my_domain,)
        return range(len(self.sims))

    def _domain_hosts(self, d: int):
        return [h for h in self.topology.hosts if self.domain_of[h.node_id] == d]

    def _domain_switches(self, d: int):
        return [
            sw for sw in self.topology.switches
            if self.domain_of[sw.node_id] == d
        ]

    def _domain_extensions(self, d: int):
        return [
            ext for ext in self.scenario.extensions
            if self.domain_of[ext.switch.node_id] == d
        ]

    def _swept_switches(self):
        if self.my_domain is None:
            return self.topology.switches
        return self._domain_switches(self.my_domain)

    def _swept_extensions(self):
        if self.my_domain is None:
            return self.scenario.extensions
        return self._domain_extensions(self.my_domain)

    # -- per-domain ledger -------------------------------------------------

    def domain_ledger(self, d: int) -> Dict[str, int]:
        """Conservation counters owned by domain ``d``.

        Link attribution: an in-process run holds each link object once
        and charges it to ``node_a``'s domain, so every link is counted
        exactly once.  A worker counts *every* link in its private copy
        — only events the worker actually ran increment those counters,
        so worker ledgers are still disjoint partials of the serial
        totals (a boundary link accrues send-side drops in the sender's
        copy and nothing in the receiver's).
        """
        hosts = self._domain_hosts(d)
        switches = self._domain_switches(d)
        exts = self._domain_extensions(d)
        if self.my_domain is not None:
            links = self.topology.links
        else:
            links = [
                link for link in self.topology.links
                if self.domain_of[link.node_a.node_id] == d
            ]

        kinds = PacketKind
        data = credit = 0
        for node in (*hosts, *switches):
            for port in node.ports:
                for queue in port.queues:
                    for pkt in queue:
                        if pkt.kind == kinds.DATA:
                            data += 1
                        elif pkt.kind == kinds.CREDIT:
                            credit += 1
        for ext in exts:
            pool = getattr(ext, "pool", None)
            if pool is None:
                continue
            for voq in pool.voqs:
                for pkt in voq.packets:
                    if pkt.kind == kinds.DATA:
                        data += 1
                    elif pkt.kind == kinds.CREDIT:
                        credit += 1
        for _time, _fn, args in self.sims[d].pending_items():
            for arg in args:
                if isinstance(arg, Packet):
                    if arg.kind == kinds.DATA:
                        data += 1
                    elif arg.kind == kinds.CREDIT:
                        credit += 1

        link_dropped = fault_dropped = credit_dropped = 0
        for link in links:
            link_dropped += link.dropped_data_packets
            credit_dropped += link.dropped_credit_packets
            if link.fault is not None:
                fault_dropped += link.fault.injected_drops_data
                credit_dropped += link.fault.injected_drops_credit

        credit_sent = credit_applied = 0
        have_floodgate = False
        for ext in exts:
            credits = getattr(ext, "credits", None)
            if credits is None:
                continue
            have_floodgate = True
            credit_sent += credits.credits_sent
            credit_applied += ext.credit_frames_rx

        return {
            "injected": sum(h.tx_data_packets for h in hosts),
            "delivered": sum(h.rx_data_packets for h in hosts),
            "switch_dropped": sum(sw.dropped_packets for sw in switches),
            "link_dropped": link_dropped,
            "fault_dropped": fault_dropped,
            "trimmed": sum(getattr(e, "trimmed_packets", 0) for e in exts),
            "inflight_data": data,
            "credit_sent": credit_sent,
            "credit_applied": credit_applied,
            "credit_unclaimed": sum(
                sw.unclaimed_credit_frames for sw in switches
            ),
            "credit_dropped": credit_dropped,
            "inflight_credit": credit,
            "have_floodgate": have_floodgate,
        }

    def _transit_packets(self) -> Tuple[int, int]:
        """(DATA, CREDIT) packets in inter-domain transit boxes."""
        if self._extra_pending is None:
            return 0, 0
        data = credit = 0
        kinds = PacketKind
        for _time, _fn, args in self._extra_pending():
            for arg in args:
                if isinstance(arg, Packet):
                    if arg.kind == kinds.DATA:
                        data += 1
                    elif arg.kind == kinds.CREDIT:
                        credit += 1
        return data, credit

    # -- the sweep ---------------------------------------------------------

    def check_now(self) -> None:
        self.checks_run += 1
        if self.my_domain is None:
            extra_data, extra_credit = self._transit_packets()
            ledgers = [self.domain_ledger(d) for d in range(len(self.sims))]
            for message in conservation_violations(
                ledgers, extra_data, extra_credit
            ):
                self.record(message)
        # worker mode: conservation needs the whole fabric, so it moves
        # to the parent — workers ship their final ledger instead
        self._check_buffers()
        self._check_windows()
        self._check_pool()
        self._check_flow_rates()

    def _check_pool(self) -> None:
        for d in self._domains():
            pool = self.pools[d] if self.pools is not None else None
            if pool is None or not getattr(pool, "enabled", False):
                continue
            self._check_one_pool(
                pool,
                (*self._domain_hosts(d), *self._domain_switches(d)),
                self._domain_extensions(d),
                self.sims[d].pending_items(),
            )
