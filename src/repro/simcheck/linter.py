"""Driver for the simcheck static pass.

Walks the tree, applies the per-rule path scopes, honours inline
suppressions (``# simcheck: ignore[SIM001] -- reason``) and the
committed repo-root allowlist (``simcheck-allowlist.txt``), and
returns a :class:`CheckReport`.

Allowlist format, one entry per line::

    SIM002 src/repro/cli.py -- operator-facing wall timings

i.e. ``RULE path-glob -- justification``.  The justification is
mandatory: an entry without one is a configuration error, so every
suppression in the repo carries its reason in-tree.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.simcheck.rules import RULES, Finding, scan_source

ALLOWLIST_NAME = "simcheck-allowlist.txt"

#: directories scanned when no explicit paths are given
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")

#: directory names never descended into
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", ".cache", "build"}
)

_SUPPRESS_RE = re.compile(r"#\s*simcheck:\s*ignore\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class AllowlistEntry:
    rule: str
    glob: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        return finding.rule == self.rule and (
            fnmatch.fnmatchcase(finding.path, self.glob)
            or finding.path == self.glob
        )


@dataclass
class CheckReport:
    """Outcome of one linter run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    allowlisted: List[Finding] = field(default_factory=list)
    #: suppression hygiene: allowlist entries whose path-glob matched
    #: no scanned file (stale after a rename/delete).  Only populated
    #: on full default-path runs — a partial `check path/` would
    #: otherwise cry wolf about entries for files outside the subset.
    dead_allowlist: List[AllowlistEntry] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.dead_allowlist

    def summary(self) -> str:
        return (
            f"{len(self.findings)} finding(s) in {self.files_scanned} file(s) "
            f"({len(self.suppressed)} inline-suppressed, "
            f"{len(self.allowlisted)} allowlisted, "
            f"{len(self.dead_allowlist)} dead allowlist entr"
            f"{'y' if len(self.dead_allowlist) == 1 else 'ies'})"
        )


def find_root(start: Optional[Path] = None) -> Path:
    """Repo root: nearest ancestor of `start` holding pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for cand in (here, *here.parents):
        if (cand / "pyproject.toml").is_file():
            return cand
    return here


def rule_applies(rule: str, relpath: str) -> bool:
    """Per-rule path scope (see the rule catalogue in DESIGN.md)."""
    if rule == "SIM001":
        return relpath.startswith("src/repro/") and relpath != "src/repro/sim/rng.py"
    if rule == "SIM002":
        return (
            not relpath.startswith("benchmarks/")
            and relpath != "src/repro/telemetry/profile.py"
        )
    if rule == "SIM003":
        return any(
            relpath.startswith(f"src/repro/{pkg}/")
            for pkg in ("net", "floodgate", "baselines")
        )
    if rule in ("SIM005", "SIM007"):
        # domain-executed code, plus the sharded engine itself (whose
        # boundary contexts are exempted inside the rule)
        return relpath == "src/repro/sim/sharded.py" or any(
            relpath.startswith(f"src/repro/{pkg}/")
            for pkg in ("net", "floodgate", "baselines", "faults")
        )
    if rule == "SIM006":
        # packages imported by both the sharded workers and per-domain
        # code: a module/class-level mutable there is cross-domain state
        return any(
            relpath.startswith(f"src/repro/{pkg}/")
            for pkg in (
                "net",
                "floodgate",
                "baselines",
                "faults",
                "workloads",
                "stats",
                "telemetry",
            )
        )
    if rule == "SIM008":
        return any(
            relpath.startswith(f"src/repro/{pkg}/")
            for pkg in ("net", "floodgate", "baselines", "stats", "telemetry")
        )
    # SIM000 (parse errors) and SIM004 apply everywhere
    return True


def load_allowlist(path: Path) -> List[AllowlistEntry]:
    """Parse the allowlist; raises on entries without a justification."""
    entries: List[AllowlistEntry] = []
    if not path.is_file():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, sep, reason = line.partition("--")
        reason = reason.strip()
        if not sep or not reason:
            raise ValueError(
                f"{path.name}:{lineno}: allowlist entry needs a "
                f"`-- justification`: {line!r}"
            )
        parts = head.split()
        if len(parts) != 2 or parts[0] not in RULES:
            raise ValueError(
                f"{path.name}:{lineno}: expected `RULE path-glob -- reason`, "
                f"got: {line!r}"
            )
        entries.append(AllowlistEntry(parts[0], parts[1], reason))
    return entries


def iter_py_files(root: Path, paths: Sequence[str]) -> Iterable[Path]:
    for rel in paths:
        base = root / rel
        if base.is_file() and base.suffix == ".py":
            yield base
        elif base.is_dir():
            for sub in sorted(base.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.relative_to(root).parts):
                    yield sub


def _inline_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    m = _SUPPRESS_RE.search(lines[finding.line - 1])
    if m is None:
        return False
    rules = {r.strip() for r in m.group(1).split(",")}
    return finding.rule in rules


def check_file(
    path: Path, root: Path, allowlist: Sequence[AllowlistEntry]
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Lint one file -> (active, inline-suppressed, allowlisted) findings."""
    relpath = path.relative_to(root).as_posix()
    enabled = [rule for rule in RULES if rule_applies(rule, relpath)]
    source = path.read_text(encoding="utf-8")
    raw = scan_source(source, relpath, enabled)
    if not raw:
        return [], [], []
    lines = source.splitlines()
    active: List[Finding] = []
    suppressed: List[Finding] = []
    allowlisted: List[Finding] = []
    for finding in raw:
        if _inline_suppressed(finding, lines):
            suppressed.append(finding)
        elif any(entry.matches(finding) for entry in allowlist):
            allowlisted.append(finding)
        else:
            active.append(finding)
    return active, suppressed, allowlisted


def run_check(
    root: Optional[Path] = None,
    paths: Optional[Sequence[str]] = None,
    allowlist_path: Optional[Path] = None,
) -> CheckReport:
    """Lint `paths` (default: the standard tree) under the repo `root`."""
    root = (root or find_root()).resolve()
    allowlist = load_allowlist(allowlist_path or root / ALLOWLIST_NAME)
    report = CheckReport()
    scanned: List[str] = []
    for path in iter_py_files(root, paths or DEFAULT_PATHS):
        active, suppressed, allowlisted = check_file(path, root, allowlist)
        scanned.append(path.relative_to(root).as_posix())
        report.findings.extend(active)
        report.suppressed.extend(suppressed)
        report.allowlisted.extend(allowlisted)
        report.files_scanned += 1
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if paths is None:
        report.dead_allowlist = [
            entry
            for entry in allowlist
            if not any(
                fnmatch.fnmatchcase(rel, entry.glob) or rel == entry.glob
                for rel in scanned
            )
        ]
    return report
