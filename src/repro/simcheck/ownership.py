"""Cross-module ownership dataflow for the shard-safety rules.

The sharded engine (:mod:`repro.sim.sharded`) partitions the topology
into execution domains keyed by ``node_id`` — ``partition()`` builds
``domain_of[node.node_id]`` and every object hanging off a node (ports,
intra-domain links, VOQ state, credit tables) inherits that domain.
Cross-domain traffic is only allowed through the boundary-tuple
exchange: the channel classes and flush/partition helpers defined in
``sim/sharded.py``.

This module is the static mirror of that contract.  It provides:

* :func:`build_ownership_map` — parse ``sim/sharded.py`` and recover
  the ownership model from the source of truth: the attribute
  ``partition()`` keys domains on, and the names of the boundary
  contexts (channel classes, ``partition``, mailbox flushing, domain
  binding) inside which cross-domain access is the whole point.
* :func:`foreign_locals` — per-function dataflow marking local names
  bound to another domain's objects (``peer = switch.peer(i)``,
  ``other = link.peer_of(node)``, ...).
* :func:`classify` — classify one mutation site as ``owned`` (root is
  ``self``/a domain-local name), ``boundary`` (inside a boundary
  context of ``sim/sharded.py``), or ``foreign`` (the write reaches
  its target through a foreign alias attribute or a foreign-derived
  local).

SIM005 flags ``foreign`` sites; SIM007 flags callbacks/arguments
derived from foreign handles being registered on the local engine.
The runtime complement is :mod:`repro.simcheck.isolation`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

#: attributes that cross to *another* node's object graph.  Reading
#: them is fine (schemes inspect ``peer.level`` to classify hops);
#: writing through them mutates state the peer's domain owns.
FOREIGN_ALIAS_ATTRS = frozenset(
    {"peer", "_peer", "node_a", "node_b", "dst_port", "src_port", "upstream"}
)

#: method calls that *return* another node's object (``switch.peer(i)``,
#: ``link.peer_of(node)``, ``link.port_of(node)``)
FOREIGN_ALIAS_CALLS = frozenset({"peer", "peer_of", "port_of"})

#: method names that mutate their receiver — a call through a foreign
#: handle to one of these is a cross-domain write
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "enqueue",
        "enqueue_control",
        "extend",
        "insert",
        "pop",
        "popleft",
        "push",
        "receive",
        "remove",
        "setdefault",
        "update",
    }
)

#: functions in sim/sharded.py that are boundary contexts even though
#: their names do not say "channel"
_BOUNDARY_SEED = frozenset(
    {
        "partition_nodes",
        "_bind_domains",
        "_flush_mailboxes",
        "_validate_fault_plan",
        "_worker_main",
    }
)

SHARDED_RELPATH = "src/repro/sim/sharded.py"


@dataclass(frozen=True)
class OwnershipMap:
    """What ``sim/sharded.py`` says about domain ownership."""

    #: node attribute partition() keys domains on (``node_id``)
    domain_key: str
    #: class/function names forming the boundary-tuple exchange
    boundary_contexts: FrozenSet[str]
    #: where the map was read from (for error messages)
    source: str = SHARDED_RELPATH

    def is_boundary_scope(self, scope_names: Iterable[str]) -> bool:
        return any(name in self.boundary_contexts for name in scope_names)


@dataclass(frozen=True)
class MutationSite:
    """One classified write, for tests and the ownership report."""

    path: str
    line: int
    col: int
    target: str
    classification: str  # "owned" | "boundary" | "foreign"


def _find_domain_key(tree: ast.AST) -> str:
    """The attribute ``partition_nodes()`` subscripts ``domain_of`` with."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name.startswith(
            "partition"
        ):
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Subscript)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "domain_of"
                    and isinstance(sub.slice, ast.Attribute)
                ):
                    return sub.slice.attr
    return "node_id"


def boundary_contexts(tree: ast.AST) -> FrozenSet[str]:
    """Boundary context names present in a parsed ``sim/sharded.py``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and "Channel" in node.name:
            names.add(node.name)
        elif isinstance(node, ast.FunctionDef) and node.name in _BOUNDARY_SEED:
            names.add(node.name)
    return frozenset(names)


def build_ownership_map(root: Optional[Path] = None) -> OwnershipMap:
    """Parse ``sim/sharded.py`` under ``root`` into an OwnershipMap.

    Falls back to the seed boundary set when the file is missing (the
    lint rules still work; only sharded.py's own exemptions narrow).
    """
    if root is not None:
        path = Path(root) / SHARDED_RELPATH
    else:
        path = Path(__file__).resolve().parents[1] / "sim" / "sharded.py"
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return OwnershipMap("node_id", frozenset(_BOUNDARY_SEED))
    return OwnershipMap(_find_domain_key(tree), boundary_contexts(tree))


# -- expression classification ---------------------------------------------


def _is_foreign_expr(node: ast.expr, env: FrozenSet[str]) -> bool:
    """Does this expression reach another domain's object graph?

    True when the attribute/call chain crosses a foreign alias
    (``link.dst_port``, ``switch.peer(i)``) or is rooted at a local
    name ``env`` marked foreign-derived.
    """
    while True:
        if isinstance(node, ast.Attribute):
            if node.attr in FOREIGN_ALIAS_ATTRS:
                return True
            node = node.value
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in FOREIGN_ALIAS_CALLS
            ):
                return True
            node = func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id in env
        else:
            return False


def foreign_locals(func: ast.AST) -> FrozenSet[str]:
    """Local names this function binds to foreign-derived expressions.

    Conservative flow-insensitive pass: a name assigned a foreign
    expression *anywhere* in the function counts, so later writes
    through it are classified foreign even across rebinding.
    """
    env: Set[str] = set()
    # iterate to a fixpoint so chains (`peer = sw.peer(i); p2 = peer`)
    # propagate; bounded by the number of assignments
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            else:
                continue
            if not _is_foreign_expr(value, frozenset(env)):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id not in env:
                    env.add(target.id)
                    changed = True
    return frozenset(env)


def _root_and_chain(node: ast.expr) -> Tuple[Optional[str], List[str]]:
    """(root name, attribute chain) of an attribute/subscript path."""
    chain: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                chain.append(func.attr)
                node = func.value
            else:
                node = func
        elif isinstance(node, ast.Name):
            chain.reverse()
            return node.id, chain
        else:
            chain.reverse()
            return None, chain


def classify(
    target: ast.expr,
    env: FrozenSet[str],
    scope_names: Iterable[str] = (),
    omap: Optional[OwnershipMap] = None,
) -> str:
    """Classify one mutation target: owned | boundary | foreign."""
    if omap is not None and omap.is_boundary_scope(scope_names):
        return "boundary"
    # the final attribute is the slot being written; only the *path to
    # the object* decides ownership, so classify the value under it
    inner = target.value if isinstance(target, ast.Attribute) else target
    if _is_foreign_expr(inner, env):
        return "foreign"
    return "owned"


def describe(node: ast.expr) -> str:
    """Compact source-ish rendering of a target for messages."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs
        root, chain = _root_and_chain(node)
        return ".".join(filter(None, [root, *chain]))


def classify_file(
    source: str, relpath: str, omap: Optional[OwnershipMap] = None
) -> List[MutationSite]:
    """Every attribute-write site in a file, classified.

    Used by tests and the ownership report; the lint rules (SIM005/7)
    consume the same helpers directly from the rule visitor.
    """
    tree = ast.parse(source, filename=relpath)
    sites: List[MutationSite] = []
    boundary = (
        omap.boundary_contexts
        if omap is not None and relpath == omap.source
        else frozenset()
    )

    def walk_scope(node: ast.AST, scopes: Tuple[str, ...]) -> None:
        env = frozenset()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env = foreign_locals(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                walk_scope(child, scopes + (child.name,))
                continue
            for sub in ast.walk(child):
                targets: List[ast.expr] = []
                if isinstance(sub, ast.Assign):
                    targets = [
                        t for t in sub.targets if isinstance(t, ast.Attribute)
                    ]
                elif isinstance(sub, ast.AugAssign) and isinstance(
                    sub.target, ast.Attribute
                ):
                    targets = [sub.target]
                for tgt in targets:
                    in_boundary = any(s in boundary for s in scopes)
                    cls = (
                        "boundary"
                        if in_boundary
                        else classify(tgt, env)
                    )
                    sites.append(
                        MutationSite(
                            relpath,
                            tgt.lineno,
                            tgt.col_offset,
                            describe(tgt),
                            cls,
                        )
                    )

    walk_scope(tree, ())
    sites.sort(key=lambda s: (s.line, s.col))
    return sites
