"""Determinism harness: event-stream digests and same-seed comparison.

``EventStreamDigest`` plugs into the engine's profiler slot (the same
interface as :class:`repro.telemetry.profile.EngineProfiler`) and
folds every executed event — its integer-ns timestamp, callback
qualname, and heap depth — into a SHA-256.  Two runs with the same
``(config, seed)`` must produce byte-identical digests; any hidden
source of nondeterminism (hash-ordered iteration, wall-clock leakage,
ad-hoc RNGs) shows up as a digest mismatch long before it shows up as
a wrong figure.

The module-level harness functions run a scenario twice per scheme and
also compare serial vs pooled sweep summaries
(:meth:`ResultSummary.canonical_bytes`), covering the result cache's
assumption that worker processes reproduce in-process runs exactly.

Experiment modules are imported lazily inside the functions so that
``repro.simcheck`` stays importable from :mod:`repro.experiments`
without a cycle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: scheme label -> ScenarioConfig.flow_control value, the four schemes
#: the acceptance criteria name (DCQCN runs with no switch assistance)
SCHEMES: Tuple[Tuple[str, str], ...] = (
    ("dcqcn", "none"),
    ("floodgate", "floodgate"),
    ("bfc", "bfc"),
    ("ndp", "ndp"),
)

#: schemes the sharded-equivalence check covers: the sharded engine is
#: a drop-in execution strategy, so it is proven against the schemes
#: with the richest switch-side state (pfc-tag replaces ndp here — its
#: per-port pause machinery exercises the boundary-credit path the
#: conservative windows must not reorder)
SHARDED_SCHEMES: Tuple[Tuple[str, str], ...] = (
    ("dcqcn", "none"),
    ("floodgate", "floodgate"),
    ("bfc", "bfc"),
    ("pfc_tag", "pfc-tag"),
)


class EventStreamDigest:
    """Profiler-slot instrument hashing the executed event stream.

    Satisfies the engine's profiler contract (``note`` + a
    ``wall_seconds`` accumulator) but ignores wall durations entirely:
    only simulated time, callback identity, and heap depth — all
    deterministic quantities — enter the hash.
    """

    __slots__ = ("_sim", "_sha", "_depth", "events", "wall_seconds")

    def __init__(self, sim, include_depth: bool = True) -> None:
        self._sim = sim
        self._sha = hashlib.sha256()
        #: sharded equivalence checks hash with include_depth=False:
        #: the event *order* is identical between serial and sharded
        #: execution, but pending entries are spread across per-domain
        #: heaps (and boundary messages are inserted at different
        #: instants per executor), so instantaneous depth is not a
        #: cross-executor invariant the way timestamp+callback are
        self._depth = include_depth
        self.events = 0
        self.wall_seconds = 0.0

    def note(self, fn, dt: float, heap_depth: int) -> None:
        # observer ticks (telemetry samplers, sanitizer sweeps, stall
        # watchdogs) read state without mutating it; a sharded run
        # observes per domain where a serial run observes once, so they
        # are excluded from the stream identity entirely
        if getattr(getattr(fn, "__self__", None), "observer", False):
            return
        self.events += 1
        name = getattr(fn, "__qualname__", repr(fn))
        self._sha.update(
            b"%d|%d|" % (self._sim.now, heap_depth if self._depth else 0)
        )
        self._sha.update(name.encode())

    def hexdigest(self) -> str:
        return self._sha.hexdigest()


@dataclass(frozen=True)
class RunDigest:
    """One run's identity: event stream + summarized results."""

    event_digest: str
    summary_digest: str
    events: int
    sim_time: int
    violations: Tuple[str, ...]


def run_digest(config) -> RunDigest:
    """Build and run ``config`` once, digesting its event stream."""
    from repro.experiments.parallel import summarize
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenario import Scenario

    sc = Scenario(config)
    digest = EventStreamDigest(sc.sim)
    sc.sim.set_profiler(digest)
    result = run_scenario(config, scenario=sc)
    summary = summarize(result)
    return RunDigest(
        event_digest=digest.hexdigest(),
        summary_digest=hashlib.sha256(summary.canonical_bytes()).hexdigest(),
        events=digest.events,
        sim_time=result.sim_time,
        violations=tuple(result.sanitizer_violations),
    )


def check_repeatable(config, runs: int = 2) -> Dict[str, object]:
    """Run ``config`` ``runs`` times; digests must be byte-identical."""
    digests = [run_digest(config) for _ in range(runs)]
    event_ok = len({d.event_digest for d in digests}) == 1
    summary_ok = len({d.summary_digest for d in digests}) == 1
    return {
        "ok": event_ok and summary_ok,
        "event_digests": [d.event_digest for d in digests],
        "summary_digests": [d.summary_digest for d in digests],
        "events": digests[0].events,
        "violations": sorted({v for d in digests for v in d.violations}),
    }


def check_pool_equivalence(configs: Dict[str, object]) -> Dict[str, object]:
    """Serial vs pooled sweep summaries must serialize identically."""
    from repro.experiments.parallel import SweepTask, run_sweep

    tasks = [SweepTask(key=key, config=cfg) for key, cfg in sorted(configs.items())]
    serial = run_sweep(tasks, cache=False, serial=True)
    pooled = run_sweep(tasks, cache=False, serial=False)
    mismatched = [
        key
        for key in sorted(configs)
        if serial[key].canonical_bytes() != pooled[key].canonical_bytes()
    ]
    return {"ok": not mismatched, "mismatched": mismatched}


def check_packet_pool_equivalence(config) -> Dict[str, object]:
    """Packet recycling must be invisible to the simulation.

    Runs ``config`` twice — once with the packet pool enabled, once
    with it disabled — and requires byte-identical event streams and
    identical result summaries.  The two configs necessarily differ in
    the ``packet_pool`` flag itself, so the summaries are compared
    after normalizing both configs to the same value; everything else
    (FCTs, drops, flow counts, stats) must match exactly.
    """
    from dataclasses import replace as dc_replace

    from repro.experiments.parallel import summarize
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenario import Scenario

    def one(pooled: bool):
        cfg = dc_replace(config, packet_pool=pooled)
        sc = Scenario(cfg)
        digest = EventStreamDigest(sc.sim)
        sc.sim.set_profiler(digest)
        result = run_scenario(cfg, scenario=sc)
        summary = dc_replace(
            summarize(result), config=dc_replace(cfg, packet_pool=True)
        )
        return digest, summary

    pooled_digest, pooled_summary = one(True)
    plain_digest, plain_summary = one(False)
    events_ok = pooled_digest.hexdigest() == plain_digest.hexdigest()
    summary_ok = (
        pooled_summary.canonical_bytes() == plain_summary.canonical_bytes()
    )
    return {
        "ok": events_ok and summary_ok,
        "events_identical": events_ok,
        "summary_identical": summary_ok,
        "events": pooled_digest.events,
    }


def check_sharded_equivalence(
    config, shards: int, check_interval: Optional[int] = None,
    isolate: bool = False,
) -> Dict[str, object]:
    """Sharded execution must replay the serial run byte-for-byte.

    Runs ``config`` serially (depth-free digest — pending work is
    spread across per-domain heaps, so instantaneous heap depth is not
    a cross-executor invariant), then through all three sharded
    executors, and asserts the full equivalence chain:

    * ``lockstep`` merges the per-domain heaps in global key order with
      a shared sequence counter, so its *global* digest must equal the
      serial digest outright — event-for-event, timestamp-for-
      timestamp;
    * ``barrier`` (conservative windows) and ``process`` (one forked
      worker per domain) must produce the same *per-domain* digests as
      lockstep — per-domain order is independent of how domains
      interleave;
    * every executor's :class:`ResultSummary` must serialize to the
      same bytes as the serial one.  Normalized before comparison:
      ``shards``/``shard_mode`` (the knobs under test), total event
      counts and the telemetry engine profile (observer ticks run once
      per domain and heaps are per-domain, so those are executor
      properties, not simulation results — the digests already pin the
      simulation event set).  Fault counters, telemetry series,
      histograms, and end-of-run counters all stay in the comparison.

    ``isolate`` additionally arms the isolation sanitizer on every
    sharded executor and requires zero cross-domain mutations.

    Closed-loop rpc configs skip process mode (the driver needs one
    address space; ``shard_mode="auto"`` resolves them to barrier).
    """
    import time as _time
    from dataclasses import replace as dc_replace

    from repro.experiments.parallel import summarize
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenario import Scenario
    from repro.sim.sharded import run_sharded_scenario
    from repro.units import us

    interval = check_interval if check_interval else us(100)

    def norm_bytes(result) -> bytes:
        summary = summarize(result)
        telemetry = summary.telemetry
        if telemetry is not None:
            meta = dict(telemetry.meta)
            meta["events"] = 0
            telemetry = dc_replace(telemetry, meta=meta, profile=None)
        summary = dc_replace(
            summary,
            config=dc_replace(summary.config, shards=1, shard_mode="auto"),
            events=0,
            telemetry=telemetry,
        )
        return summary.canonical_bytes()

    sc = Scenario(config)
    serial_digest = EventStreamDigest(sc.sim, include_depth=False)
    sc.sim.set_profiler(serial_digest)
    serial_bytes = norm_bytes(run_scenario(config, scenario=sc))

    modes = ["lockstep", "barrier"]
    if config.pattern != "rpc":
        modes.append("process")
    report: Dict[str, object] = {
        "shards": shards,
        "serial_digest": serial_digest.hexdigest(),
        "modes": {},
        "ok": True,
    }
    domain_reference: Optional[List[str]] = None
    for mode in modes:
        cfg = dc_replace(config, shards=shards, shard_mode=mode)
        result = run_sharded_scenario(
            Scenario(cfg),
            check_interval=interval,
            wall_start=_time.monotonic(),  # simcheck: ignore[SIM002] -- wall time for reporting only
            collect_digests=True,
            isolate=isolate,
        )
        summary_ok = norm_bytes(result) == serial_bytes
        if mode == "lockstep":
            domain_reference = result.shard_digests
            stream_ok = result.shard_global_digest == serial_digest.hexdigest()
        else:
            stream_ok = result.shard_digests == domain_reference
        iso_violations = result.shard_isolation_violations or []
        mode_ok = summary_ok and stream_ok and not iso_violations
        report["modes"][mode] = {
            "events_identical": stream_ok,
            "summary_identical": summary_ok,
            "domain_digests": result.shard_digests,
            "isolation_violations": iso_violations,
            "ok": mode_ok,
        }
        report["ok"] = report["ok"] and mode_ok
    return report


def sharded_battery_fault_plan():
    """The fault plan the sharded battery runs under.

    A lossy window on the host-ToR links: hosts always share their
    ToR's domain, so every matched link is intra-domain under any shard
    count — the only fault placement the sharded engine accepts — and
    both data and control losses exercise retransmission and the
    injected-drop counters whose serial/sharded equality the battery
    asserts.
    """
    from repro.faults.plan import RandomLoss, plan_of
    from repro.units import us

    return plan_of(
        RandomLoss(
            start=us(20), link="host-switch", duration=us(100),
            data_rate=0.02, ctrl_rate=0.01,
        )
    )


def run_sharded_suite(
    seed: int = 1,
    schemes: Optional[List[str]] = None,
    shards: Tuple[int, ...] = (2, 4),
    scenarios: Tuple[str, ...] = ("quick", "incast256"),
    faults: bool = True,
    telemetry: bool = True,
    isolate: bool = False,
) -> Dict[str, object]:
    """The battery behind ``repro.cli check --sharded``.

    For every (scenario, scheme, shard count): serial vs lockstep vs
    barrier vs process, asserting byte-identical event streams and
    result summaries (:func:`check_sharded_equivalence`).  By default
    every case runs with a fault plan active *and* telemetry export
    enabled, so the comparison also covers domain-local fault
    application (identical injected-drop counters) and the per-domain
    telemetry merge (identical series, histograms, and counters).
    ``isolate`` arms the isolation sanitizer on the sharded runs.
    Scenarios come from the declarative registry; multi-config entries
    use their first config (the sweep variants only scale the same
    machinery).
    """
    from dataclasses import replace as dc_replace

    from repro.experiments import registry

    wanted = dict(SHARDED_SCHEMES)
    if schemes:
        unknown = [s for s in schemes if s not in wanted]
        if unknown:
            raise ValueError(
                f"unknown scheme(s) {unknown}; choose from {sorted(wanted)}"
            )
        selected = {name: wanted[name] for name in schemes}
    else:
        selected = wanted
    overrides: Dict[str, object] = {}
    if faults:
        overrides["fault_plan"] = sharded_battery_fault_plan()
    if telemetry:
        # the engine profile is the one surface that is deliberately
        # not serial-identical (per-domain observer ticks and heaps);
        # everything else in the export must match byte-for-byte
        from repro.telemetry.registry import TelemetryConfig

        overrides["telemetry"] = TelemetryConfig(engine_profile=False)
    report: Dict[str, object] = {"cases": {}, "ok": True}
    for scenario_name in scenarios:
        base = registry.get(scenario_name).configs[0]
        for scheme, fc in selected.items():
            cfg = dc_replace(base, flow_control=fc, seed=seed, **overrides)
            for n in shards:
                rep = check_sharded_equivalence(cfg, n, isolate=isolate)
                key = f"{scenario_name}/{scheme}/x{n}"
                report["cases"][key] = rep
                report["ok"] = report["ok"] and bool(rep["ok"])
    return report


def _scheme_config(flow_control: str, seed: int, sanitize):
    """A small, fast scenario exercising the full stack of one scheme."""
    from repro.experiments.scenario import ScenarioConfig
    from repro.units import ms

    return ScenarioConfig(
        flow_control=flow_control,
        n_tors=3,
        hosts_per_tor=4,
        duration=ms(1),
        seed=seed,
        sanitize=sanitize,
    )


def run_suite(
    seed: int = 1,
    schemes: Optional[List[str]] = None,
    check_interval: Optional[int] = None,
) -> Dict[str, object]:
    """The full runtime battery behind ``repro.cli check --sanitize``.

    Per scheme: a sanitized double run (digests must match, zero
    invariant violations) and a packet-pool on/off comparison (the
    recycler must be invisible: identical event streams and result
    summaries); then one serial-vs-pooled sweep comparison across all
    schemes (unsanitized configs so worker pickling stays on the
    default path).
    """
    from repro.simcheck.sanitizer import SanitizerConfig

    wanted = dict(SCHEMES)
    if schemes:
        unknown = [s for s in schemes if s not in wanted]
        if unknown:
            raise ValueError(
                f"unknown scheme(s) {unknown}; choose from {sorted(wanted)}"
            )
        selected = {name: wanted[name] for name in schemes}
    else:
        selected = wanted
    sanitize = (
        SanitizerConfig(check_interval=check_interval)
        if check_interval
        else SanitizerConfig()
    )
    report: Dict[str, object] = {"schemes": {}, "ok": True}
    for name, fc in selected.items():
        rep = check_repeatable(_scheme_config(fc, seed, sanitize))
        pool_rep = check_packet_pool_equivalence(_scheme_config(fc, seed, None))
        scheme_ok = (
            bool(rep["ok"]) and not rep["violations"] and bool(pool_rep["ok"])
        )
        report["schemes"][name] = {
            "digest": rep["event_digests"][0],
            "repeat_identical": rep["ok"],
            "packet_pool_identical": pool_rep["ok"],
            "events": rep["events"],
            "violations": rep["violations"],
            "ok": scheme_ok,
        }
        report["ok"] = report["ok"] and scheme_ok
    pool = check_pool_equivalence(
        {name: _scheme_config(fc, seed, None) for name, fc in selected.items()}
    )
    report["pool_identical"] = pool["ok"]
    report["pool_mismatched"] = pool["mismatched"]
    report["ok"] = report["ok"] and bool(pool["ok"])
    return report
