"""AST rules for the simcheck determinism linter.

Each rule flags a construct that can make a simulation run depend on
something other than ``(config, seed)``:

SIM001
    Direct ``random.Random(...)`` construction or module-level
    ``random.*`` calls inside ``src/repro`` (outside ``sim/rng.py``).
    All randomness must come from named :class:`~repro.sim.rng.RngRegistry`
    streams so serial, pooled and cached runs draw identically.
SIM002
    Wall-clock reads (``time.time``, ``time.perf_counter``,
    ``time.monotonic``, ``datetime.now``, ...) outside ``benchmarks/``
    and ``telemetry/profile.py``.  Wall time must never leak into
    simulated state.
SIM003
    Iteration over set-typed simulator state (``paused_dsts``,
    ``paused_queues``, ``paused_upstreams``, ``fids``, ...) in
    ``net/``, ``floodgate/`` or ``baselines/``.  Set order is
    hash-dependent; when the loop body schedules events, the event
    order — and therefore the whole run — inherits that order.
    Wrap the iterable in ``sorted(...)``.
SIM004
    Float-valued delays/timestamps passed to ``Engine.schedule*``.
    The clock is integer nanoseconds; floats make event ordering
    platform- and rounding-dependent.  Wrap in ``int(...)`` or
    ``round(...)``.

The shard-safety rules keep domain-executed code safe to run under the
conservative-parallel engine (``repro.sim.sharded``); ownership
classification comes from :mod:`repro.simcheck.ownership` and the
runtime complement is :mod:`repro.simcheck.isolation`:

SIM005
    Writes through another domain's topology handle (``port.peer``,
    ``link.dst_port``, a local bound from ``switch.peer(i)``/
    ``link.peer_of(node)``) outside the boundary-tuple exchange in
    ``sim/sharded.py``.  Foreign objects may be read (schemes inspect
    ``peer.level``); mutating them races with the owning domain.
SIM006
    Module-level or class-level mutable containers in packages
    imported by both the sharded workers and per-domain code.  A
    global registry or class-level cache written at runtime is shared
    across domains with no merge path; freeze it, or allowlist it with
    a justification that it is populated at import time only.
SIM007
    ``schedule*`` calls registering a callback (or argument) derived
    from a foreign handle on the local engine — domain 0's engine
    executing a method bound to domain 1's object is exactly the race
    the runtime :class:`~repro.simcheck.isolation.ShardIsolationSanitizer`
    traps under ``check --sharded --isolate``.
SIM008
    Accumulation into a module-global collector (``X[...] += ...``,
    ``X.append(...)``) from simulation code.  Per-domain stats must
    land in domain-owned shards and merge deterministically at
    barriers; a process-global singleton silently loses worker writes.

Suppression: append ``# simcheck: ignore[SIM00X] -- reason`` to the
flagged line, or add a ``RULE path-glob -- justification`` line to the
repo-root ``simcheck-allowlist.txt``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set

from repro.simcheck.ownership import (
    MUTATING_METHODS,
    SHARDED_RELPATH,
    _is_foreign_expr,
    boundary_contexts,
    describe,
    foreign_locals,
)

#: rule id -> one-line description (shown by ``repro.cli check --rules``)
RULES = {
    "SIM000": "file does not parse (syntax error)",
    "SIM001": (
        "direct random.* construction/call outside sim/rng.py "
        "(draw from an RngRegistry stream instead)"
    ),
    "SIM002": (
        "wall-clock read outside benchmarks/ and telemetry/profile.py "
        "(simulated state must not see wall time)"
    ),
    "SIM003": (
        "iteration over set-typed simulator state "
        "(hash order can leak into event scheduling; wrap in sorted())"
    ),
    "SIM004": (
        "float-valued delay/timestamp passed to Engine.schedule* "
        "(the clock is integer ns; wrap in int()/round())"
    ),
    "SIM005": (
        "write through another domain's topology handle "
        "(peer/node_a/dst_port/...) outside the sharded boundary exchange"
    ),
    "SIM006": (
        "module/class-level mutable container shared by sharded workers "
        "and per-domain code (global registry or cache without a merge path)"
    ),
    "SIM007": (
        "schedule* registers a callback derived from a foreign-domain "
        "handle on the local engine (cross-domain mutation at dispatch)"
    ),
    "SIM008": (
        "accumulation into a module-global collector from simulation code "
        "(per-domain stats need domain shards + deterministic merge)"
    ),
}

#: ``time.<attr>`` reads that observe the wall clock
WALL_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime.<attr>`` / ``date.<attr>`` constructors that observe it
WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: attribute names of set-typed simulator state whose iteration order
#: can reach ``schedule()`` (see net/, floodgate/, baselines/)
SET_STATE_NAMES = frozenset(
    {
        "active_flows",
        "dsts",
        "fids",
        "paused",
        "paused_dsts",
        "paused_queues",
        "paused_sources",
        "paused_upstreams",
    }
)

#: Simulator scheduling entry points whose first argument is a time
SCHEDULE_METHODS = frozenset(
    {"schedule", "schedule_at", "schedule_call", "schedule_call_at"}
)

#: call wrappers that preserve the order of the underlying iterable
#: (so iterating through them is still hash-order iteration)
_ORDER_PRESERVING_WRAPPERS = frozenset(
    {"list", "tuple", "iter", "set", "frozenset", "reversed", "enumerate"}
)

#: constructors whose result is a mutable container (SIM006)
_MUTABLE_CONTAINER_CALLS = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)


def _is_mutable_container(value: ast.expr) -> bool:
    """Does this module/class-level value build a mutable container?

    Display literals and container constructors count; comprehensions
    do not — a comprehension at module scope is a derived constant,
    not a registry that runtime code appends into.
    """
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONTAINER_CALLS
    return False


def _assign_name(target: ast.expr) -> str | None:
    return target.id if isinstance(target, ast.Name) else None


def _root_name(node: ast.expr) -> str | None:
    """Leftmost Name of an attribute/subscript/call chain, if any."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


@dataclass(frozen=True)
class Finding:
    """One linter hit: rule, location, human-readable message."""

    rule: str
    path: str  # posix-style path relative to the repo root
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _unwrap_order_preserving(node: ast.expr) -> ast.expr:
    """Strip ``list(...)``/``iter(...)``-style wrappers off an iterable.

    ``sorted(...)`` is deliberately *not* stripped: it fixes the order,
    which is exactly what SIM003 asks for.
    """
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _ORDER_PRESERVING_WRAPPERS
        and node.args
    ):
        node = node.args[0]
    return node


def _set_state_name(node: ast.expr) -> str | None:
    """Name of the set-typed state attribute iterated over, if any."""
    node = _unwrap_order_preserving(node)
    if isinstance(node, ast.Attribute) and node.attr in SET_STATE_NAMES:
        return node.attr
    if isinstance(node, ast.Name) and node.id in SET_STATE_NAMES:
        return node.id
    return None


def _is_floatish(node: ast.expr) -> bool:
    """Conservative: does this expression obviously produce a float?

    ``int(...)``/``round(...)`` wrappers and plain integer arithmetic
    are clean; literal floats, true division and ``float(...)`` are
    flagged.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            if node.func.id in ("int", "round"):
                return False
            if node.func.id == "float":
                return True
        return False
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.IfExp):
        return _is_floatish(node.body) or _is_floatish(node.orelse)
    return False


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor producing raw findings for the enabled rules."""

    def __init__(
        self,
        relpath: str,
        enabled: frozenset,
        boundary: FrozenSet[str] = frozenset(),
    ) -> None:
        self.relpath = relpath
        self.enabled = enabled
        #: boundary-exchange scope names (non-empty only for sharded.py)
        self.boundary = boundary
        self.findings: List[Finding] = []
        self._scopes: List[str] = []
        self._func_depth = 0
        #: foreign-derived locals of the innermost function (SIM005/7)
        self._env: FrozenSet[str] = frozenset()
        #: module-level names bound to mutable containers (SIM006/8)
        self._module_globals: Set[str] = set()

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.relpath, node.lineno, node.col_offset, message)
        )

    def _in_boundary(self) -> bool:
        return any(name in self.boundary for name in self._scopes)

    # -- scope bookkeeping + SIM006 definitions ---------------------------
    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            targets, value = [], None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_container(value):
                continue
            for target in targets:
                name = _assign_name(target)
                if name is None or name.startswith("__"):
                    continue  # __all__ and friends: interpreter protocol
                self._module_globals.add(name)
                if "SIM006" in self.enabled:
                    self._add(
                        "SIM006",
                        stmt,
                        f"module-level mutable container `{name}` is shared "
                        "by sharded workers and per-domain code; freeze it "
                        "or justify (import-time-only) in the allowlist",
                    )
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if "SIM006" in self.enabled and self._func_depth == 0:
            for stmt in node.body:
                targets, value = [], None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if value is None or not _is_mutable_container(value):
                    continue
                for target in targets:
                    name = _assign_name(target)
                    if name is not None:
                        self._add(
                            "SIM006",
                            stmt,
                            f"class-level mutable cache `{node.name}.{name}` "
                            "is shared across domains; make it per-instance "
                            "or per-domain",
                        )
        self._scopes.append(node.name)
        self.generic_visit(node)
        self._scopes.pop()

    def _visit_function(self, node) -> None:
        prev_env = self._env
        if self.enabled & {"SIM005", "SIM007"}:
            self._env = foreign_locals(node)
        self._scopes.append(node.name)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1
        self._scopes.pop()
        self._env = prev_env

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- SIM005 / SIM008: attribute & subscript stores --------------------
    def _check_store(self, node: ast.AST, target: ast.expr) -> None:
        if self._func_depth == 0:
            return
        if (
            "SIM005" in self.enabled
            and isinstance(target, (ast.Attribute, ast.Subscript))
            and not self._in_boundary()
        ):
            inner = (
                target.value
                if isinstance(target, (ast.Attribute, ast.Subscript))
                else target
            )
            if _is_foreign_expr(inner, self._env):
                self._add(
                    "SIM005",
                    target,
                    f"write to `{describe(target)}` reaches another "
                    "domain's object through a foreign handle; only the "
                    "owning domain may mutate it",
                )
        if "SIM008" in self.enabled and isinstance(
            target, (ast.Attribute, ast.Subscript)
        ):
            root = _root_name(target)
            if root is not None and root in self._module_globals:
                self._add(
                    "SIM008",
                    target,
                    f"accumulates into module-global `{root}`; route stats "
                    "through a domain-owned collector with a merge path",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node, node.target)
        self.generic_visit(node)

    # -- SIM001 / SIM002: imports that smuggle the primitives in ---------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and "SIM001" in self.enabled:
            names = ", ".join(a.name for a in node.names)
            self._add(
                "SIM001",
                node,
                f"`from random import {names}` bypasses RngRegistry",
            )
        if node.module == "time" and "SIM002" in self.enabled:
            clocky = [a.name for a in node.names if a.name in WALL_CLOCK_TIME_ATTRS]
            if clocky:
                self._add(
                    "SIM002",
                    node,
                    f"`from time import {', '.join(clocky)}` imports a wall clock",
                )
        self.generic_visit(node)

    # -- SIM001: module-level random.* calls -----------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            "SIM001" in self.enabled
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        ):
            self._add(
                "SIM001",
                node,
                f"random.{func.attr}(...) must come from an RngRegistry stream",
            )
        if "SIM004" in self.enabled and isinstance(func, ast.Attribute):
            if func.attr in SCHEDULE_METHODS and node.args:
                if _is_floatish(node.args[0]):
                    self._add(
                        "SIM004",
                        node,
                        f"float-valued time passed to .{func.attr}(); "
                        "the clock is integer ns — wrap in int()/round()",
                    )
        if self._func_depth > 0 and isinstance(func, ast.Attribute):
            if (
                "SIM005" in self.enabled
                and func.attr in MUTATING_METHODS
                and not self._in_boundary()
                and _is_foreign_expr(func.value, self._env)
            ):
                self._add(
                    "SIM005",
                    node,
                    f"`{describe(func)}(...)` mutates an object reached "
                    "through a foreign-domain handle; only the owning "
                    "domain may mutate it",
                )
            if (
                "SIM007" in self.enabled
                and func.attr in SCHEDULE_METHODS
                and not self._in_boundary()
            ):
                for arg in (*node.args[1:], *(kw.value for kw in node.keywords)):
                    if _is_foreign_expr(arg, self._env):
                        self._add(
                            "SIM007",
                            node,
                            f".{func.attr}() registers "
                            f"`{describe(arg)}` — a callback/argument "
                            "derived from a foreign-domain handle — on the "
                            "local engine",
                        )
                        break
            if (
                "SIM008" in self.enabled
                and func.attr in MUTATING_METHODS
            ):
                root = _root_name(func.value)
                if root is not None and root in self._module_globals:
                    self._add(
                        "SIM008",
                        node,
                        f"`{describe(func)}(...)` accumulates into "
                        f"module-global `{root}`; route stats through a "
                        "domain-owned collector with a merge path",
                    )
        self.generic_visit(node)

    # -- SIM002: wall-clock attribute reads -------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if "SIM002" in self.enabled:
            value = node.value
            if (
                isinstance(value, ast.Name)
                and value.id == "time"
                and node.attr in WALL_CLOCK_TIME_ATTRS
            ):
                self._add("SIM002", node, f"time.{node.attr} reads the wall clock")
            elif node.attr in WALL_CLOCK_DATETIME_ATTRS and (
                (isinstance(value, ast.Name) and value.id in ("datetime", "date"))
                or (
                    isinstance(value, ast.Attribute)
                    and value.attr in ("datetime", "date")
                )
            ):
                self._add(
                    "SIM002",
                    node,
                    f"datetime.{node.attr} reads the wall clock",
                )
        self.generic_visit(node)

    # -- SIM003: set iteration --------------------------------------------
    def _check_iter(self, iter_node: ast.expr) -> None:
        name = _set_state_name(iter_node)
        if name is not None:
            self._add(
                "SIM003",
                iter_node,
                f"iteration over set-typed `{name}` is hash-ordered; "
                "wrap in sorted() so event order cannot depend on it",
            )

    def visit_For(self, node: ast.For) -> None:
        if "SIM003" in self.enabled:
            self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if "SIM003" in self.enabled:
            for gen in node.generators:
                self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def scan_source(
    source: str, relpath: str, enabled: Iterable[str]
) -> List[Finding]:
    """Run the enabled rules over one file's source.

    Returns raw findings; inline-suppression and allowlist filtering
    happen in :mod:`repro.simcheck.linter`.
    """
    enabled = frozenset(enabled)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [
            Finding(
                "SIM000",
                relpath,
                exc.lineno or 1,
                exc.offset or 0,
                f"syntax error: {exc.msg}",
            )
        ]
    # sharded.py's channel classes / partition / flush helpers ARE the
    # boundary-tuple exchange: cross-domain access there is the design
    boundary = (
        boundary_contexts(tree) if relpath == SHARDED_RELPATH else frozenset()
    )
    visitor = _RuleVisitor(relpath, enabled, boundary)
    visitor.visit(tree)
    visitor.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return visitor.findings
