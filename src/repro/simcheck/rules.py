"""AST rules for the simcheck determinism linter.

Each rule flags a construct that can make a simulation run depend on
something other than ``(config, seed)``:

SIM001
    Direct ``random.Random(...)`` construction or module-level
    ``random.*`` calls inside ``src/repro`` (outside ``sim/rng.py``).
    All randomness must come from named :class:`~repro.sim.rng.RngRegistry`
    streams so serial, pooled and cached runs draw identically.
SIM002
    Wall-clock reads (``time.time``, ``time.perf_counter``,
    ``time.monotonic``, ``datetime.now``, ...) outside ``benchmarks/``
    and ``telemetry/profile.py``.  Wall time must never leak into
    simulated state.
SIM003
    Iteration over set-typed simulator state (``paused_dsts``,
    ``paused_queues``, ``paused_upstreams``, ``fids``, ...) in
    ``net/``, ``floodgate/`` or ``baselines/``.  Set order is
    hash-dependent; when the loop body schedules events, the event
    order — and therefore the whole run — inherits that order.
    Wrap the iterable in ``sorted(...)``.
SIM004
    Float-valued delays/timestamps passed to ``Engine.schedule*``.
    The clock is integer nanoseconds; floats make event ordering
    platform- and rounding-dependent.  Wrap in ``int(...)`` or
    ``round(...)``.

Suppression: append ``# simcheck: ignore[SIM00X] -- reason`` to the
flagged line, or add a ``RULE path-glob -- justification`` line to the
repo-root ``simcheck-allowlist.txt``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List

#: rule id -> one-line description (shown by ``repro.cli check --rules``)
RULES = {
    "SIM000": "file does not parse (syntax error)",
    "SIM001": (
        "direct random.* construction/call outside sim/rng.py "
        "(draw from an RngRegistry stream instead)"
    ),
    "SIM002": (
        "wall-clock read outside benchmarks/ and telemetry/profile.py "
        "(simulated state must not see wall time)"
    ),
    "SIM003": (
        "iteration over set-typed simulator state "
        "(hash order can leak into event scheduling; wrap in sorted())"
    ),
    "SIM004": (
        "float-valued delay/timestamp passed to Engine.schedule* "
        "(the clock is integer ns; wrap in int()/round())"
    ),
}

#: ``time.<attr>`` reads that observe the wall clock
WALL_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime.<attr>`` / ``date.<attr>`` constructors that observe it
WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: attribute names of set-typed simulator state whose iteration order
#: can reach ``schedule()`` (see net/, floodgate/, baselines/)
SET_STATE_NAMES = frozenset(
    {
        "active_flows",
        "dsts",
        "fids",
        "paused",
        "paused_dsts",
        "paused_queues",
        "paused_sources",
        "paused_upstreams",
    }
)

#: Simulator scheduling entry points whose first argument is a time
SCHEDULE_METHODS = frozenset(
    {"schedule", "schedule_at", "schedule_call", "schedule_call_at"}
)

#: call wrappers that preserve the order of the underlying iterable
#: (so iterating through them is still hash-order iteration)
_ORDER_PRESERVING_WRAPPERS = frozenset(
    {"list", "tuple", "iter", "set", "frozenset", "reversed", "enumerate"}
)


@dataclass(frozen=True)
class Finding:
    """One linter hit: rule, location, human-readable message."""

    rule: str
    path: str  # posix-style path relative to the repo root
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _unwrap_order_preserving(node: ast.expr) -> ast.expr:
    """Strip ``list(...)``/``iter(...)``-style wrappers off an iterable.

    ``sorted(...)`` is deliberately *not* stripped: it fixes the order,
    which is exactly what SIM003 asks for.
    """
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _ORDER_PRESERVING_WRAPPERS
        and node.args
    ):
        node = node.args[0]
    return node


def _set_state_name(node: ast.expr) -> str | None:
    """Name of the set-typed state attribute iterated over, if any."""
    node = _unwrap_order_preserving(node)
    if isinstance(node, ast.Attribute) and node.attr in SET_STATE_NAMES:
        return node.attr
    if isinstance(node, ast.Name) and node.id in SET_STATE_NAMES:
        return node.id
    return None


def _is_floatish(node: ast.expr) -> bool:
    """Conservative: does this expression obviously produce a float?

    ``int(...)``/``round(...)`` wrappers and plain integer arithmetic
    are clean; literal floats, true division and ``float(...)`` are
    flagged.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            if node.func.id in ("int", "round"):
                return False
            if node.func.id == "float":
                return True
        return False
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.IfExp):
        return _is_floatish(node.body) or _is_floatish(node.orelse)
    return False


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor producing raw findings for the enabled rules."""

    def __init__(self, relpath: str, enabled: frozenset) -> None:
        self.relpath = relpath
        self.enabled = enabled
        self.findings: List[Finding] = []

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.relpath, node.lineno, node.col_offset, message)
        )

    # -- SIM001 / SIM002: imports that smuggle the primitives in ---------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and "SIM001" in self.enabled:
            names = ", ".join(a.name for a in node.names)
            self._add(
                "SIM001",
                node,
                f"`from random import {names}` bypasses RngRegistry",
            )
        if node.module == "time" and "SIM002" in self.enabled:
            clocky = [a.name for a in node.names if a.name in WALL_CLOCK_TIME_ATTRS]
            if clocky:
                self._add(
                    "SIM002",
                    node,
                    f"`from time import {', '.join(clocky)}` imports a wall clock",
                )
        self.generic_visit(node)

    # -- SIM001: module-level random.* calls -----------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            "SIM001" in self.enabled
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        ):
            self._add(
                "SIM001",
                node,
                f"random.{func.attr}(...) must come from an RngRegistry stream",
            )
        if "SIM004" in self.enabled and isinstance(func, ast.Attribute):
            if func.attr in SCHEDULE_METHODS and node.args:
                if _is_floatish(node.args[0]):
                    self._add(
                        "SIM004",
                        node,
                        f"float-valued time passed to .{func.attr}(); "
                        "the clock is integer ns — wrap in int()/round()",
                    )
        self.generic_visit(node)

    # -- SIM002: wall-clock attribute reads -------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if "SIM002" in self.enabled:
            value = node.value
            if (
                isinstance(value, ast.Name)
                and value.id == "time"
                and node.attr in WALL_CLOCK_TIME_ATTRS
            ):
                self._add("SIM002", node, f"time.{node.attr} reads the wall clock")
            elif node.attr in WALL_CLOCK_DATETIME_ATTRS and (
                (isinstance(value, ast.Name) and value.id in ("datetime", "date"))
                or (
                    isinstance(value, ast.Attribute)
                    and value.attr in ("datetime", "date")
                )
            ):
                self._add(
                    "SIM002",
                    node,
                    f"datetime.{node.attr} reads the wall clock",
                )
        self.generic_visit(node)

    # -- SIM003: set iteration --------------------------------------------
    def _check_iter(self, iter_node: ast.expr) -> None:
        name = _set_state_name(iter_node)
        if name is not None:
            self._add(
                "SIM003",
                iter_node,
                f"iteration over set-typed `{name}` is hash-ordered; "
                "wrap in sorted() so event order cannot depend on it",
            )

    def visit_For(self, node: ast.For) -> None:
        if "SIM003" in self.enabled:
            self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if "SIM003" in self.enabled:
            for gen in node.generators:
                self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def scan_source(
    source: str, relpath: str, enabled: Iterable[str]
) -> List[Finding]:
    """Run the enabled rules over one file's source.

    Returns raw findings; inline-suppression and allowlist filtering
    happen in :mod:`repro.simcheck.linter`.
    """
    enabled = frozenset(enabled)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [
            Finding(
                "SIM000",
                relpath,
                exc.lineno or 1,
                exc.offset or 0,
                f"syntax error: {exc.msg}",
            )
        ]
    visitor = _RuleVisitor(relpath, enabled)
    visitor.visit(tree)
    visitor.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return visitor.findings
