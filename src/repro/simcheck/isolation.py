"""Runtime shard-isolation sanitizer: who mutated whose objects.

The static side of shard safety lives in :mod:`repro.simcheck.rules`
(SIM005..SIM008) and :mod:`repro.simcheck.ownership`; this module is
the dynamic complement.  ``ShardIsolationSanitizer`` tags the hot
objects of every execution domain — ports, links, VOQ state, credit
tables — with a domain id at partition time, then rides each domain
engine's profiler slot: every executed callback bound to a tagged
object (``fn.__self__``) is checked against the domain it ran under.
A callback owned by domain 1 firing on domain 0's engine is exactly
the cross-domain mutation the conservative-parallel executors must
never produce, and exactly what SIM007 flags statically.

Boundary traffic stays silent by construction: inter-domain packets
cross via channel objects whose delivery callbacks re-enter through
the *receiving* domain's own nodes, so the executing domain and the
owner agree.  Enable per run via ``check --sharded --isolate``.

Zero cost when off: tagging and probing only happen when the sharded
runner is asked to isolate, and the probe shares the engine's single
profiler slot through :class:`~repro.telemetry.profile.ProfilerFanout`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

#: cap on collected violations, mirroring the sanitizer's default (a
#: mis-bound callback would otherwise report once per event)
MAX_VIOLATIONS = 100


class ShardIsolationSanitizer:
    """Domain-ownership tags plus per-domain execution probes."""

    def __init__(self, max_violations: int = MAX_VIOLATIONS) -> None:
        #: id(obj) -> (owning domain, human label)
        self._owner: Dict[int, Tuple[int, str]] = {}
        self.violations: List[str] = []
        self.truncated = 0
        self.max_violations = max_violations

    # -- tagging (partition time) ------------------------------------------

    def tag(self, obj: Any, domain: int, label: str) -> None:
        """Record ``obj`` as owned by ``domain`` (idempotent per object)."""
        if obj is not None:
            self._owner[id(obj)] = (domain, label)

    def tag_scenario(self, scenario, domain_of: Dict[int, int], pools=None) -> None:
        """Tag every hot object after domain binding and fault install.

        Covers nodes and their ports, intra-domain links (boundary
        links are deliberately untagged: both sides legitimately touch
        them), link fault states, switch extensions with their VOQ
        pools and credit schedulers, and per-domain packet pools.
        """
        topo = scenario.topology
        for node in (*topo.hosts, *topo.switches):
            d = domain_of[node.node_id]
            self.tag(node, d, node.name)
            for port in node.ports:
                self.tag(port, d, f"{node.name}.port[{port.index}]")
        for link in topo.links:
            d_a = domain_of[link.node_a.node_id]
            d_b = domain_of[link.node_b.node_id]
            if d_a != d_b:
                continue
            self.tag(link, d_a, f"link {link.node_a.name}<->{link.node_b.name}")
            if link.fault is not None:
                self.tag(
                    link.fault, d_a,
                    f"fault[{link.node_a.name}<->{link.node_b.name}]",
                )
        for ext in scenario.extensions:
            d = domain_of[ext.switch.node_id]
            self.tag(ext, d, f"{ext.switch.name}.extension")
            voq_pool = getattr(ext, "pool", None)
            if voq_pool is not None:
                self.tag(voq_pool, d, f"{ext.switch.name}.voqs")
                for voq in voq_pool.voqs:
                    self.tag(voq, d, f"{ext.switch.name}.voq")
            credits = getattr(ext, "credits", None)
            if credits is not None:
                self.tag(credits, d, f"{ext.switch.name}.credits")
            windows = getattr(ext, "windows", None)
            if windows is not None:
                self.tag(windows, d, f"{ext.switch.name}.windows")
        if pools is not None:
            for d, pool in enumerate(pools):
                if pool is not None:
                    self.tag(pool, d, f"packet_pool[{d}]")

    # -- probing (run time) ------------------------------------------------

    def probe(self, domain: int, clock) -> "_DomainProbe":
        """A profiler-slot sink asserting callbacks run under ``domain``."""
        return _DomainProbe(self, domain, clock)

    def record(self, domain: int, owner: int, label: str, name: str, now) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(
                f"t={now}ns: domain {domain} executed {name} bound to "
                f"{label} owned by domain {owner} (cross-domain mutation)"
            )
        else:
            self.truncated += 1

    def summary(self) -> Dict[str, int]:
        return {
            "isolation_violations": len(self.violations),
            "isolation_truncated": self.truncated,
        }


class _DomainProbe:
    """Per-domain profiler sink (shares the slot via ProfilerFanout)."""

    # wall_seconds: the engine's profiled loop charges run-loop wall
    # time to whatever sits in the profiler slot; absorb it when the
    # probe is the sole sink
    __slots__ = ("iso", "domain", "clock", "wall_seconds")

    def __init__(self, iso: ShardIsolationSanitizer, domain: int, clock) -> None:
        self.iso = iso
        self.domain = domain
        self.clock = clock
        self.wall_seconds = 0.0

    def note(self, fn: Callable[..., Any], dt: float, heap_depth: int) -> None:
        owner = self.iso._owner.get(id(getattr(fn, "__self__", None)))
        if owner is not None and owner[0] != self.domain:
            name = getattr(fn, "__qualname__", repr(fn))
            self.iso.record(
                self.domain, owner[0], owner[1], name, self.clock.now
            )
