"""Declarative closed-loop workload description.

An :class:`RpcWorkloadSpec` is plain frozen data, like
:class:`repro.faults.plan.FaultPlan`: it lives inside a
``ScenarioConfig``, survives ``dataclasses.asdict`` (so it hashes into
the sweep cache key), and round-trips through ``to_dict``/``from_dict``
for registry display and tooling.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields

from repro.units import MTU
from repro.workloads.distributions import WORKLOADS

_VALID_THINK_DISTRIBUTIONS = ("exponential", "constant")
_VALID_SERVER_SELECTION = ("uniform", "zipf")


@dataclass(frozen=True)
class RpcWorkloadSpec:
    """One closed-loop request/response workload.

    Each client keeps exactly one request outstanding: it thinks for a
    sampled delay, sprays ``fan_out`` shard queries, waits for every
    response to land (the fan-in completion *is* the incast), records
    the request latency, and thinks again.  Offered load is therefore
    a function of network latency — the defining closed-loop property.
    """

    #: number of client hosts (0 -> every host is a client); clients
    #: are spread evenly across the host id space, hence across racks
    n_clients: int = 0
    #: shard queries per request; the burst degree of the fan-in incast
    fan_out: int = 8
    #: mean think time between a request's completion and the next, ns
    think_time: int = 50_000
    think_distribution: str = "exponential"  # exponential | constant
    #: query size, bytes (small — the response carries the data)
    request_size: int = 300
    #: per-shard response size, uniform in [min, max] bytes unless a
    #: ``response_workload`` CDF overrides it.  Default is the paper's
    #: incast response shape: 30-40 MTU, around one end-to-end BDP.
    response_size_min: int = 30 * MTU
    response_size_max: int = 40 * MTU
    #: draw response sizes from a named workload CDF ("" -> uniform)
    response_workload: str = ""
    #: fixed server service time between query arrival and response, ns
    server_time: int = 0
    #: shard placement: "uniform" over hosts, or "zipf" over racks
    #: (rack popularity ranks are a seed-determined permutation)
    server_selection: str = "zipf"
    #: Zipf exponent over rack popularity ranks (rank k weight
    #: 1/(k+1)^alpha); only used when server_selection == "zipf"
    zipf_alpha: float = 1.2
    #: probability a shard lives in the client's own rack
    locality: float = 0.0
    #: stop each client after this many requests (0 -> until duration)
    requests_per_client: int = 0
    #: open-loop Poisson background riding alongside, as a load
    #: fraction of aggregate host bandwidth (0 -> no background)
    background_load: float = 0.0

    def __post_init__(self) -> None:
        if self.n_clients < 0:
            raise ValueError(
                f"n_clients must be >= 0 (0 means every host), "
                f"got {self.n_clients}"
            )
        if self.fan_out < 1:
            raise ValueError(
                f"fan_out must be >= 1 (shard queries per request), "
                f"got {self.fan_out}"
            )
        if self.think_time < 0:
            raise ValueError(
                f"think_time must be >= 0 ns, got {self.think_time}"
            )
        if self.server_time < 0:
            raise ValueError(
                f"server_time must be >= 0 ns, got {self.server_time}"
            )
        if self.think_distribution not in _VALID_THINK_DISTRIBUTIONS:
            raise ValueError(
                f"unknown think_distribution {self.think_distribution!r}; "
                f"valid values: {', '.join(_VALID_THINK_DISTRIBUTIONS)}"
            )
        if self.server_selection not in _VALID_SERVER_SELECTION:
            raise ValueError(
                f"unknown server_selection {self.server_selection!r}; "
                f"valid values: {', '.join(_VALID_SERVER_SELECTION)}"
            )
        if self.request_size < 1:
            raise ValueError(
                f"request_size must be >= 1 byte, got {self.request_size}"
            )
        if not 1 <= self.response_size_min <= self.response_size_max:
            raise ValueError(
                "response sizes must satisfy 1 <= response_size_min <= "
                f"response_size_max, got [{self.response_size_min}, "
                f"{self.response_size_max}]"
            )
        if self.response_workload and self.response_workload not in WORKLOADS:
            raise ValueError(
                f"unknown response_workload {self.response_workload!r}; "
                f"valid values: {', '.join(WORKLOADS)} (or '' for the "
                f"uniform [response_size_min, response_size_max] range)"
            )
        if self.zipf_alpha <= 0.0:
            raise ValueError(
                f"zipf_alpha must be > 0, got {self.zipf_alpha}"
            )
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError(
                f"locality must be a probability in [0, 1], "
                f"got {self.locality}"
            )
        if self.requests_per_client < 0:
            raise ValueError(
                f"requests_per_client must be >= 0 (0 means until the "
                f"scenario duration), got {self.requests_per_client}"
            )
        if self.background_load < 0.0:
            raise ValueError(
                f"background_load must be >= 0, got {self.background_load}"
            )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RpcWorkloadSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RpcWorkloadSpec fields: {sorted(unknown)}"
            )
        return cls(**data)

    def fingerprint(self) -> str:
        """Stable content hash (cache keys, provenance lines)."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]
