"""Closed-loop RPC workloads (request/response fan-out traffic).

The paper's incasts are *produced* by application behavior: a
front-end query sprays N shard requests and the near-simultaneous
responses are the incast.  This package models that loop directly:

* :class:`RpcWorkloadSpec` — declarative, serializable description of
  the client population, think times, fan-out, sizes, and the skewed
  destination matrix (Zipf over racks with a locality knob);
* :class:`DestinationMatrix` — deterministic server sampling;
* :class:`ClosedLoopDriver` — injects flows reactively off flow
  completion callbacks on either fidelity tier, so offered load
  emerges from latency feedback instead of a fixed arrival schedule.
"""

from repro.rpc.driver import ClosedLoopDriver
from repro.rpc.matrix import DestinationMatrix
from repro.rpc.spec import RpcWorkloadSpec

__all__ = ["RpcWorkloadSpec", "DestinationMatrix", "ClosedLoopDriver"]
