"""Reactive flow injection: the closed loop itself.

The driver wraps every host's ``on_flow_done`` callback — the same
hook both fidelity tiers fire when a flow's last byte reaches its
destination — and turns flow completions into application progress:

* a **request** flow completing at a server schedules that shard's
  response after the configured service time;
* a **response** flow completing back at the client decrements the
  request's fan-in count; when the last response lands, the request
  latency is recorded and the client schedules its next request after
  a think-time draw.

Every random draw comes from per-client ``RngRegistry`` child streams
(``rpc:client:<host>``) plus one matrix stream (``rpc:matrix``), so
the workload is deterministic per seed and independent of how client
events interleave with the rest of the run.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.rpc.matrix import DestinationMatrix
from repro.rpc.spec import RpcWorkloadSpec
from repro.stats.rpc import RpcRecord
from repro.workloads.distributions import WORKLOADS

#: pending-flow roles (identity-compared in the dispatch hot path)
_REQUEST = "request"
_RESPONSE = "response"


class _Client:
    """One closed-loop client's mutable state."""

    __slots__ = ("host_id", "index", "rng", "requests_done")

    def __init__(self, host_id: int, index: int, rng: random.Random) -> None:
        self.host_id = host_id
        #: dense client rank (0..n_clients-1) in host-id order; the
        #: client-interleaved request-id allocation keys off it
        self.index = index
        self.rng = rng
        self.requests_done = 0


class _Request:
    """One in-flight request: fan-in bookkeeping."""

    __slots__ = ("request_id", "client", "start", "remaining", "finish")

    def __init__(
        self, request_id: int, client: int, start: int, fan_out: int
    ) -> None:
        self.request_id = request_id
        self.client = client
        self.start = start
        self.remaining = fan_out
        self.finish = start


class ClosedLoopDriver:
    """Injects request/response flows reactively on either fidelity tier."""

    def __init__(
        self,
        scenario,
        spec: RpcWorkloadSpec,
        first_flow_id: int = 0,
    ) -> None:
        self.scenario = scenario
        self.sim = scenario.sim
        self.topology = scenario.topology
        self.stats = scenario.stats
        self.spec = spec
        self.gen_end = scenario.config.duration
        self._response_dist = (
            WORKLOADS[spec.response_workload] if spec.response_workload else None
        )
        host_ids = [h.node_id for h in self.topology.hosts]
        n = spec.n_clients or len(host_ids)
        if n > len(host_ids):
            raise ValueError(
                f"n_clients={n} exceeds the {len(host_ids)} hosts in the "
                f"topology; shrink the client population or grow the fabric"
            )
        # spread clients evenly over the host id space -> across racks
        picked = [host_ids[i * len(host_ids) // n] for i in range(n)]
        self.clients: Dict[int, _Client] = {
            host: _Client(host, i, scenario.rng.stream(f"rpc:client:{host}"))
            for i, host in enumerate(picked)
        }
        self.matrix = DestinationMatrix(
            spec, scenario.rack_of(), scenario.rng.stream("rpc:matrix")
        )
        #: request and flow ids are allocated per client (interleaved by
        #: client rank) instead of from global next-id counters: global
        #: counters hand out ids in *execution* order, which differs
        #: between a serial run and a sharded run even when every
        #: client's behavior is identical
        self._n_clients = len(picked)
        self._first_flow_id = first_flow_id
        #: flow id -> (role, request, response_size, slot) for flows we
        #: own; ``slot`` is the shard index within the request's fan-out
        self._pending_flow: Dict[int, Tuple[str, _Request, int, int]] = {}
        self._chain_flow_done = None
        self._fluid = None
        self._live_clients = len(picked)
        self._open_requests = 0
        self.requests_issued = 0
        self.requests_completed = 0

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> None:
        """Interpose on every host's completion callback (chains the
        topology's completed-flow counter installed by ``finalize``)."""
        hosts = self.topology.hosts
        self._chain_flow_done = hosts[0].on_flow_done
        for host in hosts:
            host.on_flow_done = self._flow_done

    def start(self, fluid=None) -> None:
        """Arm each client's first think timer (call after scheduling).

        Each client's events live on its own host's simulator — the
        same object as ``self.sim`` in a serial run, the host's domain
        simulator in a sharded one — so the closed loop runs entirely
        inside the domains that own its endpoints.
        """
        self._fluid = fluid
        hosts = self.topology.hosts
        for host in sorted(self.clients):
            client = self.clients[host]
            sim = hosts[host].sim
            sim.schedule_call_at(
                sim.now + self._think(client), self._issue, client
            )

    @property
    def finished(self) -> bool:
        """No client will issue again and no request is in flight."""
        return self._live_clients == 0 and self._open_requests == 0

    # -- the loop ----------------------------------------------------------

    def _think(self, client: _Client) -> int:
        """One think-time draw, ns (relative delay)."""
        mean = self.spec.think_time
        if mean <= 0:
            return 0
        if self.spec.think_distribution == "constant":
            return mean
        return int(client.rng.expovariate(1.0 / mean))

    def _issue(self, client: _Client) -> None:
        spec = self.spec
        now = self.topology.hosts[client.host_id].sim.now
        cap = spec.requests_per_client
        if now >= self.gen_end or (cap and client.requests_done >= cap):
            self._live_clients -= 1
            return
        client.requests_done += 1
        self.requests_issued += 1
        request_id = (client.requests_done - 1) * self._n_clients + client.index
        request = _Request(request_id, client.host_id, now, spec.fan_out)
        self._open_requests += 1
        rng = client.rng
        servers = self.matrix.sample_servers(rng, client.host_id, spec.fan_out)
        flows = []
        for slot, server in enumerate(servers):
            resp_size = self._response_size(rng)
            flow = self.topology.make_flow(
                self._flow_id(request_id, slot),
                client.host_id,
                server,
                spec.request_size,
                now,
            )
            self._pending_flow[flow.flow_id] = (_REQUEST, request, resp_size, slot)
            flows.append(flow)
        self._start_flows(flows)

    def _response_size(self, rng: random.Random) -> int:
        if self._response_dist is not None:
            return self._response_dist.sample(rng)
        return rng.randint(
            self.spec.response_size_min, self.spec.response_size_max
        )

    def _flow_id(self, request_id: int, slot: int) -> int:
        """Deterministic flow id: 2*fan_out ids per request.

        Slots ``[0, fan_out)`` are the shard queries, ``[fan_out,
        2*fan_out)`` the responses — a pure function of the request, so
        ids agree between serial and sharded execution orders.
        """
        return self._first_flow_id + request_id * 2 * self.spec.fan_out + slot

    def _start_flows(self, flows: List) -> None:
        if self._fluid is not None:
            self._fluid.inject_flows(flows)
        else:
            hosts = self.topology.hosts
            for flow in flows:
                hosts[flow.src].start_flow(flow)

    # -- completion dispatch ----------------------------------------------

    def _flow_done(self, flow) -> None:
        chain = self._chain_flow_done
        if chain is not None:
            chain(flow)
        entry = self._pending_flow.pop(flow.flow_id, None)
        if entry is None:
            return  # background traffic, not ours
        role, request, resp_size, slot = entry
        # in the fluid tier this callback fires at the rate-completion
        # instant while finish_time includes the unloaded tail latency;
        # application progress keys off the delivery time in both tiers
        done_at = flow.finish_time
        hosts = self.topology.hosts
        if role is _REQUEST:
            # shard query arrived at the server: schedule the response
            # (a fresh event even at zero service time — the fluid tier
            # must not admit flows from inside its own callback)
            hosts[flow.dst].sim.schedule_call_at(
                done_at + self.spec.server_time,
                self._respond,
                request,
                flow.dst,
                resp_size,
                slot,
            )
            return
        if done_at > request.finish:
            request.finish = done_at
        request.remaining -= 1
        if request.remaining:
            return
        self.requests_completed += 1
        self._open_requests -= 1
        self.stats.record_rpc(
            RpcRecord(
                request.request_id,
                request.client,
                self.spec.fan_out,
                request.start,
                request.finish,
            )
        )
        client = self.clients[request.client]
        # the think clock starts when the data is in hand (finish >= now)
        hosts[request.client].sim.schedule_call_at(
            request.finish + self._think(client), self._issue, client
        )

    def _respond(
        self, request: _Request, server: int, resp_size: int, slot: int
    ) -> None:
        flow = self.topology.make_flow(
            self._flow_id(request.request_id, self.spec.fan_out + slot),
            server,
            request.client,
            resp_size,
            self.topology.hosts[server].sim.now,
        )
        # the fan-in responses are the incast: classify them so FCT
        # breakdowns and rx-byte accounting see them as the paper does
        self.stats.register_incast_flow(flow.flow_id)
        self._pending_flow[flow.flow_id] = (_RESPONSE, request, 0, slot)
        self._start_flows([flow])
