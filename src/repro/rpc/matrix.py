"""Skewed destination matrices for shard placement.

Server popularity in real clusters is far from uniform: a few racks
hold the hot shards.  :class:`DestinationMatrix` models that with a
Zipf distribution over *racks* — rack popularity ranks are a
seed-determined permutation, so different seeds put the hot rack in
different places — plus a locality knob giving each shard query a
fixed probability of staying inside the client's own rack.

All sampling goes through caller-provided ``random.Random`` streams
(the driver passes per-client ``RngRegistry`` children), so the matrix
itself holds no mutable random state after construction.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Dict, List

from repro.rpc.spec import RpcWorkloadSpec


class DestinationMatrix:
    """Deterministic server sampler over a rack-grouped host set."""

    def __init__(
        self,
        spec: RpcWorkloadSpec,
        rack_of: Dict[int, int],
        rng: random.Random,
    ) -> None:
        self.spec = spec
        self._all_hosts: List[int] = sorted(rack_of)
        if len(self._all_hosts) < 2:
            raise ValueError("rpc workloads need at least two hosts")
        racks = sorted({rack for rack in rack_of.values()})
        by_rack: Dict[int, List[int]] = {rack: [] for rack in racks}
        for host in self._all_hosts:
            by_rack[rack_of[host]].append(host)
        self._rack_hosts = by_rack
        self._rack_of = dict(rack_of)
        # popularity ranking: a seed-determined shuffle of the racks,
        # then Zipf weight 1/(k+1)^alpha by rank (uniform selection
        # just flattens the weights)
        ranked = list(racks)
        rng.shuffle(ranked)
        self._ranked_racks = ranked
        if spec.server_selection == "zipf":
            weights = [
                1.0 / (k + 1) ** spec.zipf_alpha for k in range(len(ranked))
            ]
        else:
            weights = [1.0] * len(ranked)
        cum: List[float] = []
        total = 0.0
        for w in weights:
            total += w
            cum.append(total)
        self._cum_weights = cum
        self._total_weight = total

    def rack_weight(self, rack: int) -> float:
        """Selection probability of ``rack`` (ignoring locality)."""
        k = self._ranked_racks.index(rack)
        lo = self._cum_weights[k - 1] if k else 0.0
        return (self._cum_weights[k] - lo) / self._total_weight

    def sample_servers(
        self, rng: random.Random, client: int, fan_out: int
    ) -> List[int]:
        """Pick ``fan_out`` servers for one request.

        Servers are distinct where the fabric allows it (distinct
        senders make the fan-in a true N-way incast); when ``fan_out``
        exceeds the eligible host count the chosen set wraps around,
        mirroring ``Scenario.incast_senders`` semantics.
        """
        chosen: List[int] = []
        seen = set()
        attempts = 0
        limit = 8 * fan_out
        while len(chosen) < fan_out and attempts < limit:
            attempts += 1
            host = self._sample_one(rng, client)
            if host in seen:
                continue
            seen.add(host)
            chosen.append(host)
        if len(chosen) < fan_out:
            # rejection sampling stalled (tiny fabric or extreme skew):
            # fill deterministically from the eligible hosts in id order
            for host in self._all_hosts:
                if host != client and host not in seen:
                    seen.add(host)
                    chosen.append(host)
                    if len(chosen) == fan_out:
                        break
        while len(chosen) < fan_out:
            # fan_out > hosts - 1: several shards share a server
            chosen.append(chosen[len(chosen) % max(len(seen), 1)])
        return chosen

    def _sample_one(self, rng: random.Random, client: int) -> int:
        spec = self.spec
        client_rack = self._rack_of[client]
        for _ in range(16):
            if spec.locality > 0.0 and rng.random() < spec.locality:
                rack = client_rack
            else:
                u = rng.random() * self._total_weight
                rack = self._ranked_racks[bisect_left(self._cum_weights, u)]
            hosts = self._rack_hosts[rack]
            idx = rng.randrange(len(hosts))
            if hosts[idx] == client:
                idx = (idx + 1) % len(hosts)
            if hosts[idx] != client:
                return hosts[idx]
        # every draw landed on a rack whose only host is the client
        for host in self._all_hosts:
            if host != client:
                return host
        raise AssertionError("unreachable: >= 2 hosts checked at init")
