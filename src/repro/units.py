"""Unit helpers and global constants.

The simulator runs on an integer-nanosecond clock.  All helpers in this
module convert human-friendly quantities (Gbps, microseconds, kilobytes)
into the internal representation:

* time      -- integer nanoseconds (``int``)
* bandwidth -- bits per second (``float``; only ever multiplied/divided)
* sizes     -- bytes (``int``)

Keeping these conversions in one place avoids the classic simulator bug
of mixing microseconds with nanoseconds or bits with bytes.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def ns(value: float) -> int:
    """Nanoseconds to internal time."""
    return int(round(value))


def us(value: float) -> int:
    """Microseconds to internal time."""
    return int(round(value * US))


def ms(value: float) -> int:
    """Milliseconds to internal time."""
    return int(round(value * MS))


def seconds(value: float) -> int:
    """Seconds to internal time."""
    return int(round(value * SEC))


def to_us(t: int) -> float:
    """Internal time to microseconds (for reporting)."""
    return t / US


def to_ms(t: int) -> float:
    """Internal time to milliseconds (for reporting)."""
    return t / MS


# --- bandwidth --------------------------------------------------------------

KBPS = 1e3
MBPS = 1e6
GBPS = 1e9


def gbps(value: float) -> float:
    """Gigabits per second to bits per second."""
    return value * GBPS


def mbps(value: float) -> float:
    """Megabits per second to bits per second."""
    return value * MBPS


# --- sizes ------------------------------------------------------------------

BYTE = 1
KB = 1_000
MB = 1_000_000

#: Default maximum transmission unit in bytes.  The paper uses 1 KB MTU
#: for window math ("30 MTU to 40 MTU" incast flows) and 1.5 KB for the
#: NDP comparison; configs override as needed.
MTU = 1_000

#: Size of control packets (ACK, CNP, credit, pause) in bytes.  64 B is
#: the minimum Ethernet frame and matches what NS-3 RoCE models use.
CTRL_PKT_SIZE = 64


def kb(value: float) -> int:
    """Kilobytes to bytes."""
    return int(round(value * KB))


def mb(value: float) -> int:
    """Megabytes to bytes."""
    return int(round(value * MB))


# --- derived quantities ------------------------------------------------------


def serialization_delay(size_bytes: int, bandwidth_bps: float) -> int:
    """Time to clock ``size_bytes`` onto a link of ``bandwidth_bps``."""
    return int(round(size_bytes * 8 * SEC / bandwidth_bps))


def bdp_bytes(bandwidth_bps: float, rtt_ns: int) -> int:
    """Bandwidth-delay product in bytes for a given RTT."""
    return int(round(bandwidth_bps * rtt_ns / (8 * SEC)))


def bdp_packets(bandwidth_bps: float, rtt_ns: int, mtu: int = MTU) -> int:
    """Bandwidth-delay product in MTU-sized packets (at least 1)."""
    return max(1, -(-bdp_bytes(bandwidth_bps, rtt_ns) // mtu))
