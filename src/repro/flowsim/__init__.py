"""Flow-level (fluid) simulation: the second fidelity tier.

``repro.flowsim`` trades per-packet events for per-flow rate evolution:
active flows share the topology's links by max-min fairness
(progressive filling), recomputed only at flow arrivals and departures.
A Floodgate model caps each (switch, dst) aggregate at the credit
window's sustainable rate, so per-dst window semantics survive the
abstraction.

The tier sits behind the same :class:`ScenarioConfig` /
:class:`ResultSummary` interface as the packet engine — select it with
``ScenarioConfig(fidelity="flow")`` — and is cross-validated against
packet-level FCT distributions by :mod:`repro.flowsim.validate`
(``floodgate-experiment validate-flowsim``).
"""

from repro.flowsim.maxmin import max_min_rates
from repro.flowsim.model import FluidSimulation

__all__ = ["FluidSimulation", "max_min_rates"]
