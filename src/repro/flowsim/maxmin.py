"""Max-min fair rate allocation by progressive filling.

The classic waterfilling algorithm over generic capacitated resources:
every unfrozen flow's rate rises at the same pace; when a resource
saturates, the flows crossing it freeze at the current fill level; when
a flow reaches its own rate ceiling (sending-window cap, Floodgate VOQ
cap expressed as a single-member resource would also work, but a
per-flow ceiling is cheaper), it freezes at the ceiling.  The result is
the unique max-min fair allocation.

Everything is index-based (plain lists, no dict/set iteration), so the
allocation is a pure deterministic function of its inputs — the same
flows in the same order always produce bit-identical rates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: a resource is "saturated" when its remaining capacity falls below
#: this fraction of the original — guards float residue from repeated
#: ``remaining -= delta * count`` updates
_SATURATION_EPS = 1e-9


def max_min_rates(
    paths: Sequence[Tuple[int, ...]],
    ceilings: Sequence[float],
    capacities: Sequence[float],
) -> List[float]:
    """Max-min fair rates for ``paths`` over ``capacities``.

    ``paths[i]`` lists the resource indices flow ``i`` crosses (a flow
    may cross a resource at most once); ``ceilings[i]`` is flow ``i``'s
    own rate cap (``float("inf")`` for none); ``capacities[r]`` is
    resource ``r``'s capacity.  All rates/capacities share one unit
    (bits per second here, but the algorithm is unit-agnostic).
    """
    n = len(paths)
    if n == 0:
        return []
    m = len(capacities)
    rates = [0.0] * n
    remaining = [float(c) for c in capacities]
    count = [0] * m
    members: List[List[int]] = [[] for _ in range(m)]
    for i, path in enumerate(paths):
        for r in path:
            count[r] += 1
            members[r].append(i)
    # flows freeze at their ceiling in ascending-ceiling order
    by_ceiling = sorted(range(n), key=lambda i: ceilings[i])
    cursor = 0
    active = [True] * n
    unfrozen = n
    level = 0.0
    saturation = [c * _SATURATION_EPS for c in remaining]

    def freeze(i: int, rate: float) -> None:
        nonlocal unfrozen
        active[i] = False
        unfrozen -= 1
        rates[i] = rate
        for r in paths[i]:
            count[r] -= 1

    while unfrozen:
        # how far can the water rise before the next constraint binds?
        delta_res = min(
            (remaining[r] / count[r] for r in range(m) if count[r]),
            default=float("inf"),
        )
        while cursor < n and not active[by_ceiling[cursor]]:
            cursor += 1
        delta_cap = (
            ceilings[by_ceiling[cursor]] - level if cursor < n else float("inf")
        )
        delta = min(delta_res, delta_cap)
        if delta == float("inf"):  # pragma: no cover - defensive
            break
        if delta > 0.0:
            level += delta
            for r in range(m):
                if count[r]:
                    remaining[r] -= delta * count[r]
        frozen_this_round = 0
        # ceiling-limited flows freeze exactly at their ceiling
        while cursor < n:
            i = by_ceiling[cursor]
            if not active[i]:
                cursor += 1
                continue
            if ceilings[i] <= level:
                freeze(i, ceilings[i])
                frozen_this_round += 1
                cursor += 1
                continue
            break
        # flows on saturated resources freeze at the fill level
        for r in range(m):
            if count[r] and remaining[r] <= saturation[r]:
                for i in members[r]:
                    if active[i]:
                        freeze(i, level)
                        frozen_this_round += 1
        if frozen_this_round == 0:
            # float residue left every constraint epsilon-open: freeze
            # the binding resource's flows rather than looping forever
            r_min = min(
                (r for r in range(m) if count[r]),
                key=lambda r: remaining[r] / count[r],
                default=-1,
            )
            if r_min < 0:
                # only ceiling-free flows with no resources remain
                for i in range(n):
                    if active[i]:
                        freeze(i, level)
                continue
            for i in members[r_min]:
                if active[i]:
                    freeze(i, level)
    return rates
