"""The fluid flow-level simulation driven by the existing event engine.

``FluidSimulation`` wraps a built :class:`~repro.experiments.scenario.
Scenario` and evolves per-flow *rates* instead of per-packet events:

* each flow follows the same ECMP path the packet engine would give its
  packets (read straight from the switches' route tables);
* active flows share every directed link by max-min fairness
  (:func:`repro.flowsim.maxmin.max_min_rates`), recomputed only when a
  flow arrives or departs;
* with Floodgate installed, each (switch, per-dst VOQ) contributes an
  extra shared resource capping the aggregate rate toward that dst at
  what the credit window can sustain over the next hop's RTT —
  ``window / hop_rtt`` — mirroring §3.2/§4.2 window sizing (the last
  hop keeps no window, exactly as in the packet extension);
* a flow's own rate is ceilinged by its sending window over the base
  RTT (the ACK-clocking bound), so ``swnd_bdp`` keeps its meaning.

A finished transfer's FCT adds the path's unloaded tail latency —
propagation plus per-hop store-and-forward serialization of the last
packet — so unloaded small-flow FCTs agree with the packet engine.

Events run on the scenario's :class:`~repro.sim.engine.Simulator`
(arrival batches plus one cancellable next-completion event), so the
runner loop, telemetry samplers, the engine profiler, and simcheck's
:class:`EventStreamDigest` all work unchanged.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.cc.flow import Flow
from repro.flowsim.maxmin import max_min_rates
from repro.net.switch import Switch, _ecmp_hash
from repro.sim.engine import Event
from repro.stats.fct import FctRecord
from repro.units import CTRL_PKT_SIZE, MTU, SEC, serialization_delay

#: projected-finish sentinel for starved flows (rate 0: a zero-capacity
#: resource on the path); far beyond any runner hard stop
_NEVER = 1 << 62

#: utilization clamp for the queueing-delay correction: ``rho/(1-rho)``
#: diverges as a link saturates, but real queues are bounded by buffers
#: and flow control — cap the modeled backlog at 19 MTUs per hop
_RHO_CAP = 0.95


class FluidFlow:
    """Runtime state of one flow in the fluid model."""

    __slots__ = (
        "flow",
        "path",
        "ceiling",
        "tail_latency",
        "remaining_bits",
        "rate",
        "proj_finish",
        "admit_time",
        "admit_bits",
    )

    def __init__(
        self,
        flow: Flow,
        path: Tuple[int, ...],
        ceiling: float,
        tail_latency: int,
    ) -> None:
        self.flow = flow
        self.path = path
        self.ceiling = ceiling
        self.tail_latency = tail_latency
        self.remaining_bits = float(flow.size * 8)
        self.rate = 0.0
        self.proj_finish = _NEVER
        #: set at admission: the instant, and a snapshot of each link
        #: resource's cumulative fluid and packet bits — the queueing-
        #: delay correction reads lifetime utilization from the deltas
        #: at completion
        self.admit_time = 0
        self.admit_bits: Tuple[Tuple[int, float, float], ...] = ()


class FluidSimulation:
    """Flow-level execution of one built scenario."""

    def __init__(self, scenario) -> None:
        self.scenario = scenario
        self.sim = scenario.sim
        self.topology = scenario.topology
        self.stats = scenario.stats
        cfg = scenario.config
        self.config = cfg
        #: directed link r: capacity of topology.links[r // 2] in the
        #: a->b (even) or b->a (odd) direction; VOQ resources follow
        self.capacities: List[float] = []
        for link in self.topology.links:
            self.capacities.append(link.bandwidth)
            self.capacities.append(link.bandwidth)
        self._link_index: Dict[int, int] = {
            id(link): i for i, link in enumerate(self.topology.links)
        }
        #: Floodgate per-(switch, dst) VOQ resources, created lazily
        self._voq_resource: Dict[Tuple[int, int], int] = {}
        self._floodgate_ext: Dict[int, object] = {}
        if cfg.flow_control in ("floodgate", "floodgate-ideal"):
            for ext in scenario.extensions:
                sw = getattr(ext, "switch", None)
                if sw is not None and hasattr(ext, "_initial_window"):
                    self._floodgate_ext[sw.node_id] = ext
        #: per-flow ceiling: the sending window over the base RTT
        swnd_bytes = max(int(cfg.swnd_bdp * scenario.base_bdp), 2_000)
        base_rtt = max(scenario.base_rtt, 1)
        self._flow_ceiling = swnd_bytes * 8.0 * SEC / base_rtt
        #: cumulative bits carried per *directed link* resource (VOQ
        #: resources are excluded: they model windows, not queues).
        #: Deltas over a flow's lifetime give the mean utilization its
        #: packets competed against — the input to the queueing-delay
        #: correction applied to its FCT at completion.
        self._n_link_resources = 2 * len(self.topology.links)
        self._resource_bits: List[float] = [0.0] * self._n_link_resources
        #: cumulative bits the *packet* tier carried on each directed
        #: link without a fluid flow representing them (hybrid boundary
        #: traffic: see repro.hybrid).  Counted as cross traffic by the
        #: queueing-delay correction; bytes whose flow is fluid-managed
        #: must never be booked here — they already accumulate in
        #: ``_resource_bits`` — or utilization would be counted twice.
        self._packet_bits: List[float] = [0.0] * self._n_link_resources
        #: (first-switch, dst, ecmp-key) -> path tail from that switch
        #: onward.  Every host in a rack shares its ToR's tail, so
        #: boundary crossings and whole-rack workloads stop rebuilding
        #: hop tuples per flow; per-flow ECMP keys the tail by flow id.
        self._tail_cache: Dict[
            Tuple[int, int, int], Tuple[Tuple[int, ...], Tuple]
        ] = {}
        self._active: List[FluidFlow] = []
        #: resource index -> insertion-ordered dict of active flows
        #: touching it (a dict used as a deterministic set); the
        #: incremental reallocator walks connected components over it
        self._res_flows: Dict[int, Dict[FluidFlow, None]] = {}
        self._last_advance = 0
        self._arrivals: List[FluidFlow] = []
        self._arrival_cursor = 0
        #: closed-loop injections (repro.rpc) land here, not in the
        #: pre-sorted arrival schedule: they are created *at* their
        #: start instant, so _admit can drain this list unconditionally
        self._injected: List[FluidFlow] = []
        self._completion_ev: Optional[Event] = None
        #: rate recomputations performed (reported via extras/telemetry)
        self.reallocations = 0
        # the sanitizer's rate-conservation sweep finds us here
        scenario.fluid = self

    # -- path construction -------------------------------------------------

    def _route_port(self, sw: Switch, dst: int, flow_id: int) -> int:
        """The egress port the packet engine would pick (ECMP-faithful)."""
        entry = sw.routes[dst]
        if isinstance(entry, int):
            return entry
        key = flow_id if self.config.per_flow_ecmp else dst
        return entry[_ecmp_hash(key) % len(entry)]

    def _voq_cap(self, sw: Switch, dst: int) -> float:
        """Sustainable rate of a Floodgate per-dst window (bits/s)."""
        ext = self._floodgate_ext[sw.node_id]
        window_bits = ext._initial_window(dst) * MTU * 8
        out = sw.route_for_dst(dst)
        link = sw.links[out]
        hop_rtt = (
            2 * link.delay
            + serialization_delay(MTU, link.bandwidth)
            + serialization_delay(CTRL_PKT_SIZE, link.bandwidth)
        )
        return window_bits * SEC / max(hop_rtt, 1)

    def _directed_resource(self, link, node) -> int:
        """Directed-link resource index for ``link`` leaving ``node``."""
        direction = 0 if link.node_a is node else 1
        return 2 * self._link_index[id(link)] + direction

    def _build_tail(
        self, node: Switch, dst: int, flow_id: int
    ) -> Tuple[Tuple[int, ...], Tuple]:
        """Resources + hops from switch ``node`` to host ``dst``."""
        resources: List[int] = []
        hops: List[Tuple[float, int]] = []
        while True:
            if self._floodgate_ext and not node.is_last_hop_for(dst):
                key = (node.node_id, dst)
                voq = self._voq_resource.get(key)
                if voq is None:
                    voq = len(self.capacities)
                    self.capacities.append(self._voq_cap(node, dst))
                    self._voq_resource[key] = voq
                resources.append(voq)
            link = node.links[self._route_port(node, dst, flow_id)]
            resources.append(self._directed_resource(link, node))
            hops.append((link.bandwidth, link.delay))
            peer = link.peer_of(node)
            if not isinstance(peer, Switch):
                if peer.node_id != dst:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"route walk to {dst} reached host {peer.node_id}"
                    )
                return tuple(resources), tuple(hops)
            node = peer

    def _tail_from(
        self, node: Switch, dst: int, flow_id: int
    ) -> Tuple[Tuple[int, ...], Tuple]:
        """Cached :meth:`_build_tail`, keyed (switch, dst, ecmp-key).

        Without per-flow ECMP the route from a switch depends only on
        the destination, so every host behind one ToR shares a single
        cached tail; per-flow ECMP hashes the flow id, so the tail is
        keyed by it instead.
        """
        ecmp_key = flow_id if self.config.per_flow_ecmp else -1
        key = (node.node_id, dst, ecmp_key)
        cached = self._tail_cache.get(key)
        if cached is None:
            cached = self._build_tail(node, dst, flow_id)
            self._tail_cache[key] = cached
        return cached

    def _build_path(
        self, src: int, dst: int, flow_id: int
    ) -> Tuple[Tuple[int, ...], Tuple]:
        """Resource indices plus (bandwidth, delay) hops from src to dst."""
        node = self.topology.hosts[src]
        link = node.links[0]
        head_resource = self._directed_resource(link, node)
        head_hop = (link.bandwidth, link.delay)
        peer = link.peer_of(node)
        if not isinstance(peer, Switch):
            if peer.node_id != dst:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"route walk from {src} to {dst} reached host "
                    f"{peer.node_id}"
                )
            return (head_resource,), (head_hop,)
        tail_resources, tail_hops = self._tail_from(peer, dst, flow_id)
        return (head_resource,) + tail_resources, (head_hop,) + tail_hops

    def _path_of(self, flow: Flow) -> Tuple[Tuple[int, ...], Tuple]:
        return self._build_path(flow.src, flow.dst, flow.flow_id)

    def _tail_latency(self, size: int, hops: Tuple) -> int:
        """Unloaded delivery lag of the flow's final packet.

        Propagation on every hop plus store-and-forward serialization
        on every hop after the first: the fluid transfer time already
        covers clocking the bytes through the source NIC.
        """
        last_pkt = min(size, MTU)
        total = 0
        for i, (bandwidth, delay) in enumerate(hops):
            total += delay
            if i:
                total += serialization_delay(last_pkt, bandwidth)
        return total

    # -- scheduling --------------------------------------------------------

    def schedule(self, specs=None) -> None:
        """Register every flow and schedule its arrival event."""
        topo = self.topology
        flows = [
            topo.make_flow(s.flow_id, s.src, s.dst, s.size, s.start_time)
            for s in (specs if specs is not None else self.scenario.flows)
        ]
        flows.sort(key=lambda f: (f.start_time, f.flow_id))
        now = self.sim.now
        for flow in flows:
            path, hops = self._path_of(flow)
            self._arrivals.append(
                FluidFlow(
                    flow,
                    path,
                    self._flow_ceiling,
                    self._tail_latency(flow.size, hops),
                )
            )
        # one event per distinct arrival instant, batch-loaded
        times = sorted(
            {max(ff.flow.start_time, now) for ff in self._arrivals}
        )
        self.sim.schedule_many((t, self._process, ()) for t in times)

    def inject_flows(self, flows: List[Flow]) -> None:
        """Admit flows created *now* by a closed-loop driver.

        The pre-generated arrival list is sorted and consumed by a
        cursor, so reactively created flows cannot be appended to it
        (they would land behind later-scheduled arrivals and the
        cursor would never reach them).  They go through a side queue
        instead and are admitted in the same fluid step.  Callers must
        invoke this from a simulator event, never from inside a fluid
        callback (``on_flow_done``) — schedule a follow-up event.
        """
        for flow in flows:
            path, hops = self._path_of(flow)
            self._injected.append(
                FluidFlow(
                    flow,
                    path,
                    self._flow_ceiling,
                    self._tail_latency(flow.size, hops),
                )
            )
        self._process()

    # -- the fluid step ----------------------------------------------------

    def _advance(self, now: int) -> None:
        dt = now - self._last_advance
        if dt > 0:
            factor = dt / SEC
            bits = self._resource_bits
            n_link = self._n_link_resources
            for ff in self._active:
                if ff.rate > 0.0:
                    moved = ff.rate * factor
                    ff.remaining_bits -= moved
                    for r in ff.path:
                        if r < n_link:
                            bits[r] += moved
        self._last_advance = now

    def note_packet_bits(self, resource: int, bits: float) -> None:
        """Book packet-tier bits on a directed link (hybrid boundary).

        Only for traffic with *no* fluid flow representing it: fluid-
        managed flows already accumulate ``_resource_bits`` through
        :meth:`_advance`, so booking their materialized packets here
        too would double-count utilization in :meth:`_queueing_wait`.
        """
        self._packet_bits[resource] += bits

    def _queueing_wait(self, ff: FluidFlow, now: int) -> int:
        """Estimated queueing delay the flow's packets saw, in ns.

        The base fluid model shares *bandwidth* but keeps no queues, so
        it systematically undershoots tail FCTs on loaded fabrics
        (Poisson-heavy runs showed ~20% p99 underestimates vs the
        packet engine).  Correction: for each directed link on the
        path, the cross traffic carried during the flow's lifetime
        (cumulative resource bits minus the flow's own, plus any
        packet-tier bits the hybrid boundary booked for traffic no
        fluid flow represents) gives the mean utilization ``rho`` its
        packets competed against; an M/M/1-shaped wait of
        ``rho / (1 - rho)`` MTU service times per hop is added to the
        FCT.  A lone flow sees ``rho == 0`` everywhere, so unloaded
        FCTs keep their exact closed-form values.
        """
        lifetime = now - ff.admit_time
        if lifetime <= 0 or not ff.admit_bits:
            return 0
        own = ff.flow.size * 8.0
        bits = self._resource_bits
        pbits = self._packet_bits
        caps = self.capacities
        per_sec = SEC / lifetime
        wait = 0.0
        for r, b0, p0 in ff.admit_bits:
            cross = (bits[r] - b0 - own) + (pbits[r] - p0)
            if cross <= 0.0:
                continue
            cap = caps[r]
            rho = cross * per_sec / cap
            if rho > _RHO_CAP:
                rho = _RHO_CAP
            wait += rho / (1.0 - rho) * serialization_delay(MTU, cap)
        return int(wait)

    def _retire_flow(self, ff: FluidFlow, now: int) -> None:
        """Record one finished transfer (FCT, stats, completion hook).

        Overridden by the hybrid tier for boundary flows whose FCT is
        measured from real packet delivery instead.
        """
        flow = ff.flow
        finish = now + ff.tail_latency + self._queueing_wait(ff, now)
        flow.finish_time = finish
        flow.delivered_bytes = flow.size
        flow.sender_done = True
        flow.expected_seq = flow.n_packets
        flow.acked_seq = flow.n_packets
        dst_host = self.topology.hosts[flow.dst]
        dst_host.rx_data_bytes += flow.size
        stats = self.stats
        if stats is not None:
            stats.record_rx(flow.flow_id, flow.size)
            stats.record_fct(
                FctRecord(
                    flow.flow_id,
                    flow.src,
                    flow.dst,
                    flow.size,
                    flow.start_time,
                    finish,
                )
            )
        if dst_host.on_flow_done is not None:
            dst_host.on_flow_done(flow)

    def _unlink(self, ff: FluidFlow) -> None:
        """Drop a flow from the resource-incidence index."""
        res_flows = self._res_flows
        for r in ff.path:
            bucket = res_flows.get(r)
            if bucket is not None:
                bucket.pop(ff, None)
                if not bucket:
                    del res_flows[r]

    def _complete_due(self, now: int, dirty: List[int]) -> bool:
        """Retire flows whose projected finish has arrived."""
        done = [
            ff
            for ff in self._active
            if ff.proj_finish <= now or ff.remaining_bits <= 0.0
        ]
        if not done:
            return False
        self._active = [ff for ff in self._active if ff not in done]
        for ff in done:
            self._unlink(ff)
            dirty.extend(ff.path)
            ff.remaining_bits = 0.0
            self._retire_flow(ff, now)
        return True

    def _on_admit(self, ff: FluidFlow, now: int) -> None:
        ff.admit_time = now
        bits = self._resource_bits
        pbits = self._packet_bits
        n_link = self._n_link_resources
        ff.admit_bits = tuple(
            (r, bits[r], pbits[r]) for r in ff.path if r < n_link
        )
        res_flows = self._res_flows
        for r in ff.path:
            bucket = res_flows.get(r)
            if bucket is None:
                res_flows[r] = {ff: None}
            else:
                bucket[ff] = None

    def _admit(self, now: int, dirty: List[int]) -> bool:
        arrived = False
        if self._injected:
            for ff in self._injected:
                self._on_admit(ff, now)
                dirty.extend(ff.path)
            self._active.extend(self._injected)
            self._injected.clear()
            arrived = True
        arrivals = self._arrivals
        cursor = self._arrival_cursor
        while cursor < len(arrivals) and arrivals[cursor].flow.start_time <= now:
            ff = arrivals[cursor]
            self._on_admit(ff, now)
            dirty.extend(ff.path)
            self._active.append(ff)
            cursor += 1
            arrived = True
        self._arrival_cursor = cursor
        return arrived

    def _dirty_component(self, dirty: List[int]) -> List[FluidFlow]:
        """Active flows in the connected component of the dirty links.

        Max-min fairness decomposes exactly over connected components
        of the flow/resource bipartite graph: a progressive-filling
        round in one component never reads a rate or capacity from
        another.  Flows outside the component therefore keep both
        their rate and their projected finish (which stays valid
        because ``_advance`` drained bits at exactly that rate).
        """
        res_flows = self._res_flows
        visited = dict.fromkeys(dirty)
        stack = list(visited)
        flows: Dict[FluidFlow, None] = {}
        while stack:
            r = stack.pop()
            bucket = res_flows.get(r)
            if not bucket:
                continue
            for ff in bucket:
                if ff not in flows:
                    flows[ff] = None
                    for r2 in ff.path:
                        if r2 not in visited:
                            visited[r2] = None
                            stack.append(r2)
        return list(flows)

    def _maxmin(self, flows: List[FluidFlow]) -> List[float]:
        """Max-min rates for ``flows`` over compressed resources."""
        local: Dict[int, int] = {}
        caps: List[float] = []
        paths: List[Tuple[int, ...]] = []
        for ff in flows:
            compressed = []
            for r in ff.path:
                li = local.get(r)
                if li is None:
                    li = len(caps)
                    local[r] = li
                    caps.append(self.capacities[r])
                compressed.append(li)
            paths.append(tuple(compressed))
        return max_min_rates(paths, [ff.ceiling for ff in flows], caps)

    def _apply_rates(
        self, now: int, flows: List[FluidFlow], rates: List[float]
    ) -> None:
        """Install freshly allocated rates (hybrid re-paces here)."""
        for ff, rate in zip(flows, rates, strict=True):
            ff.rate = rate
            if rate > 0.0 and ff.remaining_bits > 0.0:
                ff.proj_finish = now + int(
                    math.ceil(ff.remaining_bits * SEC / rate)
                )
            else:
                ff.proj_finish = _NEVER

    def _reallocate(self, now: int, dirty: Optional[List[int]] = None) -> None:
        """Recompute max-min rates and projected finishes.

        With ``dirty`` (the directed-link/VOQ resources touched by the
        arrivals, departures, or capacity changes that triggered the
        call) and ``maxmin_incremental`` on, only the connected
        component containing those resources is recomputed; ``None``
        forces the full active set (the paranoid reference).
        """
        self.reallocations += 1
        active = self._active
        if not active:
            return
        if dirty is not None and self.config.maxmin_incremental:
            flows = self._dirty_component(dirty)
            if not flows:
                return
        else:
            flows = active
        rates = self._maxmin(flows)
        if (
            self.config.paranoid_maxmin
            and len(flows) < len(active)
        ):
            self._paranoid_check(flows, rates)
        self._apply_rates(now, flows, rates)

    def _paranoid_check(
        self, flows: List[FluidFlow], rates: List[float]
    ) -> None:
        """Assert the incremental allocation matches a full recompute.

        Compared with ``isclose`` rather than ``==``: the full pass
        interleaves components, so float reassociation can shift the
        shared fair-share sums by ulps.
        """
        full = self._maxmin(self._active)
        fresh = dict(zip(flows, rates, strict=True))
        for ff, rate in zip(self._active, full, strict=True):
            got = fresh.get(ff, ff.rate)
            if not math.isclose(got, rate, rel_tol=1e-9, abs_tol=1e-3):
                raise AssertionError(
                    f"incremental max-min diverged for flow "
                    f"{ff.flow.flow_id}: component gave {got!r}, full "
                    f"recompute gave {rate!r}"
                )

    def _schedule_next_completion(self) -> None:
        nxt = _NEVER
        for ff in self._active:
            if ff.proj_finish < nxt:
                nxt = ff.proj_finish
        ev = self._completion_ev
        if nxt == _NEVER:
            if ev is not None:
                ev.cancel()
                self._completion_ev = None
            return
        if ev is not None and not ev.cancelled and ev.time == nxt:
            return
        if ev is not None:
            ev.cancel()
        self._completion_ev = self.sim.schedule_at(nxt, self._process)

    def _process(self) -> None:
        """One fluid step: advance, retire, admit, re-share, re-arm."""
        now = self.sim.now
        self._advance(now)
        dirty: List[int] = []
        changed = self._complete_due(now, dirty)
        changed = self._admit(now, dirty) or changed
        if changed:
            self._reallocate(now, dirty)
        self._schedule_next_completion()

    # -- invariants (consumed by repro.simcheck.sanitizer) -----------------

    def conservation_errors(self) -> List[str]:
        """Rate-conservation violations: per-resource load vs capacity.

        The max-min allocation must never oversubscribe a directed link
        (or a Floodgate VOQ cap); a violation here means the allocator
        produced physically impossible rates.
        """
        load: Dict[int, float] = {}
        for ff in self._active:
            for r in ff.path:
                load[r] = load.get(r, 0.0) + ff.rate
        errors: List[str] = []
        n_links = 2 * len(self.topology.links)
        for r in sorted(load):
            cap = self.capacities[r]
            if load[r] > cap * (1.0 + 1e-6):
                kind = "link" if r < n_links else "floodgate-voq"
                errors.append(
                    f"rate conservation broken on {kind} resource {r}: "
                    f"allocated {load[r]:.0f} bps > capacity {cap:.0f} bps"
                )
        return errors
