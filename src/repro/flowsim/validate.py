"""Cross-validation: fluid tier vs the packet engine, same scenarios.

``cross_validate`` runs each bench scenario (quick, incast256,
fattree-a2a) at both fidelities and compares FCT percentiles over the
**matched** flow set — flows completed in *both* runs.  Matching
matters: a straggler that beats the hard stop in one mode but not the
other would shift nearest-rank percentiles and report divergence where
the per-flow agreement is actually tight.

The incast256 validation variant tweaks the perf-bench configs in two
ways, both documented in DESIGN.md "Fidelity tiers":

* ``max_runtime_factor=64`` — the perf matrix cuts runs off long
  before a 255-fan-in burst can drain a 10 Gbps link; validation needs
  completed flows on both sides.
* ``flow_control="floodgate"`` + a buffer that fits the burst — the
  fluid model has no loss model, so it is validated in the drop-free
  regime it claims to approximate.  (Under incast collapse — shallow
  buffers, no flow control, go-back-N retransmitting most of the
  burst — the fluid tier *knowingly* overestimates goodput; that
  regime needs the packet engine.)

Thresholds: p50/p99 divergence within ``tolerance`` is asserted for
quick and incast256.  fattree-a2a is asserted against its own wider
budget (``SCENARIO_TOLERANCE``): the fluid model's utilization-based
queueing-delay correction closes the mean-FCT gap, but the p99 residual
on a Poisson-loaded 3-tier fabric is congestion-control convergence
(DCQCN rate ramping), which a fluid rate model cannot represent — the
assertion pins that residual so it cannot silently grow.  The incast256
aggregate wall-clock speedup is asserted against ``min_speedup``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.bench import scenario_matrix
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.stats.fct import summarize_fct

#: p50/p99 divergence budget asserted for quick and incast256
DEFAULT_TOLERANCE = 0.15

#: asserted aggregate wall-clock speedup for incast256
DEFAULT_MIN_SPEEDUP = 20.0

#: scenarios whose FCT divergence is asserted (not just reported)
ASSERTED_SCENARIOS = ("quick", "incast256", "fattree-a2a")

#: per-scenario tolerance overrides (fraction, replaces ``tolerance``).
#: fattree-a2a budgets the DCQCN-convergence p99 residual the fluid
#: model cannot represent; measured 22.5% at seed 1 after the queueing
#: correction, pinned with headroom so growth past it fails the gate
SCENARIO_TOLERANCE: Dict[str, float] = {"fattree-a2a": 0.25}

#: the scenario whose aggregate speedup is asserted
SPEEDUP_SCENARIO = "incast256"


@dataclass(frozen=True)
class ConfigComparison:
    """Both-fidelity results for one config of one scenario."""

    scenario: str
    config_index: int
    matched_flows: int
    packet_only_flows: int
    flow_only_flows: int
    packet_wall: float
    flow_wall: float
    p50_packet_ns: int
    p50_flow_ns: int
    p99_packet_ns: int
    p99_flow_ns: int

    @property
    def p50_divergence(self) -> float:
        if self.p50_packet_ns <= 0:
            return 0.0
        return abs(self.p50_flow_ns - self.p50_packet_ns) / self.p50_packet_ns

    @property
    def p99_divergence(self) -> float:
        if self.p99_packet_ns <= 0:
            return 0.0
        return abs(self.p99_flow_ns - self.p99_packet_ns) / self.p99_packet_ns

    @property
    def speedup(self) -> float:
        if self.flow_wall <= 0.0:
            return float("inf")
        return self.packet_wall / self.flow_wall

    def as_dict(self) -> Dict:
        return {
            "scenario": self.scenario,
            "config_index": self.config_index,
            "matched_flows": self.matched_flows,
            "packet_only_flows": self.packet_only_flows,
            "flow_only_flows": self.flow_only_flows,
            "packet_wall_seconds": round(self.packet_wall, 4),
            "flow_wall_seconds": round(self.flow_wall, 4),
            "speedup": round(self.speedup, 2),
            "p50_packet_ns": self.p50_packet_ns,
            "p50_flow_ns": self.p50_flow_ns,
            "p50_divergence": round(self.p50_divergence, 4),
            "p99_packet_ns": self.p99_packet_ns,
            "p99_flow_ns": self.p99_flow_ns,
            "p99_divergence": round(self.p99_divergence, 4),
        }


def validation_configs(scenario: str) -> Tuple[ScenarioConfig, ...]:
    """The bench scenario's configs, adjusted for FCT comparison.

    See the module docstring for why incast256 differs from the perf
    matrix here.
    """
    matrix = scenario_matrix()
    if scenario not in matrix:
        raise ValueError(
            f"unknown validation scenario {scenario!r}; "
            f"choose from {sorted(matrix)}"
        )
    configs = matrix[scenario].configs
    if scenario == "incast256":
        configs = tuple(
            replace(
                cfg,
                max_runtime_factor=64.0,
                flow_control="floodgate",
                buffer_bytes=2_000_000,
            )
            for cfg in configs
        )
    return configs


def compare_config(
    scenario: str, index: int, config: ScenarioConfig
) -> ConfigComparison:
    """Run ``config`` at both fidelities and compare matched FCTs."""
    packet = run_scenario(replace(config, fidelity="packet"))
    flow = run_scenario(replace(config, fidelity="flow"))
    by_id_packet = {r.flow_id: r for r in packet.stats.fct_records}
    by_id_flow = {r.flow_id: r for r in flow.stats.fct_records}
    matched = sorted(set(by_id_packet) & set(by_id_flow))
    sp = summarize_fct([by_id_packet[f] for f in matched])
    sf = summarize_fct([by_id_flow[f] for f in matched])
    return ConfigComparison(
        scenario=scenario,
        config_index=index,
        matched_flows=len(matched),
        packet_only_flows=len(by_id_packet) - len(matched),
        flow_only_flows=len(by_id_flow) - len(matched),
        packet_wall=packet.wall_seconds,
        flow_wall=flow.wall_seconds,
        p50_packet_ns=sp.p50_ns,
        p50_flow_ns=sf.p50_ns,
        p99_packet_ns=sp.p99_ns,
        p99_flow_ns=sf.p99_ns,
    )


def cross_validate(
    scenarios: Optional[Sequence[str]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
) -> Tuple[bool, List[ConfigComparison], List[str]]:
    """Validate the fluid tier against the packet engine.

    Returns ``(ok, comparisons, messages)``.  ``ok`` is False when an
    asserted scenario's p50/p99 divergence exceeds ``tolerance`` on a
    config with matched flows, or when the incast256 aggregate speedup
    (when that scenario was run) falls below ``min_speedup``.
    """
    names = list(scenarios) if scenarios else list(scenario_matrix())
    ok = True
    comparisons: List[ConfigComparison] = []
    messages: List[str] = []
    for name in names:
        packet_total = flow_total = 0.0
        for index, cfg in enumerate(validation_configs(name)):
            cmp = compare_config(name, index, cfg)
            comparisons.append(cmp)
            packet_total += cmp.packet_wall
            flow_total += cmp.flow_wall
            asserted = name in ASSERTED_SCENARIOS
            scenario_tol = SCENARIO_TOLERANCE.get(name, tolerance)
            if cmp.matched_flows == 0:
                messages.append(
                    f"{name}[{index}]: no matched flows "
                    f"(packet-only={cmp.packet_only_flows}, "
                    f"flow-only={cmp.flow_only_flows}); divergence skipped"
                )
                continue
            line = (
                f"{name}[{index}]: n={cmp.matched_flows} "
                f"p50 {cmp.p50_packet_ns}ns vs {cmp.p50_flow_ns}ns "
                f"({cmp.p50_divergence:.1%}), "
                f"p99 {cmp.p99_packet_ns}ns vs {cmp.p99_flow_ns}ns "
                f"({cmp.p99_divergence:.1%}), speedup {cmp.speedup:.1f}x"
            )
            if asserted and (
                cmp.p50_divergence > scenario_tol
                or cmp.p99_divergence > scenario_tol
            ):
                ok = False
                messages.append(
                    f"FAIL {line} — divergence above {scenario_tol:.0%}"
                )
            else:
                messages.append(
                    ("ok   " if asserted else "info ") + line
                )
        if name == SPEEDUP_SCENARIO and min_speedup > 0:
            speedup = (
                packet_total / flow_total if flow_total > 0 else float("inf")
            )
            if speedup < min_speedup:
                ok = False
                messages.append(
                    f"FAIL {name}: aggregate speedup {speedup:.1f}x "
                    f"below required {min_speedup:.0f}x"
                )
            else:
                messages.append(
                    f"ok   {name}: aggregate speedup {speedup:.1f}x "
                    f">= {min_speedup:.0f}x"
                )
    return ok, comparisons, messages
