"""Analytical models from the paper's buffer-occupancy analysis.

The paper states (§6.1, with proofs in its online appendix) that the
maximum buffer occupancy of original DCQCN under incast is
*proportional to the number of flows*, while with Floodgate it drops
to *proportional to the number of core switches* (an
order-of-magnitude reduction at datacenter scale).  This package
provides the closed-form versions of those bounds, plus the window and
overhead formulas of §4.2/§7.4, so simulator output can be validated
against theory (see tests/test_analysis.py).
"""

from repro.analysis.models import (
    credit_overhead_share,
    dcqcn_incast_buffer_bound,
    floodgate_core_buffer_bound,
    floodgate_dst_buffer_bound,
    floodgate_window_bytes,
    ideal_window_bytes,
    hop_bdp_bytes,
)

__all__ = [
    "credit_overhead_share",
    "dcqcn_incast_buffer_bound",
    "floodgate_core_buffer_bound",
    "floodgate_dst_buffer_bound",
    "floodgate_window_bytes",
    "ideal_window_bytes",
    "hop_bdp_bytes",
]
