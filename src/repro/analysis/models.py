"""Closed-form buffer and overhead models.

All formulas take explicit parameters (no globals) and return bytes or
dimensionless shares, so they can be checked against both the paper's
reported configurations and this reproduction's scaled-down ones.
"""

from __future__ import annotations

from repro.units import CTRL_PKT_SIZE, MTU, SEC, serialization_delay


def hop_bdp_bytes(bandwidth: float, link_delay: int, mtu: int = MTU) -> int:
    """One-hop bandwidth-delay product between adjacent switches.

    The hop RTT counts both propagation directions plus the data and
    credit serialization times — the time between forwarding a packet
    and being able to see its credit (§3.2).
    """
    hop_rtt = (
        2 * link_delay
        + serialization_delay(mtu, bandwidth)
        + serialization_delay(CTRL_PKT_SIZE, bandwidth)
    )
    return max(1, int(bandwidth * hop_rtt / (8 * SEC)))


def floodgate_window_bytes(
    bandwidth: float, link_delay: int, credit_timer: int, mtu: int = MTU
) -> int:
    """Practical design's initial window: ``BDP_nextHop + C_out * T`` (§4.2)."""
    timer_bytes = int(bandwidth * credit_timer / (8 * SEC))
    return hop_bdp_bytes(bandwidth, link_delay, mtu) + timer_bytes


def ideal_window_bytes(
    bandwidth: float, link_delay: int, m: float = 1.5, mtu: int = MTU
) -> int:
    """Strawman design's initial window: ``m * BDP_nextHop`` (§3.2)."""
    return int(m * hop_bdp_bytes(bandwidth, link_delay, mtu) + 0.5)


def dcqcn_incast_buffer_bound(
    n_flows: int,
    swnd_bytes: int,
    flow_bytes: int,
    arrival_bandwidth: float,
    drain_bandwidth: float,
) -> int:
    """Destination-side buffer bound for window-limited incast, no
    in-network flow control.

    Every flow can inject ``min(swnd, flow_size)`` before any
    congestion signal returns; the aggregation point drains at the
    destination link rate while the burst arrives at the fabric rate,
    so a ``1 - drain/arrival`` fraction of the burst must queue.  This
    is the "proportional to the number of flows" term of the paper's
    analysis.
    """
    burst = n_flows * min(swnd_bytes, flow_bytes)
    if arrival_bandwidth <= drain_bandwidth:
        return 0
    fraction = 1.0 - drain_bandwidth / arrival_bandwidth
    return int(burst * fraction)


def floodgate_dst_buffer_bound(
    core_bandwidth: float,
    core_link_delay: int,
    credit_timer: int,
    n_core_paths: int = 1,
    mtu: int = MTU,
) -> int:
    """Destination-ToR buffer bound under Floodgate.

    The last hop holds at most what its upstream cores may have in
    flight: one sending window per core path toward this destination —
    *independent of the flow count* (the paper's headline bound,
    "proportional to the number of core switches").
    """
    window = floodgate_window_bytes(
        core_bandwidth, core_link_delay, credit_timer, mtu
    )
    return n_core_paths * window


def floodgate_core_buffer_bound(
    n_source_tors: int,
    tor_bandwidth: float,
    tor_link_delay: int,
    credit_timer: int,
    delay_credit_bytes: int,
    mtu: int = MTU,
) -> int:
    """Core-switch occupancy bound under Floodgate.

    Each source ToR can have one window in flight toward the core, and
    the core's own VOQ is allowed to refill while it stays under the
    delayCredit threshold.
    """
    window = floodgate_window_bytes(
        tor_bandwidth, tor_link_delay, credit_timer, mtu
    )
    return n_source_tors * window + delay_credit_bytes


def credit_overhead_share(
    bandwidth: float,
    credit_timer: int,
    active_destinations: int = 1,
    mtu: int = MTU,
) -> float:
    """Worst-case credit-bandwidth share of the practical design (§7.4).

    A saturated port emits one ``CTRL_PKT_SIZE`` credit per active
    destination per timer period, against ``C * T`` data bytes.
    """
    data_bytes_per_period = bandwidth * credit_timer / (8 * SEC)
    credit_bytes = CTRL_PKT_SIZE * active_destinations
    if data_bytes_per_period <= 0:
        return 0.0
    return credit_bytes / (credit_bytes + data_bytes_per_period)
