"""ECMP modes, oversubscription, and topology variants."""

from collections import Counter

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.net.packet import Packet, PacketKind
from repro.units import gbps, ms
from tests.conftest import MiniNet


class TestEcmp:
    def test_per_dst_uses_single_spine(self):
        net = MiniNet("leaf-spine")
        tor = net.topo.switches_of_kind("tor")[1]
        remote = 0  # host 0 lives on tor0
        ports = {
            tor.route(Packet(PacketKind.DATA, 4, remote, 1000, flow_id=f))
            for f in range(50)
        }
        assert len(ports) == 1

    def test_per_flow_spreads_over_spines(self):
        net = MiniNet("leaf-spine")
        tor = net.topo.switches_of_kind("tor")[1]
        for sw in net.topo.switches:
            sw.per_flow_ecmp = True
        ports = Counter(
            tor.route(Packet(PacketKind.DATA, 4, 0, 1000, flow_id=f))
            for f in range(100)
        )
        assert len(ports) == 2
        # both spines carry a meaningful share
        assert min(ports.values()) > 20

    def test_per_flow_mode_still_delivers(self):
        cfg = ScenarioConfig(
            per_flow_ecmp=True,
            workload="memcached",
            n_tors=3,
            hosts_per_tor=2,
            duration=100_000,
        )
        r = run_scenario(cfg)
        assert r.completion_rate == 1.0


class TestOversubscription:
    def test_oversubscribed_fabric_congests_uplinks(self):
        # 4 hosts x 10G feeding a single 10G uplink: ToR-Up queues grow
        cfg = ScenarioConfig(
            n_spines=1,
            fabric_bandwidth=gbps(10),
            workload="websearch",
            poisson_load=0.5,
            pattern="poisson",
            n_tors=3,
            hosts_per_tor=4,
            duration=200_000,
            max_runtime_factor=30.0,
        )
        r = run_scenario(cfg)
        assert r.stats.max_port_buffer_by_role("tor-up") > 0

    def test_nonblocking_fabric_has_idle_uplinks(self):
        over = ScenarioConfig(
            n_spines=1,
            fabric_bandwidth=gbps(10),
            workload="websearch",
            pattern="poisson",
            poisson_load=0.5,
            n_tors=3,
            hosts_per_tor=4,
            duration=200_000,
            max_runtime_factor=30.0,
        )
        non = ScenarioConfig(
            n_spines=1,
            fabric_bandwidth=gbps(40),
            workload="websearch",
            pattern="poisson",
            poisson_load=0.5,
            n_tors=3,
            hosts_per_tor=4,
            duration=200_000,
            max_runtime_factor=30.0,
        )
        r_over = run_scenario(over)
        r_non = run_scenario(non)
        assert (
            r_non.stats.max_port_buffer_by_role("tor-up")
            <= r_over.stats.max_port_buffer_by_role("tor-up")
        )


class TestPaperScaleBuild:
    def test_paper_scale_topology_builds_and_moves_packets(self):
        """The full 160-host, 100/400G fabric is constructible and
        functional (we only run it briefly — full runs are for real
        reproduction hardware)."""
        from repro.experiments.scenario import Scale

        cfg = ScenarioConfig(
            scale=Scale.PAPER,
            pattern="none",
            duration=1_000_000,
        )
        sc = Scenario(cfg)
        assert len(sc.topology.hosts) == 160
        assert len(sc.topology.switches) == 14
        f = sc.topology.make_flow(1, 0, 159, 100_000, 0)
        sc.topology.start_flow(f)
        sc.sim.run(until=ms(1))
        assert f.receiver_done

    def test_paper_scale_floodgate_windows(self):
        from repro.experiments.scenario import Scale

        cfg = ScenarioConfig(
            scale=Scale.PAPER,
            flow_control="floodgate",
            pattern="none",
            duration=1_000_000,
        )
        sc = Scenario(cfg)
        ext = sc.extensions[0]
        # paper-scale windows: BDP_hop + C*T at 400G/10us ~ 500+ KB
        win_pkts = ext._initial_window(120)
        assert win_pkts > 100  # hundreds of packets, as in the paper
