"""Property tests for the statistics math (cross-checked with numpy)."""

import numpy as np
from hypothesis import given, strategies as st

from repro.stats.fct import FctRecord, fct_cdf, percentile, summarize_fct


records_strategy = st.lists(
    st.integers(min_value=1, max_value=10**10),
    min_size=1,
    max_size=200,
)


class TestPercentileProperties:
    @given(values=records_strategy)
    def test_matches_numpy_nearest_rank(self, values):
        ordered = sorted(float(v) for v in values)
        for p in (1, 25, 50, 75, 99, 100):
            ours = percentile(ordered, p)
            ref = float(
                np.percentile(
                    ordered, p, method="inverted_cdf"
                )
            )
            assert ours == ref

    @given(values=records_strategy)
    def test_monotone_in_p(self, values):
        ordered = sorted(float(v) for v in values)
        results = [percentile(ordered, p) for p in (10, 50, 90, 99)]
        assert results == sorted(results)


class TestSummaryProperties:
    @given(values=records_strategy)
    def test_summary_consistency(self, values):
        records = [FctRecord(i, 0, 1, 100, 0, v) for i, v in enumerate(values)]
        s = summarize_fct(records)
        assert s.count == len(values)
        assert min(values) <= s.avg_ns <= max(values)
        assert s.p50_ns <= s.p99_ns <= s.max_ns
        assert s.max_ns == max(values)
        assert abs(s.avg_ns - float(np.mean(values))) < 1e-6 * max(values)

    @given(values=records_strategy)
    def test_cdf_well_formed(self, values):
        records = [FctRecord(i, 0, 1, 100, 0, v) for i, v in enumerate(values)]
        cdf = fct_cdf(records)
        xs = [x for x, _ in cdf]
        ys = [y for _, y in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0
        assert all(0 < y <= 1 for y in ys)
