"""Determinism harness: digests repeat, survive hash-seed changes, pool == serial."""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.simcheck.determinism import (
    SCHEMES,
    EventStreamDigest,
    check_packet_pool_equivalence,
    check_pool_equivalence,
    check_repeatable,
    run_digest,
    run_suite,
)
from repro.units import us

REPO_ROOT = Path(__file__).resolve().parents[1]

SCHEME_FC = dict(SCHEMES)


def tiny_cfg(flow_control: str, seed: int = 5) -> ScenarioConfig:
    return ScenarioConfig(
        flow_control=flow_control,
        n_tors=3,
        hosts_per_tor=2,
        duration=us(200),
        seed=seed,
    )


def test_schemes_cover_the_acceptance_set():
    assert set(SCHEME_FC) == {"dcqcn", "floodgate", "bfc", "ndp"}


def test_event_stream_digest_hashes_sim_state_only():
    class _FakeSim:
        now = 0

    sim = _FakeSim()
    a, b = EventStreamDigest(sim), EventStreamDigest(sim)
    # wall durations must not enter the hash: same events, wild dt values
    a.note(print, 0.0, 3)
    b.note(print, 123.456, 3)
    assert a.hexdigest() == b.hexdigest()
    assert a.events == b.events == 1
    # ...but sim time, callback identity, and heap depth all do
    sim.now = 7
    a.note(print, 0.0, 3)
    assert a.hexdigest() != b.hexdigest()


@pytest.mark.parametrize("scheme", sorted(SCHEME_FC))
def test_same_seed_runs_are_byte_identical(scheme):
    rep = check_repeatable(tiny_cfg(SCHEME_FC[scheme]))
    assert rep["ok"], rep
    assert rep["events"] > 100
    assert rep["violations"] == []
    assert len(set(rep["event_digests"])) == 1
    assert len(set(rep["summary_digests"])) == 1


def test_different_seeds_give_different_digests():
    a = run_digest(tiny_cfg("floodgate", seed=5))
    b = run_digest(tiny_cfg("floodgate", seed=6))
    assert a.event_digest != b.event_digest


def test_digest_installs_via_profiler_slot():
    cfg = tiny_cfg("floodgate")
    sc = Scenario(cfg)
    digest = EventStreamDigest(sc.sim)
    sc.sim.set_profiler(digest)
    sc.schedule_flows()
    sc.sim.run(until=us(50))
    assert digest.events == sc.sim.events_executed
    assert len(digest.hexdigest()) == 64


def test_serial_and_pooled_sweeps_agree():
    rep = check_pool_equivalence(
        {name: tiny_cfg(fc) for name, fc in sorted(SCHEME_FC.items())[:2]}
    )
    assert rep["ok"], rep["mismatched"]


@pytest.mark.parametrize("scheme", sorted(SCHEME_FC))
def test_packet_pool_on_off_runs_are_byte_identical(scheme):
    """Recycling packets must not change a single event or result.

    Same seed, pool on vs pool off: the event streams hash identically
    and the summaries (config-normalized) serialize identically, for
    every scheme in the acceptance set.
    """
    rep = check_packet_pool_equivalence(tiny_cfg(SCHEME_FC[scheme]))
    assert rep["events_identical"], rep
    assert rep["summary_identical"], rep
    assert rep["ok"], rep
    assert rep["events"] > 100


def test_packet_pool_actually_recycles():
    """The equivalence above is meaningful only if the pool is hot."""
    sc = Scenario(tiny_cfg("floodgate"))
    sc.schedule_flows()
    sc.sim.run(until=us(200))
    assert sc.pool.enabled
    assert sc.pool.recycled > 100  # reborn packets, not a no-op pool
    assert sc.pool.released > sc.pool.recycled  # free list is non-empty


@pytest.mark.parametrize("fidelity", ["packet", "flow", "hybrid"])
def test_fidelity_roundtrip_serial_pooled_cached_identical(fidelity, tmp_path):
    """Serial, pooled, and cache-served sweeps agree at both fidelities.

    The summary round-trips through the process pool and the disk
    cache with the fidelity field intact and byte-identical canonical
    payloads — the same guarantee the packet tier already has.
    """
    from repro.experiments.parallel import SweepTask, run_sweep

    configs = {
        "a": replace(tiny_cfg("floodgate", seed=5), fidelity=fidelity),
        "b": replace(tiny_cfg("floodgate", seed=6), fidelity=fidelity),
    }
    tasks = [SweepTask(key=k, config=c) for k, c in sorted(configs.items())]
    serial = run_sweep(tasks, cache=False, serial=True)
    pooled = run_sweep(tasks, cache=False, serial=False)
    primed = run_sweep(tasks, cache=tmp_path, serial=True)
    cached = run_sweep(tasks, cache=tmp_path, serial=True)
    for key in configs:
        assert cached[key].from_cache
        assert cached[key].config.fidelity == fidelity
        assert serial[key].completed_flows > 0
        payloads = {
            run[key].canonical_bytes()
            for run in (serial, pooled, primed, cached)
        }
        assert len(payloads) == 1, key


def rpc_cfg(fidelity: str, seed: int = 5) -> ScenarioConfig:
    from repro.rpc import RpcWorkloadSpec

    return ScenarioConfig(
        pattern="rpc",
        rpc=RpcWorkloadSpec(
            n_clients=4,
            fan_out=4,
            think_time=us(10),
            background_load=0.2,
        ),
        flow_control="floodgate",
        fidelity=fidelity,
        n_tors=3,
        hosts_per_tor=2,
        duration=us(200),
        seed=seed,
    )


def test_rpc_same_seed_runs_are_byte_identical():
    """The closed loop replays exactly: every think-time draw, shard
    pick, and response size comes from named RngRegistry streams."""
    rep = check_repeatable(rpc_cfg("packet"))
    assert rep["ok"], rep
    assert rep["events"] > 100
    assert rep["violations"] == []
    assert len(set(rep["event_digests"])) == 1
    assert len(set(rep["summary_digests"])) == 1


@pytest.mark.parametrize("fidelity", ["packet", "flow"])
def test_rpc_serial_pooled_cached_identical(fidelity, tmp_path):
    """Closed-loop results survive the pool and the disk cache
    byte-identically at both fidelities, rpc records included."""
    from repro.experiments.parallel import SweepTask, run_sweep

    configs = {
        "a": rpc_cfg(fidelity, seed=5),
        "b": rpc_cfg(fidelity, seed=6),
    }
    tasks = [SweepTask(key=k, config=c) for k, c in sorted(configs.items())]
    serial = run_sweep(tasks, cache=False, serial=True)
    pooled = run_sweep(tasks, cache=False, serial=False)
    primed = run_sweep(tasks, cache=tmp_path, serial=True)
    cached = run_sweep(tasks, cache=tmp_path, serial=True)
    for key in configs:
        assert cached[key].from_cache
        assert serial[key].completed_requests > 0
        assert serial[key].rpc_summary.p999_ns > 0
        payloads = {
            run[key].canonical_bytes()
            for run in (serial, pooled, primed, cached)
        }
        assert len(payloads) == 1, key


def test_rpc_spec_changes_the_cache_key(tmp_path):
    """Two configs differing only inside the RpcWorkloadSpec must not
    collide in the sweep cache."""
    from dataclasses import replace as _replace

    from repro.experiments.parallel import SweepTask, run_sweep

    base = rpc_cfg("packet")
    other = _replace(base, rpc=_replace(base.rpc, fan_out=2))
    first = run_sweep(
        [SweepTask(key="x", config=base)], cache=tmp_path, serial=True
    )
    second = run_sweep(
        [SweepTask(key="x", config=other)], cache=tmp_path, serial=True
    )
    assert not second["x"].from_cache
    assert (
        first["x"].canonical_bytes() != second["x"].canonical_bytes()
    )


def test_run_suite_rejects_unknown_schemes():
    with pytest.raises(ValueError, match="unknown scheme"):
        run_suite(schemes=["dcqcn", "hpcc"])


# -- satellite regression: event order must not depend on the hash seed -------

_HASHSEED_SCRIPT = """\
import sys
from repro.experiments.scenario import ScenarioConfig
from repro.simcheck.determinism import run_digest
from repro.units import us

cfg = ScenarioConfig(
    flow_control=sys.argv[1],
    n_tors=3,
    hosts_per_tor=2,
    duration=us(200),
    seed=5,
)
print(run_digest(cfg).event_digest)
"""


def _digest_under_hashseed(scheme: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_SCRIPT, scheme],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        cwd=REPO_ROOT,
    )
    return proc.stdout.strip()


@pytest.mark.parametrize("scheme", ["floodgate", "bfc"])
def test_event_stream_survives_hash_seed_changes(scheme):
    """The SIM003 fixes (sorted() over pause/VOQ sets) make the event
    stream independent of set iteration order; two interpreters with
    different hash seeds must replay the identical stream."""
    d0 = _digest_under_hashseed(scheme, "0")
    d1 = _digest_under_hashseed(scheme, "4242")
    assert d0 == d1
    assert len(d0) == 64
