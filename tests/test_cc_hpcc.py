"""HPCC control law."""

from repro.cc.flow import Flow
from repro.cc.hpcc import Hpcc, HpccConfig
from repro.net.packet import IntRecord, Packet, PacketKind
from repro.units import gbps, us

LINE = gbps(10)
BASE_RTT = us(10)


def make():
    cc = Hpcc(LINE, 1 << 30, HpccConfig(base_rtt=BASE_RTT))
    f = Flow(1, 0, 1, 1_000_000)
    cc.on_flow_start(f, 0)
    return cc, f


def ack(cc, f, qlen, tx_rate_fraction, t0, t1, bandwidth=LINE):
    """Two consecutive ACKs implying the given hop utilization."""
    tx0 = 0
    tx1 = int(tx_rate_fraction * bandwidth * (t1 - t0) / (8 * 1e9))
    a0 = Packet.control(PacketKind.ACK, 1, 0)
    a0.int_records = [IntRecord(qlen, tx0, t0, bandwidth)]
    a0.seq = 1
    cc.on_ack(f, a0, t0)
    a1 = Packet.control(PacketKind.ACK, 1, 0)
    a1.int_records = [IntRecord(qlen, tx1, t1, bandwidth)]
    a1.seq = 2
    cc.on_ack(f, a1, t1)


class TestWindow:
    def test_initial_window_is_bdp(self):
        cc, f = make()
        assert f.cc.window == cc.w_init
        assert f.rate <= LINE

    def test_high_utilization_shrinks_window(self):
        cc, f = make()
        w0 = f.cc.window
        # queue of 2 BDP + full tx rate -> U >> eta
        ack(cc, f, qlen=2 * cc.w_init, tx_rate_fraction=1.0, t0=us(10), t1=us(20))
        assert f.cc.window < w0

    def test_low_utilization_grows_additively(self):
        cc, f = make()
        f.cc.w_c = f.cc.window = cc.w_init // 2
        ack(cc, f, qlen=0, tx_rate_fraction=0.3, t0=us(10), t1=us(20))
        assert f.cc.window == cc.w_init // 2 + cc.w_ai

    def test_window_floor(self):
        cc, f = make()
        for i in range(40):
            ack(
                cc,
                f,
                qlen=10 * cc.w_init,
                tx_rate_fraction=1.0,
                t0=us(10 * (2 * i + 1)),
                t1=us(10 * (2 * i + 2)),
            )
            f.cc.last_int = None  # force fresh pairs
        assert f.cc.window >= cc.config.min_window_bytes

    def test_window_sets_pacing_rate(self):
        cc, f = make()
        f.cc.window = cc.w_init // 4
        cc._apply(f)
        assert f.rate < LINE
        assert f.cwnd_bytes == cc.w_init // 4

    def test_missing_int_ignored(self):
        cc, f = make()
        w0 = f.cc.window
        a = Packet.control(PacketKind.ACK, 1, 0)
        cc.on_ack(f, a, us(10))
        assert f.cc.window == w0

    def test_mismatched_hop_count_ignored(self):
        cc, f = make()
        a0 = Packet.control(PacketKind.ACK, 1, 0)
        a0.int_records = [IntRecord(0, 0, us(10), LINE)]
        cc.on_ack(f, a0, us(10))
        a1 = Packet.control(PacketKind.ACK, 1, 0)
        a1.int_records = [
            IntRecord(0, 0, us(20), LINE),
            IntRecord(0, 0, us(20), LINE),
        ]
        w0 = f.cc.window
        cc.on_ack(f, a1, us(20))
        assert f.cc.window == w0

    def test_timeout_halves_window(self):
        cc, f = make()
        w0 = f.cc.window
        cc.on_timeout(f, us(50))
        assert f.cc.window == max(cc.config.min_window_bytes, w0 // 2)


class TestMaxStage:
    def test_additive_probing_limited_by_max_stage(self):
        cc, f = make()
        f.cc.w_c = f.cc.window = cc.w_init // 2
        # several uncongested RTTs: additive growth, then the stage cap
        # forces a multiplicative update
        for i in range(cc.config.max_stage + 2):
            f.cc.last_int = None
            ack(
                cc,
                f,
                qlen=0,
                tx_rate_fraction=0.2,
                t0=us(100 * (i + 1)),
                t1=us(100 * (i + 1) + 10),
            )
        assert f.cc.inc_stage <= cc.config.max_stage + 1
