"""Runner internals and result-object helpers."""


from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.stats.collector import FlowClass

QUICK = dict(n_tors=3, hosts_per_tor=2, duration=100_000)


class TestRunnerEdges:
    def test_empty_traffic_terminates(self):
        cfg = ScenarioConfig(pattern="none", **QUICK)
        r = run_scenario(cfg)
        assert r.total_flows == 0
        assert r.completion_rate == 1.0

    def test_prebuilt_scenario_reused(self):
        cfg = ScenarioConfig(workload="memcached", **QUICK)
        sc = Scenario(cfg)
        r = run_scenario(cfg, scenario=sc)
        assert r.scenario is sc

    def test_hard_end_caps_runtime(self):
        # absurdly slow drain: one flow to a paused destination never
        # completes, but the runner still returns at the hard end
        cfg = ScenarioConfig(pattern="none", max_runtime_factor=2.0, **QUICK)
        sc = Scenario(cfg)
        host = sc.topology.hosts[0]
        host.paused_dsts.add(3)  # flow will never start moving
        f = sc.topology.make_flow(1, 0, 3, 10_000, 0)
        sc.topology.start_flow(f)
        r = run_scenario(cfg, scenario=sc)
        assert r.completed_flows == 0
        assert r.sim_time <= 2 * cfg.resolved().duration

    def test_wall_time_and_events_reported(self):
        cfg = ScenarioConfig(workload="memcached", **QUICK)
        r = run_scenario(cfg)
        assert r.wall_seconds > 0
        assert r.events > 0


class TestResultHelpers:
    def _result(self):
        return run_scenario(ScenarioConfig(workload="memcached", **QUICK))

    def test_per_hop_buffers_mb(self):
        r = self._result()
        table = r.per_hop_buffers_mb(["tor-up", "core", "tor-down"])
        assert set(table) == {"tor-up", "core", "tor-down"}
        assert all(v >= 0 for v in table.values())

    def test_fct_summary_by_class(self):
        r = self._result()
        incast = r.fct_summary(FlowClass.INCAST)
        assert incast.count == r.incast_fct.count

    def test_pfc_flag(self):
        r = self._result()
        assert r.pfc_triggered == (r.stats.pfc_pause_events > 0)

    def test_max_voqs_zero_without_extensions(self):
        r = self._result()
        assert r.max_voqs_used == 0
