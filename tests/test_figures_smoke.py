"""Cheap smoke coverage of the figure modules within the unit suite.

The benchmarks exercise every figure thoroughly; these keep the figure
modules covered by a plain ``pytest tests/`` run using the smallest
meaningful parameters.
"""

from repro.experiments.figures import (
    fig07_workloads,
    fig14_scaleup,
    fig16_ecn,
    fig17_params,
    fig18_overhead,
    sec74_resources,
)


class TestFigureSmoke:
    def test_fig07(self):
        result = fig07_workloads.run(samples=2_000)
        assert set(result["properties"]) == {
            "memcached",
            "webserver",
            "hadoop",
            "websearch",
        }
        for cdf in result["cdf"].values():
            fractions = [p for _, p in cdf]
            assert fractions == sorted(fractions)
            assert fractions[-1] == 1.0

    def test_fig14(self):
        result = fig14_scaleup.run(quick=True, tor_counts=(3,))
        assert result["dcqcn"][3]["completion"] == 1.0
        assert result["dcqcn+floodgate"][3]["completion"] == 1.0
        assert (
            result["dcqcn+floodgate"][3]["tor-down_mb"]
            < result["dcqcn"][3]["tor-down_mb"]
        )

    def test_fig16(self):
        result = fig16_ecn.run(
            quick=True, n_flows=8, ecn_settings=((20_000, 80_000),)
        )
        key = next(iter(result))
        assert set(result[key]) == {
            "dcqcn",
            "dcqcn+ideal",
            "dcqcn+floodgate",
        }
        for row in result[key].values():
            assert len(row["buffer_vs_flows"]) == 8

    def test_fig17_delay_credit(self):
        result = fig17_params.run_delay_credit(quick=True, multiples=(2,))
        assert 2 in result
        assert result[2]["tor-down_mb"] >= 0

    def test_fig18(self):
        result = fig18_overhead.run(quick=True)
        for row in result.values():
            total = row["data_pct"] + row["ctrl_pct"] + row["credit_pct"]
            assert abs(total - 100.0) < 0.1

    def test_sec74(self):
        result = sec74_resources.run(quick=True)
        assert result["n_hosts"] == 16
        assert result["window_entries_vs_hosts"] <= 1.0
