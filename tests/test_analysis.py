"""Analytical models vs. simulator measurements.

The paper's central analytical claim (proved in its online appendix):
DCQCN's incast buffer grows with the flow count; Floodgate's is
bounded by per-path windows, independent of flows.  These tests check
both the closed forms themselves and that the simulator respects them.
"""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    credit_overhead_share,
    dcqcn_incast_buffer_bound,
    floodgate_core_buffer_bound,
    floodgate_dst_buffer_bound,
    floodgate_window_bytes,
    hop_bdp_bytes,
    ideal_window_bytes,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.units import gbps, us
from repro.workloads.incast import all_to_one_incast


class TestClosedForms:
    def test_hop_bdp_matches_hand_computation(self):
        # 40 Gbps, 500 ns each way, 1000 B data + 64 B credit
        # serialization (200 + 12.8 ns): rtt ~ 1.2128 us -> ~6 KB
        bdp = hop_bdp_bytes(gbps(40), 500)
        assert 5_500 <= bdp <= 6_500

    def test_window_grows_with_timer(self):
        w1 = floodgate_window_bytes(gbps(40), 500, us(1))
        w10 = floodgate_window_bytes(gbps(40), 500, us(10))
        assert w10 - w1 == pytest.approx(
            gbps(40) * us(9) / 8e9, rel=0.01
        )

    def test_ideal_window_independent_of_timer(self):
        w = ideal_window_bytes(gbps(40), 500, m=1.5)
        assert w == pytest.approx(1.5 * hop_bdp_bytes(gbps(40), 500), abs=1)

    def test_paper_scale_windows(self):
        """At 400 Gbps / 600 ns / T=10 us the practical window is
        ~0.5 MB-plus and dominated by C*T — the paper's regime."""
        w = floodgate_window_bytes(gbps(400), 600, us(10))
        ct = gbps(400) * us(10) / 8e9
        assert w > ct
        assert w - ct < 0.3 * ct  # BDP part is the minority

    def test_dcqcn_bound_proportional_to_flows(self):
        b1 = dcqcn_incast_buffer_bound(10, 35_000, 35_000, gbps(40), gbps(10))
        b2 = dcqcn_incast_buffer_bound(20, 35_000, 35_000, gbps(40), gbps(10))
        assert b2 == 2 * b1

    def test_dcqcn_bound_zero_when_not_bottlenecked(self):
        assert (
            dcqcn_incast_buffer_bound(10, 35_000, 35_000, gbps(10), gbps(40))
            == 0
        )

    def test_floodgate_dst_bound_flow_independent(self):
        b = floodgate_dst_buffer_bound(gbps(40), 500, us(2))
        assert b == floodgate_window_bytes(gbps(40), 500, us(2))

    def test_credit_share_falls_with_timer(self):
        s1 = credit_overhead_share(gbps(40), us(1))
        s10 = credit_overhead_share(gbps(40), us(10))
        assert s10 < s1 < 0.02

    def test_paper_scale_credit_share(self):
        # 400G, T=10us: 64 B per 500 KB ~ 0.013% per destination —
        # consistent with the paper's "0.175% of bandwidth" total
        share = credit_overhead_share(gbps(400), us(10))
        assert share < 0.001

    @given(
        n=st.integers(min_value=1, max_value=500),
        swnd=st.integers(min_value=1_000, max_value=100_000),
    )
    def test_dcqcn_bound_monotone_in_flows_and_window(self, n, swnd):
        base = dcqcn_incast_buffer_bound(n, swnd, 10**9, gbps(40), gbps(10))
        more_flows = dcqcn_incast_buffer_bound(
            n + 1, swnd, 10**9, gbps(40), gbps(10)
        )
        bigger_window = dcqcn_incast_buffer_bound(
            n, swnd + 1_000, 10**9, gbps(40), gbps(10)
        )
        assert more_flows >= base
        assert bigger_window >= base


class TestSimulatorRespectsBounds:
    def _incast_run(self, flow_control: str, n_tors: int = 4):
        cfg = ScenarioConfig(
            pattern="none",
            flow_control=flow_control,
            n_tors=n_tors,
            hosts_per_tor=4,
            duration=200_000,
            max_runtime_factor=60.0,
        )
        sc = Scenario(cfg)
        rng = sc.rng.stream("analysis")
        hosts = [h.node_id for h in sc.topology.hosts]
        spec = all_to_one_incast(hosts[4:], dst=0, rng=rng)
        sc.flows = spec.flows
        result = run_scenario(cfg, scenario=sc)
        return sc, result, len(spec.flows)

    def test_dcqcn_within_analytic_bound(self):
        sc, result, n_flows = self._incast_run("none")
        cfg = sc.config
        bound = dcqcn_incast_buffer_bound(
            n_flows,
            sc.cc.swnd_bytes,
            40_000,
            cfg.fabric_bandwidth,
            cfg.host_bandwidth,
        )
        measured = result.stats.max_port_buffer_by_role("tor-down")
        assert measured <= bound * 1.1
        # and the bound is not vacuous: within ~4x of the measurement
        assert measured >= bound / 4

    def test_floodgate_dst_within_analytic_bound(self):
        sc, result, _ = self._incast_run("floodgate")
        cfg = sc.config
        ext = sc.extensions[0]
        bound = floodgate_dst_buffer_bound(
            cfg.fabric_bandwidth,
            cfg.link_delay,
            ext.config.credit_timer,
            n_core_paths=1,  # per-dst ECMP: one spine serves the dst
        )
        measured = result.stats.max_port_buffer_by_role("tor-down")
        # generous slack for packets in flight / rounding to packets
        assert measured <= 3 * bound + 3_000

    def test_floodgate_core_within_analytic_bound(self):
        sc, result, _ = self._incast_run("floodgate", n_tors=6)
        cfg = sc.config
        ext = sc.extensions[0]
        bound = floodgate_core_buffer_bound(
            n_source_tors=5,
            tor_bandwidth=cfg.fabric_bandwidth,
            tor_link_delay=cfg.link_delay,
            credit_timer=ext.config.credit_timer,
            delay_credit_bytes=ext.config.thre_credit_bytes,
        )
        measured = result.stats.max_port_buffer_by_role("core")
        assert measured <= bound * 1.5

    def test_flow_count_scaling_contrast(self):
        """The paper's headline: DCQCN scales with flows, Floodgate
        does not."""
        _, small_d, n_small = self._incast_run("none", n_tors=3)
        _, large_d, n_large = self._incast_run("none", n_tors=6)
        _, small_f, _ = self._incast_run("floodgate", n_tors=3)
        _, large_f, _ = self._incast_run("floodgate", n_tors=6)
        d_growth = (
            large_d.stats.max_port_buffer_by_role("tor-down")
            / small_d.stats.max_port_buffer_by_role("tor-down")
        )
        f_growth = (
            large_f.stats.max_port_buffer_by_role("tor-down")
            / max(small_f.stats.max_port_buffer_by_role("tor-down"), 1)
        )
        assert n_large > n_small
        assert d_growth > 1.2       # grows with flows
        assert f_growth < 1.2       # flow-count independent
