"""PFC w/ tag baseline."""

from repro.baselines.pfc_tag import PfcTagConfig, install_pfc_tag
from repro.cc.base import StaticWindowCc
from repro.net.host import Host
from repro.net.switch import Switch
from repro.net.topology import build_leaf_spine
from repro.sim.engine import Simulator
from repro.stats.collector import StatsHub
from repro.units import gbps, kb, mb, ms


def build(pause_threshold=20_000, resume_threshold=10_000):
    sim = Simulator()
    stats = StatsHub()
    flow_table = {}
    cc = StaticWindowCc(gbps(10), kb(30))

    def host_factory(s, nid, name):
        return Host(s, nid, name, cc, flow_table, stats=stats)

    def switch_factory(s, nid, name, kind, level):
        sw = Switch(s, nid, name, mb(1), kind=kind, stats=stats)
        sw.level = level
        return sw

    topo = build_leaf_spine(
        sim,
        host_factory,
        switch_factory,
        n_spines=2,
        n_tors=3,
        hosts_per_tor=4,
        host_bandwidth=gbps(10),
        spine_bandwidth=gbps(40),
    )
    topo.flow_table = flow_table
    exts = []
    install_pfc_tag(
        sim,
        topo,
        PfcTagConfig(
            pause_threshold=pause_threshold, resume_threshold=resume_threshold
        ),
        exts,
    )
    return sim, topo, exts, stats


class TestPauseGeneration:
    def test_incast_triggers_tagged_pause(self):
        sim, topo, exts, _ = build(pause_threshold=10_000, resume_threshold=5_000)
        flows = [
            topo.make_flow(i, src, 0, 40_000, 0)
            for i, src in enumerate((4, 5, 6, 7, 8, 9, 10, 11))
        ]
        for f in flows:
            topo.start_flow(f)
        sim.run(until=ms(50))
        assert sum(e.pauses_sent for e in exts) > 0
        assert all(f.receiver_done for f in flows)

    def test_paused_dst_parked_in_voq(self):
        sim, topo, exts, _ = build(pause_threshold=10_000, resume_threshold=5_000)
        for i, src in enumerate((4, 5, 6, 7, 8, 9, 10, 11)):
            topo.start_flow(topo.make_flow(i, src, 0, 40_000, 0))
        sim.run(until=ms(50))
        assert max(e.pool.max_in_use for e in exts) >= 1

    def test_no_pause_without_congestion(self):
        sim, topo, exts, _ = build()
        f = topo.make_flow(1, 4, 0, 50_000, 0)
        topo.start_flow(f)
        sim.run(until=ms(10))
        assert sum(e.pauses_sent for e in exts) == 0
        assert f.receiver_done

    def test_reduces_last_hop_buffer(self):
        plain_sim, plain_topo, _, plain_stats = build(pause_threshold=1 << 40)
        for i, src in enumerate((4, 5, 6, 7, 8, 9, 10, 11)):
            plain_topo.start_flow(plain_topo.make_flow(i, src, 0, 40_000, 0))
        plain_sim.run(until=ms(50))

        sim, topo, exts, stats = build(pause_threshold=10_000, resume_threshold=5_000)
        for i, src in enumerate((4, 5, 6, 7, 8, 9, 10, 11)):
            topo.start_flow(topo.make_flow(i, src, 0, 40_000, 0))
        sim.run(until=ms(50))
        assert (
            stats.max_port_buffer_by_role("tor-down")
            < plain_stats.max_port_buffer_by_role("tor-down")
        )

    def test_resume_releases_everything(self):
        sim, topo, exts, _ = build(pause_threshold=10_000, resume_threshold=5_000)
        flows = [
            topo.make_flow(i, src, 0, 40_000, 0)
            for i, src in enumerate((4, 5, 6, 7, 8, 9, 10, 11))
        ]
        for f in flows:
            topo.start_flow(f)
        sim.run(until=ms(100))
        assert all(f.receiver_done for f in flows)
        for ext in exts:
            assert ext.pool.total_bytes() == 0
            assert not ext.paused_dsts
        assert all(sw.buffer.used == 0 for sw in topo.switches)
