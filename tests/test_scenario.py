"""Scenario construction and the runner."""

from dataclasses import replace

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scale, Scenario, ScenarioConfig
from repro.units import gbps, mb


QUICK = dict(n_tors=3, hosts_per_tor=2, duration=100_000)


class TestConfigResolution:
    def test_ci_defaults(self):
        cfg = ScenarioConfig().resolved()
        assert cfg.n_tors == 4
        assert cfg.host_bandwidth == gbps(10)
        assert cfg.buffer_bytes == 500_000
        assert cfg.host_link_delay > cfg.link_delay

    def test_paper_defaults(self):
        cfg = ScenarioConfig(scale=Scale.PAPER).resolved()
        assert cfg.n_tors == 10
        assert cfg.hosts_per_tor == 16
        assert cfg.host_bandwidth == gbps(100)
        assert cfg.buffer_bytes == mb(20)

    def test_explicit_values_survive(self):
        cfg = ScenarioConfig(n_tors=7, buffer_bytes=123_000).resolved()
        assert cfg.n_tors == 7
        assert cfg.buffer_bytes == 123_000

    def test_unknown_cc_rejected(self):
        with pytest.raises(ValueError):
            Scenario(ScenarioConfig(cc="bogus", **QUICK))

    def test_unknown_flow_control_rejected(self):
        with pytest.raises(ValueError):
            Scenario(ScenarioConfig(flow_control="bogus", **QUICK))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            Scenario(ScenarioConfig(topology="ring", **QUICK))


class TestBuild:
    @pytest.mark.parametrize("cc", ["dcqcn", "dctcp", "timely", "hpcc", "static"])
    def test_all_ccs_build(self, cc):
        sc = Scenario(ScenarioConfig(cc=cc, **QUICK))
        assert sc.cc.name in (cc, f"{cc}-window", "static-window")
        assert all(h.cc is sc.cc for h in sc.topology.hosts)

    @pytest.mark.parametrize(
        "fc",
        ["none", "floodgate", "floodgate-ideal", "bfc", "pfc-tag", "ndp"],
    )
    def test_all_flow_controls_build(self, fc):
        sc = Scenario(ScenarioConfig(flow_control=fc, **QUICK))
        if fc == "none":
            assert not sc.extensions
        else:
            assert len(sc.extensions) == len(sc.topology.switches)

    def test_hpcc_enables_int(self):
        sc = Scenario(ScenarioConfig(cc="hpcc", **QUICK))
        assert all(h.int_enabled for h in sc.topology.hosts)
        assert all(sw.int_enabled for sw in sc.topology.switches)

    def test_ndp_disables_pfc(self):
        sc = Scenario(ScenarioConfig(flow_control="ndp", cc="static", **QUICK))
        assert all(not sw.pfc_enabled for sw in sc.topology.switches)

    def test_rack_of_partition(self):
        sc = Scenario(ScenarioConfig(**QUICK))
        rack_of = sc.rack_of()
        assert len(rack_of) == len(sc.topology.hosts)
        assert len(set(rack_of.values())) == 3

    def test_incast_senders_exclude_dst_rack(self):
        sc = Scenario(ScenarioConfig(incast_dst=0, **QUICK))
        rack_of = sc.rack_of()
        senders = sc.incast_senders()
        assert all(rack_of[s] != rack_of[0] for s in senders)

    def test_incast_fan_in_wraps(self):
        sc = Scenario(ScenarioConfig(incast_dst=0, incast_fan_in=10, **QUICK))
        senders = sc.incast_senders()
        assert len(senders) == 10  # only 4 eligible: wrapped

    def test_fat_tree_builds(self):
        sc = Scenario(
            ScenarioConfig(
                topology="fat-tree", fat_tree_k=4, duration=100_000
            )
        )
        assert len(sc.topology.hosts) == 16

    def test_testbed_builds(self):
        sc = Scenario(ScenarioConfig(topology="testbed", duration=100_000))
        assert len(sc.topology.hosts) == 6

    def test_traffic_generated_for_incastmix(self):
        sc = Scenario(ScenarioConfig(**QUICK))
        assert sc.mix is not None
        assert sc.flows

    def test_pattern_none_generates_nothing(self):
        sc = Scenario(ScenarioConfig(pattern="none", **QUICK))
        assert sc.flows == []


class TestRunner:
    def test_completes_and_reports(self):
        cfg = ScenarioConfig(workload="memcached", **QUICK)
        r = run_scenario(cfg)
        assert r.total_flows > 0
        assert r.completed_flows == r.total_flows
        assert r.sim_time > 0
        assert r.events > 0
        assert 0 < r.completion_rate <= 1.0

    def test_early_stop_before_hard_end(self):
        cfg = ScenarioConfig(
            workload="memcached", max_runtime_factor=100.0, **QUICK
        )
        r = run_scenario(cfg)
        assert r.sim_time < cfg.resolved().duration * 100

    def test_fct_summaries_accessible(self):
        cfg = ScenarioConfig(workload="memcached", **QUICK)
        r = run_scenario(cfg)
        assert r.poisson_fct.count > 0
        assert r.incast_fct.count > 0
        assert r.max_switch_buffer_mb > 0

    def test_same_seed_same_result(self):
        cfg = ScenarioConfig(workload="memcached", seed=9, **QUICK)
        a = run_scenario(cfg)
        b = run_scenario(cfg)
        assert a.poisson_fct.avg_ns == b.poisson_fct.avg_ns
        assert a.events == b.events

    def test_different_seed_different_traffic(self):
        base = ScenarioConfig(workload="memcached", **QUICK)
        a = run_scenario(replace(base, seed=1))
        b = run_scenario(replace(base, seed=2))
        assert a.total_flows != b.total_flows or (
            a.poisson_fct.avg_ns != b.poisson_fct.avg_ns
        )
