"""BFC baseline: queue assignment, pause propagation, host queues."""

from repro.baselines.bfc import BfcConfig, BfcHost, install_bfc
from repro.cc.base import StaticWindowCc
from repro.net.switch import Switch
from repro.net.topology import build_leaf_spine
from repro.sim.engine import Simulator
from repro.stats.collector import StatsHub
from repro.units import gbps, kb, mb, ms, us


def build(n_queues=8, pause_threshold=10_000, sticky_time=us(20)):
    sim = Simulator()
    stats = StatsHub()
    flow_table = {}
    cc = StaticWindowCc(gbps(10), kb(30))
    config = BfcConfig(
        n_queues=n_queues,
        pause_threshold=pause_threshold,
        sticky_time=sticky_time,
    )

    def host_factory(s, nid, name):
        return BfcHost(
            s, nid, name, cc, flow_table, stats=stats, bfc_config=config
        )

    def switch_factory(s, nid, name, kind, level):
        sw = Switch(s, nid, name, mb(1), kind=kind, stats=stats)
        sw.level = level
        return sw

    topo = build_leaf_spine(
        sim,
        host_factory,
        switch_factory,
        n_spines=2,
        n_tors=3,
        hosts_per_tor=4,
        host_bandwidth=gbps(10),
        spine_bandwidth=gbps(40),
    )
    topo.flow_table = flow_table
    extensions = []
    install_bfc(sim, topo, config, extensions)
    return sim, topo, extensions, stats


class TestQueueAssignment:
    def test_flows_to_different_queues_when_free(self):
        sim, topo, exts, _ = build(n_queues=8)
        tor = topo.switches_of_kind("tor")[1]
        ext = tor.extension
        q1 = ext._queue_for(0, ext._fid_of(101))
        ext.queue_state[0][q1].last_enqueue = sim.now
        tor.ports[0].queue_bytes[q1] += 1  # make it look occupied
        q2 = ext._queue_for(0, ext._fid_of(202))
        assert q1 != q2

    def test_assignment_is_sticky_while_occupied(self):
        sim, topo, exts, _ = build()
        ext = topo.switches[0].extension
        fid = ext._fid_of(101)
        q = ext._queue_for(0, fid)
        topo.switches[0].ports[0].queue_bytes[q] += 1
        assert ext._queue_for(0, fid) == q

    def test_hash_fallback_when_all_queues_busy(self):
        sim, topo, exts, _ = build(n_queues=2)
        sw = topo.switches[0]
        ext = sw.extension
        first = ext.first_queue[0]
        # occupy both queues with bound, non-empty flows
        for q in range(first, first + 2):
            ext._bind(0, 9000 + q, q)
            ext.queue_state[0][q].last_enqueue = sim.now
            sw.ports[0].queue_bytes[q] += 1
        q = ext._queue_for(0, ext._fid_of(777))
        assert first <= q < first + 2
        assert ext.collisions >= 1

    def test_ideal_mode_unbounded_queues(self):
        sim, topo, exts, _ = build(n_queues=0)
        sw = topo.switches[0]
        ext = sw.extension
        queues = {ext._queue_for(0, fid) for fid in range(20)}
        assert len(queues) == 20  # every flow its own queue


class TestEndToEnd:
    def test_incast_completes(self):
        sim, topo, exts, stats = build()
        flows = []
        for i, src in enumerate((4, 5, 6, 7, 8, 9, 10, 11)):
            f = topo.make_flow(i, src, 0, 40_000, 0)
            topo.start_flow(f)
            flows.append(f)
        sim.run(until=ms(50))
        assert all(f.receiver_done for f in flows)

    def test_pause_frames_generated_under_incast(self):
        sim, topo, exts, stats = build(pause_threshold=5_000)
        for i, src in enumerate((4, 5, 6, 7, 8, 9, 10, 11)):
            topo.start_flow(topo.make_flow(i, src, 0, 40_000, 0))
        sim.run(until=ms(50))
        assert sum(e.pauses_sent for e in exts) > 0

    def test_mixed_traffic_completes(self):
        sim, topo, exts, stats = build()
        flows = []
        fid = 0
        for src in (4, 5, 6, 7):
            f = topo.make_flow(fid, src, 0, 40_000, 0)
            topo.start_flow(f)
            flows.append(f)
            fid += 1
        for src, dst in ((8, 1), (9, 2), (10, 3), (11, 5)):
            f = topo.make_flow(fid, src, dst, 30_000, 0)
            topo.start_flow(f)
            flows.append(f)
            fid += 1
        sim.run(until=ms(50))
        assert all(f.receiver_done for f in flows)

    def test_no_buffer_leak(self):
        sim, topo, exts, stats = build()
        for i, src in enumerate((4, 5, 6, 7)):
            topo.start_flow(topo.make_flow(i, src, 0, 40_000, 0))
        sim.run(until=ms(50))
        assert all(sw.buffer.used == 0 for sw in topo.switches)


class TestHostSide:
    def test_host_stamps_queue_on_packets(self):
        sim, topo, exts, _ = build()
        host = topo.hosts[4]
        f = topo.make_flow(1, 4, 0, 5_000, 0)
        topo.start_flow(f)
        sim.run(until=us(5))
        # inspect packets sitting in the host NIC queue
        stamped = [
            p.upstream_queue
            for p in host.ports[0].queues[1]
        ]
        expected = host._host_queue_of(1)
        assert all(q == expected for q in stamped) or stamped == []

    def test_paused_host_queue_blocks_flow(self):
        sim, topo, exts, _ = build()
        host = topo.hosts[4]
        f = topo.make_flow(1, 4, 0, 50_000, 0)
        q = host._host_queue_of(1)
        host.paused_queues.add(q)
        topo.start_flow(f)
        sim.run(until=ms(2))
        assert not f.receiver_done
        host.paused_queues.discard(q)
        host._kick(f)
        sim.run(until=ms(20))
        assert f.receiver_done
