"""Topology builders and routing."""

import pytest

from repro.net.topology import PortRole


class TestLeafSpine:
    def test_counts(self, leaf_spine):
        topo = leaf_spine.topo
        assert len(topo.hosts) == 12
        assert len(topo.switches) == 5  # 2 spines + 3 ToRs
        assert len(topo.switches_of_kind("tor")) == 3
        assert len(topo.switches_of_kind("core")) == 2

    def test_every_switch_routes_to_every_host(self, leaf_spine):
        topo = leaf_spine.topo
        for sw in topo.switches:
            for host in topo.hosts:
                assert host.node_id in sw.routes

    def test_connected_hosts_on_tors(self, leaf_spine):
        tors = leaf_spine.topo.switches_of_kind("tor")
        seen = set()
        for tor in tors:
            seen |= set(tor.connected_hosts)
            assert len(tor.connected_hosts) == 4
        assert seen == {h.node_id for h in leaf_spine.topo.hosts}

    def test_spines_have_no_connected_hosts(self, leaf_spine):
        for spine in leaf_spine.topo.switches_of_kind("core"):
            assert not spine.connected_hosts

    def test_port_roles(self, leaf_spine):
        tor = leaf_spine.topo.switches_of_kind("tor")[0]
        assert tor.port_roles.count(PortRole.TOR_DOWN) == 4
        assert tor.port_roles.count(PortRole.TOR_UP) == 2
        spine = leaf_spine.topo.switches_of_kind("core")[0]
        assert all(r == PortRole.CORE for r in spine.port_roles)

    def test_ecmp_entries_on_tors(self, leaf_spine):
        tor = leaf_spine.topo.switches_of_kind("tor")[0]
        remote = next(
            h.node_id
            for h in leaf_spine.topo.hosts
            if h.node_id not in tor.connected_hosts
        )
        entry = tor.routes[remote]
        assert isinstance(entry, tuple) and len(entry) == 2  # both spines

    def test_route_for_dst_deterministic(self, leaf_spine):
        tor = leaf_spine.topo.switches_of_kind("tor")[0]
        remote = next(
            h.node_id
            for h in leaf_spine.topo.hosts
            if h.node_id not in tor.connected_hosts
        )
        assert tor.route_for_dst(remote) == tor.route_for_dst(remote)

    def test_base_rtt_positive(self, leaf_spine):
        assert leaf_spine.topo.base_rtt > 0

    def test_levels(self, leaf_spine):
        assert all(s.level == 0 for s in leaf_spine.topo.switches_of_kind("tor"))
        assert all(
            s.level == 1 for s in leaf_spine.topo.switches_of_kind("core")
        )


class TestFatTree:
    @pytest.fixture
    def fat_tree(self):
        from repro.net.host import Host
        from repro.net.switch import Switch
        from repro.net.topology import build_fat_tree
        from repro.sim.engine import Simulator
        from repro.units import mb

        sim = Simulator()
        flow_table = {}

        def host_factory(sim, nid, name):
            return Host(sim, nid, name, None, flow_table)

        def switch_factory(sim, nid, name, kind, level):
            sw = Switch(sim, nid, name, mb(1), kind=kind)
            sw.level = level
            return sw

        return build_fat_tree(
            sim, host_factory, switch_factory, k=4, hosts_per_edge=2
        )

    def test_k4_counts(self, fat_tree):
        # k=4: 4 pods x (2 edge + 2 agg) + 4 cores; 2 hosts x 8 edges
        assert len(fat_tree.hosts) == 16
        kinds = [s.kind for s in fat_tree.switches]
        assert kinds.count("tor") == 8
        assert kinds.count("agg") == 8
        assert kinds.count("core") == 4

    def test_all_pairs_reachable(self, fat_tree):
        for sw in fat_tree.switches:
            for host in fat_tree.hosts:
                assert host.node_id in sw.routes

    def test_odd_k_rejected(self):
        from repro.net.topology import build_fat_tree

        with pytest.raises(ValueError):
            build_fat_tree(None, None, None, k=3)

    def test_levels_increase_toward_core(self, fat_tree):
        by_kind = {s.kind: s.level for s in fat_tree.switches}
        assert by_kind["tor"] < by_kind["agg"] < by_kind["core"]


class TestDumbbell:
    def test_structure(self, mini):
        assert len(mini.topo.hosts) == 8
        assert len(mini.topo.switches) == 2

    def test_cross_rack_route_uses_trunk(self, mini):
        left = mini.topo.switches[0]
        assert left.route_for_dst(6) == 4  # port 4 = trunk (after hosts)

    def test_local_route_direct(self, mini):
        left = mini.topo.switches[0]
        assert left.route_for_dst(1) == left.connected_hosts[1]


class TestFlowRegistration:
    def test_make_flow_registers(self, mini):
        f = mini.topo.make_flow(5, 0, 4, 1000, 0)
        assert mini.topo.flow_table[5] is f
