"""Statistics: FCT math, collector bookkeeping, time series."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator
from repro.stats.collector import NON_INCAST, FlowClass, StatsHub
from repro.stats.fct import (
    FctRecord,
    fct_cdf,
    percentile,
    summarize_fct,
)
from repro.stats.timeseries import BufferSampler, ThroughputMonitor, utilization
from repro.units import gbps, us


def rec(flow_id, fct_ns, size=1000):
    return FctRecord(flow_id, 0, 1, size, 0, fct_ns)


class TestPercentile:
    def test_simple(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 50) == 2.0
        assert percentile(vals, 100) == 4.0
        assert percentile(vals, 25) == 1.0

    def test_empty(self):
        assert percentile([], 99) == 0.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=50)
    )
    def test_p99_bounds(self, values):
        values = sorted(values)
        p99 = percentile(values, 99)
        assert values[0] <= p99 <= values[-1]


class TestSummarize:
    def test_avg_and_p99(self):
        records = [rec(i, (i + 1) * 1000) for i in range(100)]
        s = summarize_fct(records)
        assert s.count == 100
        assert s.avg_ns == pytest.approx(50_500)
        assert s.p99_ns == 99_000
        assert s.max_ns == 100_000

    def test_empty(self):
        s = summarize_fct([])
        assert s.count == 0 and s.avg_ns == 0.0

    def test_unit_properties(self):
        s = summarize_fct([rec(1, 2_000_000)])
        assert s.avg_ms == 2.0
        assert s.avg_us == 2000.0

    def test_cdf_points(self):
        cdf = fct_cdf([rec(1, 1_000_000), rec(2, 3_000_000)])
        assert cdf == [(1.0, 0.5), (3.0, 1.0)]


class TestCollector:
    def test_flow_class_filters(self):
        hub = StatsHub()
        hub.register_flow_class(1, FlowClass.INCAST)
        hub.register_flow_class(2, FlowClass.VICTIM_INCAST)
        hub.record_fct(rec(1, 100))
        hub.record_fct(rec(2, 200))
        hub.record_fct(rec(3, 300))  # unlabelled
        assert [r.flow_id for r in hub.fct_of_class(FlowClass.INCAST)] == [1]
        # the aggregate selector spans every non-incast class,
        # including unclassified flows
        assert [r.flow_id for r in hub.fct_of_class(NON_INCAST)] == [2, 3]

    def test_none_is_rejected(self):
        # None used to mean "all non-incast" for FCTs but "unclassified"
        # for rx bytes; both now demand an explicit selector
        hub = StatsHub()
        with pytest.raises(ValueError, match="ambiguous"):
            hub.fct_of_class(None)
        with pytest.raises(ValueError, match="ambiguous"):
            hub.rx_bytes_of_class(None)

    def test_queuing_split_by_incast(self):
        hub = StatsHub()
        hub.register_incast_flow(7)
        hub.record_queuing("core", 7, 1000)
        hub.record_queuing("core", 8, 3000)
        assert hub.avg_queuing_by_role("core", incast=True) == 1000
        assert hub.avg_queuing_by_role("core", incast=False) == 3000
        assert hub.avg_queuing_by_role("missing") == 0.0

    def test_port_buffer_max_by_role(self):
        hub = StatsHub()
        hub.record_port_buffer("sw1", "tor-up", 500)
        hub.record_port_buffer("sw2", "tor-up", 900)
        hub.record_port_buffer("sw1", "core", 100)
        assert hub.max_port_buffer_by_role("tor-up") == 900
        assert hub.max_port_buffer_by_role("tor-down") == 0

    def test_switch_buffer_tracks_max(self):
        hub = StatsHub()
        hub.record_switch_buffer("s", 100)
        hub.record_switch_buffer("s", 50)
        assert hub.switch_max_buffer["s"] == 100
        assert hub.max_switch_buffer == 100

    def test_pfc_accounting(self):
        hub = StatsHub()
        hub.record_pfc_pause("tor", 5_000)
        hub.record_pfc_pause("tor", 5_000)
        assert hub.total_pfc_paused_us("tor") == 10.0
        assert hub.total_pfc_paused_us("core") == 0.0

    def test_bandwidth_tracking_gated(self):
        hub = StatsHub()
        hub.record_tx("data", 1000)  # tracking off: ignored
        assert hub.tx_bytes_by_category["data"] == 0
        hub.track_bandwidth = True
        hub.record_tx("data", 1000)
        assert hub.tx_bytes_by_category["data"] == 1000

    def test_rx_by_class(self):
        hub = StatsHub()
        hub.register_flow_class(1, FlowClass.INCAST)
        hub.record_rx(1, 500)
        hub.record_rx(2, 300)
        assert hub.rx_bytes_of_class(FlowClass.INCAST) == 500
        # unclassified flows land in the explicit OTHER bucket
        assert hub.rx_bytes_of_class(FlowClass.OTHER) == 300


class TestTimeSeries:
    def test_throughput_monitor_differentiates(self):
        sim = Simulator()
        counter = {"bytes": 0}

        def feed():
            counter["bytes"] += 1250  # 1250 B per 1 us = 10 Gbps

        from repro.sim.process import PeriodicTask

        task = PeriodicTask(sim, us(1), feed)
        task.start()
        mon = ThroughputMonitor(
            sim, {"x": lambda: counter["bytes"]}, interval=us(10)
        )
        mon.start()
        sim.run(until=us(100))
        task.stop()
        mon.stop()
        series = mon.series("x")
        assert series
        assert all(8.0 < gbps_v < 12.0 for _, gbps_v in series)
        assert 8.0 < mon.mean_after("x") < 12.0

    def test_first_nonzero_time(self):
        sim = Simulator()
        counter = {"bytes": 0}
        sim.schedule(us(50), lambda: counter.__setitem__("bytes", 99_999))
        mon = ThroughputMonitor(
            sim, {"x": lambda: counter["bytes"]}, interval=us(10)
        )
        mon.start()
        sim.run(until=us(100))
        # the jump at 50 us is visible in the 50 us sample (the setter
        # event was scheduled first and wins the tie)
        assert mon.first_nonzero_time("x") == pytest.approx(0.05)

    def test_buffer_sampler(self):
        sim = Simulator()
        gauge = {"v": 0}
        sim.schedule(us(25), lambda: gauge.__setitem__("v", 7))
        s = BufferSampler(sim, {"g": lambda: gauge["v"]}, interval=us(10))
        s.start()
        sim.run(until=us(60))
        assert s.max_value("g") == 7
        assert s.value_at("g", us(20)) == 0
        assert s.value_at("g", us(40)) == 7

    def test_utilization(self):
        # 1.25 GB in one second on a 10G link = 100%
        assert utilization(1_250_000_000, gbps(10), 1_000_000_000) == pytest.approx(1.0)
        assert utilization(0, gbps(10), 0) == 0.0
