"""Flow geometry and sequence accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.cc.flow import Flow


class TestGeometry:
    def test_exact_multiple_of_mtu(self):
        f = Flow(1, 0, 1, 3000, mtu=1000)
        assert f.n_packets == 3
        assert [f.packet_size(i) for i in range(3)] == [1000, 1000, 1000]

    def test_short_tail_packet(self):
        f = Flow(1, 0, 1, 2500, mtu=1000)
        assert f.n_packets == 3
        assert f.packet_size(2) == 500

    def test_single_tiny_flow(self):
        f = Flow(1, 0, 1, 64, mtu=1000)
        assert f.n_packets == 1
        assert f.packet_size(0) == 64

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Flow(1, 0, 1, 0)

    def test_out_of_range_seq_rejected(self):
        f = Flow(1, 0, 1, 1000)
        with pytest.raises(ValueError):
            f.packet_size(1)

    @given(
        size=st.integers(min_value=1, max_value=200_000),
        mtu=st.sampled_from([500, 1000, 1500]),
    )
    def test_packet_sizes_sum_to_flow_size(self, size, mtu):
        f = Flow(1, 0, 1, size, mtu=mtu)
        assert sum(f.packet_size(i) for i in range(f.n_packets)) == size
        assert all(
            0 < f.packet_size(i) <= mtu for i in range(f.n_packets)
        )


class TestInflight:
    def test_nothing_sent(self):
        f = Flow(1, 0, 1, 5000)
        assert f.inflight_bytes == 0

    def test_partial_window(self):
        f = Flow(1, 0, 1, 5000, mtu=1000)
        f.next_seq = 3
        assert f.inflight_bytes == 3000
        f.acked_seq = 1
        assert f.inflight_bytes == 2000

    def test_short_tail_counted_correctly(self):
        f = Flow(1, 0, 1, 2500, mtu=1000)
        f.next_seq = 3  # all sent, tail is 500 B
        assert f.inflight_bytes == 2500

    def test_fully_acked(self):
        f = Flow(1, 0, 1, 2500, mtu=1000)
        f.next_seq = 3
        f.acked_seq = 3
        assert f.inflight_bytes == 0
        assert f.all_acked and f.all_sent


class TestCompletion:
    def test_receiver_done(self):
        f = Flow(1, 0, 1, 2000, mtu=1000)
        assert not f.receiver_done
        f.delivered_bytes = 2000
        assert f.receiver_done
