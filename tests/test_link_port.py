"""Links and egress ports: timing, scheduling, pausing, loss."""

import random

from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.units import gbps, serialization_delay


class Sink(Node):
    """Records every packet it receives with its arrival time."""

    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, f"sink{node_id}")
        self.received = []

    def receive(self, pkt, ingress_port):
        self.received.append((self.sim.now, pkt))


def make_pair(bandwidth=gbps(10), delay=1000):
    sim = Simulator()
    a, b = Sink(sim, 0), Sink(sim, 1)
    link = Link(sim, a, b, bandwidth, delay)
    a.attach_link(link, n_data_queues=2, rr_data_queues=2)
    b.attach_link(link)
    return sim, a, b, link


def data(size=1000, seq=0):
    return Packet(PacketKind.DATA, 0, 1, size, flow_id=1, seq=seq)


class TestTiming:
    def test_single_packet_latency(self):
        sim, a, b, link = make_pair()
        a.ports[0].enqueue(data(1000), 1)
        sim.run()
        arrival = b.received[0][0]
        assert arrival == serialization_delay(1000, gbps(10)) + 1000

    def test_back_to_back_serialization(self):
        sim, a, b, link = make_pair()
        a.ports[0].enqueue(data(1000, 0), 1)
        a.ports[0].enqueue(data(1000, 1), 1)
        sim.run()
        t0, t1 = b.received[0][0], b.received[1][0]
        assert t1 - t0 == serialization_delay(1000, gbps(10))

    def test_faster_link_is_faster(self):
        sim1, a1, b1, _ = make_pair(bandwidth=gbps(10))
        sim4, a4, b4, _ = make_pair(bandwidth=gbps(40))
        a1.ports[0].enqueue(data(), 1)
        a4.ports[0].enqueue(data(), 1)
        sim1.run()
        sim4.run()
        assert b4.received[0][0] < b1.received[0][0]


class TestScheduling:
    def test_control_preempts_data(self):
        sim, a, b, _ = make_pair()
        # fill the data queue first, then add control
        a.ports[0].enqueue(data(1000, 0), 1)
        a.ports[0].enqueue(data(1000, 1), 1)
        a.ports[0].enqueue_control(Packet.control(PacketKind.CREDIT, 0, 1))
        sim.run()
        kinds = [p.kind for _, p in b.received]
        # the first data packet was already serializing; control jumps
        # ahead of the second data packet
        assert kinds[1] == PacketKind.CREDIT

    def test_strict_priority_between_data_queues(self):
        sim, a, b, _ = make_pair()
        port = a.ports[0]
        port.enqueue(data(1000, 0), 1)   # occupies the serializer
        port.enqueue(data(1000, 99), 2)  # low-priority queue
        port.enqueue(data(1000, 1), 1)
        port.enqueue(data(1000, 2), 1)
        sim.run()
        seqs = [p.seq for _, p in b.received]
        assert seqs.index(1) < seqs.index(99)
        assert seqs.index(2) < seqs.index(99)

    def test_round_robin_among_rr_queues(self):
        sim, a, b, _ = make_pair()
        port = a.ports[0]
        # rr_start == 3 (1 control + 2 strict): queues 3 and 4 are RR
        for i in range(3):
            port.enqueue(data(1000, 10 + i), 3)
            port.enqueue(data(1000, 20 + i), 4)
        sim.run()
        seqs = [p.seq for _, p in b.received]
        # strict alternation between the two RR queues
        assert seqs == [10, 20, 11, 21, 12, 22]

    def test_add_rr_queues_returns_index(self):
        sim, a, b, _ = make_pair()
        first = a.ports[0].add_rr_queues(2)
        assert first == 5
        assert len(a.ports[0].queues) == 7


class TestPause:
    def test_port_pause_blocks_data_not_control(self):
        sim, a, b, _ = make_pair()
        port = a.ports[0]
        port.pause()
        port.enqueue(data(), 1)
        port.enqueue_control(Packet.control(PacketKind.CREDIT, 0, 1))
        sim.run()
        kinds = [p.kind for _, p in b.received]
        assert kinds == [PacketKind.CREDIT]
        port.resume()
        sim.run()
        assert len(b.received) == 2

    def test_pause_time_accounting(self):
        sim, a, b, _ = make_pair()
        port = a.ports[0]
        sim.schedule(100, port.pause)
        sim.schedule(400, port.resume)
        sim.schedule(500, lambda: None)
        sim.run()
        assert port.total_paused_time == 300

    def test_queue_pause_blocks_only_that_queue(self):
        sim, a, b, _ = make_pair()
        port = a.ports[0]
        port.pause_queue(3)
        port.enqueue(data(1000, 1), 3)
        port.enqueue(data(1000, 2), 4)
        sim.run()
        assert [p.seq for _, p in b.received] == [2]
        port.resume_queue(3)
        sim.run()
        assert [p.seq for _, p in b.received] == [2, 1]

    def test_control_queue_cannot_be_paused(self):
        sim, a, _, _ = make_pair()
        import pytest

        with pytest.raises(ValueError):
            a.ports[0].pause_queue(0)


class TestLoss:
    def test_loss_rate_zero_delivers_all(self):
        sim, a, b, link = make_pair()
        for i in range(50):
            a.ports[0].enqueue(data(seq=i), 1)
        sim.run()
        assert len(b.received) == 50

    def test_loss_drops_expected_fraction(self):
        sim, a, b, link = make_pair()
        link.set_loss(0.5, random.Random(42))
        for i in range(400):
            a.ports[0].enqueue(data(seq=i), 1)
        sim.run()
        assert 120 < len(b.received) < 280
        assert link.dropped_packets == 400 - len(b.received)

    def test_invalid_loss_rate_rejected(self):
        import pytest

        _, _, _, link = make_pair()
        with pytest.raises(ValueError):
            link.set_loss(1.5, random.Random(1))

    def test_peer_helpers(self):
        _, a, b, link = make_pair()
        assert link.peer_of(a) is b
        assert link.peer_of(b) is a
        assert link.peer_port_of(a) == 0
