"""Fluid tier: max-min allocator, flow-fidelity runs, config validation."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.parallel import config_fingerprint
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.faults.plan import FaultPlan
from repro.flowsim import max_min_rates
from repro.simcheck.determinism import check_repeatable
from repro.simcheck.sanitizer import SanitizerConfig
from repro.units import us

INF = float("inf")


def tiny_cfg(**overrides) -> ScenarioConfig:
    base = dict(
        flow_control="floodgate",
        n_tors=3,
        hosts_per_tor=2,
        duration=us(200),
        seed=5,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


# -- the allocator ------------------------------------------------------------


def test_maxmin_empty_input():
    assert max_min_rates([], [], [10.0]) == []


def test_maxmin_single_bottleneck_fair_share():
    paths = [(0,), (0,), (0,)]
    rates = max_min_rates(paths, [INF, INF, INF], [30.0])
    assert rates == pytest.approx([10.0, 10.0, 10.0])


def test_maxmin_ceiling_frees_capacity_for_the_rest():
    # one flow capped at 2 on a 10-capacity resource: the other takes 8
    rates = max_min_rates([(0,), (0,)], [2.0, INF], [10.0])
    assert rates == pytest.approx([2.0, 8.0])


def test_maxmin_multi_resource_waterfilling():
    # A crosses both resources, B only the tight one, C only the wide
    # one.  r1 (cap 4) saturates first at level 2, freezing A and B;
    # C then fills what A left on r0.
    paths = [(0, 1), (1,), (0,)]
    rates = max_min_rates(paths, [INF, INF, INF], [10.0, 4.0])
    assert rates == pytest.approx([2.0, 2.0, 8.0])
    # full conservation on both resources
    assert rates[0] + rates[2] == pytest.approx(10.0)
    assert rates[0] + rates[1] == pytest.approx(4.0)


def test_maxmin_resource_free_flow_sits_at_its_ceiling():
    rates = max_min_rates([(), (0,)], [3.0, INF], [10.0])
    assert rates == pytest.approx([3.0, 10.0])


def test_maxmin_is_deterministic_across_calls():
    paths = [(0, 1), (1, 2), (0, 2), (1,)]
    ceilings = [5.0, INF, 7.5, INF]
    caps = [10.0, 6.0, 9.0]
    first = max_min_rates(paths, ceilings, caps)
    assert all(
        max_min_rates(paths, ceilings, caps) == first for _ in range(5)
    )


# -- flow-fidelity runs -------------------------------------------------------


def test_flow_fidelity_run_completes_flows():
    result = run_scenario(tiny_cfg(fidelity="flow"))
    assert result.completed_flows > 0
    assert result.completed_flows == len(result.stats.fct_records)
    assert all(r.fct > 0 for r in result.stats.fct_records)
    # delivered what the flow table promised
    assert result.completed_flows <= result.total_flows


def test_flow_fidelity_matches_packet_flow_population():
    # same config/seed: both tiers schedule the identical flow set
    packet = run_scenario(tiny_cfg(fidelity="packet"))
    flow = run_scenario(tiny_cfg(fidelity="flow"))
    assert flow.total_flows == packet.total_flows


def test_flow_fidelity_sanitized_run_is_clean():
    cfg = tiny_cfg(fidelity="flow", sanitize=SanitizerConfig())
    result = run_scenario(cfg)
    assert result.sanitizer_violations == []
    assert result.completed_flows > 0


def test_flow_fidelity_same_seed_runs_are_byte_identical():
    rep = check_repeatable(tiny_cfg(fidelity="flow"))
    assert rep["ok"], rep
    assert rep["violations"] == []


# -- config validation (satellite: invalid fields raise at construction) ------


def test_unknown_fidelity_raises_at_construction():
    with pytest.raises(ValueError, match="unknown fidelity"):
        tiny_cfg(fidelity="bogus")


@pytest.mark.parametrize(
    "field, value",
    [
        ("topology", "ring"),
        ("cc", "hpcc2"),
        ("flow_control", "magic"),
        ("pattern", "bursty"),
        ("workload", "nonexistent-trace"),
    ],
)
def test_unknown_enumerated_fields_raise_at_construction(field, value):
    with pytest.raises(ValueError, match=f"unknown {field}"):
        tiny_cfg(**{field: value})


def test_flow_fidelity_rejects_queue_level_flow_control():
    with pytest.raises(ValueError, match="cannot model flow_control"):
        tiny_cfg(fidelity="flow", flow_control="bfc")


def test_flow_fidelity_rejects_fault_injection():
    with pytest.raises(ValueError, match="fault injection requires"):
        tiny_cfg(fidelity="flow", fault_plan=FaultPlan(stall_window=us(10)))


def test_empty_fault_plan_is_fine_at_flow_fidelity():
    cfg = tiny_cfg(fidelity="flow", fault_plan=FaultPlan())
    assert cfg.fidelity == "flow"


def test_misspelled_config_field_raises():
    with pytest.raises(TypeError):
        tiny_cfg(fidelty="flow")


# -- cache identity -----------------------------------------------------------


def test_fidelity_enters_the_config_fingerprint():
    packet = config_fingerprint(replace(tiny_cfg(), fidelity="packet"))
    flow = config_fingerprint(replace(tiny_cfg(), fidelity="flow"))
    assert packet != flow
