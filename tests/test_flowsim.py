"""Fluid tier: max-min allocator, flow-fidelity runs, config validation."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.parallel import config_fingerprint
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.faults.plan import FaultPlan
from repro.flowsim import max_min_rates
from repro.simcheck.determinism import check_repeatable
from repro.simcheck.sanitizer import SanitizerConfig
from repro.units import us

INF = float("inf")


def tiny_cfg(**overrides) -> ScenarioConfig:
    base = dict(
        flow_control="floodgate",
        n_tors=3,
        hosts_per_tor=2,
        duration=us(200),
        seed=5,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


# -- the allocator ------------------------------------------------------------


def test_maxmin_empty_input():
    assert max_min_rates([], [], [10.0]) == []


def test_maxmin_single_bottleneck_fair_share():
    paths = [(0,), (0,), (0,)]
    rates = max_min_rates(paths, [INF, INF, INF], [30.0])
    assert rates == pytest.approx([10.0, 10.0, 10.0])


def test_maxmin_ceiling_frees_capacity_for_the_rest():
    # one flow capped at 2 on a 10-capacity resource: the other takes 8
    rates = max_min_rates([(0,), (0,)], [2.0, INF], [10.0])
    assert rates == pytest.approx([2.0, 8.0])


def test_maxmin_multi_resource_waterfilling():
    # A crosses both resources, B only the tight one, C only the wide
    # one.  r1 (cap 4) saturates first at level 2, freezing A and B;
    # C then fills what A left on r0.
    paths = [(0, 1), (1,), (0,)]
    rates = max_min_rates(paths, [INF, INF, INF], [10.0, 4.0])
    assert rates == pytest.approx([2.0, 2.0, 8.0])
    # full conservation on both resources
    assert rates[0] + rates[2] == pytest.approx(10.0)
    assert rates[0] + rates[1] == pytest.approx(4.0)


def test_maxmin_resource_free_flow_sits_at_its_ceiling():
    rates = max_min_rates([(), (0,)], [3.0, INF], [10.0])
    assert rates == pytest.approx([3.0, 10.0])


def test_maxmin_is_deterministic_across_calls():
    paths = [(0, 1), (1, 2), (0, 2), (1,)]
    ceilings = [5.0, INF, 7.5, INF]
    caps = [10.0, 6.0, 9.0]
    first = max_min_rates(paths, ceilings, caps)
    assert all(
        max_min_rates(paths, ceilings, caps) == first for _ in range(5)
    )


# -- flow-fidelity runs -------------------------------------------------------


def test_flow_fidelity_run_completes_flows():
    result = run_scenario(tiny_cfg(fidelity="flow"))
    assert result.completed_flows > 0
    assert result.completed_flows == len(result.stats.fct_records)
    assert all(r.fct > 0 for r in result.stats.fct_records)
    # delivered what the flow table promised
    assert result.completed_flows <= result.total_flows


def test_flow_fidelity_matches_packet_flow_population():
    # same config/seed: both tiers schedule the identical flow set
    packet = run_scenario(tiny_cfg(fidelity="packet"))
    flow = run_scenario(tiny_cfg(fidelity="flow"))
    assert flow.total_flows == packet.total_flows


def test_flow_fidelity_sanitized_run_is_clean():
    cfg = tiny_cfg(fidelity="flow", sanitize=SanitizerConfig())
    result = run_scenario(cfg)
    assert result.sanitizer_violations == []
    assert result.completed_flows > 0


def test_flow_fidelity_same_seed_runs_are_byte_identical():
    rep = check_repeatable(tiny_cfg(fidelity="flow"))
    assert rep["ok"], rep
    assert rep["violations"] == []


# -- the incremental fast path ------------------------------------------------


def test_incremental_maxmin_paranoid_run_is_clean():
    """Every incremental reallocation is cross-checked against a full
    recompute inside the run; a divergence raises AssertionError."""
    result = run_scenario(
        tiny_cfg(fidelity="flow", paranoid_maxmin=True, poisson_load=0.8)
    )
    assert result.completed_flows > 0


def test_incremental_and_full_maxmin_agree_on_fcts():
    inc = run_scenario(tiny_cfg(fidelity="flow"))
    full = run_scenario(tiny_cfg(fidelity="flow", maxmin_incremental=False))
    by_id_inc = {r.flow_id: r.fct for r in inc.stats.fct_records}
    by_id_full = {r.flow_id: r.fct for r in full.stats.fct_records}
    assert set(by_id_inc) == set(by_id_full)
    for fid, fct in sorted(by_id_inc.items()):
        # the full pass recomputes untouched components at later
        # instants, so ceil-rounding of projected finishes may drift
        # by nanoseconds; the allocation itself must agree
        assert abs(fct - by_id_full[fid]) <= 2, fid


# -- the tail-path cache ------------------------------------------------------


def test_tail_paths_are_cached_per_rack_and_destination():
    from repro.experiments.scenario import Scenario
    from repro.flowsim.model import FluidSimulation

    sc = Scenario(tiny_cfg(fidelity="flow"))
    fs = FluidSimulation(sc)
    rack_of = sc.rack_of()
    racks = {}
    for host, rack in sorted(rack_of.items()):
        racks.setdefault(rack, []).append(host)
    a, b = racks[0][0], racks[0][1]
    dst = racks[1][0]
    fs._tail_cache.clear()
    pa, hops_a = fs._build_path(a, dst, flow_id=1)
    pb, hops_b = fs._build_path(b, dst, flow_id=2)
    # both sources sit behind one ToR: a single shared cache entry,
    # and identical paths past the first (host->ToR) hop
    assert len(fs._tail_cache) == 1
    assert pa[1:] == pb[1:]
    assert hops_a[1:] == hops_b[1:]


def test_tail_cache_keys_by_flow_under_per_flow_ecmp():
    from repro.experiments.scenario import Scenario
    from repro.flowsim.model import FluidSimulation

    sc = Scenario(tiny_cfg(fidelity="flow", per_flow_ecmp=True))
    fs = FluidSimulation(sc)
    rack_of = sc.rack_of()
    racks = {}
    for host, rack in sorted(rack_of.items()):
        racks.setdefault(rack, []).append(host)
    fs._tail_cache.clear()
    fs._build_path(racks[0][0], racks[1][0], flow_id=1)
    fs._build_path(racks[0][0], racks[1][0], flow_id=2)
    assert len(fs._tail_cache) == 2


# -- packet-tier cross traffic in the queueing correction ---------------------


def test_queueing_wait_counts_booked_packet_bits():
    """Bits the hybrid boundary books via note_packet_bits are cross
    traffic for the M/M/1 correction — but only bits booked *after*
    the flow was admitted (the admit-time baseline prevents the
    double-count this regression test guards)."""
    from repro.experiments.scenario import Scenario
    from repro.flowsim.model import FluidSimulation
    from repro.workloads.poisson import FlowSpec

    sc = Scenario(tiny_cfg(fidelity="flow"))
    fs = FluidSimulation(sc)
    rack_of = sc.rack_of()
    hosts = sorted(rack_of)
    src = hosts[0]
    dst = next(h for h in hosts if rack_of[h] != rack_of[src])
    # pre-admission packet load: must be baselined away at admit
    stale = [r for r in range(fs._n_link_resources)]
    for r in stale:
        fs.note_packet_bits(r, 1e9)
    fs.schedule([FlowSpec(0, src, dst, 1_000_000, 0)])
    sc.sim.run(until=us(50))
    (ff,) = fs._active
    now = sc.sim.now
    assert fs._queueing_wait(ff, now) == 0  # lone flow, no cross traffic
    r = next(r for r in ff.path if r < fs._n_link_resources)
    fs.note_packet_bits(r, 5e8)
    wait = fs._queueing_wait(ff, now)
    assert wait > 0
    # booking on a link off the flow's path changes nothing
    off_path = next(
        r
        for r in range(fs._n_link_resources)
        if r not in ff.path
    )
    fs.note_packet_bits(off_path, 5e8)
    assert fs._queueing_wait(ff, now) == wait


# -- config validation (satellite: invalid fields raise at construction) ------


def test_unknown_fidelity_raises_at_construction():
    with pytest.raises(ValueError, match="unknown fidelity"):
        tiny_cfg(fidelity="bogus")


@pytest.mark.parametrize(
    "field, value",
    [
        ("topology", "ring"),
        ("cc", "hpcc2"),
        ("flow_control", "magic"),
        ("pattern", "bursty"),
        ("workload", "nonexistent-trace"),
    ],
)
def test_unknown_enumerated_fields_raise_at_construction(field, value):
    with pytest.raises(ValueError, match=f"unknown {field}"):
        tiny_cfg(**{field: value})


def test_flow_fidelity_rejects_queue_level_flow_control():
    with pytest.raises(ValueError, match="cannot model flow_control"):
        tiny_cfg(fidelity="flow", flow_control="bfc")


def test_flow_fidelity_rejects_fault_injection():
    with pytest.raises(ValueError, match="fault injection requires"):
        tiny_cfg(fidelity="flow", fault_plan=FaultPlan(stall_window=us(10)))


def test_empty_fault_plan_is_fine_at_flow_fidelity():
    cfg = tiny_cfg(fidelity="flow", fault_plan=FaultPlan())
    assert cfg.fidelity == "flow"


def test_misspelled_config_field_raises():
    with pytest.raises(TypeError):
        tiny_cfg(fidelty="flow")


# -- cache identity -----------------------------------------------------------


def test_fidelity_enters_the_config_fingerprint():
    packet = config_fingerprint(replace(tiny_cfg(), fidelity="packet"))
    flow = config_fingerprint(replace(tiny_cfg(), fidelity="flow"))
    assert packet != flow
