"""Cross-module integration invariants.

These exercise the full stack (workload -> hosts -> switches ->
flow control -> stats) and check conservation properties that any
correct packet-level simulator must satisfy.
"""

from dataclasses import replace

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig

QUICK = dict(n_tors=3, hosts_per_tor=4, duration=200_000)


ALL_STACKS = [
    ("dcqcn", "none"),
    ("dcqcn", "floodgate"),
    ("dcqcn", "floodgate-ideal"),
    ("timely", "floodgate"),
    ("hpcc", "floodgate"),
    ("static", "bfc"),
    ("static", "ndp"),
    ("dcqcn", "pfc-tag"),
    ("dctcp", "floodgate"),
]


@pytest.mark.parametrize("cc,fc", ALL_STACKS)
class TestConservation:
    def _run(self, cc, fc):
        cfg = ScenarioConfig(
            cc=cc,
            flow_control=fc,
            workload="memcached",
            max_runtime_factor=30.0,
            **QUICK,
        )
        sc = Scenario(cfg)
        return run_scenario(cfg, scenario=sc), sc

    def test_every_flow_delivers_exactly_its_bytes(self, cc, fc):
        result, sc = self._run(cc, fc)
        assert result.completed_flows == result.total_flows
        for flow in sc.topology.flow_table.values():
            assert flow.delivered_bytes == flow.size

    def test_no_buffer_leak_at_end(self, cc, fc):
        result, sc = self._run(cc, fc)
        for sw in sc.topology.switches:
            assert sw.buffer.used == 0, f"{sw.name} leaked {sw.buffer.used}"

    def test_fct_positive_and_ordered(self, cc, fc):
        result, sc = self._run(cc, fc)
        for rec in result.stats.fct_records:
            assert rec.fct > 0
            assert rec.finish_time <= result.sim_time


class TestFloodgateHeadline:
    """The paper's core claims at integration level."""

    def _pair(self, **kw):
        base = ScenarioConfig(workload="webserver", **QUICK, **kw)
        return (
            run_scenario(replace(base, flow_control="none")),
            run_scenario(replace(base, flow_control="floodgate")),
        )

    def test_floodgate_reduces_last_hop_buffer(self):
        base_r, fg_r = self._pair()
        assert (
            fg_r.stats.max_port_buffer_by_role("tor-down")
            < base_r.stats.max_port_buffer_by_role("tor-down")
        )

    def test_floodgate_moves_buffer_upstream(self):
        base_r, fg_r = self._pair()
        assert (
            fg_r.stats.max_port_buffer_by_role("tor-up")
            >= base_r.stats.max_port_buffer_by_role("tor-up")
        )

    def test_floodgate_eliminates_pfc(self):
        base_r, fg_r = self._pair(buffer_bytes=300_000)
        assert base_r.stats.pfc_pause_events > 0
        assert fg_r.stats.pfc_pause_events == 0

    def test_voqs_used_only_for_incast(self):
        cfg = ScenarioConfig(
            workload="memcached",
            flow_control="floodgate",
            pattern="poisson",
            **QUICK,
        )
        r = run_scenario(cfg)
        # At paper scale at most one VOQ engages; at CI scale windows
        # are smaller relative to flow bursts, so brief allocations for
        # transiently-hot destinations occur.  They must stay rare.
        assert r.max_voqs_used <= 8

    def test_incast_flows_not_penalized(self):
        base_r, fg_r = self._pair()
        assert fg_r.incast_fct.avg_ns <= base_r.incast_fct.avg_ns * 1.3
