"""The floodgate-experiment CLI."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_every_experiment_module_imports(self):
        import importlib

        for module_name, _ in EXPERIMENTS.values():
            module = importlib.import_module(
                f"repro.experiments.figures.{module_name}"
            )
            assert hasattr(module, "run") or module_name == "fig17_params"

    def test_fig17_has_sweeps(self):
        from repro.experiments.figures import fig17_params

        assert callable(fig17_params.run_credit_timer)
        assert callable(fig17_params.run_delay_credit)


class TestRun:
    def test_run_fig07(self, capsys):
        assert main(["run", "fig07"]) == 0
        out = capsys.readouterr().out
        assert "memcached" in out
        assert "frac_below_1kb" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
