"""Shard-safety tooling: SIM005..SIM008 lints, ownership dataflow,
allowlist hygiene, and the runtime isolation sanitizer."""

from __future__ import annotations

import textwrap

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.sim.sharded import run_sharded_scenario
from repro.simcheck.determinism import (
    EventStreamDigest,
    check_sharded_equivalence,
    sharded_battery_fault_plan,
)
from repro.simcheck.isolation import ShardIsolationSanitizer
from repro.simcheck.linter import rule_applies, run_check
from repro.simcheck.ownership import (
    build_ownership_map,
    classify_file,
    foreign_locals,
)
from repro.simcheck.rules import RULES, scan_source
from repro.telemetry.registry import TelemetryConfig
from repro.units import us
from repro.workloads.poisson import FlowSpec

NET = "src/repro/net/example.py"
SHARDED = "src/repro/sim/sharded.py"


def scan(src: str, relpath: str = NET, enabled=frozenset(RULES)):
    return scan_source(textwrap.dedent(src), relpath, enabled)


def rules_of(findings):
    return [f.rule for f in findings]


def tiny_cfg(**kw) -> ScenarioConfig:
    params = dict(
        workload="websearch",
        cc="dcqcn",
        n_tors=4,
        hosts_per_tor=2,
        duration=us(200),
        seed=2,
    )
    params.update(kw)
    return ScenarioConfig(**params)


# -- SIM005: writes through foreign handles -----------------------------------


def test_sim005_flags_direct_foreign_attribute_write():
    (finding,) = scan(
        """
        def corrupt(self, link):
            link.dst_port.credits = 0
        """
    )
    assert finding.rule == "SIM005"
    assert "foreign" in finding.message


def test_sim005_flags_mutation_via_foreign_local():
    findings = scan(
        """
        def pause(self, i):
            peer = self.switch.peer(i)
            peer.paused_queues.add(i)
        """
    )
    assert rules_of(findings) == ["SIM005"]


def test_sim005_tracks_alias_chains_to_fixpoint():
    findings = scan(
        """
        def deep(self, link):
            a = link.peer_of(self.node)
            b = a
            b.buffer.push(1)
        """
    )
    assert rules_of(findings) == ["SIM005"]


def test_sim005_clean_for_reads_and_owned_writes():
    findings = scan(
        """
        def classify(self, i):
            peer = self.switch.peer(i)
            if peer.level < self.switch.level:
                self.groups[i] = 1
            self.pauses_sent += 1
        """
    )
    assert findings == []


def test_sim005_boundary_contexts_exempt_in_sharded_py():
    src = """
        class _TestChannel:
            def send(self, peer, item):
                peer.inbox.append(item)

        def elsewhere(link):
            link.dst_port.queue.append(1)
        """
    findings = scan(src, relpath=SHARDED)
    # only the non-boundary function is flagged
    assert rules_of(findings) == ["SIM005"]
    assert "elsewhere" not in findings[0].message  # flagged at the call site


# -- SIM006: shared module/class-level mutable state --------------------------


def test_sim006_flags_module_registry_and_class_cache():
    findings = scan(
        """
        REGISTRY = {}

        class Lookup:
            _cache = {}
        """,
        relpath="src/repro/stats/example.py",
    )
    assert rules_of(findings) == ["SIM006", "SIM006"]
    assert "REGISTRY" in findings[0].message
    assert "Lookup._cache" in findings[1].message


def test_sim006_ignores_dunders_frozensets_and_comprehensions():
    findings = scan(
        """
        __all__ = ["a"]
        FROZEN = frozenset({1, 2})
        DERIVED = [x * 2 for x in range(4)]
        """,
        relpath="src/repro/stats/example.py",
    )
    assert findings == []


# -- SIM007: foreign callbacks registered on the local engine -----------------


def test_sim007_flags_foreign_bound_callback():
    findings = scan(
        """
        def transmit(self, link, pkt):
            peer = link.peer_of(self.node)
            self.sim.schedule_call(link.delay, peer.receive, pkt)
        """
    )
    assert rules_of(findings) == ["SIM007"]
    assert "peer.receive" in findings[0].message


def test_sim007_clean_for_self_callbacks():
    findings = scan(
        """
        def arm(self, dt):
            self.sim.schedule_call(dt, self._fire, 1)
        """
    )
    assert findings == []


# -- SIM008: accumulation into module globals ---------------------------------


def test_sim008_flags_global_accumulation():
    findings = scan(
        """
        TOTALS = {}

        def record(name, v):
            TOTALS[name] = TOTALS.get(name, 0) + v
        """,
        relpath="src/repro/telemetry/example.py",
    )
    assert "SIM006" in rules_of(findings)  # the definition
    assert "SIM008" in rules_of(findings)  # the accumulation


def test_sim008_clean_for_instance_collectors():
    findings = scan(
        """
        def record(self, name, v):
            self.totals[name] = v
        """,
        relpath="src/repro/telemetry/example.py",
    )
    assert findings == []


# -- rule scoping & catalogue -------------------------------------------------


def test_shard_rules_scoped_to_domain_code():
    assert rule_applies("SIM005", "src/repro/net/port.py")
    assert rule_applies("SIM005", "src/repro/sim/sharded.py")
    assert not rule_applies("SIM005", "src/repro/experiments/runner.py")
    assert rule_applies("SIM006", "src/repro/workloads/distributions.py")
    assert not rule_applies("SIM006", "src/repro/cli.py")
    assert rule_applies("SIM008", "src/repro/stats/collector.py")
    assert not rule_applies("SIM008", "tests/test_sharded.py")


def test_rule_catalogue_covers_shard_rules():
    for rule in ("SIM005", "SIM006", "SIM007", "SIM008"):
        assert rule in RULES
        assert rule in __import__("repro.simcheck.rules", fromlist=["x"]).__doc__


def test_cli_rules_listing_is_generated_from_catalogue(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["check", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


# -- ownership dataflow -------------------------------------------------------


def test_foreign_locals_fixpoint():
    import ast

    tree = ast.parse(
        textwrap.dedent(
            """
            def f(self, link):
                a = link.peer_of(self.node)
                b = a
                c = self.own_thing
            """
        )
    ).body[0]
    env = foreign_locals(tree)
    assert env == {"a", "b"}


def test_ownership_map_reads_partition_contract():
    omap = build_ownership_map()
    assert omap.domain_key == "node_id"
    assert "partition_nodes" in omap.boundary_contexts
    assert any("Channel" in name for name in omap.boundary_contexts)


def test_classify_file_labels_sites():
    omap = build_ownership_map()
    sites = classify_file(
        textwrap.dedent(
            """
            def f(self, link):
                self.count += 1
                link.dst_port.credits = 0
            """
        ),
        NET,
        omap,
    )
    assert [s.classification for s in sites] == ["owned", "foreign"]


# -- allowlist hygiene --------------------------------------------------------


def _mini_repo(tmp_path, allowlist_lines):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src"
    pkg.mkdir()
    (pkg / "mod.py").write_text("x = 1\n")
    (tmp_path / "simcheck-allowlist.txt").write_text(
        "\n".join(allowlist_lines) + "\n"
    )
    return tmp_path


def test_dead_allowlist_entry_fails_the_check(tmp_path):
    root = _mini_repo(
        tmp_path, ["SIM002 src/deleted_long_ago.py -- stale justification"]
    )
    report = run_check(root=root)
    assert len(report.dead_allowlist) == 1
    assert report.dead_allowlist[0].glob == "src/deleted_long_ago.py"
    assert not report.ok
    assert "1 dead allowlist entry" in report.summary()


def test_live_allowlist_entry_is_not_dead(tmp_path):
    root = _mini_repo(tmp_path, ["SIM002 src/mod.py -- justified"])
    report = run_check(root=root)
    assert report.dead_allowlist == []
    assert report.ok


def test_partial_scans_skip_hygiene(tmp_path):
    # linting a subtree must not flag entries for files outside it
    root = _mini_repo(
        tmp_path, ["SIM002 elsewhere/other.py -- lives outside src"]
    )
    report = run_check(root=root, paths=["src"])
    assert report.dead_allowlist == []


def test_repo_allowlist_has_no_dead_entries():
    report = run_check()
    assert report.dead_allowlist == []


# -- runtime isolation sanitizer ---------------------------------------------


class _Clock:
    now = 42


class _Victim:
    def poke(self):
        pass


def test_isolation_probe_flags_cross_domain_dispatch():
    iso = ShardIsolationSanitizer()
    victim = _Victim()
    iso.tag(victim, 1, "tor2.port[0]")
    probe = iso.probe(0, _Clock())
    probe.note(victim.poke, 0.0, 3)
    assert len(iso.violations) == 1
    assert "domain 0 executed" in iso.violations[0]
    assert "owned by domain 1" in iso.violations[0]


def test_isolation_probe_silent_for_owner_and_untagged():
    iso = ShardIsolationSanitizer()
    victim = _Victim()
    iso.tag(victim, 0, "tor0.port[0]")
    probe = iso.probe(0, _Clock())
    probe.note(victim.poke, 0.0, 3)  # owner executing its own object
    probe.note(_Victim().poke, 0.0, 3)  # untagged object
    probe.note(len, 0.0, 3)  # unbound callable
    assert iso.violations == []


def test_isolation_violation_cap():
    iso = ShardIsolationSanitizer(max_violations=2)
    victim = _Victim()
    iso.tag(victim, 1, "x")
    probe = iso.probe(0, _Clock())
    for _ in range(5):
        probe.note(victim.poke, 0.0, 0)
    assert len(iso.violations) == 2
    assert iso.truncated == 3
    assert iso.summary() == {
        "isolation_violations": 2,
        "isolation_truncated": 3,
    }


def test_sharded_run_is_isolation_clean():
    for mode in ("lockstep", "barrier", "process"):
        sc = Scenario(tiny_cfg(shards=2, shard_mode=mode))
        result = run_sharded_scenario(sc, us(100), 0.0, isolate=True)
        assert result.shard_isolation_violations == []


# -- faults + telemetry under the sharded engine ------------------------------


def test_equivalence_with_faults_telemetry_and_isolation():
    cfg = tiny_cfg(
        fault_plan=sharded_battery_fault_plan(),
        telemetry=TelemetryConfig(engine_profile=False),
    )
    report = check_sharded_equivalence(cfg, shards=2, isolate=True)
    assert report["ok"], report
    for mode, rep in report["modes"].items():
        assert rep["isolation_violations"] == [], mode


def test_fault_counters_survive_process_merge():
    cfg = tiny_cfg(
        fault_plan=sharded_battery_fault_plan(),
        shards=2,
        shard_mode="process",
    )
    serial = run_scenario(tiny_cfg(fault_plan=sharded_battery_fault_plan()))
    sharded = run_scenario(cfg)
    assert sharded.fault_summary == serial.fault_summary
    assert sharded.fault_summary["injected_drops_data"] > 0


def test_drained_domain_receives_boundary_tuple_mid_window():
    """Satellite: a domain whose heap empties mid-window must still
    merge late boundary tuples at the serial position (process mode)."""
    # one cross-domain flow: domain 1 (hosts 4..7) has nothing scheduled
    # until the first packet crosses the spine, so its heap drains at
    # the first barrier and the flow's packets arrive into an idle heap
    flow = FlowSpec(flow_id=1, src=0, dst=7, size=50_000, start_time=us(10))

    def build(**kw):
        sc = Scenario(tiny_cfg(pattern="none", **kw))
        sc.flows = [flow]
        return sc

    serial_sc = build()
    digest = EventStreamDigest(serial_sc.sim, include_depth=False)
    serial_sc.sim.set_profiler(digest)
    serial = run_scenario(serial_sc.config, scenario=serial_sc)
    assert serial.completed_flows == 1

    reference = None
    for mode in ("lockstep", "process"):
        sc = build(shards=2, shard_mode=mode)
        result = run_sharded_scenario(
            sc, us(100), 0.0, collect_digests=True
        )
        assert result.completed_flows == 1, mode
        if mode == "lockstep":
            assert result.shard_global_digest == digest.hexdigest()
            reference = result.shard_digests
        else:
            assert result.shard_digests == reference
