"""Determinism and caching tests for the parallel sweep runner.

The contract under test: the same seeded sweep produces byte-identical
``ResultSummary`` objects whether it runs serially in-process, fanned
out over a ``ProcessPoolExecutor``, or served from a warm disk cache.
"""

import dataclasses
import pickle
import time

import pytest

from repro.experiments.parallel import (
    SweepTask,
    available_cpus,
    config_fingerprint,
    run_sweep,
    summarize,
    task_fingerprint,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(
        workload="webserver",
        cc="dcqcn",
        n_tors=2,
        hosts_per_tor=2,
        duration=100_000,
        buffer_bytes=200_000,
        incast_load=0.5,
        incast_fan_in=3,
        seed=7,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def tiny_tasks():
    return [
        SweepTask(key=f"seed{s}", config=tiny_config(seed=s))
        for s in (7, 8, 9)
    ]


# a module-level task function, picklable by reference, for custom-fn tasks
def _scaled_run(config, scale):
    result = run_scenario(config)
    return summarize(result, extras={"scale": scale})


class TestDeterminism:
    def test_serial_matches_direct_run(self):
        cfg = tiny_config()
        direct = summarize(run_scenario(cfg))
        swept = run_sweep([SweepTask(key="k", config=cfg)], serial=True)["k"]
        assert swept.canonical_bytes() == direct.canonical_bytes()

    def test_pool_matches_serial(self):
        # max_workers=2 forces a real process pool even on 1-CPU boxes
        serial = run_sweep(tiny_tasks(), serial=True)
        pooled = run_sweep(tiny_tasks(), max_workers=2)
        assert list(pooled) == list(serial)  # key order preserved
        for key in serial:
            assert (
                pooled[key].canonical_bytes() == serial[key].canonical_bytes()
            )

    def test_warm_cache_matches_serial(self, tmp_path):
        serial = run_sweep(tiny_tasks(), serial=True)
        cache = tmp_path / "sweep-cache"
        cold = run_sweep(tiny_tasks(), serial=True, cache=cache)
        warm = run_sweep(tiny_tasks(), serial=True, cache=cache)
        for key in serial:
            assert not cold[key].from_cache
            assert warm[key].from_cache
            assert warm[key].canonical_bytes() == serial[key].canonical_bytes()
            assert cold[key].canonical_bytes() == serial[key].canonical_bytes()

    def test_custom_fn_tasks_deterministic(self):
        tasks = [
            SweepTask(key=s, config=tiny_config(seed=s), fn=_scaled_run, args=(2,))
            for s in (7, 8)
        ]
        a = run_sweep(tasks, serial=True)
        b = run_sweep(tasks, max_workers=2)
        for key in a:
            assert a[key].extras == {"scale": 2}
            assert a[key].canonical_bytes() == b[key].canonical_bytes()

    @pytest.mark.skipif(
        available_cpus() < 2, reason="needs >=2 CPUs for wall-time scaling"
    )
    def test_pool_beats_serial_wall_time(self):
        tasks = tiny_tasks()
        run_sweep(tasks[:1], serial=True)  # warm imports/JITs
        t0 = time.monotonic()
        run_sweep(tasks, serial=True)
        serial_wall = time.monotonic() - t0
        t0 = time.monotonic()
        run_sweep(tasks, max_workers=min(3, available_cpus()))
        pool_wall = time.monotonic() - t0
        assert pool_wall <= 0.6 * serial_wall


class TestCache:
    def test_cache_writes_one_file_per_task(self, tmp_path):
        cache = tmp_path / "c"
        run_sweep(tiny_tasks(), serial=True, cache=cache)
        assert len(list(cache.glob("*.pkl"))) == 3

    def test_cache_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        run_sweep([SweepTask(key="k", config=tiny_config())], serial=True)
        assert list(tmp_path.rglob("*.pkl")) == []

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        cache = tmp_path / "envcache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        run_sweep([SweepTask(key="k", config=tiny_config())], serial=True)
        warm = run_sweep(
            [SweepTask(key="k", config=tiny_config())], serial=True
        )
        assert warm["k"].from_cache

    @pytest.mark.parametrize(
        "junk",
        [
            b"not a pickle",
            b"garbage\n",  # first byte is the GET opcode -> ValueError
            b"",
            pickle.dumps({"wrong": "type"}),
        ],
    )
    def test_corrupt_cache_entry_is_rerun(self, tmp_path, junk):
        cache = tmp_path / "c"
        task = SweepTask(key="k", config=tiny_config())
        run_sweep([task], serial=True, cache=cache)
        (pkl,) = cache.glob("*.pkl")
        pkl.write_bytes(junk)
        again = run_sweep([task], serial=True, cache=cache)
        assert not again["k"].from_cache
        assert again["k"].completed_flows > 0

    def test_fingerprint_sensitive_to_config_and_fn(self):
        t1 = SweepTask(key="a", config=tiny_config(seed=1))
        t2 = SweepTask(key="a", config=tiny_config(seed=2))
        t3 = SweepTask(key="a", config=tiny_config(seed=1), fn=_scaled_run)
        t4 = SweepTask(
            key="a", config=tiny_config(seed=1), fn=_scaled_run, args=(3,)
        )
        prints = {task_fingerprint(t) for t in (t1, t2, t3, t4)}
        assert len(prints) == 4
        # the key is not part of the identity: same work, same digest
        assert task_fingerprint(
            SweepTask(key="b", config=tiny_config(seed=1))
        ) == task_fingerprint(t1)

    def test_config_fingerprint_stable(self):
        assert config_fingerprint(tiny_config()) == config_fingerprint(
            tiny_config()
        )
        assert config_fingerprint(tiny_config()) != config_fingerprint(
            tiny_config(seed=8)
        )

    def test_repro_parallel_env_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        out = run_sweep(tiny_tasks(), max_workers=2)
        assert len(out) == 3  # still correct, just in-process


class TestResultSummary:
    def test_summary_is_picklable_and_round_trips(self):
        summary = summarize(run_scenario(tiny_config()))
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.canonical_bytes() == summary.canonical_bytes()
        assert clone.events == summary.events
        assert clone.poisson_fct == summary.poisson_fct

    def test_wall_time_excluded_from_identity(self):
        summary = summarize(run_scenario(tiny_config()))
        other = dataclasses.replace(
            summary, wall_seconds=summary.wall_seconds + 1.0, from_cache=True
        )
        assert other == summary
        assert other.canonical_bytes() == summary.canonical_bytes()

    def test_mirrors_scenario_result_metrics(self):
        result = run_scenario(tiny_config())
        summary = summarize(result)
        assert summary.poisson_fct == result.poisson_fct
        assert summary.incast_fct == result.incast_fct
        assert summary.max_switch_buffer_mb == result.max_switch_buffer_mb
        assert summary.pfc_triggered == result.pfc_triggered
        assert summary.completion_rate == result.completion_rate
        assert summary.events == result.events
