"""Fault injection: plans, selectors, injected failures, determinism."""

import pytest

from repro.experiments.parallel import SweepTask, run_sweep, summarize
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.faults import (
    BurstLoss,
    Corruption,
    FaultInjector,
    FaultPlan,
    LinkDown,
    PortDegrade,
    RandomLoss,
    StallWatchdog,
    match_links,
    plan_of,
)
from repro.net.packet import Packet, PacketKind
from repro.sim.rng import RngRegistry
from repro.units import ms, us
from tests.conftest import MiniNet


def install(net: MiniNet, plan: FaultPlan, seed: int = 1) -> FaultInjector:
    """Arm a plan on a MiniNet the way Scenario does."""
    inj = FaultInjector(
        net.sim, net.topo, plan, RngRegistry(seed), stats=net.stats
    )
    inj.install()
    return inj


class TestPlan:
    def test_json_round_trip(self):
        plan = plan_of(
            LinkDown(at=100, link="torL<->torR", duration=50, mode="drop"),
            RandomLoss(start=0, data_rate=0.1, ctrl_rate=0.02),
            BurstLoss(at=10, link="#0", duration=5),
            Corruption(start=0, rate=0.05),
            PortDegrade(at=0, rate_factor=0.5, extra_delay=100),
            stall_window=1000,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_fingerprint_is_stable_and_distinguishes(self):
        a = plan_of(RandomLoss(data_rate=0.1))
        b = plan_of(RandomLoss(data_rate=0.1))
        c = plan_of(RandomLoss(data_rate=0.2))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert plan_of(LinkDown(at=0))
        assert FaultPlan(stall_window=100)

    def test_with_fault_appends(self):
        plan = FaultPlan().with_fault(LinkDown(at=5))
        assert len(plan.faults) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: RandomLoss(data_rate=1.5),
            lambda: RandomLoss(start=-1),
            lambda: LinkDown(mode="explode"),
            lambda: BurstLoss(duration=0),
            lambda: PortDegrade(rate_factor=0.0),
            lambda: FaultPlan(stall_window=-1),
        ],
    )
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_unknown_kind_rejected_on_load(self):
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"faults": [{"kind": "meteor-strike"}]})


class TestSelectors:
    def test_wildcard_matches_all(self, mini):
        assert match_links("*", mini.topo) == list(mini.topo.links)

    def test_switch_switch_excludes_host_links(self, mini):
        trunk = match_links("switch-switch", mini.topo)
        host_side = match_links("host-switch", mini.topo)
        assert trunk and host_side
        assert len(trunk) + len(host_side) == len(mini.topo.links)

    def test_named_pair_either_order(self, mini):
        assert match_links("torL<->torR", mini.topo) == match_links(
            "torR<->torL", mini.topo
        )

    def test_node_wildcard(self, mini):
        links = match_links("torL:*", mini.topo)
        assert all(
            "torL" in (l.node_a.name, l.node_b.name) for l in links
        )

    def test_index_selector(self, mini):
        assert match_links("#0", mini.topo) == [mini.topo.links[0]]

    def test_bad_selectors_raise(self, mini):
        for sel in ("#999", "nosuch<->torL", "nosuch:*", "garbage"):
            with pytest.raises(ValueError):
                match_links(sel, mini.topo)


class TestLinkDown:
    def test_permanent_down_blocks_delivery(self, mini):
        install(mini, plan_of(LinkDown(at=0, link="torL<->torR")))
        f = mini.flow(1, 0, 6, 20_000)  # cross-rack: must use the trunk
        mini.run(ms(2))
        assert not f.receiver_done
        assert mini.stats.fault_drops_total > 0

    def test_flap_drain_mode_recovers(self, mini):
        mini.topo.hosts[0].rto = us(200)
        install(
            mini,
            plan_of(
                LinkDown(at=us(10), link="torL<->torR", duration=us(100))
            ),
        )
        f = mini.flow(1, 0, 6, 40_000)
        mini.run(ms(10))
        assert f.receiver_done

    def test_drop_mode_kills_in_flight(self, mini):
        # drain mode: packets on the wire at cut time still arrive;
        # drop mode: they die.  Same cut, compare the drop counters.
        mini.topo.hosts[0].rto = us(200)
        install(
            mini,
            plan_of(
                LinkDown(
                    at=us(10), link="torL<->torR", duration=us(50), mode="drop"
                )
            ),
        )
        f = mini.flow(1, 0, 6, 40_000)
        mini.run(ms(10))
        assert f.receiver_done  # RTO + go-back-N recover the holes
        assert mini.stats.fault_drops_total > 0


class TestLossClasses:
    def test_data_only_loss_counts_data(self, mini):
        install(
            mini,
            plan_of(
                RandomLoss(link="torL<->torR", data_rate=1.0, ctrl_rate=0.0)
            ),
        )
        mini.flow(1, 0, 6, 20_000)
        mini.run(ms(1))
        assert mini.stats.fault_drops["data"] > 0
        assert mini.stats.fault_drops["ctrl"] == 0

    def test_ctrl_only_loss_spares_data(self, mini):
        install(
            mini,
            plan_of(
                RandomLoss(link="torL<->torR", data_rate=0.0, ctrl_rate=1.0)
            ),
        )
        f = mini.flow(1, 0, 6, 20_000)
        mini.run(ms(1))
        # every byte arrives, but the ACKs die on the return path
        assert f.delivered_bytes == 20_000
        assert mini.stats.fault_drops["ctrl"] > 0
        assert mini.stats.fault_drops["data"] == 0

    def test_burst_window_bounds_the_damage(self, mini):
        mini.topo.hosts[0].rto = us(200)
        install(
            mini,
            plan_of(
                BurstLoss(
                    at=us(10),
                    link="torL<->torR",
                    duration=us(40),
                    data_rate=1.0,
                    ctrl_rate=1.0,
                )
            ),
        )
        f = mini.flow(1, 0, 6, 40_000)
        mini.run(ms(10))
        assert f.receiver_done
        assert mini.stats.fault_drops_total > 0


class TestCorruption:
    def test_corrupted_packets_nacked_and_recovered(self, mini):
        mini.topo.hosts[0].rto = us(300)
        install(
            mini,
            plan_of(
                Corruption(
                    start=0, link="torL<->torR", duration=us(50), rate=1.0
                )
            ),
        )
        f = mini.flow(1, 0, 6, 40_000)
        mini.run(ms(10))
        assert f.receiver_done
        assert mini.stats.fault_corruptions > 0
        assert mini.stats.corrupt_rx > 0
        # corrupted bytes were never credited to the flow
        assert f.delivered_bytes == 40_000


class TestPortDegrade:
    def test_rate_reduction_slows_and_restores(self, mini):
        clean = MiniNet()
        fc = clean.flow(1, 0, 6, 100_000)
        clean.run(ms(10))

        trunk = match_links("torL<->torR", mini.topo)[0]
        port = trunk.node_a.ports[trunk.port_a]
        baseline_bw = port.bandwidth
        install(
            mini,
            plan_of(
                PortDegrade(
                    at=0, link="torL<->torR", duration=ms(1), rate_factor=0.1
                )
            ),
        )
        f = mini.flow(1, 0, 6, 100_000)
        mini.run(ms(10))
        assert f.receiver_done
        assert f.finish_time > fc.finish_time  # visibly slower
        assert port.bandwidth == baseline_bw  # restored after the window

    def test_degrade_invalidates_memoized_serialization(self, mini):
        """Regression: rate changes must flush the per-port delay memo.

        The egress port memoizes serialization delay per packet size;
        a degrade that only rewrote ``bandwidth`` would keep serving
        full-rate delays for every size seen before the fault.
        """
        trunk = match_links("torL<->torR", mini.topo)[0]
        port = trunk.node_a.ports[trunk.port_a]
        full = port.serialization_delay_of(1500)  # warm the memo
        baseline_bw = port.bandwidth
        install(
            mini,
            plan_of(
                PortDegrade(
                    at=0, link="torL<->torR", duration=ms(1), rate_factor=0.1
                )
            ),
        )
        mini.run(us(10))  # inside the degrade window
        assert port.bandwidth == pytest.approx(baseline_bw * 0.1)
        degraded = port.serialization_delay_of(1500)
        assert degraded >= 9 * full  # stale memo would return `full`
        mini.run(ms(2))  # window over: rate and delays restored
        assert port.bandwidth == baseline_bw
        assert port.serialization_delay_of(1500) == full

    def test_extra_delay_applies_inside_window(self, mini):
        clean = MiniNet()
        fc = clean.flow(1, 0, 6, 50_000)
        clean.run(ms(10))
        install(
            mini,
            plan_of(
                PortDegrade(
                    at=0,
                    link="torL<->torR",
                    duration=ms(5),
                    extra_delay=us(20),
                )
            ),
        )
        f = mini.flow(1, 0, 6, 50_000)
        mini.run(ms(10))
        assert f.receiver_done
        assert f.finish_time > fc.finish_time


class TestWatchdog:
    def test_stall_detected_on_permanent_cut(self, mini):
        install(mini, plan_of(LinkDown(at=us(5), link="torL<->torR")))
        dog = StallWatchdog(mini.sim, mini.topo, mini.stats, window=us(100))
        dog.start()
        mini.flow(1, 0, 6, 40_000)
        mini.run(ms(2))
        assert mini.stats.stall_events == 1  # one episode, reported once

    def test_no_stall_on_healthy_run(self, mini):
        dog = StallWatchdog(mini.sim, mini.topo, mini.stats, window=us(100))
        dog.start()
        f = mini.flow(1, 0, 6, 40_000)
        mini.run(ms(2))
        assert f.receiver_done
        assert mini.stats.stall_events == 0

    def test_watchdog_stops_itself_when_done(self, mini):
        dog = StallWatchdog(mini.sim, mini.topo, mini.stats, window=us(100))
        dog.start()
        mini.flow(1, 0, 6, 10_000)
        mini.run(ms(5))
        events = mini.sim.events_executed
        mini.run(ms(50))
        assert mini.sim.events_executed == events  # no idle ticking

    def test_rejects_non_positive_window(self, mini):
        with pytest.raises(ValueError):
            StallWatchdog(mini.sim, mini.topo, mini.stats, window=0)


class TestUnclaimedControl:
    def test_unclaimed_control_frame_counted(self, mini):
        sw = mini.topo.switches[0]
        credit = Packet.control(PacketKind.CREDIT, 999, sw.node_id)
        credit.credits = [(0, 1)]
        sw.receive(credit, 0)
        assert sw.unclaimed_control_frames == 1
        assert mini.stats.unclaimed_control_frames == 1


FAULTED_CFG = ScenarioConfig(
    flow_control="floodgate",
    duration=150_000,
    seed=11,
    fault_plan=plan_of(
        RandomLoss(start=0, link="switch-switch", data_rate=0.02, ctrl_rate=0.02),
        LinkDown(at=30_000, link="tor0<->spine0", duration=20_000),
        stall_window=75_000,
    ),
)


class TestDeterminism:
    def test_same_seed_same_plan_byte_identical(self):
        a = summarize(run_scenario(FAULTED_CFG))
        b = summarize(run_scenario(FAULTED_CFG))
        assert a.canonical_bytes() == b.canonical_bytes()

    def test_serial_pooled_cached_identical(self, tmp_path):
        tasks = [SweepTask(key="x", config=FAULTED_CFG)]
        serial = run_sweep(tasks, serial=True)["x"]
        pooled = run_sweep(
            [
                SweepTask(key="x", config=FAULTED_CFG),
                SweepTask(
                    key="y",
                    config=ScenarioConfig(
                        flow_control="floodgate", duration=150_000, seed=12
                    ),
                ),
            ],
            max_workers=2,
        )["x"]
        _ = run_sweep(tasks, serial=True, cache=tmp_path)
        cached = run_sweep(tasks, serial=True, cache=tmp_path)["x"]
        assert cached.from_cache
        assert (
            serial.canonical_bytes()
            == pooled.canonical_bytes()
            == cached.canonical_bytes()
        )

    def test_plan_changes_cache_key(self):
        from repro.experiments.parallel import task_fingerprint

        base = SweepTask(key="x", config=FAULTED_CFG)
        other_plan = FAULTED_CFG.fault_plan.with_fault(Corruption(rate=0.5))
        import dataclasses

        changed = SweepTask(
            key="x",
            config=dataclasses.replace(FAULTED_CFG, fault_plan=other_plan),
        )
        assert task_fingerprint(base) != task_fingerprint(changed)

    def test_empty_plan_equals_no_plan(self):
        """Acceptance: an installed-but-empty plan changes nothing."""
        import dataclasses

        bare = ScenarioConfig(flow_control="floodgate", duration=150_000, seed=3)
        empty = dataclasses.replace(bare, fault_plan=FaultPlan())
        a = run_scenario(bare)
        b = run_scenario(empty)
        assert a.events == b.events
        assert a.sim_time == b.sim_time
        assert a.stats.fct_records == b.stats.fct_records
        assert a.stats.pfc_pause_events == b.stats.pfc_pause_events
        assert b.scenario.fault_injector is None
        assert b.scenario.watchdog is None
