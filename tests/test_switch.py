"""Switch forwarding, ECN, buffer pressure, and PFC generation."""

import random

from repro.net.ecn import EcnConfig, EcnMarker
from repro.net.packet import PacketKind
from repro.units import ms
from tests.conftest import MiniNet


class TestForwarding:
    def test_cross_rack_delivery(self, mini):
        f = mini.flow(1, 0, 6, 10_000)
        mini.run(ms(5))
        assert f.receiver_done

    def test_ack_rides_high_priority(self, leaf_spine):
        """ACK-like packets are never buffer-accounted at switches."""
        f = leaf_spine.flow(1, 0, 8, 50_000)
        leaf_spine.run(ms(5))
        assert f.receiver_done
        assert leaf_spine.all_buffers_empty()

    def test_hop_count_increments(self, leaf_spine):
        received = []
        dst_host = leaf_spine.topo.hosts[8]
        original = dst_host.receive

        def spy(pkt, port):
            if pkt.kind == PacketKind.DATA:
                received.append(pkt.hop_count)
            original(pkt, port)

        dst_host.receive = spy
        leaf_spine.flow(1, 0, 8, 5_000)
        leaf_spine.run(ms(5))
        assert received and all(h == 3 for h in received)  # tor,spine,tor


class TestEcnMarking:
    def test_marks_above_kmax(self):
        marker = EcnMarker(EcnConfig(1000, 2000, 1.0), random.Random(1))
        assert marker.should_mark(5000)
        assert marker.marked_count == 1

    def test_never_marks_below_kmin(self):
        marker = EcnMarker(EcnConfig(1000, 2000, 1.0), random.Random(1))
        assert not any(marker.should_mark(999) for _ in range(100))

    def test_probability_ramps_between(self):
        rng = random.Random(1)
        marker = EcnMarker(EcnConfig(0, 100_000, 1.0), rng)
        low = sum(marker.should_mark(10_000) for _ in range(2000))
        high = sum(marker.should_mark(90_000) for _ in range(2000))
        assert low < high

    def test_invalid_config_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            EcnConfig(200, 100)
        with pytest.raises(ValueError):
            EcnConfig(0, 0, pmax=2.0)

    def test_switch_marks_under_congestion(self):
        net = MiniNet(pfc=False)
        for sw in net.topo.switches:
            sw.ecn = EcnMarker(EcnConfig(5_000, 20_000, 1.0), random.Random(3))
        # 4-to-1 incast overloads the receiver's port
        for i, src in enumerate((0, 1, 2, 3)):
            net.flow(i, src, 6, 40_000)
        marked = []
        dst = net.topo.hosts[6]
        original = dst.receive

        def spy(pkt, port):
            if pkt.kind == PacketKind.DATA and pkt.ecn_marked:
                marked.append(pkt)
            original(pkt, port)

        dst.receive = spy
        net.run(ms(10))
        assert marked


class TestBufferPressure:
    def test_drops_when_pool_full_without_pfc(self):
        net = MiniNet(pfc=False, buffer_bytes=30_000)
        for i, src in enumerate((0, 1, 2, 3)):
            net.flow(i, src, 6, 60_000)
        net.run(ms(1))
        assert net.stats.packets_dropped > 0

    def test_pfc_prevents_drops(self):
        # alpha=0.5 pauses early enough to absorb a synchronized burst
        # of 4 full sending windows into a 200 KB pool
        net = MiniNet(pfc=True, pfc_alpha=0.5, buffer_bytes=200_000)
        flows = [net.flow(i, src, 6, 60_000) for i, src in enumerate((0, 1, 2, 3))]
        net.run(ms(50))
        assert net.stats.packets_dropped == 0
        assert net.stats.pfc_pause_events > 0
        assert all(f.receiver_done for f in flows)

    def test_buffers_empty_after_drain(self):
        net = MiniNet(buffer_bytes=50_000)
        flows = [net.flow(i, src, 6, 50_000) for i, src in enumerate((0, 1, 2))]
        net.run(ms(50))
        assert all(f.receiver_done for f in flows)
        assert net.all_buffers_empty()

    def test_max_buffer_recorded(self):
        net = MiniNet()
        net.flow(1, 0, 6, 50_000)
        net.run(ms(5))
        assert net.stats.max_switch_buffer > 0


class TestPfcAccounting:
    def test_pause_time_reported_by_kind(self):
        net = MiniNet(buffer_bytes=30_000)
        for i, src in enumerate((0, 1, 2, 3)):
            net.flow(i, src, 6, 60_000)
        net.run(ms(50))
        net.topo.report_pause_times()
        total = sum(net.stats.pfc_paused_time.values())
        assert total > 0

    def test_queuing_time_recorded_by_role(self):
        net = MiniNet()
        net.flow(1, 0, 6, 50_000)
        net.run(ms(5))
        assert net.stats.avg_queuing_by_role("tor-up") >= 0
        # data crossed the trunk, so the tor-up role saw packets
        assert ("torL", "tor-up") in net.stats.port_max_buffer
