"""Egress-port edge cases the main flows don't reach."""

from hypothesis import given, strategies as st

from repro.net.packet import Packet, PacketKind
from tests.test_link_port import data, make_pair


class TestKick:
    def test_kick_on_idle_empty_port_is_noop(self):
        sim, a, b, _ = make_pair()
        a.ports[0].kick()
        sim.run()
        assert b.received == []

    def test_kick_resumes_after_external_unblock(self):
        sim, a, b, _ = make_pair()
        port = a.ports[0]
        port.paused_queues.add(1)  # direct manipulation, then kick
        port.enqueue(data(), 1)
        sim.run()
        assert b.received == []
        port.paused_queues.discard(1)
        port.kick()
        sim.run()
        assert len(b.received) == 1


class TestCounters:
    def test_tx_bytes_counts_everything(self):
        sim, a, b, _ = make_pair()
        a.ports[0].enqueue(data(1000), 1)
        a.ports[0].enqueue_control(Packet.control(PacketKind.ACK, 0, 1))
        sim.run()
        assert a.ports[0].tx_bytes == 1000 + 64

    def test_tx_data_bytes_counts_only_data(self):
        sim, a, b, _ = make_pair()
        a.ports[0].enqueue(data(1000), 1)
        a.ports[0].enqueue_control(Packet.control(PacketKind.ACK, 0, 1))
        sim.run()
        assert a.ports[0].tx_data_bytes == 1000

    def test_data_bytes_queued_excludes_control(self):
        sim, a, _, _ = make_pair()
        port = a.ports[0]
        port.pause()
        port.enqueue(data(1000), 1)
        port.enqueue(data(500), 2)
        # control transmits despite pause, so enqueue several to keep
        # at least one queued at inspection time
        port.enqueue_control(Packet.control(PacketKind.ACK, 0, 1))
        port.enqueue_control(Packet.control(PacketKind.ACK, 0, 1))
        assert port.data_bytes_queued == 1500


class TestFairness:
    @given(counts=st.tuples(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
    ))
    def test_rr_serves_both_queues_interleaved(self, counts):
        n1, n2 = counts
        sim, a, b, _ = make_pair()
        port = a.ports[0]
        port.pause()  # fill while paused so RR state is exercised
        for i in range(n1):
            port.enqueue(data(1000, 100 + i), 3)
        for i in range(n2):
            port.enqueue(data(1000, 200 + i), 4)
        port.resume()
        sim.run()
        seqs = [p.seq for _, p in b.received]
        assert len(seqs) == n1 + n2
        # within any prefix, the two queues differ by at most ~1 until
        # one drains (round-robin fairness)
        for k in range(1, min(n1, n2) * 2 + 1):
            q1 = sum(1 for s in seqs[:k] if s < 200)
            q2 = sum(1 for s in seqs[:k] if s >= 200)
            assert abs(q1 - q2) <= 1
