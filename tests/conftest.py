"""Shared fixtures: small topologies wired for direct unit testing."""

from __future__ import annotations

from typing import Dict, Optional

import pytest

from repro.cc.base import CcAlgorithm, StaticWindowCc
from repro.net.host import Host
from repro.net.switch import Switch
from repro.net.topology import (
    Topology,
    build_dumbbell,
    build_leaf_spine,
)
from repro.sim.engine import Simulator
from repro.stats.collector import StatsHub
from repro.units import gbps, kb, mb


class MiniNet:
    """A hand-buildable test network with direct component access."""

    def __init__(
        self,
        topology: str = "dumbbell",
        cc: Optional[CcAlgorithm] = None,
        buffer_bytes: int = mb(1),
        pfc: bool = True,
        pfc_alpha: float = 2.0,
        host_bandwidth: float = gbps(10),
        fabric_bandwidth: float = gbps(40),
        n_tors: int = 3,
        hosts_per_tor: int = 4,
    ) -> None:
        self.sim = Simulator()
        self.stats = StatsHub()
        self.flow_table: Dict[int, object] = {}
        self.cc = cc or StaticWindowCc(host_bandwidth, kb(30))
        self.hosts = []

        def host_factory(sim, nid, name):
            host = Host(sim, nid, name, self.cc, self.flow_table, stats=self.stats)
            self.hosts.append(host)
            return host

        def switch_factory(sim, nid, name, kind, level):
            sw = Switch(
                sim,
                nid,
                name,
                buffer_capacity=buffer_bytes,
                kind=kind,
                pfc_enabled=pfc,
                pfc_alpha=pfc_alpha,
                stats=self.stats,
            )
            sw.level = level
            return sw

        if topology == "dumbbell":
            self.topo: Topology = build_dumbbell(
                self.sim,
                host_factory,
                switch_factory,
                hosts_per_side=hosts_per_tor,
                host_bandwidth=host_bandwidth,
                trunk_bandwidth=fabric_bandwidth,
            )
        else:
            self.topo = build_leaf_spine(
                self.sim,
                host_factory,
                switch_factory,
                n_spines=2,
                n_tors=n_tors,
                hosts_per_tor=hosts_per_tor,
                host_bandwidth=host_bandwidth,
                spine_bandwidth=fabric_bandwidth,
            )
        # hosts and topology share one flow table
        self.topo.flow_table = self.flow_table

    def flow(self, flow_id, src, dst, size, start=0):
        f = self.topo.make_flow(flow_id, src, dst, size, start)
        self.topo.start_flow(f)
        return f

    def run(self, until):
        self.sim.run(until=until)

    def all_buffers_empty(self) -> bool:
        return all(sw.buffer.used == 0 for sw in self.topo.switches)


@pytest.fixture
def mini():
    """A 2-ToR dumbbell with static-window hosts."""
    return MiniNet()


@pytest.fixture
def leaf_spine():
    """A 2-spine, 3-ToR leaf-spine fabric."""
    return MiniNet(topology="leaf-spine")
