"""End-host transport: delivery, reliability, pacing, pausing."""

import random

import pytest

from repro.net.packet import Packet, PacketKind
from repro.units import gbps, kb, ms, us
from tests.conftest import MiniNet


class TestDelivery:
    def test_single_flow_completes_and_records_fct(self, mini):
        f = mini.flow(1, 0, 2, 50_000)
        mini.run(ms(10))
        assert f.receiver_done
        assert f.sender_done
        assert len(mini.stats.fct_records) == 1
        rec = mini.stats.fct_records[0]
        assert rec.size == 50_000
        assert rec.fct > 0

    def test_fct_close_to_ideal_on_idle_network(self, mini):
        size = 100_000
        f = mini.flow(1, 0, 2, size)
        mini.run(ms(10))
        ideal = size * 8 / gbps(10) * 1e9  # ns
        assert f.finish_time < ideal * 1.5

    def test_many_parallel_flows_all_complete(self, mini):
        flows = [
            mini.flow(i, i % 2, 2 + (i % 2), 20_000, start=i * 1000)
            for i in range(20)
        ]
        mini.run(ms(20))
        assert all(f.receiver_done for f in flows)

    def test_delivered_bytes_match_size(self, mini):
        f = mini.flow(1, 0, 3, 12_345)
        mini.run(ms(5))
        assert f.delivered_bytes == 12_345

    def test_bidirectional_flows(self, mini):
        f1 = mini.flow(1, 0, 2, 30_000)
        f2 = mini.flow(2, 2, 0, 30_000)
        mini.run(ms(5))
        assert f1.receiver_done and f2.receiver_done


class TestWindow:
    def test_sending_window_limits_inflight(self):
        net = MiniNet()  # swnd = 30 KB
        f = net.flow(1, 0, 2, 200_000)
        # after a short time, at most swnd bytes can be unacked
        net.run(us(20))
        assert f.inflight_bytes <= 30_000

    def test_ack_clocking_resumes_sending(self, mini):
        f = mini.flow(1, 0, 2, 200_000)
        mini.run(ms(10))
        assert f.all_acked


class TestReliability:
    def test_recovery_from_heavy_loss(self):
        net = MiniNet()
        # lossy trunk: GBN + NACK + RTO must still complete the flow
        trunk = net.topo.links[-1]
        net.topo.hosts[0].rto = us(300)
        trunk.set_loss(0.10, random.Random(7))
        f = net.flow(1, 0, 6, 60_000)  # cross-rack: uses the trunk
        net.run(ms(50))
        assert f.receiver_done
        assert f.retransmitted_packets > 0

    def test_duplicate_data_reacked_not_redelivered(self, mini):
        f = mini.flow(1, 0, 2, 5_000)
        mini.run(ms(5))
        host = mini.topo.hosts[2]
        before = f.delivered_bytes
        dup = Packet(PacketKind.DATA, 0, 2, 1000, flow_id=1, seq=0)
        host.receive(dup, 0)
        assert f.delivered_bytes == before

    def test_unknown_flow_packet_ignored(self, mini):
        host = mini.topo.hosts[0]
        stray = Packet(PacketKind.DATA, 5, 0, 1000, flow_id=999, seq=0)
        host.receive(stray, 0)  # must not raise


class TestFaultRecovery:
    """Recovery paths under injected faults (repro.faults)."""

    def _inject(self, net, plan):
        from repro.faults import FaultInjector
        from repro.sim.rng import RngRegistry

        inj = FaultInjector(
            net.sim, net.topo, plan, RngRegistry(5), stats=net.stats
        )
        inj.install()
        return inj

    def test_rto_and_gbn_recover_from_burst_loss(self):
        from repro.faults import BurstLoss, plan_of

        net = MiniNet()
        net.topo.hosts[0].rto = us(300)
        self._inject(
            net,
            plan_of(
                BurstLoss(
                    at=us(20),
                    link="torL<->torR",
                    duration=us(80),
                    data_rate=1.0,
                    ctrl_rate=1.0,
                )
            ),
        )
        f = net.flow(1, 0, 6, 80_000)
        net.run(ms(50))
        assert f.receiver_done
        assert f.retransmitted_packets > 0
        assert net.stats.fault_drops_total > 0

    def test_lost_pause_frames_overflow_the_buffer(self):
        # PFC keeps the fabric lossless only while PAUSE frames arrive;
        # killing the control frames on the host links (where the
        # switch pauses its upstream senders) must surface as buffer
        # drops that a clean run never has
        def build():
            return MiniNet(
                buffer_bytes=kb(60), fabric_bandwidth=gbps(10), pfc_alpha=0.5
            )

        def drive(net):
            for i in range(4):  # 4:1 incast across the trunk
                net.flow(i + 1, i, 6, 40_000, start=i * 100)
            net.run(ms(30))

        clean = build()
        drive(clean)
        assert clean.stats.packets_dropped == 0

        from repro.faults import RandomLoss, plan_of

        lossy = build()
        self._inject(
            lossy,
            plan_of(
                RandomLoss(link="host-switch", data_rate=0.0, ctrl_rate=1.0)
            ),
        )
        drive(lossy)
        assert lossy.stats.fault_drops["ctrl"] > 0
        assert lossy.stats.packets_dropped > 0

    @staticmethod
    def _flap_run(scheme):
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenario import ScenarioConfig
        from repro.faults import LinkDown, plan_of

        cfg = ScenarioConfig(
            flow_control=scheme,
            duration=150_000,
            seed=2,
            fault_plan=plan_of(
                LinkDown(at=40_000, link="tor0<->spine0", duration=us(50)),
                stall_window=100_000,
            ),
            max_runtime_factor=20.0,
        )
        return run_scenario(cfg)

    @pytest.mark.parametrize("scheme", ["floodgate", "bfc"])
    def test_link_flap_mid_flow_recovers(self, scheme):
        result = self._flap_run(scheme)
        assert result.completion_rate == 1.0
        assert result.stall_events == 0

    def test_link_flap_strands_ndp_but_watchdog_sees_it(self):
        # NDP's pull budget dies with silently-lost packets (no trimmed
        # header -> no NACK), leaving only the one-packet-per-RTO
        # backstop: flows strand, and the watchdog must say so
        result = self._flap_run("ndp")
        assert result.completion_rate < 1.0
        assert result.stall_events > 0  # no undetected stall


class TestCnp:
    def test_ecn_marked_data_triggers_cnp(self, mini):
        f = mini.flow(1, 0, 2, 5_000)
        mini.run(ms(2))
        cnp_seen = []
        src_host = mini.topo.hosts[0]
        original = src_host.receive

        def spy(pkt, port):
            if pkt.kind == PacketKind.CNP:
                cnp_seen.append(pkt)
            original(pkt, port)

        src_host.receive = spy
        marked = Packet(PacketKind.DATA, 0, 2, 1000, flow_id=1, seq=f.expected_seq)
        marked.ecn_marked = True
        mini.topo.hosts[2].receive(marked, 0)
        mini.run(mini.sim.now + ms(1))
        assert cnp_seen

    def test_cnp_rate_limited(self, mini):
        host = mini.topo.hosts[2]
        mini.topo.make_flow(1, 0, 2, 50_000, 0)
        for seq in range(10):
            pkt = Packet(PacketKind.DATA, 0, 2, 1000, flow_id=1, seq=seq)
            pkt.ecn_marked = True
            host.receive(pkt, 0)
        # all marks arrived in the same instant: at most one CNP is
        # emitted (the rest of the control queue is ACKs)
        queued_cnps = sum(
            1 for p in host.ports[0].queues[0] if p.kind == PacketKind.CNP
        )
        assert queued_cnps <= 1


class TestDstPause:
    def test_dst_pause_blocks_only_that_destination(self, mini):
        host = mini.topo.hosts[0]
        pause = Packet.control(PacketKind.DST_PAUSE, 100, 0)
        pause.pause_dst = 2
        host.receive(pause, 0)
        f_blocked = mini.flow(1, 0, 2, 20_000)
        f_free = mini.flow(2, 0, 3, 20_000)
        mini.run(ms(5))
        assert not f_blocked.receiver_done
        assert f_free.receiver_done

    def test_dst_resume_restarts(self, mini):
        host = mini.topo.hosts[0]
        pause = Packet.control(PacketKind.DST_PAUSE, 100, 0)
        pause.pause_dst = 2
        host.receive(pause, 0)
        f = mini.flow(1, 0, 2, 20_000)
        mini.run(ms(2))
        assert not f.receiver_done
        resume = Packet.control(PacketKind.DST_RESUME, 100, 0)
        resume.pause_dst = 2
        host.receive(resume, 0)
        mini.run(mini.sim.now + ms(5))
        assert f.receiver_done


class TestPfcOnHost:
    def test_pfc_pause_stops_nic(self, mini):
        host = mini.topo.hosts[0]
        host.receive(Packet.control(PacketKind.PFC_PAUSE, 100, 0), 0)
        f = mini.flow(1, 0, 2, 10_000)
        mini.run(ms(2))
        assert not f.receiver_done
        host.receive(Packet.control(PacketKind.PFC_RESUME, 100, 0), 0)
        mini.run(mini.sim.now + ms(5))
        assert f.receiver_done
