"""Runtime invariant sanitizer: clean runs stay clean, seeded bugs get caught."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.parallel import summarize
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.net.packet import Packet, PacketKind
from repro.net.switch import Switch
from repro.simcheck.sanitizer import SanitizerConfig, SanitizerError, SimSanitizer
from repro.units import us


def small_cfg(flow_control: str, sanitize=True, **kw) -> ScenarioConfig:
    return ScenarioConfig(
        flow_control=flow_control,
        n_tors=3,
        hosts_per_tor=4,
        duration=us(300),
        seed=3,
        sanitize=SanitizerConfig() if sanitize else None,
        **kw,
    )


def run_sanitized(flow_control: str, **kw):
    cfg = small_cfg(flow_control, **kw)
    sc = Scenario(cfg)
    result = run_scenario(cfg, scenario=sc)
    return sc, result


# -- clean runs stay clean ----------------------------------------------------


@pytest.mark.parametrize("scheme", ["none", "floodgate", "bfc", "ndp"])
def test_clean_run_has_zero_violations(scheme):
    sc, result = run_sanitized(scheme)
    assert result.sanitizer_violations == []
    assert sc.sanitizer is not None
    assert sc.sanitizer.checks_run > 1  # periodic sweeps + the final one
    assert sc.sanitizer.summary()["violations"] == 0


def test_per_dst_pause_run_is_clean():
    _, result = run_sanitized("floodgate", per_dst_pause=True)
    assert result.sanitizer_violations == []


def test_unsanitized_run_builds_no_sanitizer():
    cfg = small_cfg("floodgate", sanitize=False)
    result = run_scenario(cfg)
    sc = result.scenario
    assert sc.sanitizer is None
    assert result.sanitizer_violations == []
    assert all(h.sanitizer is None for h in sc.topology.hosts)
    assert all(sw.sanitizer is None for sw in sc.topology.switches)


def test_sanitizer_does_not_change_results():
    """Same (config, seed) with and without the sanitizer: same physics."""
    plain = summarize(run_scenario(small_cfg("floodgate", sanitize=False)))
    sanitized = summarize(run_scenario(small_cfg("floodgate")))
    # the sanitizer adds its own periodic events and rides in the config,
    # so normalize those two fields; everything physical must match
    comparable = dataclasses.replace(
        sanitized, config=plain.config, events=plain.events
    )
    assert comparable.canonical_bytes() == plain.canonical_bytes()


# -- seeded violations are caught with useful messages ------------------------


def fresh_violations(san: SimSanitizer):
    before = len(san.violations)
    san.check_now()
    return san.violations[before:]


def test_leaked_packet_breaks_conservation():
    sc, result = run_sanitized("floodgate")
    assert result.sanitizer_violations == []
    sc.topology.hosts[0].tx_data_packets += 1  # a packet the fabric never saw
    msgs = fresh_violations(sc.sanitizer)
    assert any("DATA packet conservation broken" in m for m in msgs)
    assert any("off by 1" in m for m in msgs)
    assert all(m.startswith("t=") for m in msgs)  # timestamps for triage


def test_buffer_occupancy_mismatch_is_flagged():
    sc, _ = run_sanitized("floodgate")
    sw = sc.topology.switches[0]
    sw.buffer.used += 512  # occupancy no longer backed by any charge
    msgs = fresh_violations(sc.sanitizer)
    assert any("per-ingress charges" in m for m in msgs)
    assert any("per-port occupancy" in m for m in msgs)


def test_negative_buffer_is_flagged():
    sc, _ = run_sanitized("floodgate")
    sc.topology.switches[0].buffer.used = -5
    msgs = fresh_violations(sc.sanitizer)
    assert any("occupancy negative" in m for m in msgs)


def test_voq_oversend_violates_theorem_1():
    sc, _ = run_sanitized("floodgate")
    ext = next(e for e in sc.extensions if hasattr(e, "windows"))
    ext.pool.overflow_bypasses = 0  # the bound applies
    ext.windows.initial[7] = 4
    ext.windows.window[7] = -1  # one more packet in flight than the window
    msgs = fresh_violations(sc.sanitizer)
    assert any("Theorem-1 bound violated" in m for m in msgs)


def test_window_overshoot_is_flagged():
    sc, _ = run_sanitized("floodgate")
    ext = next(e for e in sc.extensions if hasattr(e, "windows"))
    ext.pool.overflow_bypasses = 0
    ext.windows.initial[7] = 4
    ext.windows.window[7] = 9  # more credits returned than packets sent
    msgs = fresh_violations(sc.sanitizer)
    assert any("window overshoot" in m for m in msgs)


def test_overflow_bypass_exempts_the_window_bound():
    """Forced bypasses send without consuming window: the paper's bound
    explicitly excludes them, so the sweep must not cry wolf."""
    sc, _ = run_sanitized("floodgate")
    ext = next(e for e in sc.extensions if hasattr(e, "windows"))
    ext.windows.initial[7] = 4
    ext.windows.window[7] = -1
    ext.pool.overflow_bypasses = 3
    assert fresh_violations(sc.sanitizer) == []


def test_credit_loss_breaks_credit_conservation():
    sc, result = run_sanitized("floodgate")
    assert result.sanitizer_violations == []
    ext = next(e for e in sc.extensions if hasattr(e, "credits"))
    if ext.credits.credits_sent == 0:
        pytest.skip("run generated no credits")
    ext.credit_frames_rx -= 1  # pretend one applied frame vanished
    msgs = fresh_violations(sc.sanitizer)
    assert any("credit conservation broken" in m for m in msgs)


def test_pfc_resume_without_pause_is_flagged():
    cfg = small_cfg("none")
    sc = Scenario(cfg)  # unrun: every port starts unpaused
    host = sc.topology.hosts[0]
    host.receive(Packet.control(PacketKind.PFC_RESUME, 0, host.node_id), 0)
    assert any(
        "PFC RESUME without matching PAUSE" in m
        for m in sc.sanitizer.violations
    )


def test_double_pfc_pause_is_flagged():
    cfg = small_cfg("none")
    sc = Scenario(cfg)
    host = sc.topology.hosts[0]
    pause = Packet.control(PacketKind.PFC_PAUSE, 0, host.node_id)
    host.receive(pause, 0)
    assert sc.sanitizer.violations == []
    host.receive(pause, 0)
    assert any("double PFC PAUSE" in m for m in sc.sanitizer.violations)


def test_double_dst_pause_is_flagged():
    cfg = small_cfg("floodgate")
    sc = Scenario(cfg)
    host = sc.topology.hosts[0]
    pkt = Packet.control(PacketKind.DST_PAUSE, 0, host.node_id)
    pkt.pause_dst = 5
    host.receive(pkt, 0)
    assert sc.sanitizer.violations == []
    host.receive(pkt, 0)
    assert any("double dstPause" in m for m in sc.sanitizer.violations)


def test_lossy_links_disable_pairing_but_not_conservation():
    """A dropped PAUSE makes the later RESUME look unmatched; that is
    loss, not a bug, so pairing checks stand down on lossy fabrics."""
    cfg = small_cfg("none")
    sc = Scenario(cfg)
    sc.topology.links[0].set_loss(0.5, sc.rng.stream("test-loss"))
    host = sc.topology.hosts[0]
    host.receive(Packet.control(PacketKind.PFC_RESUME, 0, host.node_id), 0)
    assert sc.sanitizer.violations == []  # pairing stood down
    host.tx_data_packets += 1
    sc.sanitizer.check_now()
    assert any(  # conservation still armed
        "conservation broken" in m for m in sc.sanitizer.violations
    )


def test_strict_mode_raises_at_the_violation():
    cfg = small_cfg("floodgate")
    cfg = dataclasses.replace(cfg, sanitize=SanitizerConfig(strict=True))
    sc = Scenario(cfg)
    result = run_scenario(cfg, scenario=sc)  # clean run: nothing raises
    assert result.sanitizer_violations == []
    sc.topology.hosts[0].tx_data_packets += 1
    with pytest.raises(SanitizerError, match="conservation broken"):
        sc.sanitizer.check_now()


def test_violation_flood_is_truncated():
    cfg = small_cfg("none")
    cfg = dataclasses.replace(
        cfg, sanitize=SanitizerConfig(max_violations=2)
    )
    sc = Scenario(cfg)
    for i in range(5):
        sc.sanitizer.record(f"violation {i}")
    assert len(sc.sanitizer.violations) == 2
    assert sc.sanitizer.truncated == 3
    assert sc.sanitizer.summary()["violations_truncated"] == 3


# -- the acceptance scenarios: sanitized Fig. 8 and Fig. 12 -------------------


def test_fig08_style_incastmix_is_clean():
    """The §6.1 incastmix scenario (Fig. 8's workload) under the sanitizer."""
    from repro.experiments.figures.common import incastmix_base

    cfg = incastmix_base(
        quick=True,
        workload="websearch",
        flow_control="floodgate",
        duration=200_000,
        sanitize=SanitizerConfig(),
    )
    result = run_scenario(cfg)
    assert result.completed_flows > 0
    assert result.sanitizer_violations == []


def test_fig12_style_lossy_incast_is_clean():
    """Fig. 12's lossy-fabric incast: conservation must hold through
    Bernoulli loss on every switch-to-switch link."""
    cfg = ScenarioConfig(
        workload="webserver",
        pattern="incast",
        flow_control="floodgate",
        duration=200_000,
        n_tors=3,
        hosts_per_tor=4,
        max_runtime_factor=20.0,
        seed=1,
        sanitize=SanitizerConfig(),
    )
    sc = Scenario(cfg)
    rng = sc.rng.stream("link-loss")
    lossy = 0
    for link in sc.topology.links:
        if isinstance(link.node_a, Switch) and isinstance(link.node_b, Switch):
            link.set_loss(0.05, rng)
            lossy += 1
    assert lossy > 0
    result = run_scenario(cfg, scenario=sc)
    assert result.sanitizer_violations == []
    assert sc.sanitizer.checks_run > 1
