"""WindowTable: per-dst windows with PSN reconciliation."""

from hypothesis import given, strategies as st

from repro.floodgate.window import WindowTable


class TestBasics:
    def test_ensure_installs_initial(self):
        wt = WindowTable()
        assert wt.ensure(5, 10) == 10
        assert wt.initial[5] == 10

    def test_ensure_is_idempotent(self):
        wt = WindowTable()
        wt.ensure(5, 10)
        wt.consume(5)
        assert wt.ensure(5, 99) == 9  # second initial ignored

    def test_consume_decrements(self):
        wt = WindowTable()
        wt.ensure(5, 3)
        wt.consume(5)
        wt.consume(5)
        assert wt.window[5] == 1

    def test_add_credits_caps_at_initial(self):
        wt = WindowTable()
        wt.ensure(5, 10)
        wt.consume(5)
        wt.add_credits(5, 100)
        assert wt.window[5] == 10

    def test_add_credits_unknown_dst_ignored(self):
        wt = WindowTable()
        wt.add_credits(42, 5)  # must not raise
        assert 42 not in wt.window


class TestPsn:
    def test_psn_sequence_per_port_dst(self):
        wt = WindowTable()
        assert wt.assign_psn(1, 5) == 0
        assert wt.assign_psn(1, 5) == 1
        assert wt.assign_psn(2, 5) == 0  # independent per port

    def test_reconcile_restores_window(self):
        wt = WindowTable()
        wt.ensure(5, 10)
        for _ in range(4):
            wt.consume(5)
            wt.assign_psn(1, 5)
        # downstream echoes psn 1: packets 0..1 done, 2..3 in flight
        wt.reconcile(1, 5, echoed_psn=1, now=100)
        assert wt.window[5] == 8

    def test_reconcile_heals_lost_credit(self):
        wt = WindowTable()
        wt.ensure(5, 10)
        for _ in range(6):
            wt.consume(5)
            wt.assign_psn(1, 5)
        # credits for psn 0..2 were lost; the psn-3 credit heals all
        wt.reconcile(1, 5, echoed_psn=3, now=100)
        assert wt.window[5] == 10 - 2  # only psn 4,5 in flight

    def test_stale_credit_ignored(self):
        wt = WindowTable()
        wt.ensure(5, 10)
        for _ in range(4):
            wt.consume(5)
            wt.assign_psn(1, 5)
        wt.reconcile(1, 5, echoed_psn=3, now=100)
        full = wt.window[5]
        wt.reconcile(1, 5, echoed_psn=1, now=200)  # reordered, stale
        assert wt.window[5] == full

    def test_exhausted_pairs(self):
        wt = WindowTable()
        wt.ensure(5, 10)
        wt.assign_psn(1, 5)
        assert (1, 5) in wt.exhausted_pairs()
        wt.reconcile(1, 5, echoed_psn=0, now=50)
        assert (1, 5) not in wt.exhausted_pairs()

    def test_active_destinations(self):
        wt = WindowTable()
        wt.ensure(1, 5)
        wt.ensure(2, 5)
        wt.consume(1)
        assert wt.active_destinations() == 1


class TestInvariants:
    @given(
        st.lists(
            st.sampled_from(["send", "credit"]),
            min_size=1,
            max_size=200,
        )
    )
    def test_window_never_exceeds_initial(self, ops):
        wt = WindowTable()
        initial = 8
        wt.ensure(7, initial)
        sent = 0
        echoed = -1
        for op in ops:
            if op == "send" and wt.window[7] >= 1:
                wt.consume(7)
                wt.assign_psn(0, 7)
                sent += 1
            elif op == "credit" and echoed < sent - 1:
                echoed += 1
                wt.reconcile(0, 7, echoed, now=0)
        assert 0 <= wt.window[7] <= initial
        # window equals initial minus genuinely-in-flight packets
        assert wt.window[7] == initial - (sent - (echoed + 1))
