"""Floodgate corner-case behaviours: grouping, tagging, overflow."""

from repro.floodgate.config import FloodgateConfig
from repro.floodgate.extension import FloodgateExtension
from repro.floodgate.voq import GROUP_DOWN, GROUP_UP
from repro.net.host import Host
from repro.net.packet import Packet, PacketKind
from repro.net.switch import Switch
from repro.net.topology import build_fat_tree
from repro.sim.engine import Simulator
from repro.stats.collector import StatsHub
from repro.units import gbps, kb, mb, ms, us
from tests.conftest import MiniNet
from tests.test_floodgate_extension import with_floodgate


def build_fat_tree_net():
    sim = Simulator()
    stats = StatsHub()
    flow_table = {}
    from repro.cc.base import StaticWindowCc

    cc = StaticWindowCc(gbps(10), kb(30))

    def host_factory(s, nid, name):
        return Host(s, nid, name, cc, flow_table, stats=stats)

    def switch_factory(s, nid, name, kind, level):
        sw = Switch(s, nid, name, mb(1), kind=kind, stats=stats)
        sw.level = level
        return sw

    topo = build_fat_tree(
        sim,
        host_factory,
        switch_factory,
        k=4,
        hosts_per_edge=2,
        host_bandwidth=gbps(10),
        fabric_bandwidth=gbps(10),
    )
    topo.flow_table = flow_table
    config = FloodgateConfig(credit_timer=us(2))
    exts = []
    for sw in topo.switches:
        ext = FloodgateExtension(sim, config)
        sw.install_extension(ext)
        exts.append(ext)
    return sim, topo, exts, stats


class TestVoqGrouping:
    def test_agg_switch_distinguishes_up_and_down(self):
        sim, topo, exts, _ = build_fat_tree_net()
        aggs = topo.switches_of_kind("agg")
        agg = aggs[0]
        ext = agg.extension
        # a destination inside this pod: next hop is an edge (down)
        pod_host = next(iter(
            topo.switches_of_kind("tor")[0].connected_hosts
        ))
        down_port = agg.route_for_dst(pod_host)
        assert ext._group_of(down_port) == GROUP_DOWN
        # a destination in another pod: next hop is a core (up)
        remote_host = topo.hosts[-1].node_id
        up_port = agg.route_for_dst(remote_host)
        assert ext._group_of(up_port) == GROUP_UP

    def test_tor_sends_everything_up(self):
        net = MiniNet("leaf-spine")
        exts = with_floodgate(net)
        tor = net.topo.switches_of_kind("tor")[0]
        ext = tor.extension
        remote = 11  # another rack
        assert ext._group_of(tor.route_for_dst(remote)) == GROUP_UP

    def test_spine_sends_everything_down(self):
        net = MiniNet("leaf-spine")
        exts = with_floodgate(net)
        spine = net.topo.switches_of_kind("core")[0]
        ext = spine.extension
        assert ext._group_of(spine.route_for_dst(0)) == GROUP_DOWN

    def test_cross_pod_fat_tree_traffic_completes(self):
        sim, topo, exts, _ = build_fat_tree_net()
        flows = []
        # pod A -> pod D and back, several flows each way
        n = len(topo.hosts)
        fid = 0
        for i in range(4):
            f = topo.make_flow(fid, i, n - 1 - i, 40_000, 0)
            topo.start_flow(f)
            flows.append(f)
            fid += 1
            g = topo.make_flow(fid, n - 1 - i, i, 40_000, 0)
            topo.start_flow(g)
            flows.append(g)
            fid += 1
        sim.run(until=ms(50))
        assert all(f.receiver_done for f in flows)


class TestIncastTagging:
    def test_voq_packets_tagged_no_win(self):
        net = MiniNet("leaf-spine")
        exts = with_floodgate(net)
        tor = net.topo.switches_of_kind("tor")[1]
        ext = tor.extension
        dst = 0
        out = tor.route_for_dst(dst)
        win = ext._initial_window(dst)
        # exhaust the window by hand, then park a packet
        ext.windows.ensure(dst, win)
        ext.windows.window[dst] = 0
        pkt = Packet(PacketKind.DATA, 4, dst, 1000, flow_id=1, seq=0)
        pkt.ingress_port = tor.connected_hosts[4]
        assert ext.on_data(pkt, pkt.ingress_port, out)
        assert pkt.no_win
        assert ext.pool.dst_backlog(dst) == 1000

    def test_adjusted_qlen_for_incast_packets(self):
        net = MiniNet("leaf-spine")
        exts = with_floodgate(net)
        tor = net.topo.switches_of_kind("tor")[1]
        ext = tor.extension
        port = tor.ports[tor.route_for_dst(0)]
        plain = Packet(PacketKind.DATA, 4, 0, 1000)
        assert ext.adjusted_qlen(plain, port) is None
        tagged = Packet(PacketKind.DATA, 4, 0, 1000)
        tagged.no_win = True
        assert ext.adjusted_qlen(tagged, port) is not None

    def test_overflow_bypass_counts(self):
        net = MiniNet("leaf-spine")
        exts = with_floodgate(net, max_voqs=1)
        tor = net.topo.switches_of_kind("tor")[1]
        ext = tor.extension
        # occupy the only VOQ with a DOWN-group allocation (forced)
        voq = ext.pool.allocate(999, GROUP_DOWN)
        assert voq is not None
        # now exhaust a window so a packet needs an UP-group VOQ
        dst = 0
        win = ext._initial_window(dst)
        ext.windows.ensure(dst, win)
        ext.windows.window[dst] = 0
        pkt = Packet(PacketKind.DATA, 4, dst, 1000, flow_id=1, seq=0)
        pkt.ingress_port = tor.connected_hosts[4]
        ext.on_data(pkt, pkt.ingress_port, tor.route_for_dst(dst))
        assert ext.pool.overflow_bypasses == 1


class TestCreditIntegration:
    def test_credit_packets_carry_dst_and_count(self):
        net = MiniNet("leaf-spine")
        exts = with_floodgate(net, credit_timer=us(5))
        seen = []
        spine = net.topo.switches_of_kind("core")[0]
        original = spine.receive

        def spy(pkt, port):
            if pkt.kind == PacketKind.CREDIT:
                seen.append(pkt)
            original(pkt, port)

        spine.receive = spy
        net.flow(1, 4, 0, 40_000)
        net.run(ms(10))
        assert seen
        for credit in seen:
            assert credit.credits and credit.credits[0][0] == 0
            assert credit.credits[0][1] >= 1
            assert credit.last_psn >= 0

    def test_host_facing_ports_never_send_credits(self):
        net = MiniNet("leaf-spine")
        exts = with_floodgate(net)
        host = net.topo.hosts[4]
        received_credit = []
        original = host.receive

        def spy(pkt, port):
            if pkt.kind == PacketKind.CREDIT:
                received_credit.append(pkt)
            original(pkt, port)

        host.receive = spy
        net.flow(1, 4, 0, 40_000)
        net.run(ms(10))
        assert received_credit == []
