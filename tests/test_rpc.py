"""Closed-loop rpc workloads: spec, matrix, driver, registry, CLI."""

from __future__ import annotations

import random

import pytest

from repro.cli import main
from repro.experiments import registry
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.faults.plan import FaultPlan, LinkDown
from repro.rpc import DestinationMatrix, RpcWorkloadSpec
from repro.stats.rpc import RpcRecord, summarize_rpc
from repro.units import us


def rpc_cfg(**kw) -> ScenarioConfig:
    spec_kw = dict(n_clients=4, fan_out=4, think_time=us(10))
    spec_kw.update(kw.pop("spec", {}))
    params = dict(
        pattern="rpc",
        rpc=RpcWorkloadSpec(**spec_kw),
        flow_control="floodgate",
        n_tors=4,
        hosts_per_tor=2,
        duration=us(300),
        seed=3,
    )
    params.update(kw)
    return ScenarioConfig(**params)


# -- the spec -----------------------------------------------------------------


class TestSpec:
    def test_roundtrips_and_fingerprints(self):
        spec = RpcWorkloadSpec(fan_out=12, locality=0.3)
        again = RpcWorkloadSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()
        assert spec.fingerprint() != RpcWorkloadSpec().fingerprint()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown RpcWorkloadSpec"):
            RpcWorkloadSpec.from_dict({"fan_oot": 8})

    @pytest.mark.parametrize(
        "kw, match",
        [
            (dict(fan_out=0), "fan_out must be >= 1"),
            (dict(n_clients=-1), "n_clients must be >= 0"),
            (dict(think_time=-5), "think_time must be >= 0"),
            (dict(server_time=-1), "server_time must be >= 0"),
            (dict(think_distribution="pareto"), "unknown think_distribution"),
            (dict(server_selection="hot"), "unknown server_selection"),
            (dict(request_size=0), "request_size must be >= 1"),
            (
                dict(response_size_min=500, response_size_max=100),
                "response sizes",
            ),
            (dict(response_workload="nosuch"), "unknown response_workload"),
            (dict(zipf_alpha=0.0), "zipf_alpha must be > 0"),
            (dict(locality=1.5), "locality must be a probability"),
            (dict(requests_per_client=-2), "requests_per_client"),
            (dict(background_load=-0.1), "background_load"),
        ],
    )
    def test_validation(self, kw, match):
        with pytest.raises(ValueError, match=match):
            RpcWorkloadSpec(**kw)


# -- config validation --------------------------------------------------------


class TestScenarioConfigValidation:
    def test_rpc_pattern_needs_a_spec(self):
        with pytest.raises(ValueError, match="needs a workload description"):
            ScenarioConfig(pattern="rpc")

    def test_spec_needs_the_rpc_pattern(self):
        with pytest.raises(ValueError, match="pattern='rpc'"):
            ScenarioConfig(pattern="poisson", rpc=RpcWorkloadSpec())

    def test_permanent_link_down_is_rejected(self):
        plan = FaultPlan((LinkDown(at=us(10), duration=0),))
        with pytest.raises(ValueError, match="permanent LinkDown"):
            rpc_cfg(fault_plan=plan)

    def test_transient_link_down_is_allowed(self):
        plan = FaultPlan((LinkDown(at=us(10), duration=us(20)),))
        assert rpc_cfg(fault_plan=plan).fault_plan is plan


# -- the destination matrix ---------------------------------------------------


class TestDestinationMatrix:
    RACKS = {h: h // 4 for h in range(16)}  # 4 racks of 4

    def test_zipf_skews_toward_the_top_rank(self):
        spec = RpcWorkloadSpec(server_selection="zipf", zipf_alpha=1.2)
        m = DestinationMatrix(spec, self.RACKS, random.Random(7))
        weights = sorted(
            (m.rack_weight(rack) for rack in range(4)), reverse=True
        )
        assert weights[0] > 2 * weights[-1]
        assert sum(weights) == pytest.approx(1.0)

    def test_uniform_selection_flattens_the_weights(self):
        spec = RpcWorkloadSpec(server_selection="uniform")
        m = DestinationMatrix(spec, self.RACKS, random.Random(7))
        for rack in range(4):
            assert m.rack_weight(rack) == pytest.approx(0.25)

    def test_sampled_servers_are_distinct_and_never_the_client(self):
        spec = RpcWorkloadSpec(fan_out=8)
        m = DestinationMatrix(spec, self.RACKS, random.Random(7))
        rng = random.Random(11)
        for _ in range(50):
            servers = m.sample_servers(rng, client=5, fan_out=8)
            assert len(servers) == 8
            assert len(set(servers)) == 8
            assert 5 not in servers

    def test_full_locality_stays_in_the_client_rack(self):
        spec = RpcWorkloadSpec(locality=1.0, fan_out=3)
        m = DestinationMatrix(spec, self.RACKS, random.Random(7))
        rng = random.Random(11)
        for _ in range(20):
            for server in m.sample_servers(rng, client=5, fan_out=3):
                assert self.RACKS[server] == 1

    def test_fan_out_beyond_hosts_wraps(self):
        racks = {0: 0, 1: 0, 2: 1}
        m = DestinationMatrix(RpcWorkloadSpec(), racks, random.Random(7))
        servers = m.sample_servers(random.Random(11), client=0, fan_out=5)
        assert len(servers) == 5
        assert set(servers) <= {1, 2}

    def test_rejects_single_host_fabrics(self):
        with pytest.raises(ValueError, match="at least two hosts"):
            DestinationMatrix(RpcWorkloadSpec(), {0: 0}, random.Random(7))


# -- the closed loop, end to end ----------------------------------------------


class TestClosedLoop:
    @pytest.mark.parametrize("fidelity", ["packet", "flow"])
    def test_requests_complete_on_both_tiers(self, fidelity):
        r = run_scenario(rpc_cfg(fidelity=fidelity))
        assert r.completed_requests > 0
        assert r.requests_per_sec > 0
        s = r.rpc_summary
        assert s.count == r.completed_requests
        assert 0 < s.p50_ns <= s.p99_ns <= s.p999_ns <= s.max_ns
        # every request is fan_out requests + fan_out responses
        assert r.total_flows >= 2 * 4 * r.completed_requests

    def test_requests_per_client_caps_the_run(self):
        cfg = rpc_cfg(spec=dict(requests_per_client=2))
        r = run_scenario(cfg)
        assert r.completed_requests == 4 * 2
        driver = r.scenario.rpc_driver
        assert driver is not None and driver.finished
        assert driver.requests_issued == driver.requests_completed == 8

    def test_closed_loop_feedback(self):
        """Slower fabric -> fewer requests: the defining property."""
        fast = run_scenario(rpc_cfg(seed=9))
        slow = run_scenario(
            rpc_cfg(seed=9, spec=dict(server_time=us(40)))
        )
        assert slow.completed_requests < fast.completed_requests

    def test_background_load_rides_alongside(self):
        bare = run_scenario(rpc_cfg())
        mixed = run_scenario(rpc_cfg(spec=dict(background_load=0.3)))
        assert mixed.completed_requests > 0
        # the flow table holds the driver's req/resp flows plus the
        # open-loop Poisson background riding alongside
        assert mixed.total_flows > bare.total_flows

    def test_driver_rejects_oversized_client_populations(self):
        with pytest.raises(ValueError, match="exceeds the 8 hosts"):
            run_scenario(rpc_cfg(spec=dict(n_clients=32)))


# -- request summaries --------------------------------------------------------


class TestSummaries:
    def test_summarize_rpc(self):
        records = [
            RpcRecord(i, 0, 4, 0, (i + 1) * 1000) for i in range(100)
        ]
        s = summarize_rpc(records)
        assert s.count == 100
        assert s.p50_ns == pytest.approx(50_000, rel=0.02)
        assert s.max_ns == 100_000
        assert s.p999_ns <= s.max_ns
        assert s.p50_us == pytest.approx(s.p50_ns / 1000.0)

    def test_empty_summary_is_zero(self):
        s = summarize_rpc([])
        assert s.count == 0 and s.p999_ns == 0


# -- the registry -------------------------------------------------------------


class TestRegistry:
    def test_builtins_present(self):
        names = registry.names()
        assert "quick" in names
        assert "rpc-fanout" in names
        assert "rpc-fanout-flow" in names

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="available scenarios: quick"):
            registry.get("nosuch")

    def test_tag_filtering(self):
        rpc_names = registry.names(tag="rpc")
        assert rpc_names == ["rpc-fanout", "rpc-fanout-flow"]
        assert all("bench" in registry.get(n).tags for n in rpc_names)

    def test_duplicate_registration_rejected(self):
        entry = registry.get("quick")
        with pytest.raises(ValueError, match="already registered"):
            registry.register(entry)

    def test_bad_gate_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown gate_metric"):
            registry.ScenarioEntry(
                "x", "d", (ScenarioConfig(),), gate_metric="qps"
            )

    def test_rpc_entries_gate_on_requests(self):
        from repro.experiments.bench import gate_metric_for

        assert gate_metric_for("rpc-fanout") == "requests_per_sec"
        assert gate_metric_for("rpc-anything-else") == "requests_per_sec"
        assert gate_metric_for("flowsim-quick") == "flows_per_sec"
        assert gate_metric_for("quick") == "events_per_sec"


# -- the CLI ------------------------------------------------------------------


class TestCli:
    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out

    def test_scenarios_list_tag(self, capsys):
        assert main(["scenarios", "list", "--tag", "rpc"]) == 0
        out = capsys.readouterr().out
        assert "rpc-fanout" in out
        assert "fattree-a2a" not in out

    def test_scenarios_show(self, capsys):
        assert main(["scenarios", "show", "rpc-fanout"]) == 0
        out = capsys.readouterr().out
        assert "requests_per_sec" in out
        assert '"fan_out": 8' in out

    def test_scenarios_show_unknown(self, capsys):
        assert main(["scenarios", "show", "nosuch"]) == 1
        err = capsys.readouterr().err
        assert "available scenarios" in err

    def test_bench_unknown_scenario_lists_available(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--scenario", "nosuch"])
        err = capsys.readouterr().err
        assert "rpc-fanout" in err

    def test_report_unknown_scenario(self, capsys):
        assert main(["report", "--scenario", "nosuch"]) == 1
        err = capsys.readouterr().err
        assert "available scenarios" in err


# -- report rendering ---------------------------------------------------------


class TestSloReport:
    def test_render_includes_slo_section(self):
        from repro.telemetry.registry import TelemetryConfig
        from repro.telemetry.report import render_export

        cfg = rpc_cfg(telemetry=TelemetryConfig())
        r = run_scenario(cfg)
        text = render_export(r.telemetry)
        assert "request-level SLOs" in text
        assert "p999" in text
        assert "requests/s" in text

    def test_no_slo_section_without_rpc(self):
        from repro.telemetry.registry import TelemetryConfig
        from repro.telemetry.report import render_export

        cfg = ScenarioConfig(
            n_tors=2,
            hosts_per_tor=2,
            duration=us(100),
            telemetry=TelemetryConfig(),
        )
        r = run_scenario(cfg)
        assert "request-level SLOs" not in render_export(r.telemetry)
