"""Host transport details: coalescing, pacing, RTO behaviour."""

from repro.net.packet import PacketKind
from repro.units import gbps, ms, us
from tests.conftest import MiniNet


class TestAckCoalescing:
    def test_ack_interval_reduces_ack_count(self):
        net_every = MiniNet()
        f1 = net_every.flow(1, 0, 4, 40_000)
        net_every.run(ms(10))

        net_coalesced = MiniNet()
        for host in net_coalesced.topo.hosts:
            host.ack_interval = 4
        f2 = net_coalesced.flow(1, 0, 4, 40_000)
        net_coalesced.run(ms(20))

        assert f1.receiver_done and f2.receiver_done
        assert f2.acks_received < f1.acks_received

    def test_final_packet_always_acked(self):
        net = MiniNet()
        for host in net.topo.hosts:
            host.ack_interval = 7  # 40 packets not divisible by 7
        f = net.flow(1, 0, 4, 40_000)
        net.run(ms(20))
        assert f.sender_done  # the tail ACK arrived


class TestPacing:
    def test_rate_limit_spreads_packets(self):
        net = MiniNet()
        host = net.topo.hosts[0]
        received = []
        dst_host = net.topo.hosts[4]
        original = dst_host.receive

        def spy(pkt, port):
            if pkt.kind == PacketKind.DATA:
                received.append(net.sim.now)
            original(pkt, port)

        dst_host.receive = spy
        f = net.topo.make_flow(1, 0, 4, 20_000, 0)
        net.topo.start_flow(f)
        net.run(us(2))  # let the flow start (CC sets the line rate)
        f.rate = gbps(1)  # then throttle to 10x slower
        host._kick(f)
        net.run(ms(10))
        gaps = [b - a for a, b in zip(received, received[1:], strict=False)]
        # at 1 Gbps a 1000 B packet takes 8 us; check the paced tail
        assert gaps and min(gaps[5:]) >= us(7)

    def test_line_rate_flow_is_back_to_back(self):
        net = MiniNet()
        received = []
        dst_host = net.topo.hosts[4]
        original = dst_host.receive

        def spy(pkt, port):
            if pkt.kind == PacketKind.DATA:
                received.append(net.sim.now)
            original(pkt, port)

        dst_host.receive = spy
        net.flow(1, 0, 4, 10_000)
        net.run(ms(5))
        gaps = [b - a for a, b in zip(received, received[1:], strict=False)]
        # 1000 B at 10 Gbps = 800 ns
        assert gaps and max(gaps) <= us(2)


class TestRto:
    def test_rto_rewinds_to_cumulative_ack(self):
        net = MiniNet()
        host = net.topo.hosts[0]
        f = net.topo.make_flow(1, 0, 4, 50_000, 0)
        net.topo.start_flow(f)
        net.run(us(5))
        # pretend everything in flight vanished
        sent_before = f.next_seq
        f.acked_seq = 2
        host._on_rto(f)
        # the rewind restarted from seq 2 (the kick may already have
        # re-emitted the first packet synchronously)
        assert f.next_seq <= 3
        assert f.retransmitted_packets >= sent_before - 2

    def test_rto_noop_when_fully_acked(self):
        net = MiniNet()
        f = net.flow(1, 0, 4, 5_000)
        net.run(ms(5))
        host = net.topo.hosts[0]
        retx_before = f.retransmitted_packets
        host._on_rto(f)
        assert f.retransmitted_packets == retx_before

    def test_rto_timer_stopped_after_completion(self):
        net = MiniNet()
        f = net.flow(1, 0, 4, 5_000)
        net.run(ms(5))
        assert f.rto_timer is not None
        assert not f.rto_timer.armed


class TestStartFlowValidation:
    def test_wrong_source_rejected(self):
        net = MiniNet()
        host = net.topo.hosts[0]
        from repro.cc.flow import Flow

        foreign = Flow(9, 3, 4, 1000)
        import pytest

        with pytest.raises(ValueError):
            host.start_flow(foreign)
